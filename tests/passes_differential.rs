//! Differential check of the pass pipeline over all eight Figure-11
//! applications, with a snapshot-pinned optimization table.
//!
//! Each app records its full convergence-free Bellman–Ford instruction
//! stream (the worst-case iteration count, so closure apps carry the
//! redundant post-fixed-point tail the CSE pass exists for), then:
//!
//! * replaying the *optimized* plan must reproduce every step of the
//!   unoptimized replay bit for bit through the [`OptimizedPlan`]
//!   remap (outputs and exact work counters) — running an app with the
//!   pipeline on converges to the identical result;
//! * recording twice must optimize identically (the pipeline is a pure
//!   function of the plan);
//! * the per-app steps-before/after, merged, eliminated, reordered and
//!   fused-chain counts are pinned in
//!   `tests/snapshots/passes.snap`. When a pass changes
//!   *intentionally*, regenerate with:
//!
//! ```text
//! SIMD2_BLESS=1 cargo test --test passes_differential
//! ```
//!
//! and review the table diff like any other code change.

use std::path::PathBuf;

use simd2_repro::apps::{harness, AppKind};
use simd2_repro::core::backend::{Backend, TiledBackend};
use simd2_repro::core::solve::ClosureAlgorithm;
use simd2_repro::core::{PassPipeline, PlanExecutor};
use simd2_repro::matrix::Matrix;

const N: usize = 32;
const SEED: u64 = 2022;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/passes.snap")
}

fn assert_bits_equal(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape");
    for (i, (x, y)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// Runs one app with the pipeline off and on, proves the differential,
/// and returns its optimization-table row.
fn check_app(app: AppKind) -> String {
    let mut rec_be = TiledBackend::new();
    let run = harness::run_app(
        &mut rec_be,
        app,
        N,
        SEED,
        ClosureAlgorithm::BellmanFord,
        false,
    );
    assert!(run.passed(), "{app:?}: diff {} out of tolerance", run.diff);

    // Pipeline off: the plain sequential replay is the reference.
    let mut base_be = TiledBackend::new();
    let base = PlanExecutor::new()
        .run(&run.plan, &mut base_be)
        .expect("unoptimized replay");

    // Pipeline on: every original step must converge to identical bits
    // through the remap, with exactly the optimized plan's work.
    let optimized = PassPipeline::standard().run(run.plan.clone());
    let mut opt_be = TiledBackend::new();
    let opt = PlanExecutor::new()
        .run_optimized(&optimized, &mut opt_be)
        .expect("optimized replay");
    assert_eq!(
        opt_be.op_count(),
        optimized.plan().predicted_op_count(),
        "{app:?}: optimized work"
    );
    for step in 0..run.plan.step_count() {
        let got = optimized
            .step_output(&opt, step)
            .unwrap_or_else(|| panic!("{app:?}: step {step} unreachable after optimization"));
        assert_bits_equal(base.step_output(step), got, &format!("{app:?} step {step}"));
    }
    assert_bits_equal(
        base.final_output().expect("non-empty plan"),
        optimized.final_output(&opt).expect("mapped final step"),
        &format!("{app:?} final"),
    );

    // Determinism: recording the same app again optimizes identically.
    let rerun = harness::run_app(
        &mut TiledBackend::new(),
        app,
        N,
        SEED,
        ClosureAlgorithm::BellmanFord,
        false,
    );
    assert_eq!(rerun.iterations, run.iterations, "{app:?}: iterations");
    let reopt = PassPipeline::standard().run(rerun.plan);
    assert_eq!(
        reopt.cache_key(),
        optimized.cache_key(),
        "{app:?}: optimization must be a pure function of the recording"
    );

    let r = optimized.report();
    format!(
        "{:<6} before={:<3} after={:<3} merged={:<3} eliminated={:<2} reordered={:<2} chains={}\n",
        format!("{app:?}"),
        r.steps_before,
        r.steps_after,
        r.steps_merged,
        r.steps_eliminated,
        r.steps_reordered,
        r.chains_fused,
    )
}

#[test]
fn eight_apps_optimize_bit_identically_with_pinned_step_counts() {
    let mut table = format!("passes over Figure-11 apps, n={N} seed={SEED} bellman-ford full\n");
    let mut total_merged = 0usize;
    for app in AppKind::all() {
        let row = check_app(app);
        table.push_str(&row);
    }
    // The convergence-free closure tails must give CSE real work in at
    // least one app — an all-zero table would mean the differential
    // tests nothing.
    for line in table.lines().skip(1) {
        let merged: usize = line
            .split("merged=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("table row carries a merged count");
        total_merged += merged;
    }
    assert!(
        total_merged > 0,
        "no app produced CSE work — the workload no longer exercises the pipeline:\n{table}"
    );

    let path = snapshot_path();
    if std::env::var_os("SIMD2_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir snapshots");
        std::fs::write(&path, &table).expect("write snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with SIMD2_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        table,
        want,
        "per-app optimization table diverged from {}; if intentional, \
         regenerate with SIMD2_BLESS=1 and review the diff",
        path.display()
    );
}
