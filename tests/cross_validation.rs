//! Cross-validation between independent layers of the reproduction:
//! algebraic dualities, and the cycle-level simulator against the
//! analytical machine model.

use simd2_repro::apps::aplp;
use simd2_repro::core::solve::{closure, ClosureAlgorithm};
use simd2_repro::core::ReferenceBackend;
use simd2_repro::gpu::sim::{tile_mmo_program, SmPipeline};
use simd2_repro::gpu::{Gpu, GpuConfig};
use simd2_repro::matrix::Matrix;
use simd2_repro::semiring::OpKind;

/// The paper's APLP construction: "extending … ECL-APSP with reversing
/// the input weights on [the] DAG". Max-plus closure on weights `w` must
/// equal the negation of min-plus closure on `−w` — the duality that lets
/// a shortest-path engine answer longest-path queries.
#[test]
fn max_plus_is_negated_min_plus() {
    let g = aplp::generate(48, 21);
    let neg = g.map_weights(|w| -w);

    let mut be = ReferenceBackend::new();
    let maxplus = closure(
        &mut be,
        OpKind::MaxPlus,
        &g.adjacency(OpKind::MaxPlus),
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap()
    .closure;
    let minplus = closure(
        &mut be,
        OpKind::MinPlus,
        &neg.adjacency(OpKind::MinPlus),
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap()
    .closure;

    let n = g.vertex_count();
    let negated = Matrix::from_fn(n, n, |r, c| -minplus[(r, c)]);
    assert_eq!(maxplus, negated);
}

/// Max-min (capacity) and min-max (bottleneck) are the same duality:
/// negate the weights and the two algebras swap.
#[test]
fn max_min_is_negated_min_max() {
    let g = simd2_repro::matrix::gen::connected_gnp_graph(24, 0.2, 1.0, 9.0, 5);
    let neg = g.map_weights(|w| -w);
    let mut be = ReferenceBackend::new();
    let maxmin = closure(
        &mut be,
        OpKind::MaxMin,
        &g.adjacency(OpKind::MaxMin),
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap()
    .closure;
    let minmax = closure(
        &mut be,
        OpKind::MinMax,
        &neg.adjacency(OpKind::MinMax),
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap()
    .closure;
    let n = g.vertex_count();
    let negated = Matrix::from_fn(n, n, |r, c| -minmax[(r, c)]);
    assert_eq!(maxmin, negated);
}

/// The cycle-level pipeline simulator and the analytical roofline agree
/// on steady-state SIMD² throughput: one 16×16×16 `mmo` per 64 cycles
/// per unit — i.e. `lane_ops_per_unit` = 64 lane-ops/cycle.
#[test]
fn simulator_throughput_matches_analytic_model() {
    let config = GpuConfig::rtx3080();
    // Simulate a saturated sub-core unit.
    let programs: Vec<_> = (0..8)
        .map(|_| tile_mmo_program(OpKind::MinPlus, 24))
        .collect();
    let stats = SmPipeline::new().simulate(&programs);
    let lane_ops = stats.mmos as f64 * 16.0 * 16.0 * 16.0;
    let sim_lane_ops_per_cycle = lane_ops / stats.cycles as f64;
    let analytic = config.lane_ops_per_unit as f64;
    let ratio = sim_lane_ops_per_cycle / analytic;
    assert!(
        (0.85..=1.01).contains(&ratio),
        "sim {sim_lane_ops_per_cycle} vs analytic {analytic} lane-ops/cycle"
    );

    // And the analytic whole-GPU time for a large mmo is consistent with
    // scaling that per-unit rate across the chip.
    let gpu = Gpu::new(config.clone());
    let n = 8192usize;
    let t = gpu.simd2_mmo_time(OpKind::MinPlus, n, n, n).get();
    let total_lane_ops = (n as f64).powi(3);
    let implied_rate = total_lane_ops / t;
    let peak = config.sm_count as f64
        * config.simd2_units_per_sm as f64
        * analytic
        * config.clock_ghz
        * 1.0e9;
    assert!(implied_rate <= peak, "cannot beat peak");
    assert!(implied_rate >= 0.8 * peak, "large mmo should run near peak");
}

/// Latency hiding: the simulator shows exactly why the utilisation curve
/// in the analytic model ramps with problem size — few resident warps
/// (small problems) cannot cover the tile-pipe latency.
#[test]
fn warp_count_drives_utilisation_like_the_saturation_curve() {
    let pipeline = SmPipeline::new();
    let util = |warps: usize| {
        let programs: Vec<_> = (0..warps)
            .map(|_| tile_mmo_program(OpKind::MinPlus, 8))
            .collect();
        pipeline.simulate(&programs).simd2_utilization()
    };
    let u1 = util(1);
    let u8 = util(8);
    assert!(u1 < 0.9, "single warp stalls: {u1}");
    assert!(u8 > 0.9, "eight warps saturate: {u8}");
    assert!(u8 > u1);
}

/// The f32 tropical algebra agrees with the exact i64 oracle on
/// integer-weighted closures — the justification for trusting fp paths
/// on integer workloads (and, transitively, the fp16 bit-exactness
/// results).
#[test]
fn f32_min_plus_closure_matches_integer_oracle() {
    use simd2_repro::semiring::{IntMinPlus, Semiring};
    let g = simd2_repro::matrix::gen::integer_weight_graph(40, 0.2, 64, 17);
    let n = g.vertex_count();
    // Exact integer Floyd–Warshall.
    let mut d_int = vec![i64::MAX; n * n];
    for v in 0..n {
        d_int[v * n + v] = 0;
    }
    for (s, dst, w) in g.edges() {
        let slot = &mut d_int[s * n + dst];
        *slot = (*slot).min(w as i64);
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d_int[i * n + k];
            for j in 0..n {
                d_int[i * n + j] = IntMinPlus::fma(d_int[i * n + j], dik, d_int[k * n + j]);
            }
        }
    }
    // f32 closure on the fp16 SIMD²-unit backend.
    let mut be = simd2_repro::core::TiledBackend::new();
    let f = closure(
        &mut be,
        OpKind::MinPlus,
        &g.adjacency(OpKind::MinPlus),
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap()
    .closure;
    for i in 0..n {
        for j in 0..n {
            let exact = d_int[i * n + j];
            let float = f[(i, j)];
            if exact == i64::MAX {
                assert_eq!(float, f32::INFINITY, "({i},{j})");
            } else {
                assert_eq!(float as i64, exact, "({i},{j})");
            }
        }
    }
}
