//! Property-based integration tests across the stack.

use proptest::prelude::*;
use simd2_repro::core::backend::{Backend, Parallelism, ReferenceBackend, TiledBackend};
use simd2_repro::core::solve::{closure, floyd_warshall_closure, ClosureAlgorithm};
use simd2_repro::matrix::{gen, Graph, Matrix};
use simd2_repro::semiring::{OpKind, ALL_OPS};
use simd2_repro::sparse::Csr;
use simd2_repro::trace::{span, EventKind, RingSink, Tracer};

fn closure_ops() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::MinPlus),
        Just(OpKind::MaxMin),
        Just(OpKind::MinMax),
        Just(OpKind::OrAnd),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Closure is a fixed point: running the solver on its own output
    /// converges in one productive iteration and changes nothing.
    #[test]
    fn closure_is_idempotent(op in closure_ops(), n in 4usize..24, seed in 0u64..500) {
        let g = gen::connected_gnp_graph(n, 0.2, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let mut be = ReferenceBackend::new();
        let first = closure(&mut be, op, &adj, ClosureAlgorithm::Leyzorek, true).unwrap();
        let second =
            closure(&mut be, op, &first.closure, ClosureAlgorithm::Leyzorek, true).unwrap();
        prop_assert_eq!(&second.closure, &first.closure);
        prop_assert!(second.stats.iterations <= 1 || second.stats.converged_early);
    }

    /// Bellman-Ford and Leyzorek always reach the same fixed point as
    /// scalar Floyd–Warshall, for any closure algebra and random graph.
    #[test]
    fn solvers_agree_with_floyd_warshall(
        op in closure_ops(), n in 3usize..20, p in 0.05f64..0.5, seed in 0u64..1000
    ) {
        let g = gen::gnp_graph(n, p, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let want = floyd_warshall_closure(op, &adj);
        let mut be = ReferenceBackend::new();
        for alg in [ClosureAlgorithm::BellmanFord, ClosureAlgorithm::Leyzorek] {
            let got = closure(&mut be, op, &adj, alg, true).unwrap();
            prop_assert_eq!(&got.closure, &want, "{} {:?}", op, alg);
        }
    }

    /// The tiled fp16 backend equals the fp32 reference bit-for-bit on
    /// min/max/or algebras whenever inputs are fp16-exact.
    #[test]
    fn fp16_backend_is_exact_on_selection_algebras(
        n in 2usize..30, seed in 0u64..1000
    ) {
        let g = gen::integer_weight_graph(n, 0.3, 64, seed);
        for op in [OpKind::MinPlus, OpKind::MinMax, OpKind::MaxMin] {
            let adj = g.adjacency(op);
            let c = Matrix::filled(n, n, op.reduce_identity_f32());
            let want = ReferenceBackend::new().mmo(op, &adj, &adj, &c).unwrap();
            let got = TiledBackend::new().mmo(op, &adj, &adj, &c).unwrap();
            prop_assert_eq!(got, want, "{}", op);
        }
    }

    /// CSR round-trips dense matrices for any sparsity and zero encoding.
    #[test]
    fn csr_roundtrip(n in 1usize..40, sparsity in 0.0f64..1.0, seed in 0u64..1000) {
        let m = gen::random_sparse_matrix(n, sparsity, seed);
        let s = Csr::from_dense(&m, 0.0);
        prop_assert_eq!(s.to_dense(0.0), m);
    }

    /// spGEMM equals the dense reference under every sparse-capable
    /// algebra.
    #[test]
    fn spgemm_matches_dense(op in closure_ops(), n in 2usize..16, seed in 0u64..500) {
        let g = gen::gnp_graph(n, 0.3, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let zero = op.no_edge_f32().unwrap();
        let a = Csr::from_dense(&adj, zero);
        let got = a.spgemm(op, &a).to_dense(zero);
        let c = Matrix::filled(n, n, op.reduce_identity_f32());
        let want = simd2_repro::matrix::reference::mmo(op, &adj, &adj, &c).unwrap();
        // The reference may produce explicit identity values where spgemm
        // stores nothing; both decode to the same dense matrix.
        prop_assert_eq!(got, want, "{}", op);
    }

    /// Graph → adjacency → graph round-trips (modulo parallel-edge
    /// resolution, which `⊕` makes canonical).
    #[test]
    fn graph_adjacency_roundtrip(n in 1usize..30, p in 0.0f64..0.6, seed in 0u64..1000) {
        let g = gen::gnp_graph(n, p, 1.0, 9.0, seed);
        let adj = g.adjacency(OpKind::MinPlus);
        let back = Graph::from_adjacency(OpKind::MinPlus, &adj);
        prop_assert_eq!(back.adjacency(OpKind::MinPlus), adj);
    }

    /// Convergence-checked runs never do more work than unchecked runs,
    /// and both reach the same answer.
    #[test]
    fn convergence_check_only_saves_work(n in 4usize..24, seed in 0u64..500) {
        let g = gen::connected_gnp_graph(n, 0.25, 1.0, 5.0, seed);
        let adj = g.adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let with = closure(&mut be, OpKind::MinPlus, &adj, ClosureAlgorithm::Leyzorek, true)
            .unwrap();
        let without =
            closure(&mut be, OpKind::MinPlus, &adj, ClosureAlgorithm::Leyzorek, false).unwrap();
        prop_assert_eq!(&with.closure, &without.closure);
        prop_assert!(with.stats.iterations <= without.stats.iterations);
    }

    /// Every backend's telemetry stream is an exact ledger: summing the
    /// `mmo` span-end events reproduces [`Backend::op_count`] across all
    /// nine ops, non-square shapes, and worker counts {1, 2, 4, 8}, and
    /// the sequential and parallel schedules agree on totals.
    #[test]
    fn telemetry_totals_match_op_count(
        op_idx in 0usize..9, m in 1usize..48, n in 1usize..48, k in 1usize..32,
        seed in 0u64..1000
    ) {
        let op = ALL_OPS[op_idx];
        let a = gen::random_operands_for(op, m, k, seed);
        let b = gen::random_operands_for(op, k, n, seed ^ 0x5eed);
        let c = Matrix::filled(m, n, op.reduce_identity_f32());
        let run = |par: Parallelism| {
            let ring = RingSink::shared();
            let mut be = TiledBackend::new().with_tracer(Tracer::to(ring.clone()));
            be.set_parallelism(par);
            be.mmo(op, &a, &b, &c).unwrap();
            let mut totals = (0u64, 0u64, 0u64, 0u64);
            for e in ring.events() {
                if e.span == span::MMO && e.kind == EventKind::End {
                    totals.0 += 1;
                    totals.1 += e.u64("tile_mmos").unwrap_or(0);
                    totals.2 += e.u64("tile_loads").unwrap_or(0);
                    totals.3 += e.u64("tile_stores").unwrap_or(0);
                }
            }
            let count = be.op_count();
            (totals, (count.matrix_mmos, count.tile_mmos, count.tile_loads, count.tile_stores))
        };
        let (seq_totals, seq_count) = run(Parallelism::Sequential);
        prop_assert_eq!(seq_totals, seq_count, "{} sequential", op);
        for workers in [1usize, 2, 4, 8] {
            let (par_totals, par_count) = run(Parallelism::Threads(workers));
            prop_assert_eq!(par_totals, par_count, "{} workers={}", op, workers);
            prop_assert_eq!(par_totals, seq_totals, "{} workers={} vs sequential", op, workers);
        }
    }

    /// The ISA instruction encoding round-trips arbitrary well-formed
    /// instructions (fuzzing the bit layout).
    #[test]
    fn isa_encoding_roundtrips(
        op_idx in 0usize..9, d in 0u8..16, a in 0u8..16, b in 0u8..16, c in 0u8..16,
        addr in any::<u32>(), ld in 16u32..(1 << 23)
    ) {
        use simd2_repro::isa::{Dtype, Instruction, MatrixReg};
        let instrs = [
            Instruction::Mmo {
                op: ALL_OPS[op_idx],
                d: MatrixReg::new(d),
                a: MatrixReg::new(a),
                b: MatrixReg::new(b),
                c: MatrixReg::new(c),
            },
            Instruction::Load { dst: MatrixReg::new(d), dtype: Dtype::Fp16, addr, ld },
            Instruction::Store { src: MatrixReg::new(a), addr, ld },
        ];
        for i in instrs {
            prop_assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
            // The assembly text form round-trips too.
            let text = i.to_string();
            let parsed = simd2_repro::isa::asm::parse(&text).unwrap();
            prop_assert_eq!(parsed[0], i);
        }
    }
}
