//! Property-based integration tests across the stack.

use proptest::prelude::*;
use simd2_repro::core::backend::{Backend, Parallelism, ReferenceBackend, TiledBackend};
use simd2_repro::core::solve::{closure, floyd_warshall_closure, ClosureAlgorithm};
use simd2_repro::core::{MatrixRef, OperandRepr, Plan, PlanBuilder, PlanExecutor};
use simd2_repro::matrix::{gen, Graph, Matrix};
use simd2_repro::semiring::precision::quantize_f16;
use simd2_repro::semiring::{OpKind, ALL_OPS};
use simd2_repro::sparse::structured::prune_2_4;
use simd2_repro::sparse::{Csr, SparseTiledBackend};
use simd2_repro::trace::{span, EventKind, RingSink, Tracer};

/// An fp16-exact operand in `op`'s input domain with roughly `density`
/// of its entries kept; the rest become the op's no-edge sentinel (ops
/// without one — plus-norm — stay fully dense).
fn sparse_operand(op: OpKind, rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut m = gen::random_operands_for(op, rows, cols, seed);
    for v in m.as_mut_slice().iter_mut() {
        *v = quantize_f16(*v);
    }
    if let Some(zero) = op.no_edge_f32() {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in m.as_mut_slice().iter_mut() {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            if ((s >> 11) as f64 / (1u64 << 53) as f64) >= density {
                *v = zero;
            }
        }
    }
    m
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn closure_ops() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::MinPlus),
        Just(OpKind::MaxMin),
        Just(OpKind::MinMax),
        Just(OpKind::OrAnd),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Closure is a fixed point: running the solver on its own output
    /// converges in one productive iteration and changes nothing.
    #[test]
    fn closure_is_idempotent(op in closure_ops(), n in 4usize..24, seed in 0u64..500) {
        let g = gen::connected_gnp_graph(n, 0.2, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let mut be = ReferenceBackend::new();
        let first = closure(&mut be, op, &adj, ClosureAlgorithm::Leyzorek, true).unwrap();
        let second =
            closure(&mut be, op, &first.closure, ClosureAlgorithm::Leyzorek, true).unwrap();
        prop_assert_eq!(&second.closure, &first.closure);
        prop_assert!(second.stats.iterations <= 1 || second.stats.converged_early);
    }

    /// Bellman-Ford and Leyzorek always reach the same fixed point as
    /// scalar Floyd–Warshall, for any closure algebra and random graph.
    #[test]
    fn solvers_agree_with_floyd_warshall(
        op in closure_ops(), n in 3usize..20, p in 0.05f64..0.5, seed in 0u64..1000
    ) {
        let g = gen::gnp_graph(n, p, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let want = floyd_warshall_closure(op, &adj);
        let mut be = ReferenceBackend::new();
        for alg in [ClosureAlgorithm::BellmanFord, ClosureAlgorithm::Leyzorek] {
            let got = closure(&mut be, op, &adj, alg, true).unwrap();
            prop_assert_eq!(&got.closure, &want, "{} {:?}", op, alg);
        }
    }

    /// The tiled fp16 backend equals the fp32 reference bit-for-bit on
    /// min/max/or algebras whenever inputs are fp16-exact.
    #[test]
    fn fp16_backend_is_exact_on_selection_algebras(
        n in 2usize..30, seed in 0u64..1000
    ) {
        let g = gen::integer_weight_graph(n, 0.3, 64, seed);
        for op in [OpKind::MinPlus, OpKind::MinMax, OpKind::MaxMin] {
            let adj = g.adjacency(op);
            let c = Matrix::filled(n, n, op.reduce_identity_f32());
            let want = ReferenceBackend::new().mmo(op, &adj, &adj, &c).unwrap();
            let got = TiledBackend::new().mmo(op, &adj, &adj, &c).unwrap();
            prop_assert_eq!(got, want, "{}", op);
        }
    }

    /// CSR round-trips dense matrices for any sparsity and zero encoding.
    #[test]
    fn csr_roundtrip(n in 1usize..40, sparsity in 0.0f64..1.0, seed in 0u64..1000) {
        let m = gen::random_sparse_matrix(n, sparsity, seed);
        let s = Csr::from_dense(&m, 0.0).unwrap();
        prop_assert_eq!(s.to_dense(0.0), m);
    }

    /// spGEMM equals the dense reference under every sparse-capable
    /// algebra.
    #[test]
    fn spgemm_matches_dense(op in closure_ops(), n in 2usize..16, seed in 0u64..500) {
        let g = gen::gnp_graph(n, 0.3, 1.0, 9.0, seed);
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let zero = op.no_edge_f32().unwrap();
        let a = Csr::from_dense(&adj, zero).unwrap();
        let got = a.spgemm(op, &a).to_dense(zero);
        let c = Matrix::filled(n, n, op.reduce_identity_f32());
        let want = simd2_repro::matrix::reference::mmo(op, &adj, &adj, &c).unwrap();
        // The reference may produce explicit identity values where spgemm
        // stores nothing; both decode to the same dense matrix.
        prop_assert_eq!(got, want, "{}", op);
    }

    /// Graph → adjacency → graph round-trips (modulo parallel-edge
    /// resolution, which `⊕` makes canonical).
    #[test]
    fn graph_adjacency_roundtrip(n in 1usize..30, p in 0.0f64..0.6, seed in 0u64..1000) {
        let g = gen::gnp_graph(n, p, 1.0, 9.0, seed);
        let adj = g.adjacency(OpKind::MinPlus);
        let back = Graph::from_adjacency(OpKind::MinPlus, &adj);
        prop_assert_eq!(back.adjacency(OpKind::MinPlus), adj);
    }

    /// Convergence-checked runs never do more work than unchecked runs,
    /// and both reach the same answer.
    #[test]
    fn convergence_check_only_saves_work(n in 4usize..24, seed in 0u64..500) {
        let g = gen::connected_gnp_graph(n, 0.25, 1.0, 5.0, seed);
        let adj = g.adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let with = closure(&mut be, OpKind::MinPlus, &adj, ClosureAlgorithm::Leyzorek, true)
            .unwrap();
        let without =
            closure(&mut be, OpKind::MinPlus, &adj, ClosureAlgorithm::Leyzorek, false).unwrap();
        prop_assert_eq!(&with.closure, &without.closure);
        prop_assert!(with.stats.iterations <= without.stats.iterations);
    }

    /// Every backend's telemetry stream is an exact ledger: summing the
    /// `mmo` span-end events reproduces [`Backend::op_count`] across all
    /// nine ops, non-square shapes, and worker counts {1, 2, 4, 8}, and
    /// the sequential and parallel schedules agree on totals.
    #[test]
    fn telemetry_totals_match_op_count(
        op_idx in 0usize..9, m in 1usize..48, n in 1usize..48, k in 1usize..32,
        seed in 0u64..1000
    ) {
        let op = ALL_OPS[op_idx];
        let a = gen::random_operands_for(op, m, k, seed);
        let b = gen::random_operands_for(op, k, n, seed ^ 0x5eed);
        let c = Matrix::filled(m, n, op.reduce_identity_f32());
        let run = |par: Parallelism| {
            let ring = RingSink::shared();
            let mut be = TiledBackend::new().with_tracer(Tracer::to(ring.clone()));
            be.set_parallelism(par);
            be.mmo(op, &a, &b, &c).unwrap();
            let mut totals = (0u64, 0u64, 0u64, 0u64);
            for e in ring.events() {
                if e.span == span::MMO && e.kind == EventKind::End {
                    totals.0 += 1;
                    totals.1 += e.u64("tile_mmos").unwrap_or(0);
                    totals.2 += e.u64("tile_loads").unwrap_or(0);
                    totals.3 += e.u64("tile_stores").unwrap_or(0);
                }
            }
            let count = be.op_count();
            (totals, (count.matrix_mmos, count.tile_mmos, count.tile_loads, count.tile_stores))
        };
        let (seq_totals, seq_count) = run(Parallelism::Sequential);
        prop_assert_eq!(seq_totals, seq_count, "{} sequential", op);
        for workers in [1usize, 2, 4, 8] {
            let (par_totals, par_count) = run(Parallelism::Threads(workers));
            prop_assert_eq!(par_totals, par_count, "{} workers={}", op, workers);
            prop_assert_eq!(par_totals, seq_totals, "{} workers={} vs sequential", op, workers);
        }
    }

    /// A plan recorded with sparse operand declarations replays bit-
    /// identically to the same steps recorded dense, across every op,
    /// density regime {0.01, 0.1, 0.5, 2:4-structured}, both input
    /// precisions, sequential + batched executors, and worker counts
    /// {1, 2, 4, 8}. Plus-norm has no no-edge annihilator, so its
    /// declarations stay dense — the replay must agree all the same.
    #[test]
    fn sparse_replay_is_bit_identical_to_dense_replay(
        op_idx in 0usize..9, density_idx in 0usize..4, reduced in any::<bool>(),
        n in 6usize..26, seed in 0u64..500
    ) {
        let op = ALL_OPS[op_idx];
        let structured = density_idx == 3;
        let density = [0.01, 0.1, 0.5, 0.5][density_idx];
        let sentinel = op.no_edge_f32();
        let mut a = sparse_operand(op, n, n, density, seed);
        if structured && sentinel.is_some() {
            a = prune_2_4(&a, op);
        }
        let b = sparse_operand(op, n, n, density.max(0.3), seed ^ 0x5eed);
        let c = Matrix::filled(n, n, op.reduce_identity_f32());
        let (ra, rb) = match sentinel {
            None => (OperandRepr::Dense, OperandRepr::Dense),
            Some(z) if structured => (OperandRepr::structured(z), OperandRepr::csr(z)),
            Some(z) => (OperandRepr::csr(z), OperandRepr::csr(z)),
        };
        // The same two-step chain recorded twice: with declarations and
        // without. Declarations are schedule hints, so the two plans
        // must replay to identical bits.
        let record = |declare: bool| -> Plan {
            let mut be = SparseTiledBackend::new().with_reduced_precision(reduced);
            let mut rec = PlanBuilder::over(&mut be);
            let (r0, r1) = if declare { (ra, rb) } else { (OperandRepr::Dense, OperandRepr::Dense) };
            let d0 = rec
                .mmo_ref(op, MatrixRef::new(&a, r0), MatrixRef::new(&b, r1), MatrixRef::dense(&c))
                .unwrap();
            rec.mmo_ref(op, MatrixRef::dense(&d0), MatrixRef::new(&b, r1), MatrixRef::dense(&c))
                .unwrap();
            rec.finish()
        };
        let sparse_plan = record(true);
        let dense_plan = record(false);
        prop_assert_eq!(sparse_plan.has_sparse_slots(), sentinel.is_some());
        let want = PlanExecutor::new()
            .run(&dense_plan, &mut SparseTiledBackend::new().with_reduced_precision(reduced))
            .unwrap();
        for workers in [1usize, 2, 4, 8] {
            for batched in [false, true] {
                let exec = if batched { PlanExecutor::batched() } else { PlanExecutor::new() };
                let mut be = SparseTiledBackend::new()
                    .with_reduced_precision(reduced)
                    .with_parallelism(Parallelism::Threads(workers));
                let got = exec.run(&sparse_plan, &mut be).unwrap();
                for step in 0..sparse_plan.step_count() {
                    prop_assert_eq!(
                        bits(got.step_output(step)), bits(want.step_output(step)),
                        "{} density_idx={} reduced={} workers={} batched={} step={}",
                        op, density_idx, reduced, workers, batched, step
                    );
                }
                if sentinel.is_some() {
                    prop_assert!(
                        be.sparse_count().sparse_mmos > 0,
                        "{}: declared operands must take the compressed kernels", op
                    );
                }
            }
        }
        // The fp32 leg also agrees with the dense scalar reference,
        // which ignores declarations entirely (trait-default lowering).
        if !reduced {
            let refr = PlanExecutor::new()
                .run(&sparse_plan, &mut ReferenceBackend::new())
                .unwrap();
            for step in 0..sparse_plan.step_count() {
                prop_assert_eq!(
                    bits(refr.step_output(step)), bits(want.step_output(step)),
                    "{} reference step={}", op, step
                );
            }
        }
    }

    /// A recorded sparse plan halted at *every* wave boundary and
    /// resumed from its checkpoint lands bit-identical to one
    /// uninterrupted replay — and the resume never re-executes a
    /// completed wave (counter-verified on the backend).
    #[test]
    fn sparse_plan_resumes_bit_identically_at_every_wave_boundary(
        op_idx in 0usize..9, len in 3usize..6, n in 6usize..20, seed in 0u64..500
    ) {
        let op = ALL_OPS[op_idx];
        let a = sparse_operand(op, n, n, 0.15, seed);
        let b = sparse_operand(op, n, n, 0.3, seed ^ 0x5eed);
        let c = Matrix::filled(n, n, op.reduce_identity_f32());
        let ra = op.no_edge_f32().map_or(OperandRepr::Dense, OperandRepr::csr);
        let plan = {
            let mut be = SparseTiledBackend::new();
            let mut rec = PlanBuilder::over(&mut be);
            let mut acc = rec
                .mmo_ref(op, MatrixRef::new(&a, ra), MatrixRef::dense(&b), MatrixRef::dense(&c))
                .unwrap();
            for _ in 1..len {
                acc = rec
                    .mmo_ref(op, MatrixRef::new(&a, ra), MatrixRef::dense(&b), MatrixRef::dense(&acc))
                    .unwrap();
            }
            rec.finish()
        };
        let want = PlanExecutor::new()
            .run(&plan, &mut SparseTiledBackend::new())
            .unwrap();
        // A dependent chain: every wave is one step, so halting after
        // each completed-step count covers every wave boundary.
        let waves = plan.waves().len();
        prop_assert_eq!(waves, plan.step_count());
        for halt_after in 1..waves {
            let exec = PlanExecutor::batched();
            let mut first = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(2));
            let halted = exec
                .run_resumable(&plan, &mut first, &mut |p: simd2_repro::core::ReplayProgress| {
                    if p.completed_steps >= halt_after { Err("wave halt".to_owned()) } else { Ok(()) }
                })
                .expect_err("control must halt the replay");
            prop_assert!(halted.error.is_cancelled());
            prop_assert_eq!(halted.checkpoint.completed_steps(), halt_after);
            let mut second = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(2));
            let done = exec
                .resume_from(&plan, halted.checkpoint, &mut second, &mut |_| Ok(()))
                .expect("resume runs to completion");
            for step in 0..plan.step_count() {
                prop_assert_eq!(
                    bits(done.step_output(step)), bits(want.step_output(step)),
                    "{} halt_after={} step={}", op, halt_after, step
                );
            }
            // The checkpointed waves were never re-dispatched.
            prop_assert_eq!(
                Backend::op_count(&second).matrix_mmos as usize,
                plan.step_count() - halt_after,
                "{} halt_after={}", op, halt_after
            );
        }
    }

    /// The ISA instruction encoding round-trips arbitrary well-formed
    /// instructions (fuzzing the bit layout).
    #[test]
    fn isa_encoding_roundtrips(
        op_idx in 0usize..9, d in 0u8..16, a in 0u8..16, b in 0u8..16, c in 0u8..16,
        addr in any::<u32>(), ld in 16u32..(1 << 23)
    ) {
        use simd2_repro::isa::{Dtype, Instruction, MatrixReg};
        let instrs = [
            Instruction::Mmo {
                op: ALL_OPS[op_idx],
                d: MatrixReg::new(d),
                a: MatrixReg::new(a),
                b: MatrixReg::new(b),
                c: MatrixReg::new(c),
            },
            Instruction::Load { dst: MatrixReg::new(d), dtype: Dtype::Fp16, addr, ld },
            Instruction::Store { src: MatrixReg::new(a), addr, ld },
        ];
        for i in instrs {
            prop_assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
            // The assembly text form round-trips too.
            let text = i.to_string();
            let parsed = simd2_repro::isa::asm::parse(&text).unwrap();
            prop_assert_eq!(parsed[0], i);
        }
    }
}
