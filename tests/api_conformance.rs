//! API-guideline conformance checks (Rust API Guidelines): common traits,
//! thread-safety markers, and error-type behaviour that downstream users
//! rely on.

use std::error::Error;

use simd2_repro::core::solve::ClosureAlgorithm;
use simd2_repro::isa;
use simd2_repro::matrix::{Graph, Matrix, Tile};
use simd2_repro::semiring::OpKind;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

#[test]
fn core_types_are_send_and_sync() {
    // C-SEND-SYNC: everything a user would share across threads.
    assert_send_sync::<Matrix>();
    assert_send_sync::<Tile<16>>();
    assert_send_sync::<Graph>();
    assert_send_sync::<OpKind>();
    assert_send_sync::<isa::Instruction>();
    assert_send_sync::<isa::Executor>();
    assert_send_sync::<simd2_repro::mxu::Simd2Unit>();
    assert_send_sync::<simd2_repro::gpu::Gpu>();
    assert_send_sync::<simd2_repro::sparse::Csr>();
    assert_send_sync::<simd2_repro::core::TiledBackend>();
    assert_send_sync::<simd2_repro::apps::AppKind>();
}

#[test]
fn error_types_are_well_behaved() {
    // C-GOOD-ERR: Error + Send + Sync + 'static, lowercase messages.
    fn assert_error<T: Error + Send + Sync + 'static>() {}
    assert_error::<simd2_repro::matrix::ShapeError>();
    assert_error::<isa::ExecError>();
    assert_error::<isa::DecodeError>();
    assert_error::<isa::ImageError>();
    assert_error::<simd2_repro::semiring::ParseOpKindError>();
    assert_error::<simd2_repro::mxu::UnsupportedOpError>();

    let e = "mul-div".parse::<OpKind>().unwrap_err();
    let msg = e.to_string();
    assert!(!msg.is_empty());
    assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
    // Boxable into the common error-handling shape.
    let _boxed: Box<dyn Error + Send + Sync> = Box::new(e);
}

#[test]
fn common_types_implement_the_usual_traits() {
    assert_clone_debug::<Matrix>();
    assert_clone_debug::<Graph>();
    assert_clone_debug::<Tile<4>>();
    assert_clone_debug::<isa::ExecStats>();
    assert_clone_debug::<simd2_repro::gpu::GpuConfig>();
    assert_clone_debug::<ClosureAlgorithm>();
    // Default where a no-argument constructor makes sense.
    assert_eq!(Tile::<4>::default(), Tile::<4>::splat(0.0));
    let _ = simd2_repro::mxu::Simd2Unit::default();
    let _ = simd2_repro::gpu::Gpu::default();
    let _ = simd2_repro::core::TiledBackend::default();
}

#[test]
fn debug_representations_are_never_empty() {
    // C-DEBUG-NONEMPTY.
    assert!(!format!("{:?}", Matrix::zeros(0, 0)).is_empty());
    assert!(!format!("{:?}", Graph::new(0)).is_empty());
    assert!(!format!("{:?}", OpKind::MinPlus).is_empty());
    assert!(!format!("{:?}", isa::ExecStats::default()).is_empty());
}

#[test]
fn conversions_follow_naming_conventions() {
    // as_/to_/into_ tri-split on Matrix (C-CONV).
    let m = Matrix::filled(2, 2, 1.0);
    let _view: &[f32] = m.as_slice(); // free, borrowed
    let t = m.transposed(); // expensive, new value
    let _owned: Vec<f32> = t.into_vec(); // consuming, free
                                         // Tile conversions live on the more specific type (C-CONV-SPECIFIC).
    let tile = Tile::<4>::splat(2.0);
    let as_matrix = tile.to_matrix();
    assert_eq!(Tile::<4>::try_from_matrix(&as_matrix).unwrap(), tile);
}

#[test]
fn serde_round_trips_the_data_structures() {
    // C-SERDE on the plain data types (via the JSON-ish serde test
    // double: serde's derives are exercised through bincode-free
    // serialization into serde_json-like tokens isn't available, so use
    // the `serde` "value" of a round-trip through the `Debug`-stable
    // generators instead: here we just assert the traits exist).
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<Matrix>();
    assert_serde::<Graph>();
    assert_serde::<OpKind>();
    assert_serde::<simd2_repro::gpu::GpuConfig>();
    assert_serde::<simd2_repro::gpu::Seconds>();
}

#[test]
fn iterators_are_usable_in_for_loops() {
    let g = {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g
    };
    let mut total = 0.0;
    for (_, _, w) in g.edges() {
        total += w;
    }
    assert_eq!(total, 3.0);
    let t = Tile::<4>::splat(1.0);
    assert_eq!(t.iter().count(), 16);
}
