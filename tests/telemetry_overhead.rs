//! Overhead guard: with a [`NullSink`] the telemetry layer must add
//! **zero** heap allocations to a tiled mmo relative to a disabled
//! tracer. Event fields are borrowed stack slices and the process-global
//! counters register themselves exactly once, so after a warmup pass
//! the armed-but-null path and the disabled path must allocate
//! identically.
//!
//! This lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`, and the measurement phases must not
//! share the process with concurrently allocating tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simd2_repro::core::backend::{Backend, TiledBackend};
use simd2_repro::matrix::{gen, Matrix};
use simd2_repro::semiring::OpKind;
use simd2_repro::trace::{NullSink, RingSink, Sink, Tracer};

/// Counts allocation *events* (alloc/realloc/alloc_zeroed) on top of
/// the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

/// The whole guard runs as one test so no other test in this binary
/// can allocate concurrently with a measurement phase.
#[test]
fn null_sink_adds_zero_allocations_to_a_tiled_mmo() {
    let op = OpKind::MinPlus;
    let a = gen::random_operands_for(op, 64, 64, 7);
    let b = gen::random_operands_for(op, 64, 64, 8);
    let c = Matrix::filled(64, 64, op.reduce_identity_f32());

    // Sequential schedule: worker threads would allocate stacks and
    // drown the signal. All backends are built before measuring.
    let mut off_be = TiledBackend::new();
    let mut null_be = TiledBackend::new().with_tracer(Tracer::to(Arc::new(NullSink)));
    let ring = RingSink::shared();
    let mut ring_be = TiledBackend::new().with_tracer(Tracer::to(ring.clone() as Arc<dyn Sink>));

    // Warmup: pays every one-time cost on both paths — lazily grown
    // scratch, and (on the traced path) the global counters' one-shot
    // registry insertion, which *does* allocate exactly once per
    // counter.
    off_be.mmo(op, &a, &b, &c).expect("warmup off");
    null_be.mmo(op, &a, &b, &c).expect("warmup null");

    let off = allocs_during(|| {
        off_be.mmo(op, &a, &b, &c).expect("off mmo");
    });
    let null = allocs_during(|| {
        null_be.mmo(op, &a, &b, &c).expect("null mmo");
    });
    assert!(off > 0, "a tiled mmo allocates its output matrix");
    assert_eq!(
        null, off,
        "NullSink telemetry must add zero allocations to the mmo path"
    );

    // Sanity check on the measurement itself: a buffering sink *does*
    // allocate (it stores owned events), so the meter can tell the
    // difference.
    ring_be.mmo(op, &a, &b, &c).expect("warmup ring");
    let buffered = allocs_during(|| {
        ring_be.mmo(op, &a, &b, &c).expect("ring mmo");
    });
    assert!(
        buffered > off,
        "RingSink should allocate per event (got {buffered} vs baseline {off})"
    );
}
