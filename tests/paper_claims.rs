//! The paper's headline claims, asserted against the reproduction.
//!
//! Each test cites the claim it checks. Absolute testbed numbers cannot be
//! expected to match an analytical model exactly; these assertions pin the
//! *shape*: who wins, by roughly what factor, where crossovers fall.

use simd2_repro::apps::timing::{AppTiming, Config};
use simd2_repro::apps::AppKind;
use simd2_repro::core::micro::MicroBench;
use simd2_repro::gpu::{geomean, Gpu};
use simd2_repro::matrix::gen::InputScale;
use simd2_repro::mxu::{AreaModel, DieModel, PowerModel};
use simd2_repro::semiring::{OpKind, ALL_OPS, EXTENDED_OPS};
use simd2_repro::sparse::model as sparse_model;

/// Abstract: "SIMD² provides up to 38.59× speedup and more than 10.63× on
/// average over optimized CUDA programs."
#[test]
fn abstract_headline_speedups() {
    let model = AppTiming::new(Gpu::default());
    let mut all = Vec::new();
    let mut peak = 0.0f64;
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let s = model.speedup(app, app.dimension(scale), Config::Simd2Units);
            peak = peak.max(s);
            all.push(s);
        }
    }
    // Peak: same order as 38.59×.
    assert!((25.0..=55.0).contains(&peak), "peak {peak}");
    // Average: the paper quotes ≥10.63×; our calibration lands in the
    // high single digits — same order, recorded in EXPERIMENTS.md.
    let g = geomean(&all);
    assert!((6.0..=16.0).contains(&g), "gmean {g}");
}

/// Abstract/§6.1: "SIMD² MXU adds 69% area overhead … 5% of the total
/// chip area", and the combined design beats dedicated accelerators by
/// more than 4×.
#[test]
fn area_claims() {
    let full = AreaModel::combined(&EXTENDED_OPS).relative_area();
    assert!((full - 1.69).abs() < 0.01, "{full}");
    let die = DieModel::rtx3080();
    assert!((die.die_overhead_fraction() - 0.05).abs() < 0.005);
    assert!((die.sm_overhead_fraction() - 0.10).abs() < 0.01);
    assert!(AreaModel::standalone_total() / (full - 1.0) > 4.0);
}

/// §6.1: "The baseline MMA unit consumes 3.74 W … extending [it] as a
/// SIMD² unit only adds 0.79 W."
#[test]
fn power_claims() {
    assert_eq!(PowerModel::MMA_WATTS, 3.74);
    let full = PowerModel::combined_watts(&EXTENDED_OPS);
    assert!((full - (3.74 + 0.79)).abs() < 1e-9);
}

/// §6.2: "up to 15.8× speedup … geometric mean … 8.7×–10.6× … saturates
/// at about 10× [beyond] 4096×4096", largest for min-max/max-min/or-and,
/// lowest (≈3.1×) for plus-mul.
#[test]
fn microbenchmark_claims() {
    let gpu = Gpu::default();
    let speed = |op, n| MicroBench::square(op, n).time(&gpu).speedup();
    // Port-hazard trio peaks near 15.8×, never beyond.
    for op in [OpKind::MinMax, OpKind::MaxMin, OpKind::OrAnd] {
        let s = speed(op, 16384);
        assert!((13.0..=15.8).contains(&s), "{op}: {s}");
    }
    // FMA keeps plus-mul near 3.1×.
    let pm = speed(OpKind::PlusMul, 16384);
    assert!((2.8..=3.4).contains(&pm), "{pm}");
    // GMEAN band and saturation.
    let gm = |n| geomean(&ALL_OPS.map(|op| speed(op, n)));
    assert!((8.0..=10.8).contains(&gm(1024)));
    assert!((9.0..=10.8).contains(&gm(16384)));
    let g4 = gm(4096);
    let g16 = gm(16384);
    assert!(g16 / g4 < 1.06, "saturated beyond 4096: {g4} -> {g16}");
}

/// §6.3: the two baseline classes — apps whose matrix form only pays off
/// *with* SIMD² units vs apps that win even on CUDA cores — split exactly
/// as reported, and KNN's CUDA-core gain stays ≤ 6.55×.
#[test]
fn application_split_claims() {
    let model = AppTiming::new(Gpu::default());
    let losers = [
        AppKind::Apsp,
        AppKind::Aplp,
        AppKind::Mst,
        AppKind::MaxRp,
        AppKind::MinRp,
    ];
    let winners = [AppKind::Mcp, AppKind::Gtc, AppKind::Knn];
    for app in losers {
        let s = model.speedup(
            app,
            app.dimension(InputScale::Small),
            Config::Simd2CudaCores,
        );
        assert!(s < 1.05, "{app:?}: {s}");
    }
    for app in winners {
        let s = model.speedup(
            app,
            app.dimension(InputScale::Small),
            Config::Simd2CudaCores,
        );
        assert!(s > 1.0, "{app:?}: {s}");
        let u = model.speedup(app, app.dimension(InputScale::Small), Config::Simd2Units);
        assert!(u > s, "{app:?}: units must beat CUDA cores");
    }
    for scale in InputScale::all() {
        let s = model.speedup(
            AppKind::Knn,
            AppKind::Knn.dimension(scale),
            Config::Simd2CudaCores,
        );
        assert!(s <= 6.55, "{scale:?}: {s}");
    }
}

/// §6.3: "performance of APLP and MST using SIMD² degrades when datasets
/// become larger"; the other apps stay strong.
#[test]
fn degradation_claims() {
    let model = AppTiming::new(Gpu::default());
    for app in [AppKind::Aplp, AppKind::Mst] {
        let s = model.speedup(app, app.dimension(InputScale::Small), Config::Simd2Units);
        let l = model.speedup(app, app.dimension(InputScale::Large), Config::Simd2Units);
        assert!(l < s, "{app:?} should degrade: {s} -> {l}");
    }
    // "The performance gain … in 7 out of the 8 applications remains
    // strong even when dataset sizes increased": everyone but MST stays
    // above 3× at Large.
    for app in AppKind::all() {
        if app == AppKind::Mst {
            continue;
        }
        let l = model.speedup(app, app.dimension(InputScale::Large), Config::Simd2Units);
        assert!(l > 3.0, "{app:?}: {l}");
    }
}

/// §6.5 Fig 13: sparse SIMD² units are 1.60–2.05× over dense SIMD² and
/// improve on the baseline by larger factors (paper: 21.13–24.82× mean,
/// ≤ 68.33× peak).
#[test]
fn sparse_unit_claims() {
    let model = AppTiming::new(Gpu::default());
    let mut peak = 0.0f64;
    for app in AppKind::all() {
        let n = app.dimension(InputScale::Medium);
        let dense = model.speedup(app, n, Config::Simd2Units);
        let sparse = model.speedup(app, n, Config::Simd2SparseUnits);
        let ratio = sparse / dense;
        assert!((1.2..=2.05).contains(&ratio), "{app:?}: {ratio}");
        peak = peak.max(sparse);
    }
    assert!((50.0..=90.0).contains(&peak), "sparse peak {peak}");
}

/// §6.5 Fig 14: cuSPARSE never wins at 1024; wins beyond ~99% sparsity at
/// 4096; OOMs below ~90% sparsity at 16384; a 32768² dense multiplication
/// still fits in 10 GB.
#[test]
fn sparse_crossover_claims() {
    let gpu = Gpu::default();
    for s in sparse_model::fig14_sparsities() {
        assert!(
            sparse_model::crossover_point(&gpu, 1024, s)
                .speedup()
                .unwrap()
                < 1.0
        );
    }
    assert!(
        sparse_model::crossover_point(&gpu, 4096, 0.98)
            .speedup()
            .unwrap()
            < 1.0
    );
    assert!(
        sparse_model::crossover_point(&gpu, 4096, 0.995)
            .speedup()
            .unwrap()
            > 1.0
    );
    assert!(sparse_model::crossover_point(&gpu, 16384, 0.80)
        .spgemm_seconds
        .is_none());
    assert!(sparse_model::crossover_point(&gpu, 16384, 0.90)
        .spgemm_seconds
        .is_some());
    let fp16_gemm_bytes = 2.0 * 32768.0f64 * 32768.0 * 2.0 + 32768.0f64 * 32768.0 * 4.0;
    assert!(gpu.config().fits_in_memory(fp16_gemm_bytes as u64));
}

/// §3.2/§6.1: every SIMD² arithmetic instruction has the same latency as
/// MMA, and the unit never stretches the critical path.
#[test]
fn latency_parity_claim() {
    use simd2_repro::mxu::timing::UnitTiming;
    let t = UnitTiming::simd2_4x4();
    for op in ALL_OPS {
        assert_eq!(t.op_latency(op), t.op_latency(OpKind::PlusMul));
    }
    assert_eq!(UnitTiming::simd2_4x4(), UnitTiming::mma_4x4());
}

/// §6.5 (future work): extending a GAMMA sparse accelerator costs far
/// less than extending a dense MXU, because only ~10% of a GAMMA PE is
/// MAC logic.
#[test]
fn gamma_extension_claim() {
    let pe = simd2_repro::sparse::gamma::simd2_gamma_pe_area();
    let dense_overhead = AreaModel::combined(&EXTENDED_OPS).relative_area() - 1.0;
    assert!(
        pe - 1.0 < dense_overhead / 5.0,
        "PE overhead {} vs dense {dense_overhead}",
        pe - 1.0
    );
}
