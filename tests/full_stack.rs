//! Cross-crate integration: the full stack from workload generation
//! through the ISA executor, checked against the independent baselines.

use simd2_repro::apps::{aplp, apsp, gtc, mst, paths};
use simd2_repro::core::backend::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
use simd2_repro::core::highlevel;
use simd2_repro::core::solve::{closure, ClosureAlgorithm};
use simd2_repro::matrix::{gen, reference, Matrix};
use simd2_repro::semiring::{OpKind, ALL_OPS};

/// The deepest path — assembler-level instruction streams — solves APSP
/// identically to the scalar blocked Floyd–Warshall baseline.
#[test]
fn apsp_through_the_isa_executor_matches_the_baseline() {
    let g = apsp::generate(40, 77);
    let want = apsp::baseline(&g);
    let mut be = IsaBackend::new();
    let got = apsp::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
    assert_eq!(got.closure, want);
    // The executor really ran min-plus mmo instructions.
    assert!(be.exec_stats().mmos[&OpKind::MinPlus] > 0);
    assert_eq!(be.exec_stats().fills, 0, "C tiles are loaded, not filled");
}

/// All three backends agree on every operation for ragged shapes.
#[test]
fn three_backends_agree_on_all_nine_ops() {
    for op in ALL_OPS {
        let mut a = gen::random_operands_for(op, 21, 19, 5);
        let mut b = gen::random_operands_for(op, 19, 23, 6);
        // fp16-exact inputs make reference and fp16 backends comparable.
        simd2_repro::semiring::precision::quantize_f16_slice(a.as_mut_slice());
        simd2_repro::semiring::precision::quantize_f16_slice(b.as_mut_slice());
        let c = Matrix::filled(21, 23, op.reduce_identity_f32());
        let reference_out = ReferenceBackend::new().mmo(op, &a, &b, &c).unwrap();
        let tiled_out = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
        let isa_out = IsaBackend::new().mmo(op, &a, &b, &c).unwrap();
        assert_eq!(
            tiled_out, isa_out,
            "{op}: tiled vs ISA must be bit-identical"
        );
        let tol = match op {
            OpKind::PlusMul | OpKind::PlusNorm => 1e-3,
            _ => 0.0,
        };
        let diff = reference_out.max_abs_diff(&tiled_out).unwrap();
        assert!(diff <= tol, "{op}: {diff}");
    }
}

/// Every closure application agrees between its independent baseline
/// algorithm and the matrix solver, end to end.
#[test]
fn every_application_validates_end_to_end() {
    let n = 64;
    let mut be = TiledBackend::new();

    let g = apsp::generate(n, 1);
    assert_eq!(
        apsp::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure,
        apsp::baseline(&g)
    );

    let g = aplp::generate(n, 2);
    assert_eq!(
        aplp::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure,
        aplp::baseline(&g)
    );

    let g = paths::generate_mcp(n, 3);
    assert_eq!(
        paths::simd2(
            &mut be,
            OpKind::MaxMin,
            &g,
            ClosureAlgorithm::Leyzorek,
            true
        )
        .closure,
        paths::baseline(OpKind::MaxMin, &g)
    );

    let g = gtc::generate(n, 4);
    assert_eq!(
        gtc::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure,
        gtc::baseline(&g)
    );

    let g = mst::generate(n, 0.1, 5);
    let (tree, _) = mst::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
    assert_eq!(tree, mst::baseline(&g));
}

/// The high-level API (Figure 6 style) composes with the solver layer:
/// manually iterating `simd2_minplus` reaches the same fixed point.
#[test]
fn manual_highlevel_iteration_matches_the_solver() {
    let g = gen::connected_gnp_graph(30, 0.15, 1.0, 9.0, 9);
    let adj = g.adjacency(OpKind::MinPlus);
    // Hand-rolled Figure-7 loop over the high-level API.
    let mut dist = adj.clone();
    loop {
        let next = highlevel::simd2_minplus(&dist, &adj, &dist).unwrap();
        if next == dist {
            break;
        }
        dist = next;
    }
    let mut be = TiledBackend::new();
    let solver = closure(
        &mut be,
        OpKind::MinPlus,
        &adj,
        ClosureAlgorithm::BellmanFord,
        true,
    )
    .unwrap();
    assert_eq!(dist, solver.closure);
}

/// Sparse and dense substrates agree: spGEMM-based closure equals the
/// dense matrix closure.
#[test]
fn sparse_closure_matches_dense_closure() {
    use simd2_repro::sparse::gamma::sparse_closure;
    let g = gen::connected_gnp_graph(32, 0.1, 1.0, 9.0, 13);
    let adj = g.adjacency(OpKind::MinPlus);
    let (sparse, _) = sparse_closure(OpKind::MinPlus, &adj, 64);
    let mut be = ReferenceBackend::new();
    let dense = closure(
        &mut be,
        OpKind::MinPlus,
        &adj,
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap();
    assert_eq!(sparse, dense.closure);
}

/// The reference mmo distributes over k-dimension splits — the algebraic
/// fact that makes tiling legal, demonstrated at the whole-matrix level.
#[test]
fn k_split_accumulation_matches_single_pass() {
    for op in [
        OpKind::MinPlus,
        OpKind::MaxMin,
        OpKind::OrAnd,
        OpKind::MinMax,
    ] {
        let a = gen::random_operands_for(op, 12, 32, 21);
        let b = gen::random_operands_for(op, 32, 12, 22);
        let c = Matrix::filled(12, 12, op.reduce_identity_f32());
        let whole = reference::mmo(op, &a, &b, &c).unwrap();
        // Split k = 32 into two halves and accumulate.
        let a1 = Matrix::from_fn(12, 16, |r, cc| a[(r, cc)]);
        let a2 = Matrix::from_fn(12, 16, |r, cc| a[(r, cc + 16)]);
        let b1 = Matrix::from_fn(16, 12, |r, cc| b[(r, cc)]);
        let b2 = Matrix::from_fn(16, 12, |r, cc| b[(r + 16, cc)]);
        let partial = reference::mmo(op, &a1, &b1, &c).unwrap();
        let split = reference::mmo(op, &a2, &b2, &partial).unwrap();
        assert_eq!(whole, split, "{op}");
    }
}
