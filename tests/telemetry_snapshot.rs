//! Golden-snapshot lock on the telemetry stream.
//!
//! Captures a fixed, fully deterministic scenario — a seeded 64×64
//! tropical-semiring mmo through the sequential [`TiledBackend`], a
//! faulty run under resilient dispatch, and a capacity-starved fault
//! log that must surface `dropped` events — serializes every event via
//! [`RingSink::json_lines`], and compares the result byte-for-byte
//! against the checked-in snapshot.
//!
//! When the telemetry vocabulary changes *intentionally*, regenerate
//! with:
//!
//! ```text
//! SIMD2_BLESS=1 cargo test --test telemetry_snapshot
//! ```
//!
//! and review the snapshot diff like any other code change.

use std::path::PathBuf;
use std::sync::Arc;

use simd2_repro::core::backend::{Backend, TiledBackend};
use simd2_repro::core::resilient::{RecoveryPolicy, ResilientBackend};
use simd2_repro::fault::{
    AbftConfig, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector,
};
use simd2_repro::matrix::{gen, Matrix};
use simd2_repro::mxu::Simd2Unit;
use simd2_repro::semiring::simd::KernelIsa;
use simd2_repro::semiring::OpKind;
use simd2_repro::trace::{RingSink, Sink, Tracer};

const SEED: u64 = 2022;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/telemetry.snap")
}

fn operands(op: OpKind, n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let a = gen::random_operands_for(op, n, n, seed);
    let b = gen::random_operands_for(op, n, n, seed ^ 0x5eed);
    let c = Matrix::filled(n, n, op.reduce_identity_f32());
    (a, b, c)
}

/// Replays the scenario and returns the serialized event stream. Every
/// segment runs on the sequential schedule with the unit pinned to the
/// scalar kernel (the `isa` span field would otherwise vary by host;
/// the output bits would not), so the event order (not just the
/// totals) is a pure function of the seeds on any machine.
fn capture() -> String {
    let ring = RingSink::shared();
    let tracer = Tracer::to(ring.clone() as Arc<dyn Sink>);
    let op = OpKind::MinPlus;
    let unit = || Simd2Unit::new().with_kernel_isa(KernelIsa::Scalar);

    // Segment 1: clean 64×64 tropical mmo through the tiled backend —
    // one `mmo` span wrapping one full-grid `tile_panel` summary.
    let (a, b, c) = operands(op, 64, SEED);
    let mut clean = TiledBackend::with_unit(unit()).with_tracer(tracer.clone());
    clean.mmo(op, &a, &b, &c).expect("clean mmo");

    // Segment 2: a seeded faulty datapath under resilient dispatch —
    // `fault` instants for every strike interleaved with the inner
    // backend's spans, and `recovery` stage events mirroring the
    // detect/retry/fallback path the policy takes.
    let (a, b, c) = operands(op, 32, SEED ^ 0xf001);
    let plan = FaultPlan::new(
        FaultPlanConfig::new(SEED)
            .with_bit_flip_ppm(200_000)
            .with_transient_nan_ppm(100_000),
    );
    let mut inner = TiledBackend::with_unit(FaultySimd2Unit::new(
        unit(),
        PlannedInjector::new(plan).with_tracer(tracer.clone()),
    ));
    inner.set_tracer(tracer.clone());
    let mut resilient = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 2 },
        AbftConfig {
            witness_samples: usize::MAX,
            ..AbftConfig::default()
        },
    )
    .with_tracer(tracer.clone());
    resilient.mmo(op, &a, &b, &c).expect("resilient mmo");

    // Segment 3: a capacity-2 fault log under a striking-every-tile
    // plan — ring evictions must surface as `dropped` instants.
    let (a, b, c) = operands(op, 32, SEED ^ 0xd20b);
    let plan = FaultPlan::new(FaultPlanConfig::new(SEED ^ 1).with_bit_flip_ppm(1_000_000));
    let mut starved = TiledBackend::with_unit(FaultySimd2Unit::new(
        unit(),
        PlannedInjector::with_log_capacity(plan, 2).with_tracer(tracer.clone()),
    ));
    starved.set_tracer(tracer);
    starved.mmo(op, &a, &b, &c).expect("starved mmo");

    assert_eq!(ring.dropped(), 0, "snapshot ring must not overflow");
    ring.json_lines()
}

#[test]
fn telemetry_stream_matches_checked_in_snapshot() {
    let got = capture();
    assert!(
        got.lines().any(|l| l.contains("\"stage\":\"dropped\"")),
        "scenario must exercise the dropped-log path"
    );
    let path = snapshot_path();
    if std::env::var_os("SIMD2_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir snapshots");
        std::fs::write(&path, &got).expect("write snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with SIMD2_BLESS=1",
            path.display()
        )
    });
    if got != want {
        let first_diff = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "telemetry stream diverged from {} at line {} \
             (got {} lines, want {}); if the change is intentional, \
             regenerate with SIMD2_BLESS=1 and review the diff",
            path.display(),
            first_diff + 1,
            got.lines().count(),
            want.lines().count(),
        );
    }
}

/// The capture itself is deterministic run-to-run — the precondition
/// for snapshotting it at all.
#[test]
fn capture_is_deterministic() {
    assert_eq!(capture(), capture());
}
