//! Boundary and degenerate-input behaviour across the stack.

use simd2_repro::apps::{gtc, knn, mst};
use simd2_repro::core::backend::{Backend, ReferenceBackend, TiledBackend};
use simd2_repro::core::solve::{closure, ClosureAlgorithm};
use simd2_repro::isa;
use simd2_repro::matrix::{Graph, Matrix};
use simd2_repro::semiring::OpKind;
use simd2_repro::sparse::Csr;

#[test]
fn single_vertex_graph_closures() {
    let g = Graph::new(1);
    for op in [OpKind::MinPlus, OpKind::MaxMin, OpKind::OrAnd] {
        let adj = match op {
            OpKind::OrAnd => g.reachability(),
            _ => g.adjacency(op),
        };
        let mut be = ReferenceBackend::new();
        let r = closure(&mut be, op, &adj, ClosureAlgorithm::Leyzorek, true).unwrap();
        assert_eq!(r.closure, adj, "{op}: a single vertex is already closed");
        assert_eq!(r.stats.iterations, 1);
    }
}

#[test]
fn edgeless_graph_stays_disconnected() {
    let g = Graph::new(5);
    let adj = g.adjacency(OpKind::MinPlus);
    let mut be = TiledBackend::new();
    let r = closure(
        &mut be,
        OpKind::MinPlus,
        &adj,
        ClosureAlgorithm::BellmanFord,
        true,
    )
    .unwrap();
    for i in 0..5 {
        for j in 0..5 {
            let want = if i == j { 0.0 } else { f32::INFINITY };
            assert_eq!(r.closure[(i, j)], want);
        }
    }
    assert!(r.stats.converged_early, "fixed point after one iteration");
}

#[test]
fn one_by_one_matrix_operations() {
    for op in simd2_repro::semiring::ALL_OPS {
        let a = Matrix::filled(1, 1, 1.0);
        let c = Matrix::filled(1, 1, op.reduce_identity_f32());
        let d = TiledBackend::new().mmo(op, &a, &a, &c).unwrap();
        assert_eq!(d.shape(), (1, 1), "{op}");
        assert_eq!(
            d[(0, 0)],
            op.fma_f32(op.reduce_identity_f32(), 1.0, 1.0),
            "{op}"
        );
    }
}

#[test]
fn knn_with_k_larger_than_candidates_truncates() {
    let pts = knn::generate(3, 1);
    // Only 2 candidates exist per query (self excluded).
    let r = knn::baseline(&pts, 10);
    for q in 0..3 {
        assert_eq!(r.indices[q].len(), 2);
        assert!(!r.indices[q].contains(&q));
    }
}

#[test]
fn mst_of_a_tree_is_the_tree() {
    // p = 0 extras ⇒ the generator's spanning tree is the whole graph.
    let g = mst::generate(12, 0.0, 7);
    let m = mst::baseline(&g);
    assert_eq!(m.edges.len(), 11);
    let mut be = ReferenceBackend::new();
    let (got, _) = mst::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
    assert_eq!(got, m);
    let edge_weights: f64 = g
        .edges()
        .filter(|&(u, v, _)| u < v)
        .map(|e| f64::from(e.2))
        .sum();
    assert_eq!(m.total_weight, edge_weights);
}

#[test]
fn gtc_on_fully_disconnected_graph_is_identity() {
    let g = Graph::new(20);
    let r = gtc::baseline(&g);
    for i in 0..20 {
        for j in 0..20 {
            assert_eq!(r[(i, j)], if i == j { 1.0 } else { 0.0 });
        }
    }
    let mut be = ReferenceBackend::new();
    assert_eq!(
        gtc::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true).closure,
        r
    );
}

#[test]
fn empty_csr_behaves() {
    let m = Matrix::zeros(4, 4);
    let s = Csr::from_dense(&m, 0.0).unwrap();
    assert_eq!(s.nnz(), 0);
    assert_eq!(s.density(), 0.0);
    let p = s.spgemm(OpKind::PlusMul, &s);
    assert_eq!(p.nnz(), 0);
    assert_eq!(p.to_dense(0.0), m);
    assert_eq!(s.spgemm_products(&s), 0);
}

#[test]
fn executor_runs_empty_and_fill_only_programs() {
    let mut exec = isa::Executor::new(isa::SharedMemory::new(256));
    let stats = exec.run(&[]).unwrap();
    assert_eq!(stats.total_instructions(), 0);
    let prog = isa::asm::parse("simd2.fill %m0, 3.5").unwrap();
    let stats = exec.run(&prog).unwrap();
    assert_eq!(stats.fills, 1);
    assert!(exec.reg(0).iter().all(|(_, _, v)| v == 3.5));
}

#[test]
fn asm_accepts_empty_and_comment_only_sources() {
    assert_eq!(isa::asm::parse("").unwrap(), vec![]);
    assert_eq!(
        isa::asm::parse("// nothing here\n\n   // still nothing").unwrap(),
        vec![]
    );
    assert_eq!(isa::asm::print(&[]), "");
}

#[test]
fn program_image_of_empty_program() {
    let img = isa::to_image(&[]);
    assert_eq!(isa::from_image(&img).unwrap(), vec![]);
}

#[test]
fn negative_weight_max_plus_dag_closure() {
    // Max-plus tolerates negative weights on DAGs (no positive cycles).
    let mut g = Graph::new(3);
    g.add_edge(0, 1, -2.0);
    g.add_edge(1, 2, 5.0);
    g.add_edge(0, 2, 1.0);
    let adj = g.adjacency(OpKind::MaxPlus);
    let mut be = ReferenceBackend::new();
    let r = closure(
        &mut be,
        OpKind::MaxPlus,
        &adj,
        ClosureAlgorithm::BellmanFord,
        true,
    )
    .unwrap();
    assert_eq!(r.closure[(0, 2)], 3.0, "-2 + 5 beats the direct 1");
}

#[test]
fn zero_weight_edges_are_not_no_edges() {
    // A 0-weight edge is a real edge for min-plus (no_edge is +inf).
    let mut g = Graph::new(2);
    g.add_edge(0, 1, 0.0);
    let adj = g.adjacency(OpKind::MinPlus);
    assert_eq!(adj[(0, 1)], 0.0);
    let mut be = ReferenceBackend::new();
    let r = closure(
        &mut be,
        OpKind::MinPlus,
        &adj,
        ClosureAlgorithm::Leyzorek,
        true,
    )
    .unwrap();
    assert_eq!(r.closure[(0, 1)], 0.0);
    assert_eq!(r.closure[(1, 0)], f32::INFINITY);
}
