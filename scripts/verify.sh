#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Optional: throughput-bench smoke (adds a few seconds). Enable with
#   SIMD2_BENCH_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_BENCH_SMOKE:-0}" = "1" ]; then
  scripts/bench.sh
fi
