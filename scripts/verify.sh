#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Optional: throughput-bench smoke (adds a few seconds). Enable with
#   SIMD2_BENCH_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_BENCH_SMOKE:-0}" = "1" ]; then
  scripts/bench.sh
fi

# Optional: a short seeded slice of the randomized soak harness — checks
# parallel/sequential bit identity, exact op accounting, telemetry
# lock-step, and detection-or-benign under fault injection and worker
# panics. Enable with
#   SIMD2_SOAK_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_SOAK_SMOKE:-0}" = "1" ]; then
  cargo run --release -q -p simd2-bench --bin soak -- --seconds 5 --seed 2022
fi

# Optional: focused observability-layer checks — the simd2-trace unit
# suite, the golden telemetry snapshot, and the NullSink zero-allocation
# guard. Enable with
#   SIMD2_TRACE_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_TRACE_SMOKE:-0}" = "1" ]; then
  cargo test -q -p simd2-trace
  cargo test -q --test telemetry_snapshot --test telemetry_overhead
fi

# Optional: plan-IR smoke — records every Figure-11 app as a plan and
# replays it on the tiled (sequential + batched), reference, and ISA
# backends, cross-checking outputs and work counters. Enable with
#   SIMD2_PLAN_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_PLAN_SMOKE:-0}" = "1" ]; then
  cargo run --release -q -p simd2-bench --bin plan_smoke
fi

# Optional: SIMD kernel-dispatch smoke — runs the kernel bit-identity
# suites (semiring dispatch/lowering tests, mxu unit tests, and the
# SIMD==scalar proptests) twice: once on the host's detected vector
# tier, once with SIMD2_FORCE_SCALAR=1 pinning the portable kernel, so
# both dispatch legs stay green on every host. Enable with
#   SIMD2_SIMD_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_SIMD_SMOKE:-0}" = "1" ]; then
  cargo test -q -p simd2-semiring -p simd2-mxu
  SIMD2_FORCE_SCALAR=1 cargo test -q -p simd2-semiring -p simd2-mxu
fi

# Optional: serving-layer smoke — a short seeded slice of the
# multi-tenant serve soak: admission mirroring, WRR scheduling order,
# deadline expiry accounting, cache-hit bit identity, panic/fault
# isolation, and telemetry-vs-scheduler lock-step. Enable with
#   SIMD2_SERVE_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_SERVE_SMOKE:-0}" = "1" ]; then
  cargo run --release -q -p simd2-bench --bin serve_soak -- --seconds 5 --seed 2022
fi

# Optional: resilience smoke — checkpoint/resume bit-identity at every
# wave boundary (proptest), then a short seeded serve-soak slice whose
# chaos modes exercise suspend/resume accounting, circuit-breaker
# determinism, plan quarantine, and the degradation ladder — run on
# both kernel-dispatch legs (the host's detected vector tier and
# SIMD2_FORCE_SCALAR=1). Enable with
#   SIMD2_RESILIENCE_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_RESILIENCE_SMOKE:-0}" = "1" ]; then
  cargo test -q -p simd2 --test proptest_checkpoint
  cargo run --release -q -p simd2-bench --bin serve_soak -- --seconds 4 --seed 7
  SIMD2_FORCE_SCALAR=1 cargo run --release -q -p simd2-bench --bin serve_soak -- --seconds 4 --seed 7
fi

# Optional: sparse-execution smoke — the sparse crate's unit suite, the
# sparse-vs-dense replay + wave-boundary resume proptests, and the
# deterministic sparse serve-soak episode (streaming-update apps with
# CSR-declared deltas served over the sharded sparse backend) — run on
# both kernel-dispatch legs (the host's detected vector tier and
# SIMD2_FORCE_SCALAR=1). Enable with
#   SIMD2_SPARSE_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_SPARSE_SMOKE:-0}" = "1" ]; then
  cargo test -q -p simd2-sparse
  cargo test -q --test proptest_stack sparse_
  cargo run --release -q -p simd2-bench --bin serve_soak -- --sparse --seed 7
  SIMD2_FORCE_SCALAR=1 cargo test -q --test proptest_stack sparse_
  SIMD2_FORCE_SCALAR=1 cargo run --release -q -p simd2-bench --bin serve_soak -- --sparse --seed 7
fi

# Optional: pass-pipeline smoke — the pass-equivalence proptests (every
# pass and the full pipeline preserve replay bit-identity, checkpoints
# resume through optimized plans), the adversarial pass unit tests, and
# the eight-app differential with its snapshot-pinned optimization
# table — run on both kernel-dispatch legs (the host's detected vector
# tier and SIMD2_FORCE_SCALAR=1). Enable with
#   SIMD2_PASS_PIPELINE_SMOKE=1 scripts/verify.sh
if [ "${SIMD2_PASS_PIPELINE_SMOKE:-0}" = "1" ]; then
  cargo test -q -p simd2 --test proptest_passes --test passes_adversarial
  cargo test -q --test passes_differential
  SIMD2_FORCE_SCALAR=1 cargo test -q -p simd2 --test proptest_passes --test passes_adversarial
  SIMD2_FORCE_SCALAR=1 cargo test -q --test passes_differential
fi
