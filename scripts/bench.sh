#!/usr/bin/env bash
# Throughput-bench smoke: runs the engine throughput harness in --quick
# mode and checks that BENCH_throughput.json has the expected schema.
# Run from the repo root. A full (minutes-scale) sweep is:
#   cargo run --release -p simd2-bench --bin throughput
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p simd2-bench --bin throughput -- --quick

out=BENCH_throughput.json
[ -s "$out" ] || { echo "FAIL: $out missing or empty" >&2; exit 1; }

# Schema check without assuming jq/python: every key the downstream
# EXPERIMENTS.md table reads must be present.
for key in '"bench": "throughput"' '"quick"' '"tile"' '"entries"' \
           '"op"' '"n"' '"threads"' '"isa"' '"seconds"' \
           '"tile_mmos_per_s"' '"gbps"' '"speedup_vs_scalar"'; do
  grep -q -- "$key" "$out" || { echo "FAIL: $out lacks $key" >&2; exit 1; }
done

entries=$(grep -c '"op":' "$out")
[ "$entries" -ge 2 ] || { echo "FAIL: only $entries entries in $out" >&2; exit 1; }

echo "OK: $out schema valid ($entries entries)"
