//! Seeded synthetic workload generators.
//!
//! The paper evaluates on size-parameterised inputs (Table 4:
//! 4096/8192/16384 vertices or points). We do not have its datasets, so
//! every experiment draws from these deterministic generators instead; the
//! seed is part of each experiment's identity so runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simd2_semiring::OpKind;

use crate::{Graph, Matrix};

/// Uniform random matrix with entries in `[lo, hi)`.
pub fn random_matrix(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Random boolean matrix with the given density of ones.
pub fn random_bool_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(
        rows,
        cols,
        |_, _| if rng.gen_bool(density) { 1.0 } else { 0.0 },
    )
}

/// Random matrix where a fraction `sparsity` of entries is exactly zero
/// (the Fig 14 sweep input).
pub fn random_sparse_matrix(n: usize, sparsity: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |_, _| {
        if rng.gen_bool(sparsity) {
            0.0
        } else {
            rng.gen_range(0.1f32..1.0)
        }
    })
}

/// Iterates the selected slot indices of a Bernoulli(`p`) process over
/// `slots` positions in `O(selected)` time via geometric gap skipping.
fn bernoulli_slots(slots: u64, p: f64, rng: &mut StdRng) -> Vec<u64> {
    let mut out = Vec::new();
    if p <= 0.0 || slots == 0 {
        return out;
    }
    if p >= 1.0 {
        return (0..slots).collect();
    }
    let log1mp = (1.0 - p).ln();
    let mut cur: u64 = 0;
    loop {
        // Geometric gap: number of failures before the next success.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / log1mp).floor() as u64;
        cur = match cur.checked_add(gap) {
            Some(c) if c < slots => c,
            _ => break,
        };
        out.push(cur);
        cur += 1;
        if cur >= slots {
            break;
        }
    }
    out
}

/// Erdős–Rényi `G(n, p)` digraph with weights drawn from `[wlo, whi)`.
///
/// Weights are snapped to fp16-representable values so reduced-precision
/// runs of the min/max algebras stay bit-exact (cf.
/// [`simd2_semiring::precision`]). Runs in `O(edges)`, so paper-scale
/// (16384-vertex) workloads generate instantly.
pub fn gnp_graph(n: usize, p: f64, wlo: f32, whi: f32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for slot in bernoulli_slots((n * n) as u64, p, &mut rng) {
        let (s, d) = ((slot / n as u64) as usize, (slot % n as u64) as usize);
        if s != d {
            let w = simd2_semiring::precision::quantize_f16(rng.gen_range(wlo..whi));
            g.add_edge(s, d, w);
        }
    }
    g
}

/// `G(n, p)` digraph that is guaranteed strongly connected: a random
/// Hamiltonian cycle is added underneath the random edges. Keeps closure
/// iteration counts bounded and distances finite.
pub fn connected_gnp_graph(n: usize, p: f64, wlo: f32, whi: f32, seed: u64) -> Graph {
    let mut g = gnp_graph(n, p, wlo, whi, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates with the auxiliary rng.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for i in 0..n {
        let s = order[i];
        let d = order[(i + 1) % n];
        let w = simd2_semiring::precision::quantize_f16(rng.gen_range(wlo..whi));
        g.add_edge(s, d, w);
    }
    g
}

/// Random DAG: edges only go from lower to higher vertex index (topological
/// order is the identity). Used by the APLP (critical path) workload, where
/// longest path is only well-defined on acyclic graphs.
pub fn random_dag(n: usize, p: f64, wlo: f32, whi: f32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for slot in bernoulli_slots((n * n) as u64, p, &mut rng) {
        let (s, d) = ((slot / n as u64) as usize, (slot % n as u64) as usize);
        if s < d {
            let w = simd2_semiring::precision::quantize_f16(rng.gen_range(wlo..whi));
            g.add_edge(s, d, w);
        }
    }
    g
}

/// Random undirected connected graph (for MST): random spanning tree plus
/// extra `G(n, p)` edges, each added in both directions.
pub fn random_connected_undirected(n: usize, p: f64, wlo: f32, whi: f32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Random spanning tree: attach each vertex i>0 to a random earlier one.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        let w = simd2_semiring::precision::quantize_f16(rng.gen_range(wlo..whi));
        g.add_undirected_edge(u, v, w);
    }
    for slot in bernoulli_slots((n * n) as u64, p, &mut rng) {
        let (u, v) = ((slot / n as u64) as usize, (slot % n as u64) as usize);
        if u < v {
            let w = simd2_semiring::precision::quantize_f16(rng.gen_range(wlo..whi));
            g.add_undirected_edge(u, v, w);
        }
    }
    g
}

/// Reliability graph: connected digraph with edge weights in `(0.5, 1.0)`
/// interpreted as link success probabilities (MaxRP/MinRP workloads).
pub fn reliability_graph(n: usize, p: f64, seed: u64) -> Graph {
    let base = connected_gnp_graph(n, p, 0.0, 1.0, seed);
    base.map_weights(|w| {
        // Map into (0.5, 1.0) and snap to fp16 so products stay stable.
        simd2_semiring::precision::quantize_f16(0.5 + 0.5 * w.clamp(0.0, 0.999))
    })
}

/// `count` points in `dims`-dimensional space, uniform in `[0, 1)^dims`,
/// as a `count × dims` matrix (KNN workload).
pub fn point_cloud(count: usize, dims: usize, seed: u64) -> Matrix {
    random_matrix(count, dims, 0.0, 1.0, seed)
}

/// Lifts `op`-specific integer-friendly weights: graph whose weights are
/// small integers (1..=maxw), exactly representable in fp16 — used by the
/// bit-exactness validation tests.
pub fn integer_weight_graph(n: usize, p: f64, maxw: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for slot in bernoulli_slots((n * n) as u64, p, &mut rng) {
        let (s, d) = ((slot / n as u64) as usize, (slot % n as u64) as usize);
        if s != d {
            g.add_edge(s, d, rng.gen_range(1..=maxw) as f32);
        }
    }
    g
}

/// The input scale triplet used in Table 4 / Fig 11 (`small`, `medium`,
/// `large`), optionally scaled down by `shrink` for host-side functional
/// runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputScale {
    /// The paper's "Small" column.
    Small,
    /// The paper's "Medium" column.
    Medium,
    /// The paper's "Large" column.
    Large,
}

impl InputScale {
    /// All three scales in ascending order.
    pub fn all() -> [InputScale; 3] {
        [InputScale::Small, InputScale::Medium, InputScale::Large]
    }

    /// Label as printed in the figures.
    pub fn label(self) -> &'static str {
        match self {
            InputScale::Small => "small",
            InputScale::Medium => "medium",
            InputScale::Large => "large",
        }
    }

    /// Dimension for a base size `base` (the paper's Small value):
    /// Small = base, Medium = 2·base, Large = 4·base.
    pub fn dimension(self, base: usize) -> usize {
        match self {
            InputScale::Small => base,
            InputScale::Medium => base * 2,
            InputScale::Large => base * 4,
        }
    }
}

/// Fills a matrix's zero entries as needed to reach a target adjacency for
/// `op`: convenience used by microbenchmarks that need op-specific domains.
pub fn random_operands_for(op: OpKind, m: usize, n: usize, seed: u64) -> Matrix {
    match op {
        OpKind::OrAnd => random_bool_matrix(m, n, 0.5, seed),
        OpKind::MinMul | OpKind::MaxMul => random_matrix(m, n, 0.5, 1.0, seed),
        _ => random_matrix(m, n, 0.0, 1.0, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_matrix(4, 4, 0.0, 1.0, 7),
            random_matrix(4, 4, 0.0, 1.0, 7)
        );
        assert_ne!(
            random_matrix(4, 4, 0.0, 1.0, 7),
            random_matrix(4, 4, 0.0, 1.0, 8)
        );
        let a = gnp_graph(10, 0.3, 1.0, 5.0, 3);
        let b = gnp_graph(10, 0.3, 1.0, 5.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let g = gnp_graph(100, 0.2, 1.0, 2.0, 11);
        let d = g.density();
        assert!(d > 0.15 && d < 0.25, "density {d}");
    }

    #[test]
    fn connected_graph_has_cycle_backbone() {
        let g = connected_gnp_graph(20, 0.0, 1.0, 2.0, 5);
        // p = 0: only the Hamiltonian cycle remains → exactly n edges.
        assert_eq!(g.edge_count(), 20);
        // Every vertex has at least one outgoing edge.
        let nb = g.out_neighbors();
        assert!(nb.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn dag_edges_point_forward() {
        let g = random_dag(30, 0.3, 1.0, 4.0, 9);
        assert!(g.edges().all(|(s, d, _)| s < d));
    }

    #[test]
    fn undirected_graph_is_symmetric() {
        let g = random_connected_undirected(15, 0.2, 1.0, 9.0, 13);
        let adj = g.adjacency(simd2_semiring::OpKind::MinMax);
        for u in 0..15 {
            for v in 0..15 {
                assert_eq!(adj[(u, v)], adj[(v, u)], "({u},{v})");
            }
        }
        assert!(g.edge_count() >= 2 * 14, "at least the spanning tree");
    }

    #[test]
    fn reliability_weights_in_half_open_unit() {
        let g = reliability_graph(25, 0.3, 21);
        assert!(g.edges().all(|(_, _, w)| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn weights_are_f16_exact() {
        use simd2_semiring::precision::is_f16_exact;
        let g = connected_gnp_graph(12, 0.4, 0.0, 100.0, 17);
        assert!(g.edges().all(|(_, _, w)| is_f16_exact(w)));
        let r = reliability_graph(12, 0.4, 17);
        assert!(r.edges().all(|(_, _, w)| is_f16_exact(w)));
    }

    #[test]
    fn sparse_matrix_sparsity() {
        let m = random_sparse_matrix(64, 0.9, 23);
        let density = m.density(0.0);
        assert!(density > 0.05 && density < 0.15, "density {density}");
    }

    #[test]
    fn point_cloud_shape() {
        let pc = point_cloud(10, 3, 1);
        assert_eq!(pc.shape(), (10, 3));
        assert!(pc.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn input_scale_dimensions() {
        assert_eq!(InputScale::Small.dimension(4096), 4096);
        assert_eq!(InputScale::Medium.dimension(4096), 8192);
        assert_eq!(InputScale::Large.dimension(4096), 16384);
        assert_eq!(
            InputScale::all().map(|s| s.label()),
            ["small", "medium", "large"]
        );
    }

    #[test]
    fn op_specific_operands_stay_in_domain() {
        use simd2_semiring::ALL_OPS;
        for op in ALL_OPS {
            let m = random_operands_for(op, 8, 8, 31);
            match op {
                OpKind::OrAnd => {
                    assert!(m.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
                }
                OpKind::MinMul | OpKind::MaxMul => {
                    assert!(m.as_slice().iter().all(|&x| (0.5..1.0).contains(&x)));
                }
                _ => assert!(m.as_slice().iter().all(|&x| (0.0..1.0).contains(&x))),
            }
        }
    }

    #[test]
    fn integer_weight_graph_weights_are_integers() {
        let g = integer_weight_graph(10, 0.5, 16, 3);
        assert!(g
            .edges()
            .all(|(_, _, w)| w.fract() == 0.0 && (1.0..=16.0).contains(&w)));
    }
}
