//! Const-generic square tiles — the operand granularity of SIMD²
//! instructions.

use crate::{Matrix, ShapeError};

/// A square `N × N` tile of `f32` elements, row-major.
///
/// Tiles are the unit of work of a SIMD² instruction: `simd2.load` fills a
/// tile register from shared memory, `simd2.mmo` combines three tiles into
/// one, `simd2.store` writes a tile back. The ISA-visible shape is 16×16
/// ([`crate::ISA_TILE`]); the hardware model decomposes that into 4×4
/// ([`crate::UNIT_TILE`]) steps.
///
/// # Example
///
/// ```
/// use simd2_matrix::Tile;
///
/// let mut t = Tile::<4>::splat(0.0);
/// t.set(1, 2, 9.0);
/// assert_eq!(t.get(1, 2), 9.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tile<const N: usize> {
    data: [[f32; N]; N],
}

impl<const N: usize> Tile<N> {
    /// A tile with every element equal to `value`.
    pub fn splat(value: f32) -> Self {
        Self {
            data: [[value; N]; N],
        }
    }

    /// A tile built by evaluating `f(row, col)`.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut t = Self::splat(0.0);
        for r in 0..N {
            for c in 0..N {
                t.data[r][c] = f(r, c);
            }
        }
        t
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is `>= N`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row][col]
    }

    /// Writes `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is `>= N`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row][col] = value;
    }

    /// Side length `N`.
    #[inline]
    pub fn side(&self) -> usize {
        N
    }

    /// Flat row-major view of the tile's `N * N` elements — the layout
    /// the vectorized tile kernels load rows from.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        self.data.as_flattened()
    }

    /// Mutable flat row-major view of the tile's `N * N` elements.
    #[inline]
    pub fn as_flat_mut(&mut self) -> &mut [f32] {
        self.data.as_flattened_mut()
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..N).flat_map(move |r| (0..N).map(move |c| (r, c, self.data[r][c])))
    }

    /// Extracts the tile whose top-left corner is `(row0, col0)` in `m`.
    /// Elements outside `m` (when the tile hangs over the edge) are filled
    /// with `fill` — the tiling layer passes the `⊕` identity or the
    /// no-edge encoding so padding never perturbs results.
    pub fn load(m: &Matrix, row0: usize, col0: usize, fill: f32) -> Self {
        Self::from_fn(|r, c| m.get(row0 + r, col0 + c).unwrap_or(fill))
    }

    /// Writes the tile into `m` at `(row0, col0)`, clipping at the matrix
    /// boundary (the inverse of the padding applied by [`Tile::load`]).
    pub fn store(&self, m: &mut Matrix, row0: usize, col0: usize) {
        for r in 0..N {
            for c in 0..N {
                if row0 + r < m.rows() && col0 + c < m.cols() {
                    m[(row0 + r, col0 + c)] = self.data[r][c];
                }
            }
        }
    }

    /// Converts the tile to an `N × N` [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(N, N, |r, c| self.data[r][c])
    }

    /// Builds a tile from an `N × N` matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `m` is not `N × N`.
    pub fn try_from_matrix(m: &Matrix) -> Result<Self, ShapeError> {
        if m.shape() != (N, N) {
            return Err(ShapeError::new("tile source", (N, N), m.shape()));
        }
        Ok(Self::from_fn(|r, c| m[(r, c)]))
    }

    /// Largest absolute element difference to `other` (equal infinities
    /// count as zero).
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        let mut worst = 0.0f32;
        for r in 0..N {
            for c in 0..N {
                let (a, b) = (self.data[r][c], other.data[r][c]);
                if a != b {
                    worst = worst.max((a - b).abs());
                }
            }
        }
        worst
    }
}

impl<const N: usize> Default for Tile<N> {
    fn default() -> Self {
        Self::splat(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_from_fn() {
        let t = Tile::<3>::splat(2.5);
        assert!(t.iter().all(|(_, _, v)| v == 2.5));
        let u = Tile::<3>::from_fn(|r, c| (r * 3 + c) as f32);
        assert_eq!(u.get(2, 1), 7.0);
        assert_eq!(u.side(), 3);
    }

    #[test]
    fn load_with_padding() {
        let m = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f32);
        // Tile hangs over the right/bottom edges.
        let t = Tile::<4>::load(&m, 3, 3, -1.0);
        assert_eq!(t.get(0, 0), m[(3, 3)]);
        assert_eq!(t.get(1, 1), m[(4, 4)]);
        assert_eq!(t.get(2, 0), -1.0, "row 5 padded");
        assert_eq!(t.get(0, 2), -1.0, "col 5 padded");
    }

    #[test]
    fn store_clips_at_boundary() {
        let mut m = Matrix::zeros(5, 5);
        let t = Tile::<4>::splat(9.0);
        t.store(&mut m, 3, 3);
        assert_eq!(m[(4, 4)], 9.0);
        assert_eq!(m[(3, 3)], 9.0);
        // Nothing outside was touched (and no panic occurred).
        assert_eq!(m[(2, 2)], 0.0);
    }

    #[test]
    fn load_store_roundtrip_interior() {
        let m = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f32);
        let t = Tile::<4>::load(&m, 2, 2, f32::NAN);
        let mut out = Matrix::zeros(8, 8);
        t.store(&mut out, 2, 2);
        for r in 2..6 {
            for c in 2..6 {
                assert_eq!(out[(r, c)], m[(r, c)]);
            }
        }
    }

    #[test]
    fn flat_views_are_row_major() {
        let mut t = Tile::<3>::from_fn(|r, c| (r * 3 + c) as f32);
        assert_eq!(t.as_flat(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        t.as_flat_mut()[5] = 50.0;
        assert_eq!(t.get(1, 2), 50.0);
    }

    #[test]
    fn matrix_conversions() {
        let t = Tile::<4>::from_fn(|r, c| (r + c) as f32);
        let m = t.to_matrix();
        assert_eq!(Tile::<4>::try_from_matrix(&m).unwrap(), t);
        let wrong = Matrix::zeros(3, 4);
        assert!(Tile::<4>::try_from_matrix(&wrong).is_err());
    }

    #[test]
    fn diff_ignores_matching_infinities() {
        let mut a = Tile::<2>::splat(f32::INFINITY);
        let b = Tile::<2>::splat(f32::INFINITY);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        a.set(0, 0, 1.0);
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Tile::<4>::default(), Tile::<4>::splat(0.0));
    }
}
