//! Graphs and their adjacency-matrix lifting.
//!
//! The SIMD²-ized graph applications (APSP, MST, transitive closure, …)
//! operate on the graph's adjacency matrix under the appropriate algebra:
//! missing edges hold the *no-edge* encoding and the diagonal holds the
//! `⊗` identity (distance-to-self 0 for min-plus, reflexive `1` for
//! or-and, …).

use serde::{Deserialize, Serialize};
use simd2_semiring::OpKind;

use crate::Matrix;

/// A directed weighted graph stored as an edge list.
///
/// # Example
///
/// ```
/// use simd2_matrix::Graph;
/// use simd2_semiring::OpKind;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 4.0);
/// g.add_edge(1, 2, 3.0);
/// let adj = g.adjacency(OpKind::MinPlus);
/// assert_eq!(adj[(0, 1)], 4.0);
/// assert_eq!(adj[(0, 0)], 0.0);               // self distance
/// assert_eq!(adj[(0, 2)], f32::INFINITY);     // no direct edge
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    vertices: usize,
    edges: Vec<(usize, usize, f32)>,
}

impl Graph {
    /// Creates an edgeless graph with `vertices` vertices.
    pub fn new(vertices: usize) -> Self {
        Self {
            vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `src → dst` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: usize, dst: usize, weight: f32) {
        assert!(
            src < self.vertices && dst < self.vertices,
            "edge endpoint out of range"
        );
        self.edges.push((src, dst, weight));
    }

    /// Adds both `u → v` and `v → u` with the same weight.
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, weight: f32) {
        self.add_edge(u, v, weight);
        self.add_edge(v, u, weight);
    }

    /// Iterator over `(src, dst, weight)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.edges.iter().copied()
    }

    /// Density: edges / (V² − V) — the fill ratio off the diagonal.
    pub fn density(&self) -> f64 {
        let slots = self.vertices * self.vertices.saturating_sub(1);
        if slots == 0 {
            0.0
        } else {
            self.edges.len() as f64 / slots as f64
        }
    }

    /// Lifts the graph to its adjacency matrix under the algebra of `op`:
    /// missing edges get [`OpKind::no_edge_f32`], the diagonal gets
    /// [`OpKind::combine_identity_f32`], and parallel edges are resolved by
    /// `⊕` (the better edge wins).
    ///
    /// # Panics
    ///
    /// Panics when `op` is not a path algebra (no no-edge encoding), i.e.
    /// for [`OpKind::PlusNorm`].
    pub fn adjacency(&self, op: OpKind) -> Matrix {
        let no_edge = op
            .no_edge_f32()
            .unwrap_or_else(|| panic!("{op} is not a path algebra"));
        let diag = op.combine_identity_f32().unwrap_or(no_edge);
        let mut m = Matrix::filled(self.vertices, self.vertices, no_edge);
        for v in 0..self.vertices {
            m[(v, v)] = diag;
        }
        for &(s, d, w) in &self.edges {
            if s == d {
                continue; // self loops never improve a closure
            }
            let cur = m[(s, d)];
            m[(s, d)] = if cur == no_edge {
                w
            } else {
                op.reduce_f32(cur, w)
            };
        }
        m
    }

    /// Boolean reachability matrix (`1.0` where an edge exists, diagonal
    /// reflexive) — the or-and starting point used by transitive closure.
    pub fn reachability(&self) -> Matrix {
        self.adjacency(OpKind::OrAnd)
    }

    /// Builds a graph back from an adjacency matrix under `op` (entries
    /// equal to the no-edge encoding are skipped, the diagonal is skipped).
    ///
    /// # Panics
    ///
    /// Panics if `adj` is not square or `op` is not a path algebra.
    pub fn from_adjacency(op: OpKind, adj: &Matrix) -> Self {
        assert!(adj.is_square(), "adjacency matrix must be square");
        let no_edge = op
            .no_edge_f32()
            .unwrap_or_else(|| panic!("{op} is not a path algebra"));
        let n = adj.rows();
        let mut g = Graph::new(n);
        for s in 0..n {
            for d in 0..n {
                if s != d && adj[(s, d)] != no_edge {
                    g.add_edge(s, d, adj[(s, d)]);
                }
            }
        }
        g
    }

    /// The graph with every edge reversed (used to turn longest-path DAG
    /// problems into the max-plus recurrence, per the APLP setup).
    pub fn reversed(&self) -> Self {
        Self {
            vertices: self.vertices,
            edges: self.edges.iter().map(|&(s, d, w)| (d, s, w)).collect(),
        }
    }

    /// The graph with every weight transformed by `f` (e.g. negation).
    pub fn map_weights(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Self {
            vertices: self.vertices,
            edges: self.edges.iter().map(|&(s, d, w)| (s, d, f(w))).collect(),
        }
    }

    /// Out-neighbour list representation `adj[src] = [(dst, w), …]` used by
    /// the classic (non-matrix) baseline algorithms.
    pub fn out_neighbors(&self) -> Vec<Vec<(usize, f32)>> {
        let mut adj = vec![Vec::new(); self.vertices];
        for &(s, d, w) in &self.edges {
            adj[s].push((d, w));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(0, 2, 9.0);
        g
    }

    #[test]
    fn adjacency_min_plus() {
        let adj = triangle().adjacency(OpKind::MinPlus);
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(adj[(0, 2)], 9.0);
        assert_eq!(adj[(2, 0)], f32::INFINITY);
        for v in 0..3 {
            assert_eq!(adj[(v, v)], 0.0);
        }
    }

    #[test]
    fn adjacency_or_and_is_reflexive_boolean() {
        let adj = triangle().adjacency(OpKind::OrAnd);
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(adj[(1, 0)], 0.0);
        for v in 0..3 {
            assert_eq!(adj[(v, v)], 1.0);
        }
    }

    #[test]
    fn adjacency_max_min_capacity() {
        let adj = triangle().adjacency(OpKind::MaxMin);
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(
            adj[(2, 1)],
            f32::NEG_INFINITY,
            "missing edge has zero capacity"
        );
        assert_eq!(adj[(0, 0)], f32::INFINITY, "self capacity unbounded");
    }

    #[test]
    fn parallel_edges_resolved_by_reduce() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        assert_eq!(
            g.adjacency(OpKind::MinPlus)[(0, 1)],
            3.0,
            "shorter edge wins"
        );
        assert_eq!(
            g.adjacency(OpKind::MaxPlus)[(0, 1)],
            5.0,
            "longer edge wins"
        );
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 42.0);
        assert_eq!(g.adjacency(OpKind::MinPlus)[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "not a path algebra")]
    fn plus_norm_has_no_adjacency() {
        let _ = triangle().adjacency(OpKind::PlusNorm);
    }

    #[test]
    fn from_adjacency_roundtrip() {
        let g = triangle();
        let adj = g.adjacency(OpKind::MinPlus);
        let back = Graph::from_adjacency(OpKind::MinPlus, &adj);
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.edge_count(), 3);
        assert_eq!(back.adjacency(OpKind::MinPlus), adj);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = triangle().reversed();
        let adj = g.adjacency(OpKind::MinPlus);
        assert_eq!(adj[(1, 0)], 1.0);
        assert_eq!(adj[(0, 1)], f32::INFINITY);
    }

    #[test]
    fn map_weights_transforms() {
        let g = triangle().map_weights(|w| w * 2.0);
        assert_eq!(g.adjacency(OpKind::MinPlus)[(1, 2)], 4.0);
    }

    #[test]
    fn undirected_edges_and_neighbors() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 2, 1.5);
        assert_eq!(g.edge_count(), 2);
        let nb = g.out_neighbors();
        assert_eq!(nb[0], vec![(2, 1.5)]);
        assert_eq!(nb[2], vec![(0, 1.5)]);
        assert!(nb[1].is_empty());
    }

    #[test]
    fn density() {
        let g = triangle();
        assert!((g.density() - 0.5).abs() < 1e-12);
        assert_eq!(Graph::new(1).density(), 0.0);
        assert_eq!(Graph::new(0).density(), 0.0);
    }
}
