//! Golden-model implementations of `D = C ⊕ (A ⊗ B)`.
//!
//! These are deliberately naive triple loops (the code of paper Figure 1),
//! used as the correctness oracle for the tiled CPU backend, the functional
//! matrix unit, the ISA executor and the applications. Nothing here is
//! performance-tuned on purpose.

use simd2_semiring::{OpKind, Semiring};

use crate::{Matrix, ShapeError};

/// Checks operand shapes for an `m×k · k×n` matrix-matrix operation with an
/// `m×n` accumulator.
pub fn check_mmo_shapes(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<(), ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(
            "B (inner dimension)",
            (a.cols(), b.cols()),
            b.shape(),
        ));
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(ShapeError::new(
            "C (accumulator)",
            (a.rows(), b.cols()),
            c.shape(),
        ));
    }
    Ok(())
}

/// Reference `D = C ⊕ (A ⊗ B)` with dynamic operator dispatch.
///
/// The reduction over `k` is seeded with the `⊕` identity and folded in
/// ascending `k` order; `C` is reduced in last, matching the semantics of a
/// SIMD² instruction whose accumulator register was pre-loaded with `C`.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the operand shapes are incompatible.
pub fn mmo(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, ShapeError> {
    check_mmo_shapes(a, b, c)?;
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = op.reduce_identity_f32();
            for l in 0..k {
                acc = op.fma_f32(acc, a[(i, l)], b[(l, j)]);
            }
            d[(i, j)] = op.reduce_f32(c[(i, j)], acc);
        }
    }
    Ok(d)
}

/// Reference `D = C ⊕ (A ⊗ B)` monomorphised over a typed [`Semiring`].
///
/// # Errors
///
/// Returns a [`ShapeError`] when the operand shapes are incompatible.
pub fn mmo_typed<S: Semiring<Elem = f32>>(
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<Matrix, ShapeError> {
    check_mmo_shapes(a, b, c)?;
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut d = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc = S::reduce_identity();
            for (l, &av) in arow.iter().enumerate().take(k) {
                acc = S::fma(acc, av, b[(l, j)]);
            }
            d[(i, j)] = S::reduce(c[(i, j)], acc);
        }
    }
    Ok(d)
}

/// Element-wise `⊕` of two equal-shape matrices.
///
/// # Errors
///
/// Returns a [`ShapeError`] when the shapes differ.
pub fn ewise_reduce(op: OpKind, a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("ewise operand", a.shape(), b.shape()));
    }
    Ok(Matrix::from_fn(a.rows(), a.cols(), |r, c| {
        op.reduce_f32(a[(r, c)], b[(r, c)])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::{MinPlus, PlusMul, ALL_OPS};

    fn small() -> (Matrix, Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = Matrix::zeros(2, 2);
        (a, b, c)
    }

    #[test]
    fn gemm_matches_hand_computation() {
        let (a, b, c) = small();
        let d = mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn min_plus_matches_hand_computation() {
        let (a, b, _) = small();
        let c = Matrix::filled(2, 2, f32::INFINITY);
        let d = mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
        // d[0][0] = min(1+5, 2+7) = 6, d[0][1] = min(1+6, 2+8) = 7, ...
        assert_eq!(d, Matrix::from_rows(&[&[6.0, 7.0], &[8.0, 9.0]]));
    }

    #[test]
    fn accumulator_participates() {
        let (a, b, _) = small();
        let c = Matrix::filled(2, 2, 5.0);
        let d = mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
        assert_eq!(d, Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]));
        let d = mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d, Matrix::from_rows(&[&[24.0, 27.0], &[48.0, 55.0]]));
    }

    #[test]
    fn typed_and_dynamic_agree_on_all_ops() {
        let a = Matrix::from_fn(3, 4, |r, c| 0.25 + (r * 4 + c) as f32 * 0.125);
        let b = Matrix::from_fn(4, 2, |r, c| 0.1 + (r * 2 + c) as f32 * 0.05);
        let c = Matrix::from_fn(3, 2, |r, c| 0.2 * (r + c) as f32 + 0.3);
        for op in ALL_OPS {
            let dynamic = mmo(op, &a, &b, &c).unwrap();
            struct V<'m>(&'m Matrix, &'m Matrix, &'m Matrix);
            impl simd2_semiring::F32SemiringVisitor for V<'_> {
                type Output = Matrix;
                fn visit<S: Semiring<Elem = f32>>(self) -> Matrix {
                    mmo_typed::<S>(self.0, self.1, self.2).unwrap()
                }
            }
            let typed = simd2_semiring::visit_f32_semiring(op, V(&a, &b, &c));
            assert_eq!(dynamic, typed, "{op}");
        }
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_fn(2, 5, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 3, |r, c| (r * c) as f32);
        let c = Matrix::zeros(2, 3);
        let d = mmo_typed::<PlusMul>(&a, &b, &c).unwrap();
        assert_eq!(d.shape(), (2, 3));
        // Spot check d[1][2]: sum_l (1+l) * (2l) = 2*(0+2+6+12+20) ... compute:
        // l=0: 1*0=0, l=1: 2*2=4, l=2: 3*4=12, l=3: 4*6=24, l=4: 5*8=40 → 80
        assert_eq!(d[(1, 2)], 80.0);
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2); // inner mismatch
        let c = Matrix::zeros(2, 2);
        assert!(mmo(OpKind::PlusMul, &a, &b, &c).is_err());
        let b = Matrix::zeros(3, 2);
        let c_bad = Matrix::zeros(3, 2); // accumulator mismatch
        assert!(mmo(OpKind::PlusMul, &a, &b, &c_bad).is_err());
        assert!(mmo_typed::<MinPlus>(&a, &b, &c_bad).is_err());
    }

    #[test]
    fn ewise_reduce_works() {
        let a = Matrix::from_rows(&[&[1.0, 8.0]]);
        let b = Matrix::from_rows(&[&[4.0, 2.0]]);
        assert_eq!(
            ewise_reduce(OpKind::MinPlus, &a, &b).unwrap(),
            Matrix::from_rows(&[&[1.0, 2.0]])
        );
        assert_eq!(
            ewise_reduce(OpKind::PlusMul, &a, &b).unwrap(),
            Matrix::from_rows(&[&[5.0, 10.0]])
        );
        assert!(ewise_reduce(OpKind::MinPlus, &a, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn empty_inner_dimension_yields_identity_reduced_c() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let c = Matrix::filled(2, 2, 3.0);
        let d = mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
        assert_eq!(d, c, "k = 0 reduces only C");
    }
}
