//! Padding and tile-grid arithmetic.
//!
//! The high-level SIMD² API accepts arbitrary matrix shapes and implicitly
//! handles "tiling/partitioning of datasets" (paper §4). These helpers do
//! that partitioning: rounding shapes up to the tile size, iterating the
//! tile grid of an `M×N×K` operation, and loading/storing boundary tiles
//! with algebra-appropriate padding so that ragged edges never change
//! results.

use simd2_semiring::OpKind;

use crate::{Matrix, Tile};

/// Rounds `x` up to the next multiple of `tile` (`tile > 0`).
#[inline]
pub fn round_up(x: usize, tile: usize) -> usize {
    debug_assert!(tile > 0);
    x.div_ceil(tile) * tile
}

/// Number of tiles covering `x` elements.
#[inline]
pub fn tiles_for(x: usize, tile: usize) -> usize {
    x.div_ceil(tile)
}

/// Padding values that make out-of-range tile elements inert for a given
/// operation.
///
/// * `A`/`B` operand padding uses the *no-edge* (⊗-annihilating) encoding,
///   so padded lanes never win a reduction.
/// * `C`/`D` accumulator padding uses the `⊕` identity.
///
/// Plus-norm has no annihilator; its padding strategy is instead to pad
/// *both* operands with equal values so `(a−b)² = 0` contributes nothing to
/// the `+` reduction, which `operand` encodes as `0.0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PadValues {
    /// Fill value for `A` and `B` operand tiles.
    pub operand: f32,
    /// Fill value for `C`/`D` accumulator tiles.
    pub accumulator: f32,
}

/// Returns the padding scheme for `op` (see [`PadValues`]).
pub fn pad_values(op: OpKind) -> PadValues {
    PadValues {
        operand: op.no_edge_f32().unwrap_or(0.0),
        accumulator: op.reduce_identity_f32(),
    }
}

/// Geometry of a tiled `M×N×K` matrix-matrix operation.
///
/// # Example
///
/// ```
/// use simd2_matrix::tiling::TileGrid;
///
/// let g = TileGrid::new(40, 40, 40, 16);
/// assert_eq!((g.m_tiles, g.n_tiles, g.k_tiles), (3, 3, 3));
/// assert_eq!(g.tile_ops(), 27);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    /// Rows of the output, in elements.
    pub m: usize,
    /// Columns of the output, in elements.
    pub n: usize,
    /// Inner (reduction) dimension, in elements.
    pub k: usize,
    /// Tile side length.
    pub tile: usize,
    /// Tiles along `m`.
    pub m_tiles: usize,
    /// Tiles along `n`.
    pub n_tiles: usize,
    /// Tiles along `k`.
    pub k_tiles: usize,
}

impl TileGrid {
    /// Builds the grid for an `m×n` output with inner dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn new(m: usize, n: usize, k: usize, tile: usize) -> Self {
        assert!(tile > 0, "tile side must be positive");
        Self {
            m,
            n,
            k,
            tile,
            m_tiles: tiles_for(m, tile),
            n_tiles: tiles_for(n, tile),
            k_tiles: tiles_for(k, tile),
        }
    }

    /// Total number of tile-level `mmo` operations (`m_tiles × n_tiles ×
    /// k_tiles`) — the quantity the performance model charges for.
    pub fn tile_ops(&self) -> usize {
        self.m_tiles * self.n_tiles * self.k_tiles
    }

    /// Number of output tiles.
    pub fn output_tiles(&self) -> usize {
        self.m_tiles * self.n_tiles
    }

    /// Iterator over output tile coordinates `(ti, tj)` in row-major order.
    pub fn output_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n_tiles = self.n_tiles;
        (0..self.m_tiles).flat_map(move |ti| (0..n_tiles).map(move |tj| (ti, tj)))
    }

    /// Partitions the output tile rows into at most `parts` contiguous,
    /// balanced panels (each a `Range` of tile-row indices `ti`).
    ///
    /// Panels are the unit of worker parallelism: output tiles in
    /// different panels are disjoint, and a panel's element rows
    /// `ti·tile .. min(m, (ti_end)·tile)` form one contiguous row-major
    /// slab of the output matrix, so workers can own non-overlapping
    /// mutable slices. Earlier panels get the remainder tile rows, so
    /// sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn row_panels(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        assert!(parts > 0, "panel count must be positive");
        let parts = parts.min(self.m_tiles.max(1));
        let base = self.m_tiles / parts;
        let extra = self.m_tiles % parts;
        let mut panels = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            if len == 0 {
                break;
            }
            panels.push(start..start + len);
            start += len;
        }
        panels
    }

    /// Element rows `row0..row1` of the output covered by a panel of
    /// tile rows, clipped to the true (unpadded) matrix height.
    pub fn panel_rows(&self, panel: &std::ops::Range<usize>) -> std::ops::Range<usize> {
        (panel.start * self.tile).min(self.m)..(panel.end * self.tile).min(self.m)
    }
}

/// Loads the `A` operand tile at grid coordinate `(ti, tk)`.
pub fn load_a_tile<const T: usize>(op: OpKind, a: &Matrix, ti: usize, tk: usize) -> Tile<T> {
    Tile::load(a, ti * T, tk * T, pad_values(op).operand)
}

/// Loads the `B` operand tile at grid coordinate `(tk, tj)`.
pub fn load_b_tile<const T: usize>(op: OpKind, b: &Matrix, tk: usize, tj: usize) -> Tile<T> {
    Tile::load(b, tk * T, tj * T, pad_values(op).operand)
}

/// Loads the `C` accumulator tile at grid coordinate `(ti, tj)`.
pub fn load_c_tile<const T: usize>(op: OpKind, c: &Matrix, ti: usize, tj: usize) -> Tile<T> {
    Tile::load(c, ti * T, tj * T, pad_values(op).accumulator)
}

/// Stores an output tile back at grid coordinate `(ti, tj)`, clipping at
/// the true (unpadded) matrix boundary.
pub fn store_d_tile<const T: usize>(d: &mut Matrix, tile: &Tile<T>, ti: usize, tj: usize) {
    tile.store(d, ti * T, tj * T);
}

/// Stores an output tile into a *panel slab*: a contiguous row-major
/// slice covering element rows `row0..row0 + slab.len()/cols` of the
/// output matrix (see [`TileGrid::panel_rows`]). Clips at the slab's row
/// range and at the matrix column boundary, mirroring [`store_d_tile`].
///
/// # Panics
///
/// Panics if `cols == 0` while the slab is non-empty, or if `slab` is
/// not a whole number of rows.
pub fn store_d_tile_in_panel<const T: usize>(
    slab: &mut [f32],
    row0: usize,
    cols: usize,
    tile: &Tile<T>,
    ti: usize,
    tj: usize,
) {
    if slab.is_empty() {
        return;
    }
    assert!(
        cols > 0 && slab.len().is_multiple_of(cols),
        "slab must be whole rows"
    );
    let rows = slab.len() / cols;
    for r in 0..T {
        let gr = ti * T + r;
        if gr < row0 || gr >= row0 + rows {
            continue;
        }
        let row = &mut slab[(gr - row0) * cols..(gr - row0 + 1) * cols];
        for c in 0..T {
            let gc = tj * T + c;
            if gc < cols {
                row[gc] = tile.get(r, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn round_up_and_tiles_for() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
        assert_eq!(tiles_for(0, 16), 0);
        assert_eq!(tiles_for(33, 16), 3);
    }

    #[test]
    fn grid_geometry() {
        let g = TileGrid::new(100, 50, 70, 16);
        assert_eq!(g.m_tiles, 7);
        assert_eq!(g.n_tiles, 4);
        assert_eq!(g.k_tiles, 5);
        assert_eq!(g.tile_ops(), 140);
        assert_eq!(g.output_tiles(), 28);
        assert_eq!(g.output_coords().count(), 28);
        assert_eq!(g.output_coords().next(), Some((0, 0)));
        assert_eq!(g.output_coords().last(), Some((6, 3)));
    }

    #[test]
    #[should_panic(expected = "tile side")]
    fn zero_tile_panics() {
        let _ = TileGrid::new(4, 4, 4, 0);
    }

    #[test]
    fn pad_values_are_inert_per_algebra() {
        for op in ALL_OPS {
            let pv = pad_values(op);
            // A padded operand lane must never beat a real accumulator value.
            let acc = match op {
                simd2_semiring::OpKind::MinMul | simd2_semiring::OpKind::MaxMul => 0.5,
                simd2_semiring::OpKind::OrAnd => 1.0,
                _ => 3.0,
            };
            if op.no_edge_f32().is_some() {
                assert_eq!(op.fma_f32(acc, pv.operand, pv.operand), acc, "{op}");
            } else {
                // plus-norm: equal padding values combine to 0, reduce (+) keeps acc.
                assert_eq!(op.fma_f32(acc, pv.operand, pv.operand), acc, "{op}");
            }
            // The accumulator padding is the ⊕ identity.
            assert_eq!(pv.accumulator, op.reduce_identity_f32(), "{op}");
        }
    }

    #[test]
    fn boundary_tiles_are_padded() {
        use simd2_semiring::OpKind;
        let a = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f32 + 1.0);
        let t: Tile<4> = load_a_tile(OpKind::MinPlus, &a, 1, 1);
        // grid (1,1) starts at (4,4); only element (0,0) is in-range.
        assert_eq!(t.get(0, 0), a[(4, 4)]);
        assert_eq!(t.get(0, 1), f32::INFINITY);
        assert_eq!(t.get(3, 3), f32::INFINITY);
        let c: Tile<4> = load_c_tile(OpKind::MinPlus, &a, 1, 1);
        assert_eq!(c.get(3, 3), f32::INFINITY);
    }

    #[test]
    fn row_panels_cover_exactly_once_and_balance() {
        for m in [1usize, 15, 16, 17, 100, 160] {
            let g = TileGrid::new(m, 32, 32, 16);
            for parts in 1..=8usize {
                let panels = g.row_panels(parts);
                assert!(panels.len() <= parts);
                assert!(!panels.is_empty());
                // Contiguous, disjoint, complete cover of 0..m_tiles.
                let mut next = 0;
                for p in &panels {
                    assert_eq!(p.start, next, "m={m} parts={parts}");
                    assert!(p.end > p.start);
                    next = p.end;
                }
                assert_eq!(next, g.m_tiles);
                // Balanced to within one tile row.
                let lens: Vec<usize> = panels.iter().map(|p| p.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "m={m} parts={parts}: {lens:?}");
            }
        }
    }

    #[test]
    fn panel_rows_clip_to_matrix_height() {
        let g = TileGrid::new(20, 16, 16, 16); // 2 tile rows, 20 real rows
        let panels = g.row_panels(2);
        assert_eq!(g.panel_rows(&panels[0]), 0..16);
        assert_eq!(g.panel_rows(&panels[1]), 16..20);
    }

    #[test]
    #[should_panic(expected = "panel count")]
    fn zero_panels_panics() {
        let _ = TileGrid::new(16, 16, 16, 16).row_panels(0);
    }

    #[test]
    fn panel_store_matches_matrix_store() {
        // Storing through the slab path must write exactly the bytes the
        // whole-matrix path writes, including ragged edges.
        let (m, n) = (21, 19);
        let tile = Tile::<4>::from_fn(|r, c| (r * 4 + c) as f32 + 1.0);
        let g = TileGrid::new(m, n, 8, 4);
        for parts in [1usize, 2, 3] {
            let mut via_matrix = Matrix::zeros(m, n);
            let mut via_slabs = Matrix::zeros(m, n);
            for (ti, tj) in g.output_coords() {
                store_d_tile(&mut via_matrix, &tile, ti, tj);
            }
            for panel in g.row_panels(parts) {
                let rows = g.panel_rows(&panel);
                let slab_range = rows.start * n..rows.end * n;
                let slab = &mut via_slabs.as_mut_slice()[slab_range];
                for ti in panel.clone() {
                    for tj in 0..g.n_tiles {
                        store_d_tile_in_panel(slab, rows.start, n, &tile, ti, tj);
                    }
                }
            }
            assert_eq!(via_matrix, via_slabs, "parts={parts}");
        }
    }

    #[test]
    fn store_clips() {
        let mut d = Matrix::zeros(5, 5);
        let t = Tile::<4>::splat(2.0);
        store_d_tile(&mut d, &t, 1, 1);
        assert_eq!(d[(4, 4)], 2.0);
        assert_eq!(d.as_slice().iter().filter(|&&x| x == 2.0).count(), 1);
    }
}
