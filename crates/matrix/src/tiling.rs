//! Padding and tile-grid arithmetic.
//!
//! The high-level SIMD² API accepts arbitrary matrix shapes and implicitly
//! handles "tiling/partitioning of datasets" (paper §4). These helpers do
//! that partitioning: rounding shapes up to the tile size, iterating the
//! tile grid of an `M×N×K` operation, and loading/storing boundary tiles
//! with algebra-appropriate padding so that ragged edges never change
//! results.

use simd2_semiring::OpKind;

use crate::{Matrix, Tile};

/// Rounds `x` up to the next multiple of `tile` (`tile > 0`).
#[inline]
pub fn round_up(x: usize, tile: usize) -> usize {
    debug_assert!(tile > 0);
    x.div_ceil(tile) * tile
}

/// Number of tiles covering `x` elements.
#[inline]
pub fn tiles_for(x: usize, tile: usize) -> usize {
    x.div_ceil(tile)
}

/// Padding values that make out-of-range tile elements inert for a given
/// operation.
///
/// * `A`/`B` operand padding uses the *no-edge* (⊗-annihilating) encoding,
///   so padded lanes never win a reduction.
/// * `C`/`D` accumulator padding uses the `⊕` identity.
///
/// Plus-norm has no annihilator; its padding strategy is instead to pad
/// *both* operands with equal values so `(a−b)² = 0` contributes nothing to
/// the `+` reduction, which `operand` encodes as `0.0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PadValues {
    /// Fill value for `A` and `B` operand tiles.
    pub operand: f32,
    /// Fill value for `C`/`D` accumulator tiles.
    pub accumulator: f32,
}

/// Returns the padding scheme for `op` (see [`PadValues`]).
pub fn pad_values(op: OpKind) -> PadValues {
    PadValues {
        operand: op.no_edge_f32().unwrap_or(0.0),
        accumulator: op.reduce_identity_f32(),
    }
}

/// Geometry of a tiled `M×N×K` matrix-matrix operation.
///
/// # Example
///
/// ```
/// use simd2_matrix::tiling::TileGrid;
///
/// let g = TileGrid::new(40, 40, 40, 16);
/// assert_eq!((g.m_tiles, g.n_tiles, g.k_tiles), (3, 3, 3));
/// assert_eq!(g.tile_ops(), 27);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    /// Rows of the output, in elements.
    pub m: usize,
    /// Columns of the output, in elements.
    pub n: usize,
    /// Inner (reduction) dimension, in elements.
    pub k: usize,
    /// Tile side length.
    pub tile: usize,
    /// Tiles along `m`.
    pub m_tiles: usize,
    /// Tiles along `n`.
    pub n_tiles: usize,
    /// Tiles along `k`.
    pub k_tiles: usize,
}

impl TileGrid {
    /// Builds the grid for an `m×n` output with inner dimension `k`.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn new(m: usize, n: usize, k: usize, tile: usize) -> Self {
        assert!(tile > 0, "tile side must be positive");
        Self {
            m,
            n,
            k,
            tile,
            m_tiles: tiles_for(m, tile),
            n_tiles: tiles_for(n, tile),
            k_tiles: tiles_for(k, tile),
        }
    }

    /// Total number of tile-level `mmo` operations (`m_tiles × n_tiles ×
    /// k_tiles`) — the quantity the performance model charges for.
    pub fn tile_ops(&self) -> usize {
        self.m_tiles * self.n_tiles * self.k_tiles
    }

    /// Number of output tiles.
    pub fn output_tiles(&self) -> usize {
        self.m_tiles * self.n_tiles
    }

    /// Iterator over output tile coordinates `(ti, tj)` in row-major order.
    pub fn output_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n_tiles = self.n_tiles;
        (0..self.m_tiles).flat_map(move |ti| (0..n_tiles).map(move |tj| (ti, tj)))
    }
}

/// Loads the `A` operand tile at grid coordinate `(ti, tk)`.
pub fn load_a_tile<const T: usize>(op: OpKind, a: &Matrix, ti: usize, tk: usize) -> Tile<T> {
    Tile::load(a, ti * T, tk * T, pad_values(op).operand)
}

/// Loads the `B` operand tile at grid coordinate `(tk, tj)`.
pub fn load_b_tile<const T: usize>(op: OpKind, b: &Matrix, tk: usize, tj: usize) -> Tile<T> {
    Tile::load(b, tk * T, tj * T, pad_values(op).operand)
}

/// Loads the `C` accumulator tile at grid coordinate `(ti, tj)`.
pub fn load_c_tile<const T: usize>(op: OpKind, c: &Matrix, ti: usize, tj: usize) -> Tile<T> {
    Tile::load(c, ti * T, tj * T, pad_values(op).accumulator)
}

/// Stores an output tile back at grid coordinate `(ti, tj)`, clipping at
/// the true (unpadded) matrix boundary.
pub fn store_d_tile<const T: usize>(d: &mut Matrix, tile: &Tile<T>, ti: usize, tj: usize) {
    tile.store(d, ti * T, tj * T);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn round_up_and_tiles_for() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
        assert_eq!(tiles_for(0, 16), 0);
        assert_eq!(tiles_for(33, 16), 3);
    }

    #[test]
    fn grid_geometry() {
        let g = TileGrid::new(100, 50, 70, 16);
        assert_eq!(g.m_tiles, 7);
        assert_eq!(g.n_tiles, 4);
        assert_eq!(g.k_tiles, 5);
        assert_eq!(g.tile_ops(), 140);
        assert_eq!(g.output_tiles(), 28);
        assert_eq!(g.output_coords().count(), 28);
        assert_eq!(g.output_coords().next(), Some((0, 0)));
        assert_eq!(g.output_coords().last(), Some((6, 3)));
    }

    #[test]
    #[should_panic(expected = "tile side")]
    fn zero_tile_panics() {
        let _ = TileGrid::new(4, 4, 4, 0);
    }

    #[test]
    fn pad_values_are_inert_per_algebra() {
        for op in ALL_OPS {
            let pv = pad_values(op);
            // A padded operand lane must never beat a real accumulator value.
            let acc = match op {
                simd2_semiring::OpKind::MinMul | simd2_semiring::OpKind::MaxMul => 0.5,
                simd2_semiring::OpKind::OrAnd => 1.0,
                _ => 3.0,
            };
            if op.no_edge_f32().is_some() {
                assert_eq!(op.fma_f32(acc, pv.operand, pv.operand), acc, "{op}");
            } else {
                // plus-norm: equal padding values combine to 0, reduce (+) keeps acc.
                assert_eq!(op.fma_f32(acc, pv.operand, pv.operand), acc, "{op}");
            }
            // The accumulator padding is the ⊕ identity.
            assert_eq!(pv.accumulator, op.reduce_identity_f32(), "{op}");
        }
    }

    #[test]
    fn boundary_tiles_are_padded() {
        use simd2_semiring::OpKind;
        let a = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f32 + 1.0);
        let t: Tile<4> = load_a_tile(OpKind::MinPlus, &a, 1, 1);
        // grid (1,1) starts at (4,4); only element (0,0) is in-range.
        assert_eq!(t.get(0, 0), a[(4, 4)]);
        assert_eq!(t.get(0, 1), f32::INFINITY);
        assert_eq!(t.get(3, 3), f32::INFINITY);
        let c: Tile<4> = load_c_tile(OpKind::MinPlus, &a, 1, 1);
        assert_eq!(c.get(3, 3), f32::INFINITY);
    }

    #[test]
    fn store_clips() {
        let mut d = Matrix::zeros(5, 5);
        let t = Tile::<4>::splat(2.0);
        store_d_tile(&mut d, &t, 1, 1);
        assert_eq!(d[(4, 4)], 2.0);
        assert_eq!(d.as_slice().iter().filter(|&&x| x == 2.0).count(), 1);
    }
}
