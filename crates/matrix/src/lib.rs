//! Dense matrices, fixed-size tiles, tiling machinery, graphs and seeded
//! workload generators for the SIMD² reproduction.
//!
//! The SIMD² programming model operates on *tiles*: fixed-shape sub-matrices
//! that map one-to-one onto a hardware matrix-unit operation
//! (16×16 at the ISA level, decomposed into 4×4 inside the unit). This crate
//! provides the host-side data structures those tiles are carved out of:
//!
//! * [`Matrix`] — a dense row-major matrix with leading-dimension support,
//! * [`Tile`] — a const-generic square tile,
//! * [`tiling`] — padding and tile-grid iteration,
//! * [`mod@reference`] — straightforward `D = C ⊕ (A ⊗ B)` loops used as the
//!   golden model for every other backend,
//! * [`graph`] — graph ↔ adjacency-matrix lifting for the path algebras,
//! * [`gen`] — seeded random workloads (graphs, point clouds, matrices)
//!   standing in for the paper's datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
pub mod gen;
pub mod graph;
pub mod reference;
mod tile;
pub mod tiling;

pub use dense::{Matrix, ShapeError};
pub use graph::Graph;
pub use tile::Tile;

/// Side length of the ISA-visible SIMD² tile (`simd2.load`/`simd2.store`
/// move 16×16 matrices, matching the wmma fragment shape).
pub const ISA_TILE: usize = 16;

/// Side length of the matrix tile one hardware SIMD² unit consumes per
/// operation step (the 4×4 design point synthesised in Table 5).
pub const UNIT_TILE: usize = 4;
