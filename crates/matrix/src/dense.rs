//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Error returned when two matrices' shapes are incompatible for an
/// operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeError {
    expected: (usize, usize),
    got: (usize, usize),
    context: &'static str,
}

impl ShapeError {
    /// Creates a shape error with a short context string (the operand name).
    pub fn new(context: &'static str, expected: (usize, usize), got: (usize, usize)) -> Self {
        Self {
            expected,
            got,
            context,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch for {}: expected {}x{}, got {}x{}",
            self.context, self.expected.0, self.expected.1, self.got.0, self.got.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major matrix of `f32` elements.
///
/// This is the host-side container all SIMD² kernels read tiles from and
/// write tiles into. Storage is a contiguous `rows × cols` buffer; the
/// leading dimension equals `cols` (sub-views carry their own geometry via
/// the [`crate::tiling`] helpers instead of strided views).
///
/// # Example
///
/// ```
/// use simd2_matrix::Matrix;
///
/// let mut m = Matrix::filled(2, 3, 0.0);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m[(0, 1)], 5.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates an `n × n` identity-like matrix with `diag` on the diagonal
    /// and `off` elsewhere (semiring identity matrices use the `⊗` identity
    /// on the diagonal and the `⊕` identity off it).
    pub fn diagonal(n: usize, diag: f32, off: f32) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { diag } else { off })
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Bounds-checked element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// One full row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// One full row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Largest absolute element difference to `other`.
    ///
    /// Two equal infinities contribute zero (relevant for path matrices
    /// where unreachable pairs stay `+∞`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(
                "max_abs_diff operand",
                self.shape(),
                other.shape(),
            ));
        }
        let mut worst = 0.0f32;
        for (a, b) in self.data.iter().zip(&other.data) {
            if a == b {
                continue;
            }
            let d = (a - b).abs();
            worst = worst.max(d);
        }
        Ok(worst)
    }

    /// Whether every element differs from `other` by at most `tol`
    /// (infinities must match exactly).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> Result<bool, ShapeError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Fraction of elements that are *not* equal to `zero_value` — the
    /// density used by the sparsity experiments (Figs 13–14).
    pub fn density(&self, zero_value: f32) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|&&x| x != zero_value).count();
        nnz as f64 / self.data.len() as f64
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f32 {
        debug_assert!(row < self.rows && col < self.cols);
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f32 {
        debug_assert!(row < self.rows && col < self.cols);
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:8.3}", self[(r, c)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::filled(3, 4, 0.0);
        let c = Matrix::from_fn(3, 4, |_, _| 0.0);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn diagonal_matrix() {
        let m = Matrix::diagonal(3, 1.0, f32::INFINITY);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(0, 2)], f32::INFINITY);
        assert!(m.is_square());
    }

    #[test]
    fn index_roundtrip() {
        let mut m = Matrix::zeros(4, 5);
        m[(3, 4)] = 7.5;
        assert_eq!(m[(3, 4)], 7.5);
        assert_eq!(m.get(3, 4), Some(7.5));
        assert_eq!(m.get(4, 0), None);
        assert_eq!(m.get(0, 5), None);
    }

    #[test]
    fn rows_are_contiguous() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        let mut m = m;
        m.row_mut(1)[0] = -1.0;
        assert_eq!(m[(1, 0)], -1.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(2, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (5, 2));
        assert_eq!(t[(4, 1)], m[(1, 4)]);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn max_abs_diff_handles_infinities() {
        let a = Matrix::from_rows(&[&[f32::INFINITY, 1.0]]);
        let b = Matrix::from_rows(&[&[f32::INFINITY, 1.5]]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
    }

    #[test]
    fn max_abs_diff_shape_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let err = a.max_abs_diff(&b).unwrap_err();
        assert!(err.to_string().contains("2x3"));
    }

    #[test]
    fn mismatched_infinities_are_infinite_diff() {
        let a = Matrix::from_rows(&[&[f32::INFINITY]]);
        let b = Matrix::from_rows(&[&[0.0]]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), f32::INFINITY);
    }

    #[test]
    fn density_counts_nonzeros() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0]]);
        assert_eq!(m.density(0.0), 0.5);
        let inf = Matrix::from_rows(&[&[f32::INFINITY, 3.0]]);
        assert_eq!(inf.density(f32::INFINITY), 0.5);
    }

    #[test]
    fn debug_output_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.density(0.0), 0.0);
    }
}
