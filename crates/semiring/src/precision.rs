//! Reduced-precision numerics of the SIMD² data path.
//!
//! The paper's design point (§3.2): input operands are IEEE 754 binary16
//! (`fp16`), the accumulator/output is binary32 (`fp32`). The correctness
//! validation flow must therefore quantise inputs to fp16 before computing,
//! to assess whether a SIMD²-ized algorithm still converges to the fp32
//! baseline result.
//!
//! Table 5(c) additionally models 8-, 32- and 64-bit variants of the unit;
//! [`Precision`] enumerates those design points for the area model.

use half::f16;
use serde::{Deserialize, Serialize};

/// Operand precision of a matrix-unit design point (paper Table 5(c)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit inputs (int8-style), 32-bit accumulate.
    Bits8,
    /// 16-bit fp inputs, 32-bit fp accumulate — the paper's default.
    Bits16,
    /// 32-bit fp inputs and accumulate.
    Bits32,
    /// 64-bit fp inputs and accumulate.
    Bits64,
}

impl Precision {
    /// Input operand width in bits.
    pub fn input_bits(self) -> u32 {
        match self {
            Precision::Bits8 => 8,
            Precision::Bits16 => 16,
            Precision::Bits32 => 32,
            Precision::Bits64 => 64,
        }
    }

    /// Accumulator width in bits (inputs narrower than 32 accumulate at 32).
    pub fn accumulator_bits(self) -> u32 {
        self.input_bits().max(32)
    }

    /// All four modelled precisions, narrowest first.
    pub fn all() -> [Precision; 4] {
        [
            Precision::Bits8,
            Precision::Bits16,
            Precision::Bits32,
            Precision::Bits64,
        ]
    }
}

/// Rounds an `f32` through IEEE binary16, the way a `simd2.load` of an fp32
/// source into an fp16 operand register would.
///
/// Values exceeding fp16 range become `±∞`, exactly as the hardware would
/// saturate; this matters for the `no_edge` encodings, which are already
/// infinite and survive quantisation unchanged.
#[inline]
pub fn quantize_f16(x: f32) -> f32 {
    f16::from_f32(x).to_f32()
}

/// Quantises a whole slice in place (operand-matrix load).
pub fn quantize_f16_slice(xs: &mut [f32]) {
    for x in xs {
        *x = quantize_f16(*x);
    }
}

/// Returns a quantised copy of `xs`.
pub fn quantized_f16(xs: &[f32]) -> Vec<f32> {
    xs.iter().copied().map(quantize_f16).collect()
}

/// Maximum relative error introduced by a single fp16 quantisation of a
/// normal value: half a unit in the last place of a 10-bit mantissa.
pub const F16_MAX_RELATIVE_ERROR: f32 = 1.0 / 2048.0;

/// Quantises through a symmetric signed 8-bit fixed-point grid with the
/// given scale (`x ≈ q / scale`, `q ∈ [−127, 127]`), saturating at the
/// range ends but passing `±∞` through (the no-edge encodings must
/// survive any operand format).
///
/// This models the int8 operand mode the paper considered and rejected:
/// "for many algorithms, we find fixed-precision format cannot converge
/// to the same result as baseline fp32 implementations" (§3.2) — the
/// `ablate_precision` experiment demonstrates exactly that failure.
#[inline]
pub fn quantize_int8(x: f32, scale: f32) -> f32 {
    if x.is_infinite() || x.is_nan() {
        return x;
    }
    let q = (x * scale).round().clamp(-127.0, 127.0);
    q / scale
}

/// Absolute comparison tolerance for validating an fp16-input computation
/// against an fp32 reference, given the magnitude scale and the reduction
/// depth (number of `⊕` steps feeding one output element).
///
/// Each of the `depth` combined terms carries up to
/// [`F16_MAX_RELATIVE_ERROR`] per quantised operand (two operands per `⊗`),
/// and fp32 accumulation error is negligible next to that.
pub fn f16_tolerance(magnitude: f32, depth: usize) -> f32 {
    2.0 * F16_MAX_RELATIVE_ERROR * magnitude * depth.max(1) as f32
}

/// Whether `x` is exactly representable in fp16 (quantisation is lossless).
///
/// Path algebras whose weights are small integers — and the boolean
/// `{0, 1}` domain of or-and — satisfy this, which is why min/max-style
/// SIMD² algorithms converge bit-exactly even at reduced precision.
pub fn is_f16_exact(x: f32) -> bool {
    quantize_f16(x) == x || (x.is_nan() && quantize_f16(x).is_nan())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_preserves_infinities_and_zero() {
        assert_eq!(quantize_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(quantize_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(quantize_f16(0.0), 0.0);
        assert_eq!(quantize_f16(-0.0), -0.0);
    }

    #[test]
    fn quantize_saturates_out_of_range_to_infinity() {
        // fp16 max finite is 65504.
        assert_eq!(quantize_f16(65504.0), 65504.0);
        assert_eq!(quantize_f16(1.0e6), f32::INFINITY);
        assert_eq!(quantize_f16(-1.0e6), f32::NEG_INFINITY);
    }

    #[test]
    fn small_integers_are_exact() {
        for i in 0..=2048 {
            assert!(is_f16_exact(i as f32), "{i}");
        }
        // 2049 is not representable (11-bit significand incl. hidden bit).
        assert!(!is_f16_exact(2049.0));
    }

    #[test]
    fn booleans_are_exact() {
        assert!(is_f16_exact(0.0));
        assert!(is_f16_exact(1.0));
    }

    #[test]
    fn relative_error_bound_holds_for_normals() {
        for &x in &[0.1f32, 0.3, 1.7, 123.456, 3.0e-3, 6.0e4] {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= F16_MAX_RELATIVE_ERROR, "x={x} q={q} rel={rel}");
        }
    }

    #[test]
    fn slice_and_copy_quantizers_agree() {
        let src = vec![0.1f32, 2.5, -7.3, 1000.01];
        let copied = quantized_f16(&src);
        let mut inplace = src.clone();
        quantize_f16_slice(&mut inplace);
        assert_eq!(copied, inplace);
        assert_ne!(copied, src, "0.1 and 1000.01 are not fp16-exact");
    }

    #[test]
    fn tolerance_scales_with_depth_and_magnitude() {
        assert!(f16_tolerance(1.0, 16) < f16_tolerance(1.0, 1024));
        assert!(f16_tolerance(1.0, 16) < f16_tolerance(100.0, 16));
        assert!(f16_tolerance(1.0, 0) > 0.0, "depth 0 clamps to 1");
    }

    #[test]
    fn int8_quantiser_saturates_and_rounds() {
        assert_eq!(quantize_int8(3.4, 1.0), 3.0);
        assert_eq!(quantize_int8(3.6, 1.0), 4.0);
        assert_eq!(quantize_int8(200.0, 1.0), 127.0);
        assert_eq!(quantize_int8(-200.0, 1.0), -127.0);
        assert_eq!(quantize_int8(f32::INFINITY, 1.0), f32::INFINITY);
        // Finer scale trades range for resolution.
        assert_eq!(quantize_int8(0.55, 10.0), 0.6);
        assert_eq!(quantize_int8(20.0, 10.0), 12.7);
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(Precision::Bits8.input_bits(), 8);
        assert_eq!(Precision::Bits8.accumulator_bits(), 32);
        assert_eq!(Precision::Bits16.accumulator_bits(), 32);
        assert_eq!(Precision::Bits64.accumulator_bits(), 64);
        assert_eq!(Precision::all().len(), 4);
    }
}
