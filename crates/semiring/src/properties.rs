//! Algebraic property checks for semiring-like structures.
//!
//! The SIMD² tiling strategy is only sound when the algebra cooperates:
//! splitting the `k` dimension across tiles requires `⊕` to be associative
//! and commutative, and accumulating partial tiles into `C` requires the
//! `⊕` identity to be a safe initial value. These helpers express those
//! requirements as reusable predicates; the crate's proptest suite and the
//! downstream tiling tests both build on them.
//!
//! Floating-point `+` is famously non-associative; the checks therefore take
//! a tolerance. Min/max/boolean reductions are exact.

use crate::OpKind;

/// Outcome of a single property check over sampled values.
#[derive(Clone, Debug, PartialEq)]
pub enum PropertyResult {
    /// The property held on every sample.
    Holds,
    /// The property failed; carries a human-readable counterexample.
    Fails(String),
}

impl PropertyResult {
    /// `true` when the property held.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyResult::Holds)
    }
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    if a == b {
        return true; // covers equal infinities
    }
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Checks `(x ⊕ y) ⊕ z ≈ x ⊕ (y ⊕ z)` over all triples of `samples`.
pub fn reduce_associative(op: OpKind, samples: &[f32], tol: f32) -> PropertyResult {
    for &x in samples {
        for &y in samples {
            for &z in samples {
                let l = op.reduce_f32(op.reduce_f32(x, y), z);
                let r = op.reduce_f32(x, op.reduce_f32(y, z));
                if !close(l, r, tol) {
                    return PropertyResult::Fails(format!(
                        "{op}: ({x} ⊕ {y}) ⊕ {z} = {l} but {x} ⊕ ({y} ⊕ {z}) = {r}"
                    ));
                }
            }
        }
    }
    PropertyResult::Holds
}

/// Checks `x ⊕ y = y ⊕ x` over all pairs of `samples`.
pub fn reduce_commutative(op: OpKind, samples: &[f32], tol: f32) -> PropertyResult {
    for &x in samples {
        for &y in samples {
            let l = op.reduce_f32(x, y);
            let r = op.reduce_f32(y, x);
            if !close(l, r, tol) {
                return PropertyResult::Fails(format!("{op}: {x} ⊕ {y} = {l} ≠ {y} ⊕ {x} = {r}"));
            }
        }
    }
    PropertyResult::Holds
}

/// Checks that [`OpKind::reduce_identity_f32`] is a two-sided identity on
/// `samples` (after or-and's boolean canonicalisation).
pub fn reduce_identity(op: OpKind, samples: &[f32]) -> PropertyResult {
    let id = op.reduce_identity_f32();
    for &x in samples {
        let canonical = if op == OpKind::OrAnd {
            if x != 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            x
        };
        if op.reduce_f32(id, x) != canonical || op.reduce_f32(x, id) != canonical {
            return PropertyResult::Fails(format!(
                "{op}: identity {id} does not fix {x} (got {} / {})",
                op.reduce_f32(id, x),
                op.reduce_f32(x, id)
            ));
        }
    }
    PropertyResult::Holds
}

/// Checks `x ⊕ x = x` (idempotence) — required by the convergence-check
/// fixed-point iteration, and expected exactly when
/// [`OpKind::reduce_is_idempotent`] says so.
pub fn reduce_idempotent(op: OpKind, samples: &[f32]) -> PropertyResult {
    for &x in samples {
        let canonical = if op == OpKind::OrAnd {
            if x != 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            x
        };
        if op.reduce_f32(x, x) != canonical {
            return PropertyResult::Fails(format!("{op}: {x} ⊕ {x} = {}", op.reduce_f32(x, x)));
        }
    }
    PropertyResult::Holds
}

/// Checks `⊗` associativity — holds for the seven true path algebras, and
/// is expected to *fail* for plus-norm (whose `⊗` is `(a−b)²`).
pub fn combine_associative(op: OpKind, samples: &[f32], tol: f32) -> PropertyResult {
    for &x in samples {
        for &y in samples {
            for &z in samples {
                let l = op.combine_f32(op.combine_f32(x, y), z);
                let r = op.combine_f32(x, op.combine_f32(y, z));
                if !close(l, r, tol) {
                    return PropertyResult::Fails(format!(
                        "{op}: ({x} ⊗ {y}) ⊗ {z} = {l} but {x} ⊗ ({y} ⊗ {z}) = {r}"
                    ));
                }
            }
        }
    }
    PropertyResult::Holds
}

/// Checks left/right distributivity `x ⊗ (y ⊕ z) ≈ (x ⊗ y) ⊕ (x ⊗ z)` —
/// the law that lets the dot-product reduction be reordered/tiled freely.
///
/// Holds exactly for the min/max/boolean algebras over their domains; for
/// plus-mul it holds up to rounding; for plus-norm it does not hold (and the
/// KNN use never needs it: plus-norm is applied in a single pass).
pub fn distributive(op: OpKind, samples: &[f32], tol: f32) -> PropertyResult {
    for &x in samples {
        for &y in samples {
            for &z in samples {
                let l = op.combine_f32(x, op.reduce_f32(y, z));
                let r = op.reduce_f32(op.combine_f32(x, y), op.combine_f32(x, z));
                if !close(l, r, tol) {
                    return PropertyResult::Fails(format!(
                        "{op}: {x} ⊗ ({y} ⊕ {z}) = {l} but ({x}⊗{y}) ⊕ ({x}⊗{z}) = {r}"
                    ));
                }
            }
        }
    }
    PropertyResult::Holds
}

/// In-domain sample values for each algebra, suitable for the property
/// checks (reliabilities in `(0, 1]`, booleans in `{0, 1}`, …), including
/// the `⊕` identity and, when defined, the no-edge encoding.
pub fn domain_samples(op: OpKind) -> Vec<f32> {
    let mut v: Vec<f32> = match op {
        OpKind::MinMul | OpKind::MaxMul => vec![0.125, 0.25, 0.5, 0.75, 1.0],
        OpKind::OrAnd => vec![0.0, 1.0],
        OpKind::PlusMul | OpKind::PlusNorm => vec![-2.0, -0.5, 0.0, 0.5, 1.0, 3.0],
        _ => vec![0.0, 0.5, 1.0, 2.0, 7.0, 64.0],
    };
    // The reduce identity is included except where it would leave the
    // `⊗` domain entirely: max-mul's −∞ identity times the 0.0 no-edge
    // encoding is NaN in fp, and the algebra is only ever reduced with it.
    if op != OpKind::MaxMul {
        v.push(op.reduce_identity_f32());
    }
    if let Some(ne) = op.no_edge_f32() {
        if !v.contains(&ne) {
            v.push(ne);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPS;

    const EXACT: f32 = 0.0;
    const FP: f32 = 1.0e-6;

    #[test]
    fn all_reductions_are_associative_and_commutative() {
        for op in ALL_OPS {
            let s = domain_samples(op);
            assert!(reduce_associative(op, &s, FP).holds(), "{op} assoc");
            assert!(reduce_commutative(op, &s, EXACT).holds(), "{op} comm");
        }
    }

    #[test]
    fn all_identities_hold() {
        for op in ALL_OPS {
            assert!(reduce_identity(op, &domain_samples(op)).holds(), "{op}");
        }
    }

    #[test]
    fn idempotence_matches_classification() {
        for op in ALL_OPS {
            let got = reduce_idempotent(op, &domain_samples(op)).holds();
            // `x + x = x` only at 0/±∞; min/max/or are idempotent everywhere.
            let expected = op.reduce_is_idempotent();
            assert_eq!(got, expected, "{op}");
        }
    }

    #[test]
    fn combine_associativity_fails_only_for_plus_norm() {
        for op in ALL_OPS {
            let holds = combine_associative(op, &domain_samples(op), FP).holds();
            assert_eq!(holds, op != OpKind::PlusNorm, "{op}");
        }
    }

    #[test]
    fn distributivity_holds_for_true_path_algebras() {
        for op in [
            OpKind::MinPlus,
            OpKind::MaxPlus,
            OpKind::MinMax,
            OpKind::MaxMin,
            OpKind::OrAnd,
            OpKind::PlusMul,
        ] {
            assert!(distributive(op, &domain_samples(op), FP).holds(), "{op}");
        }
        // min-mul / max-mul distribute on the non-negative domain only —
        // which is exactly the reliability domain they are used on.
        for op in [OpKind::MinMul, OpKind::MaxMul] {
            assert!(distributive(op, &domain_samples(op), FP).holds(), "{op}");
        }
        assert!(!distributive(OpKind::PlusNorm, &domain_samples(OpKind::PlusNorm), FP).holds());
    }

    #[test]
    fn failure_carries_counterexample() {
        let r = combine_associative(OpKind::PlusNorm, &[0.0, 1.0, 2.0], EXACT);
        match r {
            PropertyResult::Fails(msg) => assert!(msg.contains("plus-norm")),
            PropertyResult::Holds => panic!("plus-norm ⊗ should not be associative"),
        }
    }
}
