//! Statically-typed semiring-like structures.
//!
//! Each zero-sized marker type implements [`Semiring`] for the element type
//! its algebra is defined over. Kernels generic over `S: Semiring` are
//! monomorphised per operation — the software analogue of configuring the
//! `⊗`/`⊕` ALUs once per instruction.

use crate::OpKind;

/// A semiring-like structure `(⊕, ⊗)` over element type [`Self::Elem`].
///
/// The trait captures the *computational* contract the SIMD² unit relies on
/// (identity of `⊕`, the `acc ⊕ (a ⊗ b)` step); full mathematical semiring
/// laws (associativity, distributivity) hold for all provided instances
/// except where floating-point rounding intervenes, and are checked by the
/// property-based tests in [`crate::properties`].
///
/// # Example
///
/// ```
/// use simd2_semiring::{Semiring, MinMax};
///
/// // Bottleneck of a two-edge path, then best-of with an existing path:
/// let path = MinMax::combine(4.0, 9.0); // max: the wider constraint
/// assert_eq!(path, 9.0);
/// assert_eq!(MinMax::reduce(7.0, path), 7.0); // min: keep the better route
/// ```
pub trait Semiring: Copy + core::fmt::Debug + 'static {
    /// Element type the algebra operates on.
    type Elem: Copy + PartialEq + core::fmt::Debug;

    /// The dynamic [`OpKind`] this typed algebra corresponds to.
    const KIND: OpKind;

    /// The `⊗` (combine / multiply-like) operator.
    fn combine(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// The `⊕` (reduce / add-like) operator.
    fn reduce(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Identity of `⊕`: `reduce(identity(), x) == x`.
    fn reduce_identity() -> Self::Elem;

    /// One inner-product step: `acc ⊕ (a ⊗ b)`.
    #[inline]
    fn fma(acc: Self::Elem, a: Self::Elem, b: Self::Elem) -> Self::Elem {
        Self::reduce(acc, Self::combine(a, b))
    }
}

macro_rules! f32_semiring {
    ($(#[$doc:meta])* $name:ident, $kind:expr,
     combine($ca:ident, $cb:ident) = $combine:expr,
     reduce($ra:ident, $rb:ident) = $reduce:expr,
     identity = $id:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
        pub struct $name;

        impl Semiring for $name {
            type Elem = f32;
            const KIND: OpKind = $kind;

            #[inline]
            fn combine($ca: f32, $cb: f32) -> f32 {
                $combine
            }

            #[inline]
            fn reduce($ra: f32, $rb: f32) -> f32 {
                $reduce
            }

            #[inline]
            fn reduce_identity() -> f32 {
                $id
            }
        }
    };
}

f32_semiring!(
    /// `(+, ×)` over `f32` — classic matrix-multiply-accumulate (GEMM).
    PlusMul,
    OpKind::PlusMul,
    combine(a, b) = a * b,
    reduce(a, b) = a + b,
    identity = 0.0
);

f32_semiring!(
    /// `(min, +)` over `f32` — the tropical semiring of shortest paths.
    MinPlus,
    OpKind::MinPlus,
    combine(a, b) = a + b,
    reduce(a, b) = a.min(b),
    identity = f32::INFINITY
);

f32_semiring!(
    /// `(max, +)` over `f32` — longest/critical paths.
    MaxPlus,
    OpKind::MaxPlus,
    combine(a, b) = a + b,
    reduce(a, b) = a.max(b),
    identity = f32::NEG_INFINITY
);

f32_semiring!(
    /// `(min, ×)` over `f32` — minimum reliability paths.
    MinMul,
    OpKind::MinMul,
    combine(a, b) = a * b,
    reduce(a, b) = a.min(b),
    identity = f32::INFINITY
);

f32_semiring!(
    /// `(max, ×)` over `f32` — maximum reliability paths.
    MaxMul,
    OpKind::MaxMul,
    combine(a, b) = a * b,
    reduce(a, b) = a.max(b),
    identity = f32::NEG_INFINITY
);

f32_semiring!(
    /// `(min, max)` over `f32` — minimax / minimum spanning tree.
    MinMax,
    OpKind::MinMax,
    combine(a, b) = a.max(b),
    reduce(a, b) = a.min(b),
    identity = f32::INFINITY
);

f32_semiring!(
    /// `(max, min)` over `f32` — maximum capacity (widest) paths.
    MaxMin,
    OpKind::MaxMin,
    combine(a, b) = a.min(b),
    reduce(a, b) = a.max(b),
    identity = f32::NEG_INFINITY
);

f32_semiring!(
    /// `(∨, ∧)` over `f32`-encoded booleans (`0.0` / `1.0`) — transitive
    /// closure on the shared floating-point data path.
    OrAnd,
    OpKind::OrAnd,
    combine(a, b) = if a != 0.0 && b != 0.0 { 1.0 } else { 0.0 },
    reduce(a, b) = if a != 0.0 || b != 0.0 { 1.0 } else { 0.0 },
    identity = 0.0
);

f32_semiring!(
    /// `(+, (a−b)²)` over `f32` — pairwise squared L2 distance
    /// accumulation (`simd2.addnorm`). Not a semiring (no `⊗`
    /// associativity), but shares the `D = C ⊕ (A ⊗ B)` data flow.
    PlusNorm,
    OpKind::PlusNorm,
    combine(a, b) = {
        let d = a - b;
        d * d
    },
    reduce(a, b) = a + b,
    identity = 0.0
);

/// `(min, +)` over `i64` with saturating addition — the exact integer
/// oracle for validating the floating-point tropical algebra on
/// integer-weighted workloads (`i64::MAX` encodes +∞ / no path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct IntMinPlus;

impl Semiring for IntMinPlus {
    type Elem = i64;
    const KIND: OpKind = OpKind::MinPlus;

    #[inline]
    fn combine(a: i64, b: i64) -> i64 {
        a.saturating_add(b)
    }

    #[inline]
    fn reduce(a: i64, b: i64) -> i64 {
        a.min(b)
    }

    #[inline]
    fn reduce_identity() -> i64 {
        i64::MAX
    }
}

/// `(∨, ∧)` over native `bool` — the reference boolean algebra used to
/// validate [`OrAnd`]'s `f32` encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Elem = bool;
    const KIND: OpKind = OpKind::OrAnd;

    #[inline]
    fn combine(a: bool, b: bool) -> bool {
        a && b
    }

    #[inline]
    fn reduce(a: bool, b: bool) -> bool {
        a || b
    }

    #[inline]
    fn reduce_identity() -> bool {
        false
    }
}

/// Applies a typed kernel for the given dynamic [`OpKind`].
///
/// This is the bridge from instruction decoding to monomorphised code: the
/// closure-like `visitor` is invoked with the marker type corresponding to
/// `kind`. All nine visitors operate over `f32`.
///
/// # Example
///
/// ```
/// use simd2_semiring::{visit_f32_semiring, OpKind, Semiring};
///
/// struct DotStep(f32, f32, f32);
/// impl simd2_semiring::F32SemiringVisitor for DotStep {
///     type Output = f32;
///     fn visit<S: Semiring<Elem = f32>>(self) -> f32 {
///         S::fma(self.0, self.1, self.2)
///     }
/// }
/// assert_eq!(visit_f32_semiring(OpKind::MinPlus, DotStep(7.0, 3.0, 2.0)), 5.0);
/// ```
pub fn visit_f32_semiring<V: F32SemiringVisitor>(kind: OpKind, visitor: V) -> V::Output {
    match kind {
        OpKind::PlusMul => visitor.visit::<PlusMul>(),
        OpKind::MinPlus => visitor.visit::<MinPlus>(),
        OpKind::MaxPlus => visitor.visit::<MaxPlus>(),
        OpKind::MinMul => visitor.visit::<MinMul>(),
        OpKind::MaxMul => visitor.visit::<MaxMul>(),
        OpKind::MinMax => visitor.visit::<MinMax>(),
        OpKind::MaxMin => visitor.visit::<MaxMin>(),
        OpKind::OrAnd => visitor.visit::<OrAnd>(),
        OpKind::PlusNorm => visitor.visit::<PlusNorm>(),
    }
}

/// Visitor consumed by [`visit_f32_semiring`].
pub trait F32SemiringVisitor {
    /// Result type produced by the visit.
    type Output;

    /// Invoked with the marker type selected by the dynamic [`OpKind`].
    fn visit<S: Semiring<Elem = f32>>(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPS;

    /// Visitor that computes one fma step; used to cross-check the typed
    /// instances against the dynamic `OpKind` evaluation.
    struct Fma(f32, f32, f32);

    impl F32SemiringVisitor for Fma {
        type Output = f32;
        fn visit<S: Semiring<Elem = f32>>(self) -> f32 {
            S::fma(self.0, self.1, self.2)
        }
    }

    #[test]
    fn typed_and_dynamic_agree() {
        let cases = [
            (0.0f32, 0.0f32, 0.0f32),
            (1.0, 2.0, 3.0),
            (-1.5, 0.25, 8.0),
            (7.0, 1.0, 0.0),
            (0.5, 0.5, 0.5),
        ];
        for op in ALL_OPS {
            for (acc, a, b) in cases {
                let typed = visit_f32_semiring(op, Fma(acc, a, b));
                let dynamic = op.fma_f32(acc, a, b);
                assert_eq!(typed, dynamic, "{op} fma({acc}, {a}, {b})");
            }
        }
    }

    struct Kind;
    impl F32SemiringVisitor for Kind {
        type Output = OpKind;
        fn visit<S: Semiring<Elem = f32>>(self) -> OpKind {
            S::KIND
        }
    }

    #[test]
    fn visitor_selects_matching_kind() {
        for op in ALL_OPS {
            assert_eq!(visit_f32_semiring(op, Kind), op);
        }
    }

    #[test]
    fn bool_or_and_matches_f32_encoding() {
        for a in [false, true] {
            for b in [false, true] {
                let fa = if a { 1.0 } else { 0.0 };
                let fb = if b { 1.0 } else { 0.0 };
                assert_eq!(
                    BoolOrAnd::combine(a, b),
                    OrAnd::combine(fa, fb) != 0.0,
                    "and({a},{b})"
                );
                assert_eq!(
                    BoolOrAnd::reduce(a, b),
                    OrAnd::reduce(fa, fb) != 0.0,
                    "or({a},{b})"
                );
            }
        }
    }

    #[test]
    fn min_plus_shortest_path_step() {
        // Existing best 7, candidate path 3 + 2 = 5 → 5.
        assert_eq!(MinPlus::fma(7.0, 3.0, 2.0), 5.0);
        // Candidate worse than best → keep best.
        assert_eq!(MinPlus::fma(4.0, 3.0, 2.0), 4.0);
        // No path yet: identity loses to any finite candidate.
        assert_eq!(MinPlus::fma(MinPlus::reduce_identity(), 3.0, 2.0), 5.0);
    }

    #[test]
    fn max_min_capacity_step() {
        // Capacity of a path is its narrowest link; keep the widest path.
        assert_eq!(MaxMin::combine(10.0, 4.0), 4.0);
        assert_eq!(MaxMin::fma(3.0, 10.0, 4.0), 4.0);
        assert_eq!(MaxMin::fma(6.0, 10.0, 4.0), 6.0);
    }

    #[test]
    fn min_max_bottleneck_step() {
        // minimax: path cost is its largest edge; keep the smallest.
        assert_eq!(MinMax::combine(2.0, 9.0), 9.0);
        assert_eq!(MinMax::fma(5.0, 2.0, 9.0), 5.0);
        assert_eq!(MinMax::fma(11.0, 2.0, 9.0), 9.0);
    }

    #[test]
    fn reliability_steps() {
        // Reliability of a path is the product of link reliabilities.
        assert_eq!(MaxMul::fma(0.4, 0.9, 0.8), 0.9f32 * 0.8);
        assert_eq!(MinMul::fma(0.4, 0.9, 0.8), 0.4);
    }

    #[test]
    fn int_min_plus_is_an_exact_tropical_oracle() {
        // Saturating addition keeps "no path" absorbing.
        assert_eq!(IntMinPlus::fma(i64::MAX, 3, 2), 5);
        assert_eq!(IntMinPlus::fma(4, 3, 2), 4);
        assert_eq!(IntMinPlus::combine(i64::MAX, 7), i64::MAX);
        assert_eq!(IntMinPlus::reduce(i64::MAX, 9), 9);
        // Agreement with the f32 algebra on integer weights.
        for (acc, a, b) in [(7i64, 3i64, 2i64), (100, 50, 49), (1, 2, 3)] {
            let f = MinPlus::fma(acc as f32, a as f32, b as f32);
            assert_eq!(f as i64, IntMinPlus::fma(acc, a, b));
        }
    }

    #[test]
    fn markers_are_zero_sized() {
        assert_eq!(core::mem::size_of::<MinPlus>(), 0);
        assert_eq!(core::mem::size_of::<PlusNorm>(), 0);
    }
}
