//! Dynamic (opcode-level) view of the nine SIMD² operator pairs.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One of the nine SIMD² operator pairs `(⊕, ⊗)` (paper Table 1 / Table 2).
///
/// Each variant names the pair in `⊕-⊗` order, matching the paper
/// ("min-plus" = `min ⊕`, `+ ⊗`). `PlusMul` is the classic
/// multiply-accumulate performed by existing MXUs; the other eight are the
/// SIMD² extensions.
///
/// This enum is the *dynamic* interface used wherever the operation is data
/// (instruction decoding, the functional matrix unit, experiment sweeps).
/// Monomorphised kernels use the [`Semiring`](crate::Semiring) trait instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// `⊕ = +`, `⊗ = ×`: GEMM / matrix-multiply-accumulate.
    PlusMul,
    /// `⊕ = min`, `⊗ = +`: all-pairs shortest path.
    MinPlus,
    /// `⊕ = max`, `⊗ = +`: critical (longest) path.
    MaxPlus,
    /// `⊕ = min`, `⊗ = ×`: minimum reliability path.
    MinMul,
    /// `⊕ = max`, `⊗ = ×`: maximum reliability path.
    MaxMul,
    /// `⊕ = min`, `⊗ = max`: minimum spanning tree / bottleneck.
    MinMax,
    /// `⊕ = max`, `⊗ = min`: maximum capacity path.
    MaxMin,
    /// `⊕ = ∨`, `⊗ = ∧`: transitive and reflexive closure.
    OrAnd,
    /// `⊕ = +`, `⊗ = (a−b)²`: pairwise squared L2 distance.
    PlusNorm,
}

impl OpKind {
    /// The `⊗` (combine) step on `f32` operands.
    ///
    /// For [`OpKind::OrAnd`] the operands are interpreted as booleans
    /// (non-zero ⇒ true) and the result is canonicalised to `0.0` / `1.0`,
    /// mirroring how a boolean lane maps onto the shared fp data path.
    #[inline]
    pub fn combine_f32(self, a: f32, b: f32) -> f32 {
        match self {
            OpKind::PlusMul | OpKind::MinMul | OpKind::MaxMul => a * b,
            OpKind::MinPlus | OpKind::MaxPlus => a + b,
            OpKind::MinMax => a.max(b),
            OpKind::MaxMin => a.min(b),
            OpKind::OrAnd => {
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            OpKind::PlusNorm => {
                let d = a - b;
                d * d
            }
        }
    }

    /// The `⊕` (reduce) step on `f32` operands.
    #[inline]
    pub fn reduce_f32(self, a: f32, b: f32) -> f32 {
        match self {
            OpKind::PlusMul | OpKind::PlusNorm => a + b,
            OpKind::MinPlus | OpKind::MinMul | OpKind::MinMax => a.min(b),
            OpKind::MaxPlus | OpKind::MaxMul | OpKind::MaxMin => a.max(b),
            OpKind::OrAnd => {
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The identity element of `⊕` — the value an accumulator is seeded with.
    ///
    /// `reduce_f32(id, x) == x` for every finite `x` in the operation's
    /// domain.
    #[inline]
    pub fn reduce_identity_f32(self) -> f32 {
        match self {
            OpKind::PlusMul | OpKind::PlusNorm | OpKind::OrAnd => 0.0,
            OpKind::MinPlus | OpKind::MinMul | OpKind::MinMax => f32::INFINITY,
            OpKind::MaxPlus | OpKind::MaxMul | OpKind::MaxMin => f32::NEG_INFINITY,
        }
    }

    /// The annihilator of `⊗` for *path-style* uses: the edge weight that
    /// encodes "no edge" so that combining through it never improves a path.
    ///
    /// `reduce_f32(x, combine_f32(no_edge, w)) == x` for in-domain `x`, `w`.
    /// Returns `None` for [`OpKind::PlusNorm`], which is not a path algebra.
    #[inline]
    pub fn no_edge_f32(self) -> Option<f32> {
        match self {
            OpKind::PlusMul => Some(0.0),
            OpKind::MinPlus | OpKind::MinMul | OpKind::MinMax => Some(f32::INFINITY),
            OpKind::MaxPlus | OpKind::MaxMin => Some(f32::NEG_INFINITY),
            // max ⊕ with × ⊗ on non-negative reliabilities: a zero factor
            // yields a zero product, which max-reduce never prefers.
            OpKind::MaxMul => Some(0.0),
            OpKind::OrAnd => Some(0.0),
            OpKind::PlusNorm => None,
        }
    }

    /// The identity element of `⊗`, when one exists: `combine_f32(id, x) == x`.
    ///
    /// Used as the diagonal (self-loop) value when a graph is lifted to an
    /// adjacency matrix for closure computation. Plus-norm has no `⊗`
    /// identity ( `(a−b)²` is not multiplication-like), hence `None`.
    #[inline]
    pub fn combine_identity_f32(self) -> Option<f32> {
        match self {
            OpKind::PlusMul | OpKind::MinMul | OpKind::MaxMul | OpKind::OrAnd => Some(1.0),
            OpKind::MinPlus | OpKind::MaxPlus => Some(0.0),
            OpKind::MinMax => Some(f32::NEG_INFINITY),
            OpKind::MaxMin => Some(f32::INFINITY),
            OpKind::PlusNorm => None,
        }
    }

    /// The full dot-product-style inner step: `acc ⊕ (a ⊗ b)`.
    #[inline]
    pub fn fma_f32(self, acc: f32, a: f32, b: f32) -> f32 {
        self.reduce_f32(acc, self.combine_f32(a, b))
    }

    /// Whether `⊕` is idempotent (`x ⊕ x = x`), i.e. min/max/or.
    ///
    /// Idempotent reductions permit the fixed-point (convergence-check)
    /// iteration used by the closure solvers; plain addition does not.
    #[inline]
    pub fn reduce_is_idempotent(self) -> bool {
        !matches!(self, OpKind::PlusMul | OpKind::PlusNorm)
    }

    /// Whether the pair is a *closure algebra* usable by the transitive
    /// closure solvers (Bellman-Ford / Leyzorek): idempotent `⊕` and a
    /// meaningful [`Self::no_edge_f32`].
    #[inline]
    pub fn is_closure_algebra(self) -> bool {
        self.reduce_is_idempotent() && self.no_edge_f32().is_some()
    }

    /// Lower-case short name, e.g. `"min-plus"` (figure axis labels).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::PlusMul => "plus-mul",
            OpKind::MinPlus => "min-plus",
            OpKind::MaxPlus => "max-plus",
            OpKind::MinMul => "min-mul",
            OpKind::MaxMul => "max-mul",
            OpKind::MinMax => "min-max",
            OpKind::MaxMin => "max-min",
            OpKind::OrAnd => "or-and",
            OpKind::PlusNorm => "plus-norm",
        }
    }

    /// The PTX-style mnemonic of the arithmetic instruction (paper Table 2).
    pub fn ptx_mnemonic(self) -> &'static str {
        match self {
            OpKind::PlusMul => "simd2.mma",
            OpKind::MinPlus => "simd2.minplus",
            OpKind::MaxPlus => "simd2.maxplus",
            OpKind::MinMul => "simd2.minmul",
            OpKind::MaxMul => "simd2.maxmul",
            OpKind::MinMax => "simd2.minmax",
            OpKind::MaxMin => "simd2.maxmin",
            OpKind::OrAnd => "simd2.orand",
            OpKind::PlusNorm => "simd2.addnorm",
        }
    }

    /// The representative algorithm/problem from paper Table 1.
    pub fn representative_algorithm(self) -> &'static str {
        match self {
            OpKind::PlusMul => "matrix multiplication / matrix inverse",
            OpKind::MinPlus => "all-pairs shortest paths",
            OpKind::MaxPlus => "maximum cost (critical path)",
            OpKind::MinMul => "minimum reliability paths",
            OpKind::MaxMul => "maximum reliability paths",
            OpKind::MinMax => "minimum spanning tree",
            OpKind::MaxMin => "maximum capacity paths",
            OpKind::OrAnd => "transitive and reflexive closure",
            OpKind::PlusNorm => "L2 distance",
        }
    }

    /// Mathematical symbols `(⊕, ⊗)` for table rendering.
    pub fn symbols(self) -> (&'static str, &'static str) {
        match self {
            OpKind::PlusMul => ("+", "×"),
            OpKind::MinPlus => ("min", "+"),
            OpKind::MaxPlus => ("max", "+"),
            OpKind::MinMul => ("min", "×"),
            OpKind::MaxMul => ("max", "×"),
            OpKind::MinMax => ("min", "max"),
            OpKind::MaxMin => ("max", "min"),
            OpKind::OrAnd => ("or", "and"),
            OpKind::PlusNorm => ("+", "|a−b|²"),
        }
    }

    /// Stable opcode value used by the binary instruction encoding.
    #[inline]
    pub fn opcode(self) -> u8 {
        match self {
            OpKind::PlusMul => 0,
            OpKind::MinPlus => 1,
            OpKind::MaxPlus => 2,
            OpKind::MinMul => 3,
            OpKind::MaxMul => 4,
            OpKind::MinMax => 5,
            OpKind::MaxMin => 6,
            OpKind::OrAnd => 7,
            OpKind::PlusNorm => 8,
        }
    }

    /// Inverse of [`Self::opcode`].
    #[inline]
    pub fn from_opcode(code: u8) -> Option<Self> {
        Some(match code {
            0 => OpKind::PlusMul,
            1 => OpKind::MinPlus,
            2 => OpKind::MaxPlus,
            3 => OpKind::MinMul,
            4 => OpKind::MaxMul,
            5 => OpKind::MinMax,
            6 => OpKind::MaxMin,
            7 => OpKind::OrAnd,
            8 => OpKind::PlusNorm,
            _ => return None,
        })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an [`OpKind`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseOpKindError {
    input: String,
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown SIMD2 operation `{}`", self.input)
    }
}

impl std::error::Error for ParseOpKindError {}

impl FromStr for OpKind {
    type Err = ParseOpKindError;

    /// Accepts both the short name (`min-plus`) and the PTX mnemonic
    /// (`simd2.minplus`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        for op in crate::ALL_OPS {
            if norm == op.name()
                || norm == op.ptx_mnemonic()
                || norm == op.name().replace('-', "_")
                || norm == op.name().replace('-', "")
            {
                return Ok(op);
            }
        }
        Err(ParseOpKindError {
            input: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPS;

    #[test]
    fn opcode_roundtrip() {
        for op in ALL_OPS {
            assert_eq!(OpKind::from_opcode(op.opcode()), Some(op));
        }
        assert_eq!(OpKind::from_opcode(9), None);
        assert_eq!(OpKind::from_opcode(255), None);
    }

    #[test]
    fn parse_short_names() {
        for op in ALL_OPS {
            assert_eq!(op.name().parse::<OpKind>().unwrap(), op);
        }
    }

    #[test]
    fn parse_ptx_names() {
        for op in ALL_OPS {
            assert_eq!(op.ptx_mnemonic().parse::<OpKind>().unwrap(), op);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_separator_tolerant() {
        assert_eq!("Min-Plus".parse::<OpKind>().unwrap(), OpKind::MinPlus);
        assert_eq!("min_plus".parse::<OpKind>().unwrap(), OpKind::MinPlus);
        assert_eq!("minplus".parse::<OpKind>().unwrap(), OpKind::MinPlus);
        assert_eq!("SIMD2.MMA".parse::<OpKind>().unwrap(), OpKind::PlusMul);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "mul-div".parse::<OpKind>().unwrap_err();
        assert!(err.to_string().contains("mul-div"));
    }

    #[test]
    fn reduce_identity_really_is_identity() {
        for op in ALL_OPS {
            let id = op.reduce_identity_f32();
            for x in [-3.5f32, 0.0, 1.0, 42.0] {
                // or-and canonicalises to {0,1}.
                let expect = if op == OpKind::OrAnd {
                    if x != 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    x
                };
                assert_eq!(op.reduce_f32(id, x), expect, "{op} left identity");
                assert_eq!(op.reduce_f32(x, id), expect, "{op} right identity");
            }
        }
    }

    #[test]
    fn no_edge_is_absorbing_for_path_algebras() {
        for op in ALL_OPS {
            let Some(no_edge) = op.no_edge_f32() else {
                continue;
            };
            // In-domain sample values per algebra (reliabilities are in
            // (0,1]; boolean values in {0,1}; distances arbitrary positive).
            let samples: &[f32] = match op {
                OpKind::MinMul | OpKind::MaxMul => &[0.25, 0.5, 1.0],
                OpKind::OrAnd => &[0.0, 1.0],
                _ => &[0.5, 1.0, 7.0],
            };
            for &x in samples {
                for &w in samples {
                    let through = op.combine_f32(no_edge, w);
                    assert_eq!(
                        op.reduce_f32(x, through),
                        x,
                        "{op}: relaxing through a missing edge must not change {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn combine_identity_really_is_identity() {
        for op in ALL_OPS {
            let Some(id) = op.combine_identity_f32() else {
                assert_eq!(op, OpKind::PlusNorm);
                continue;
            };
            let samples: &[f32] = match op {
                OpKind::MinMul | OpKind::MaxMul => &[0.25, 0.5, 1.0],
                OpKind::OrAnd => &[0.0, 1.0],
                _ => &[0.5, 1.0, 7.0],
            };
            for &x in samples {
                assert_eq!(op.combine_f32(id, x), x, "{op} left ⊗-identity");
                assert_eq!(op.combine_f32(x, id), x, "{op} right ⊗-identity");
            }
        }
    }

    #[test]
    fn fma_matches_manual_composition() {
        for op in ALL_OPS {
            let (acc, a, b) = (1.5f32, 2.0, 0.5);
            assert_eq!(
                op.fma_f32(acc, a, b),
                op.reduce_f32(acc, op.combine_f32(a, b))
            );
        }
    }

    #[test]
    fn plus_norm_is_squared_distance() {
        assert_eq!(OpKind::PlusNorm.combine_f32(3.0, 1.0), 4.0);
        assert_eq!(OpKind::PlusNorm.combine_f32(1.0, 3.0), 4.0);
        assert_eq!(OpKind::PlusNorm.fma_f32(10.0, 3.0, 1.0), 14.0);
    }

    #[test]
    fn or_and_is_boolean() {
        let op = OpKind::OrAnd;
        assert_eq!(op.combine_f32(1.0, 1.0), 1.0);
        assert_eq!(op.combine_f32(1.0, 0.0), 0.0);
        assert_eq!(op.combine_f32(0.5, 2.0), 1.0, "non-zero is truthy");
        assert_eq!(op.reduce_f32(0.0, 0.0), 0.0);
        assert_eq!(op.reduce_f32(0.0, 3.0), 1.0);
    }

    #[test]
    fn idempotence_classification() {
        assert!(!OpKind::PlusMul.reduce_is_idempotent());
        assert!(!OpKind::PlusNorm.reduce_is_idempotent());
        for op in [
            OpKind::MinPlus,
            OpKind::MaxPlus,
            OpKind::MinMul,
            OpKind::MaxMul,
            OpKind::MinMax,
            OpKind::MaxMin,
            OpKind::OrAnd,
        ] {
            assert!(op.reduce_is_idempotent(), "{op}");
            assert!(op.is_closure_algebra(), "{op}");
        }
        assert!(!OpKind::PlusNorm.is_closure_algebra());
        assert!(!OpKind::PlusMul.is_closure_algebra());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(OpKind::MinMax.to_string(), "min-max");
    }

    #[test]
    fn metadata_is_total() {
        for op in ALL_OPS {
            assert!(!op.name().is_empty());
            assert!(op.ptx_mnemonic().starts_with("simd2."));
            assert!(!op.representative_algorithm().is_empty());
            let (r, c) = op.symbols();
            assert!(!r.is_empty() && !c.is_empty());
        }
    }
}
