//! AArch64 NEON `#[target_feature]` leaf kernels.
//!
//! Same structure and safety contract as the x86 leaves: one output
//! column per lane, the scalar kernel's exact tree pairing, scalar tail
//! columns. Lowering notes specific to this target:
//!
//! * `min`/`max` use `vminnmq_f32`/`vmaxnmq_f32` (`fminnm`/`fmaxnm`),
//!   which is the instruction Rust's scalar `f32::min`/`f32::max` lower
//!   to on AArch64 — the lane-wise semantics (NaN yields the other
//!   operand, `-0.0 < +0.0`) therefore match the host's scalar oracle by
//!   construction. The in-repo identity proptests verify this on every
//!   AArch64 host they run on.
//! * or-and truthiness is `!(v == 0.0)` via `vceqq_f32` + bitwise NOT
//!   (NaN compares unequal, so NaN lanes are truthy, matching scalar
//!   `v != 0.0`).

use core::arch::aarch64::*;

use crate::kernel::SemiringKernel;
use crate::typed::{MaxMin, MaxMul, MaxPlus, MinMax, MinMul, MinPlus, OrAnd, PlusMul, PlusNorm};

use super::{scalar, MAX_TILE};

/// `f32` lanes in a 128-bit NEON vector.
const LANES: usize = 4;

/// Lane mask where `v` is truthy (`v != 0.0`, NaN truthy).
///
/// # Safety
///
/// Requires NEON enabled on the calling stack.
#[inline(always)]
unsafe fn truthy_f32(v: float32x4_t) -> uint32x4_t {
    // SAFETY: caller provides NEON per this function's contract.
    unsafe { vmvnq_u32(vceqq_f32(v, vdupq_n_f32(0.0))) }
}

/// Materialises a lane mask as `1.0`/`0.0`.
///
/// # Safety
///
/// Requires NEON enabled on the calling stack.
#[inline(always)]
unsafe fn mask_to_bool(mask: uint32x4_t) -> float32x4_t {
    // SAFETY: caller provides NEON per this function's contract.
    unsafe { vreinterpretq_f32_u32(vandq_u32(mask, vreinterpretq_u32_f32(vdupq_n_f32(1.0)))) }
}

/// A semiring lowered to 128-bit NEON vector `⊗`/`⊕`.
///
/// Both methods must match the scalar `combine`/`reduce` lane-wise, bit
/// for bit.
pub(super) trait KernelNeon: SemiringKernel {
    /// Vector `⊗`.
    ///
    /// # Safety
    ///
    /// Requires NEON enabled on the calling stack.
    unsafe fn combine_v(a: float32x4_t, b: float32x4_t) -> float32x4_t;

    /// Vector `⊕`.
    ///
    /// # Safety
    ///
    /// Requires NEON enabled on the calling stack.
    unsafe fn reduce_v(a: float32x4_t, b: float32x4_t) -> float32x4_t;
}

/// Implements the NEON lowering for one semiring from lane-wise
/// expressions.
macro_rules! lower {
    ($kernel:ty,
     combine($ca:ident, $cb:ident) = $c:expr,
     reduce($ra:ident, $rb:ident) = $r:expr $(,)?) => {
        impl KernelNeon for $kernel {
            #[inline(always)]
            unsafe fn combine_v($ca: float32x4_t, $cb: float32x4_t) -> float32x4_t {
                // SAFETY: NEON on the calling stack per the trait contract.
                unsafe { $c }
            }
            #[inline(always)]
            unsafe fn reduce_v($ra: float32x4_t, $rb: float32x4_t) -> float32x4_t {
                // SAFETY: NEON on the calling stack per the trait contract.
                unsafe { $r }
            }
        }
    };
}

// plus-mul: separate mul and add — NOT fused, matching the scalar oracle.
lower!(
    PlusMul,
    combine(a, b) = vmulq_f32(a, b),
    reduce(a, b) = vaddq_f32(a, b),
);
lower!(
    MinPlus,
    combine(a, b) = vaddq_f32(a, b),
    reduce(a, b) = vminnmq_f32(a, b),
);
lower!(
    MaxPlus,
    combine(a, b) = vaddq_f32(a, b),
    reduce(a, b) = vmaxnmq_f32(a, b),
);
lower!(
    MinMul,
    combine(a, b) = vmulq_f32(a, b),
    reduce(a, b) = vminnmq_f32(a, b),
);
lower!(
    MaxMul,
    combine(a, b) = vmulq_f32(a, b),
    reduce(a, b) = vmaxnmq_f32(a, b),
);
lower!(
    MinMax,
    combine(a, b) = vmaxnmq_f32(a, b),
    reduce(a, b) = vminnmq_f32(a, b),
);
lower!(
    MaxMin,
    combine(a, b) = vminnmq_f32(a, b),
    reduce(a, b) = vmaxnmq_f32(a, b),
);
lower!(
    OrAnd,
    combine(a, b) = mask_to_bool(vandq_u32(truthy_f32(a), truthy_f32(b))),
    reduce(a, b) = mask_to_bool(vorrq_u32(truthy_f32(a), truthy_f32(b))),
);
lower!(
    PlusNorm,
    combine(a, b) = {
        let diff = vsubq_f32(a, b);
        vmulq_f32(diff, diff)
    },
    reduce(a, b) = vaddq_f32(a, b),
);

/// NEON tile kernel: 4 output columns per vector, scalar tail columns.
///
/// # Safety
///
/// * The CPU must support NEON.
/// * `a`, `b`, `c`, `d` must be flat row-major `n × n` slices with
///   `n ≤ MAX_TILE`.
#[target_feature(enable = "neon")]
pub(super) unsafe fn mmo_tile_neon<K: KernelNeon>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
) {
    let full = n - n % LANES;
    let mut partials = [vdupq_n_f32(0.0); MAX_TILE];
    for i in 0..n {
        let row = i * n;
        let mut j = 0;
        while j < full {
            for k in 0..n {
                let av = vdupq_n_f32(a[row + k]);
                // SAFETY: k < n and j + LANES <= n, so the 4-lane load at
                // k*n + j ends within the n*n slice.
                let bv = unsafe { vld1q_f32(b.as_ptr().add(k * n + j)) };
                // SAFETY: this leaf enables NEON.
                partials[k] = unsafe { K::combine_v(av, bv) };
            }
            // In-place tree halving: the exact pairing order of
            // `tree_reduce_in_place`, one whole level per pass.
            let mut len = n;
            while len > 1 {
                let pairs = len / 2;
                for p in 0..pairs {
                    // SAFETY: this leaf enables NEON.
                    partials[p] = unsafe { K::reduce_v(partials[2 * p], partials[2 * p + 1]) };
                }
                if len % 2 == 1 {
                    partials[pairs] = partials[len - 1];
                }
                len = len.div_ceil(2);
            }
            // SAFETY: row + j + LANES <= n*n (i < n, j + LANES <= n).
            let cv = unsafe { vld1q_f32(c.as_ptr().add(row + j)) };
            // SAFETY: this leaf enables NEON. Accumulator first, as in
            // the scalar kernel.
            let dv = unsafe { K::reduce_v(cv, partials[0]) };
            // SAFETY: same in-bounds argument as the `c` load; `d` is
            // exclusively borrowed.
            unsafe { vst1q_f32(d.as_mut_ptr().add(row + j), dv) };
            j += LANES;
        }
    }
    scalar::mmo_columns::<K>(a, b, c, d, n, full);
}
