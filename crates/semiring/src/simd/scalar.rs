//! Portable scalar tile kernel — the bit-identity oracle.
//!
//! This is the flat-slice form of the original `[f32; N]` tile loop: per
//! output element, combine the `k` operand pairs into a stack buffer,
//! tree-reduce it in place, and fold the accumulator element in last.
//! Every vector leaf must reproduce this function's results bit for bit;
//! the vector leaves also call [`mmo_columns`] directly for the tail
//! columns that do not fill a whole vector.

use crate::kernel::{tree_reduce_in_place, SemiringKernel};

use super::MAX_TILE;

/// Scalar `d = c ⊕ (a ⊗ b)` over flat row-major `n × n` tiles.
///
/// Shape preconditions (`n ≤ MAX_TILE`, slices of length `n * n`) are
/// asserted by [`super::mmo_tile`] before any leaf is entered.
#[inline]
pub(crate) fn mmo_tile<K: SemiringKernel>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
) {
    mmo_columns::<K>(a, b, c, d, n, 0);
}

/// Computes output columns `j0..n` of the tile with the scalar kernel —
/// the whole tile for `j0 == 0`, or just the tail lanes a vector leaf
/// left over. Column subsets of independent lanes are trivially
/// bit-identical to computing the full tile.
#[inline]
pub(super) fn mmo_columns<K: SemiringKernel>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
    j0: usize,
) {
    if j0 >= n {
        return;
    }
    let mut partials = [K::IDENTITY; MAX_TILE];
    for i in 0..n {
        let row = i * n;
        for j in j0..n {
            for (k, p) in partials[..n].iter_mut().enumerate() {
                *p = K::combine(a[row + k], b[k * n + j]);
            }
            let reduced = tree_reduce_in_place::<K>(&mut partials[..n]);
            d[row + j] = K::reduce(c[row + j], reduced);
        }
    }
}
