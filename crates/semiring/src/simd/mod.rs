//! Vectorized semiring tile kernels with runtime CPU-feature dispatch.
//!
//! The inner loop of every tile MMO is `d[i][j] = c[i][j] ⊕ ⊕ₖ (a[i][k] ⊗
//! b[k][j])` with the `⊕`-reduction over `k` performed as a balanced
//! binary tree ([`crate::kernel::tree_reduce_in_place`]). That computation
//! is embarrassingly parallel across output *columns* `j`, so the vector
//! kernels here keep one vector lane per output column: each `k` step
//! broadcasts `a[i][k]`, loads a contiguous row slice of `B`, applies the
//! vector `⊗`, and the partial vectors are tree-halved in exactly the
//! scalar pairing order. Lanes never interact, so every lane reproduces
//! the scalar kernel's operation order — and therefore its rounding —
//! bit for bit.
//!
//! # Dispatch
//!
//! [`CpuFeatures::detect`] probes the host once (cached); [`selected_isa`]
//! picks the widest supported [`KernelIsa`], honouring the
//! `SIMD2_FORCE_SCALAR` environment variable (read once per process).
//! [`SelectedKernel`] freezes the choice at construction time — one
//! selection per backend, zero dynamic feature tests on the tile path —
//! and [`TileKernel::mmo_tile`] is the safe entry: it validates slice
//! shapes and re-checks feature support before entering a vector leaf, so
//! a deserialized or hand-built ISA value can never reach an instruction
//! the host lacks (it falls back to the scalar kernel instead).
//!
//! # Safety contract
//!
//! All `unsafe` in this crate lives in the `x86`/`neon` submodules, as
//! `#[target_feature]` leaf functions with two documented preconditions:
//! the feature is present on the host (checked by the dispatcher), and
//! the four slices are `n × n` row-major with `n ≤ MAX_TILE` (checked by
//! [`mmo_tile`]). Leaves are compiled under `#[deny(unsafe_op_in_unsafe_fn)]`;
//! every interior `unsafe` block carries its own justification.
//!
//! # Bit identity
//!
//! The scalar kernel is the oracle. The vector lowerings are chosen to
//! match it exactly, *not* to be fastest-possible: plus-mul uses separate
//! multiply and add (a fused FMA would round once instead of twice and
//! diverge from the scalar oracle), and the min/max semirings wrap
//! `min_ps`/`max_ps` in a NaN-aware blend reproducing Rust's
//! `f32::min`/`f32::max` operand semantics. See DESIGN.md § "SIMD kernel
//! dispatch" for the full lowering table.

#[cfg(target_arch = "aarch64")]
mod neon;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::fmt;
use std::sync::OnceLock;

use crate::kernel::SemiringKernel;
use crate::typed::{MaxMin, MaxMul, MaxPlus, MinMax, MinMul, MinPlus, OrAnd, PlusMul, PlusNorm};
use crate::OpKind;

/// Largest tile side the kernels handle: bounds the stack scratch of
/// partial vectors ([`mmo_tile`] rejects larger `n`). The ISA-visible
/// tile is 16×16, so 64 leaves generous headroom for tests and future
/// shapes without growing the leaf frames past a few KiB.
pub const MAX_TILE: usize = 64;

/// CPU features relevant to kernel selection, probed at runtime.
///
/// Only the features the kernel layer actually keys on are represented;
/// `fma` is probed because the AVX2 tier requires the full
/// Haswell-generation feature pair even though the plus-mul lowering
/// deliberately does not fuse (see the module docs on bit identity).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CpuFeatures {
    /// AVX-512 Foundation (16-lane `f32` vectors).
    pub avx512f: bool,
    /// AVX2 (8-lane `f32` vectors).
    pub avx2: bool,
    /// Fused multiply-add (gates the AVX2 tier alongside `avx2`).
    pub fma: bool,
    /// AArch64 Advanced SIMD (4-lane `f32` vectors).
    pub neon: bool,
}

impl CpuFeatures {
    /// Probes the executing CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            Self {
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                neon: false,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            Self {
                neon: std::arch::is_aarch64_feature_detected!("neon"),
                ..Self::default()
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Self::default()
        }
    }
}

/// The detected features of this host, probed once per process.
pub fn cpu_features() -> CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    *FEATURES.get_or_init(CpuFeatures::detect)
}

/// Instruction set a tile kernel executes with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelIsa {
    /// 16-lane AVX-512F kernels (one vector per 16-wide tile row).
    Avx512,
    /// 8-lane AVX2 kernels (requires FMA to be present as well).
    Avx2,
    /// 4-lane AArch64 NEON kernels.
    Neon,
    /// The portable scalar kernel — the bit-identity oracle.
    Scalar,
}

impl KernelIsa {
    /// Every ISA tier, widest first (the selection preference order).
    pub const ALL: [KernelIsa; 4] = [
        KernelIsa::Avx512,
        KernelIsa::Avx2,
        KernelIsa::Neon,
        KernelIsa::Scalar,
    ];

    /// Stable lower-case name used in telemetry and bench output.
    pub fn name(self) -> &'static str {
        match self {
            KernelIsa::Avx512 => "avx512",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Neon => "neon",
            KernelIsa::Scalar => "scalar",
        }
    }

    /// `f32` lanes per vector register on this tier.
    pub fn lanes(self) -> usize {
        match self {
            KernelIsa::Avx512 => 16,
            KernelIsa::Avx2 => 8,
            KernelIsa::Neon => 4,
            KernelIsa::Scalar => 1,
        }
    }

    /// Whether the executing CPU can run this tier.
    pub fn is_supported(self) -> bool {
        let f = cpu_features();
        match self {
            KernelIsa::Avx512 => f.avx512f,
            KernelIsa::Avx2 => f.avx2 && f.fma,
            KernelIsa::Neon => f.neon,
            KernelIsa::Scalar => true,
        }
    }
}

impl fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn force_scalar() -> bool {
    std::env::var_os("SIMD2_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The widest ISA the host supports, honouring `SIMD2_FORCE_SCALAR`.
///
/// Computed once per process and cached: backends constructed afterwards
/// all observe the same choice, and the environment variable is only read
/// at first use (set it before constructing any backend).
pub fn selected_isa() -> KernelIsa {
    static SELECTED: OnceLock<KernelIsa> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if force_scalar() {
            return KernelIsa::Scalar;
        }
        KernelIsa::ALL
            .into_iter()
            .find(|isa| isa.is_supported())
            .unwrap_or(KernelIsa::Scalar)
    })
}

/// A tile-granularity MMO kernel: computes `D = C ⊕ (A ⊗ B)` over flat
/// row-major `n × n` slices with the datapath's exact reduction order.
///
/// This is the seam the execution layers call instead of open-coding the
/// scalar loop; [`SelectedKernel`] is the production implementation.
pub trait TileKernel {
    /// The instruction set this kernel executes with.
    fn isa(&self) -> KernelIsa;

    /// Computes `d = c ⊕ (a ⊗ b)` where all four slices are flat
    /// row-major `n × n` tiles. Operands must already be quantised.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `n * n` or `n > MAX_TILE`.
    fn mmo_tile(&self, op: OpKind, a: &[f32], b: &[f32], c: &[f32], d: &mut [f32], n: usize);
}

/// The runtime-selected tile kernel: freezes a [`KernelIsa`] choice at
/// construction (one selection per backend, per the paper's
/// configure-once datapath) and dispatches every tile to that tier's
/// monomorphized leaves.
///
/// # Example
///
/// ```
/// use simd2_semiring::simd::{KernelIsa, SelectedKernel, TileKernel};
/// use simd2_semiring::OpKind;
///
/// let simd = SelectedKernel::select();
/// let scalar = SelectedKernel::with_isa(KernelIsa::Scalar);
/// let (a, b, c) = ([1.0f32, 2.0, 3.0, 4.0], [5.0f32, 6.0, 7.0, 8.0], [0.5f32; 4]);
/// let (mut d_simd, mut d_scalar) = ([0.0f32; 4], [0.0f32; 4]);
/// simd.mmo_tile(OpKind::MinPlus, &a, &b, &c, &mut d_simd, 2);
/// scalar.mmo_tile(OpKind::MinPlus, &a, &b, &c, &mut d_scalar, 2);
/// assert_eq!(d_simd, d_scalar); // bit-identical on every tier
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SelectedKernel {
    isa: KernelIsa,
}

impl SelectedKernel {
    /// The widest kernel the host supports (honours `SIMD2_FORCE_SCALAR`).
    pub fn select() -> Self {
        Self {
            isa: selected_isa(),
        }
    }

    /// A kernel pinned to `isa`, downgraded to [`KernelIsa::Scalar`] if
    /// the host cannot execute that tier — the constructor-side half of
    /// the detection guard.
    pub fn with_isa(isa: KernelIsa) -> Self {
        Self {
            isa: if isa.is_supported() {
                isa
            } else {
                KernelIsa::Scalar
            },
        }
    }

    /// The portable scalar oracle kernel.
    pub fn scalar() -> Self {
        Self {
            isa: KernelIsa::Scalar,
        }
    }
}

impl Default for SelectedKernel {
    fn default() -> Self {
        Self::select()
    }
}

impl TileKernel for SelectedKernel {
    fn isa(&self) -> KernelIsa {
        self.isa
    }

    fn mmo_tile(&self, op: OpKind, a: &[f32], b: &[f32], c: &[f32], d: &mut [f32], n: usize) {
        mmo_tile(self.isa, op, a, b, c, d, n)
    }
}

/// Free-function form of [`TileKernel::mmo_tile`] with an explicit ISA.
///
/// Validates shapes, resolves `op` to a monomorphized kernel once, and
/// enters the ISA's leaf — re-verifying hardware support first, so an
/// unsupported `isa` value degrades to the scalar kernel rather than
/// executing an illegal instruction.
///
/// # Panics
///
/// Panics if any slice length differs from `n * n` or `n > MAX_TILE`.
pub fn mmo_tile(
    isa: KernelIsa,
    op: OpKind,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
) {
    assert!(n <= MAX_TILE, "tile side {n} exceeds MAX_TILE ({MAX_TILE})");
    let nn = n * n;
    assert_eq!(a.len(), nn, "operand A is not {n}×{n}");
    assert_eq!(b.len(), nn, "operand B is not {n}×{n}");
    assert_eq!(c.len(), nn, "accumulator C is not {n}×{n}");
    assert_eq!(d.len(), nn, "output D is not {n}×{n}");
    match op {
        OpKind::PlusMul => run::<PlusMul>(isa, a, b, c, d, n),
        OpKind::MinPlus => run::<MinPlus>(isa, a, b, c, d, n),
        OpKind::MaxPlus => run::<MaxPlus>(isa, a, b, c, d, n),
        OpKind::MinMul => run::<MinMul>(isa, a, b, c, d, n),
        OpKind::MaxMul => run::<MaxMul>(isa, a, b, c, d, n),
        OpKind::MinMax => run::<MinMax>(isa, a, b, c, d, n),
        OpKind::MaxMin => run::<MaxMin>(isa, a, b, c, d, n),
        OpKind::OrAnd => run::<OrAnd>(isa, a, b, c, d, n),
        OpKind::PlusNorm => run::<PlusNorm>(isa, a, b, c, d, n),
    }
}

/// Quantises every element of `xs` through fp16 in place, vectorized
/// when `isa` is a vector tier the host supports.
///
/// Bit-identical to [`crate::precision::quantize_f16_slice`] on every
/// path — the AVX2 lowering has been exhaustively verified against the
/// scalar quantiser over all 2³² `f32` bit patterns (NaN payloads,
/// subnormals and overflow included), and the identity proptests keep
/// pinning it. A scalar `isa` always takes the scalar loop, so the
/// forced-scalar leg exercises the oracle end to end.
pub fn quantize_f16_slice(isa: KernelIsa, xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if isa.lanes() > 1 && cpu_features().avx2 {
        // SAFETY: the guard proved avx2 is available on this CPU.
        unsafe { x86::quantize_f16_avx2(xs) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    crate::precision::quantize_f16_slice(xs);
}

/// Kernels lowered on every ISA tier this build knows about. Blanket-
/// implemented for all nine semirings; exists so [`run`] can name one
/// bound that is right for whichever architecture is being compiled.
#[cfg(target_arch = "x86_64")]
trait ArchKernel: SemiringKernel + x86::Kernel256 + x86::Kernel512 {}
#[cfg(target_arch = "x86_64")]
impl<K: SemiringKernel + x86::Kernel256 + x86::Kernel512> ArchKernel for K {}

#[cfg(target_arch = "aarch64")]
trait ArchKernel: SemiringKernel + neon::KernelNeon {}
#[cfg(target_arch = "aarch64")]
impl<K: SemiringKernel + neon::KernelNeon> ArchKernel for K {}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
trait ArchKernel: SemiringKernel {}
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
impl<K: SemiringKernel> ArchKernel for K {}

/// The detection-guarded entry to the `#[target_feature]` leaves: an arm
/// is taken only when the runtime probe confirms the host executes that
/// tier, which is exactly the precondition the leaf's safety contract
/// requires. Shape preconditions were asserted by [`mmo_tile`].
#[allow(clippy::needless_pass_by_ref_mut)] // `d` is written by every arm
fn run<K: ArchKernel>(isa: KernelIsa, a: &[f32], b: &[f32], c: &[f32], d: &mut [f32], n: usize) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proved avx512f is available on this CPU, and
        // `mmo_tile` asserted the `n × n` slice shapes with n ≤ MAX_TILE.
        KernelIsa::Avx512 if cpu_features().avx512f => unsafe {
            x86::mmo_tile_avx512::<K>(a, b, c, d, n)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the guard proved avx2 is available on this CPU, and
        // `mmo_tile` asserted the `n × n` slice shapes with n ≤ MAX_TILE.
        KernelIsa::Avx2 if cpu_features().avx2 => unsafe { x86::mmo_tile_avx2::<K>(a, b, c, d, n) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: the guard proved neon is available on this CPU, and
        // `mmo_tile` asserted the `n × n` slice shapes with n ≤ MAX_TILE.
        KernelIsa::Neon if cpu_features().neon => unsafe {
            neon::mmo_tile_neon::<K>(a, b, c, d, n)
        },
        _ => scalar::mmo_tile::<K>(a, b, c, d, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPS;

    #[test]
    fn scalar_is_always_supported_and_selected_isa_is_supported() {
        assert!(KernelIsa::Scalar.is_supported());
        assert!(selected_isa().is_supported());
        assert!(SelectedKernel::select().isa().is_supported());
    }

    #[test]
    fn with_isa_downgrades_unsupported_tiers_to_scalar() {
        for isa in KernelIsa::ALL {
            let k = SelectedKernel::with_isa(isa);
            if isa.is_supported() {
                assert_eq!(k.isa(), isa);
            } else {
                assert_eq!(k.isa(), KernelIsa::Scalar);
            }
        }
    }

    #[test]
    fn names_and_lanes_are_stable() {
        assert_eq!(KernelIsa::Avx512.name(), "avx512");
        assert_eq!(KernelIsa::Avx2.name(), "avx2");
        assert_eq!(KernelIsa::Neon.name(), "neon");
        assert_eq!(KernelIsa::Scalar.name(), "scalar");
        assert_eq!(KernelIsa::Avx512.lanes(), 16);
        assert_eq!(KernelIsa::Avx2.lanes(), 8);
        assert_eq!(KernelIsa::Neon.lanes(), 4);
        assert_eq!(KernelIsa::Scalar.lanes(), 1);
        assert_eq!(KernelIsa::Avx2.to_string(), "avx2");
    }

    #[test]
    fn every_supported_tier_matches_scalar_on_a_smoke_tile() {
        // The exhaustive identity coverage lives in the proptest suite;
        // this is the in-crate smoke check over all nine ops.
        let n = 16;
        let a: Vec<f32> = (0..n * n).map(|i| ((i % 13) as f32) * 0.25 - 1.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect();
        for op in ALL_OPS {
            let c: Vec<f32> = (0..n * n)
                .map(|i| {
                    if i % 5 == 0 {
                        op.reduce_identity_f32()
                    } else {
                        (i % 3) as f32 - 1.0
                    }
                })
                .collect();
            let mut want = vec![0.0f32; n * n];
            mmo_tile(KernelIsa::Scalar, op, &a, &b, &c, &mut want, n);
            for isa in KernelIsa::ALL {
                if !isa.is_supported() {
                    continue;
                }
                let mut got = vec![0.0f32; n * n];
                mmo_tile(isa, op, &a, &b, &c, &mut got, n);
                let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
                let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "{op} on {isa}");
            }
        }
    }

    #[test]
    fn vector_quantize_matches_scalar_on_boundary_neighbourhoods() {
        // Dense scans around every case boundary of the fp16 round trip:
        // zero/subnormal (2^-25), subnormal/normal (2^-14), rounding
        // carry into infinity, and the NaN payload rewrite. The AVX2
        // lowering was verified exhaustively over all 2^32 patterns
        // offline; this keeps the contract pinned in CI.
        let mut patterns: Vec<u32> = Vec::new();
        for base in [
            0x0000_0000u32, // ±0 and smallest subnormals
            0x3300_0000,    // zero/subnormal-target boundary
            0x3880_0000,    // subnormal/normal-target boundary
            0x3C00_0000,    // 1.0 neighbourhood
            0x4780_0000,    // overflow-to-infinity boundary
            0x7F80_0000,    // infinity and NaN space
            0x7FC0_0000,    // quiet NaNs
        ] {
            for off in 0..512u32 {
                patterns.push(base.wrapping_add(off).wrapping_sub(256));
            }
        }
        // Every f16-exact value's neighbourhood, coarsely.
        for h in (0..=0xFFFFu32).step_by(97) {
            patterns.push(h << 13);
        }
        for sign in [0u32, 0x8000_0000] {
            let mut xs: Vec<f32> = patterns.iter().map(|&p| f32::from_bits(p | sign)).collect();
            let want: Vec<u32> = xs
                .iter()
                .map(|&x| crate::precision::quantize_f16(x).to_bits())
                .collect();
            for isa in KernelIsa::ALL {
                if !isa.is_supported() {
                    continue;
                }
                let mut got = xs.clone();
                quantize_f16_slice(isa, &mut got);
                let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got_bits, want, "sign={sign:#x} isa={isa}");
            }
            // Odd length exercises the scalar tail of the vector path.
            xs.truncate(xs.len() - 3);
            let mut got = xs.clone();
            quantize_f16_slice(selected_isa(), &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), *w);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_TILE")]
    fn oversized_tiles_are_rejected() {
        let n = MAX_TILE + 1;
        let buf = vec![0.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        mmo_tile(
            KernelIsa::Scalar,
            OpKind::PlusMul,
            &buf,
            &buf,
            &buf,
            &mut d,
            n,
        );
    }

    #[test]
    #[should_panic(expected = "operand A")]
    fn shape_mismatches_are_rejected() {
        let buf = vec![0.0f32; 9];
        let mut d = vec![0.0f32; 16];
        mmo_tile(
            KernelIsa::Scalar,
            OpKind::PlusMul,
            &buf,
            &d.clone(),
            &d.clone(),
            &mut d,
            4,
        );
    }
}
