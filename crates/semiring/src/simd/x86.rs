//! AVX2 / AVX-512F `#[target_feature]` leaf kernels for x86-64.
//!
//! # Safety contract (every leaf)
//!
//! * The caller has verified at runtime that the CPU supports the leaf's
//!   target feature (`super::run` only enters a leaf behind a
//!   `cpu_features()` guard).
//! * `a`, `b`, `c` and `d` are flat row-major `n × n` slices and
//!   `n ≤ MAX_TILE` (asserted by `super::mmo_tile`). All pointer
//!   arithmetic below stays inside `n * n` elements.
//!
//! # Bit identity
//!
//! Each lane holds one output column and replays the scalar kernel's
//! exact operation order, so bit identity reduces to each vector `⊗`/`⊕`
//! matching its scalar counterpart lane-wise:
//!
//! * `+`, `×`, `(a-b)²` — IEEE operations, identical by definition.
//!   Plus-mul deliberately does **not** fuse into FMA: the scalar oracle
//!   rounds after the multiply and again after the add, and a fused
//!   kernel would not.
//! * `min`/`max` — `vminps`/`vmaxps` alone return the *second* operand
//!   on any NaN and have their own ±0 preference, which does not match
//!   Rust's `f32::min`/`f32::max`. [`min_ps`]/[`max_ps`] wrap them in a
//!   NaN-aware blend that reproduces the scalar semantics exactly
//!   (validated lane-wise against `f32::min`/`f32::max` over NaN
//!   payloads, sNaN, ±0, infinities and denormals).
//! * or-and — truthiness is `x != 0.0` with NaN truthy, which is the
//!   unordered-or-unequal predicate `_CMP_NEQ_UQ`; the boolean result is
//!   materialised as `1.0`/`0.0` by masking a splat of `1.0`.

use core::arch::x86_64::*;

use crate::kernel::SemiringKernel;
use crate::typed::{MaxMin, MaxMul, MaxPlus, MinMax, MinMul, MinPlus, OrAnd, PlusMul, PlusNorm};

use super::{scalar, MAX_TILE};

/// `f32` lanes in a 256-bit vector.
const LANES256: usize = 8;
/// `f32` lanes in a 512-bit vector.
const LANES512: usize = 16;

// ---------------------------------------------------------------------------
// Lane-wise helpers shared by the per-semiring lowerings.
//
// All helpers are `unsafe fn` with the single precondition that the
// enclosing call stack has the matching target feature enabled; they are
// `#[inline(always)]` so they dissolve into the `#[target_feature]`
// leaves that call them.
// ---------------------------------------------------------------------------

/// Lane-wise `a.min(b)` with Rust `f32::min` semantics (NaN in one
/// operand yields the other; both-NaN and ±0 preferences match the
/// scalar lowering).
///
/// # Safety
///
/// Requires AVX (guaranteed by the AVX2 leaves).
#[inline(always)]
unsafe fn min_ps(a: __m256, b: __m256) -> __m256 {
    // SAFETY: caller provides AVX per this function's contract.
    unsafe {
        let a_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(a, a);
        _mm256_blendv_ps(_mm256_min_ps(b, a), b, a_nan)
    }
}

/// Lane-wise `a.max(b)` with Rust `f32::max` semantics.
///
/// # Safety
///
/// Requires AVX (guaranteed by the AVX2 leaves).
#[inline(always)]
unsafe fn max_ps(a: __m256, b: __m256) -> __m256 {
    // SAFETY: caller provides AVX per this function's contract.
    unsafe {
        let a_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(a, a);
        _mm256_blendv_ps(_mm256_max_ps(b, a), b, a_nan)
    }
}

/// All-ones lane mask where `v` is truthy (`v != 0.0`, NaN truthy).
///
/// # Safety
///
/// Requires AVX (guaranteed by the AVX2 leaves).
#[inline(always)]
unsafe fn truthy_ps(v: __m256) -> __m256 {
    // SAFETY: caller provides AVX per this function's contract.
    unsafe { _mm256_cmp_ps::<_CMP_NEQ_UQ>(v, _mm256_setzero_ps()) }
}

/// Lane-wise `a.min(b)` with Rust `f32::min` semantics, 512-bit form.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by the AVX-512 leaves).
#[inline(always)]
unsafe fn min_ps512(a: __m512, b: __m512) -> __m512 {
    // SAFETY: caller provides AVX-512F per this function's contract.
    unsafe {
        let a_nan = _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(a, a);
        _mm512_mask_blend_ps(a_nan, _mm512_min_ps(b, a), b)
    }
}

/// Lane-wise `a.max(b)` with Rust `f32::max` semantics, 512-bit form.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by the AVX-512 leaves).
#[inline(always)]
unsafe fn max_ps512(a: __m512, b: __m512) -> __m512 {
    // SAFETY: caller provides AVX-512F per this function's contract.
    unsafe {
        let a_nan = _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(a, a);
        _mm512_mask_blend_ps(a_nan, _mm512_max_ps(b, a), b)
    }
}

/// Lane mask where `v` is truthy (`v != 0.0`, NaN truthy), 512-bit form.
///
/// # Safety
///
/// Requires AVX-512F (guaranteed by the AVX-512 leaves).
#[inline(always)]
unsafe fn truthy_ps512(v: __m512) -> __mmask16 {
    // SAFETY: caller provides AVX-512F per this function's contract.
    unsafe { _mm512_cmp_ps_mask::<_CMP_NEQ_UQ>(v, _mm512_setzero_ps()) }
}

/// Lane-wise fp16 quantisation (`f32 → binary16 → f32` round trip with
/// round-to-nearest-even), bit-identical to
/// [`crate::precision::quantize_f16`] — **exhaustively verified against
/// it over all 2³² `f32` bit patterns**, including NaN payload rewriting,
/// subnormal targets and overflow-to-infinity.
///
/// Entirely integer arithmetic except one exact power-of-two float
/// multiply: `h << 13` reinterpreted as `f32` carries the f16 exponent
/// field in place, and scaling by `2¹¹²` rebiases normals exactly while
/// renormalising subnormal f16 values (both products are powers of two
/// times representable values, so no rounding occurs).
///
/// # Safety
///
/// Requires AVX2 enabled on the calling stack.
#[inline(always)]
unsafe fn quantize_f16_ps(v: __m256) -> __m256 {
    // SAFETY: caller provides AVX2 per this function's contract.
    unsafe {
        let bits = _mm256_castps_si256(v);
        let sign = _mm256_and_si256(bits, _mm256_set1_epi32(i32::MIN));
        let abs = _mm256_and_si256(bits, _mm256_set1_epi32(0x7FFF_FFFF));

        // Normal/overflow target (|x| >= 2^-14): RNE-fold 13 mantissa
        // bits with the carry propagating naturally into the exponent,
        // rebias 127→15, clamp to the infinity encoding.
        let tie = _mm256_and_si256(_mm256_srli_epi32::<13>(abs), _mm256_set1_epi32(1));
        let rounded = _mm256_add_epi32(_mm256_add_epi32(abs, _mm256_set1_epi32(0xFFF)), tie);
        let h_norm = _mm256_sub_epi32(_mm256_srli_epi32::<13>(rounded), _mm256_set1_epi32(0x1C000));
        let h_norm = _mm256_min_epi32(h_norm, _mm256_set1_epi32(0x7C00));

        // Subnormal target (2^-25 <= |x| < 2^-14): variable right shift
        // of the 24-bit significand with RNE on the shifted-out bits.
        let exp = _mm256_srli_epi32::<23>(abs);
        let shift = _mm256_sub_epi32(_mm256_set1_epi32(126), exp);
        let sig = _mm256_or_si256(
            _mm256_and_si256(abs, _mm256_set1_epi32(0x7F_FFFF)),
            _mm256_set1_epi32(0x80_0000),
        );
        let shifted = _mm256_srlv_epi32(sig, shift);
        let low_mask = _mm256_sub_epi32(
            _mm256_sllv_epi32(_mm256_set1_epi32(1), shift),
            _mm256_set1_epi32(1),
        );
        let rem = _mm256_and_si256(sig, low_mask);
        let halfway_m1 = _mm256_sub_epi32(
            _mm256_srli_epi32::<1>(_mm256_add_epi32(low_mask, _mm256_set1_epi32(1))),
            _mm256_set1_epi32(1),
        );
        let stie = _mm256_and_si256(shifted, _mm256_set1_epi32(1));
        let srnd = _mm256_srlv_epi32(
            _mm256_add_epi32(_mm256_add_epi32(rem, halfway_m1), stie),
            shift,
        );
        let h_sub = _mm256_add_epi32(shifted, srnd);

        // Select the f16 magnitude: normal, subnormal, or zero
        // (|x| < 2^-25 rounds to signed zero even at the halfway point).
        let m_norm = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x387F_FFFF));
        let m_nonzero = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x32FF_FFFF));
        let h = _mm256_blendv_epi8(_mm256_and_si256(h_sub, m_nonzero), h_norm, m_norm);

        // Decode back to f32: one exact scaling multiply, then pin the
        // infinity encoding (2^16 from the multiply) to a real infinity.
        let f = _mm256_mul_ps(
            _mm256_castsi256_ps(_mm256_slli_epi32::<13>(h)),
            _mm256_castsi256_ps(_mm256_set1_epi32(0x7780_0000)),
        );
        let fbits = _mm256_castps_si256(f);
        let m_inf = _mm256_cmpeq_epi32(h, _mm256_set1_epi32(0x7C00));
        let fbits = _mm256_blendv_epi8(fbits, _mm256_set1_epi32(0x7F80_0000), m_inf);
        let out = _mm256_or_si256(sign, fbits);

        // NaN lanes: the composed payload rewrite of the scalar round
        // trip (quiet bit + top-10 payload bits + the sticky low bits
        // both conversion directions set).
        let m_nan = _mm256_cmpgt_epi32(abs, _mm256_set1_epi32(0x7F80_0000));
        let nan_man = _mm256_or_si256(
            _mm256_and_si256(_mm256_srli_epi32::<13>(abs), _mm256_set1_epi32(0x3FF)),
            _mm256_set1_epi32(0x201),
        );
        let nan_out = _mm256_or_si256(
            _mm256_or_si256(sign, _mm256_set1_epi32(0x7F80_0000)),
            _mm256_or_si256(_mm256_slli_epi32::<13>(nan_man), _mm256_set1_epi32(1)),
        );
        _mm256_castsi256_ps(_mm256_blendv_epi8(out, nan_out, m_nan))
    }
}

/// Quantises a slice through fp16 in place, 8 lanes at a time, with the
/// scalar quantiser on the tail. Bit-identical to
/// [`crate::precision::quantize_f16_slice`].
///
/// # Safety
///
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn quantize_f16_avx2(xs: &mut [f32]) {
    let full = xs.len() - xs.len() % LANES256;
    let mut i = 0;
    while i < full {
        // SAFETY: i + LANES256 <= xs.len(); `xs` is exclusively borrowed.
        let v = unsafe { _mm256_loadu_ps(xs.as_ptr().add(i)) };
        // SAFETY: this leaf enables AVX2.
        let q = unsafe { quantize_f16_ps(v) };
        // SAFETY: same in-bounds argument as the load.
        unsafe { _mm256_storeu_ps(xs.as_mut_ptr().add(i), q) };
        i += LANES256;
    }
    for x in &mut xs[full..] {
        *x = crate::precision::quantize_f16(*x);
    }
}

// ---------------------------------------------------------------------------
// Per-semiring vector lowerings.
// ---------------------------------------------------------------------------

/// A semiring lowered to 256-bit (AVX2) vector `⊗`/`⊕`.
///
/// Both methods must match the scalar `combine`/`reduce` lane-wise, bit
/// for bit.
pub(super) trait Kernel256: SemiringKernel {
    /// Vector `⊗`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 enabled on the calling stack.
    unsafe fn combine_v(a: __m256, b: __m256) -> __m256;

    /// Vector `⊕`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 enabled on the calling stack.
    unsafe fn reduce_v(a: __m256, b: __m256) -> __m256;
}

/// A semiring lowered to 512-bit (AVX-512F) vector `⊗`/`⊕`.
///
/// Both methods must match the scalar `combine`/`reduce` lane-wise, bit
/// for bit.
pub(super) trait Kernel512: SemiringKernel {
    /// Vector `⊗`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F enabled on the calling stack.
    unsafe fn combine_v(a: __m512, b: __m512) -> __m512;

    /// Vector `⊕`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F enabled on the calling stack.
    unsafe fn reduce_v(a: __m512, b: __m512) -> __m512;
}

/// Implements both vector lowerings for one semiring from lane-wise
/// expressions shared across widths.
macro_rules! lower {
    ($kernel:ty,
     combine($ca:ident, $cb:ident) = $c256:expr, $c512:expr,
     reduce($ra:ident, $rb:ident) = $r256:expr, $r512:expr $(,)?) => {
        impl Kernel256 for $kernel {
            #[inline(always)]
            unsafe fn combine_v($ca: __m256, $cb: __m256) -> __m256 {
                // SAFETY: AVX2 on the calling stack per the trait contract.
                unsafe { $c256 }
            }
            #[inline(always)]
            unsafe fn reduce_v($ra: __m256, $rb: __m256) -> __m256 {
                // SAFETY: AVX2 on the calling stack per the trait contract.
                unsafe { $r256 }
            }
        }
        impl Kernel512 for $kernel {
            #[inline(always)]
            unsafe fn combine_v($ca: __m512, $cb: __m512) -> __m512 {
                // SAFETY: AVX-512F on the calling stack per the trait contract.
                unsafe { $c512 }
            }
            #[inline(always)]
            unsafe fn reduce_v($ra: __m512, $rb: __m512) -> __m512 {
                // SAFETY: AVX-512F on the calling stack per the trait contract.
                unsafe { $r512 }
            }
        }
    };
}

// plus-mul: separate mul and add — NOT fused (see module docs).
lower!(
    PlusMul,
    combine(a, b) = _mm256_mul_ps(a, b),
    _mm512_mul_ps(a, b),
    reduce(a, b) = _mm256_add_ps(a, b),
    _mm512_add_ps(a, b),
);
lower!(
    MinPlus,
    combine(a, b) = _mm256_add_ps(a, b),
    _mm512_add_ps(a, b),
    reduce(a, b) = min_ps(a, b),
    min_ps512(a, b),
);
lower!(
    MaxPlus,
    combine(a, b) = _mm256_add_ps(a, b),
    _mm512_add_ps(a, b),
    reduce(a, b) = max_ps(a, b),
    max_ps512(a, b),
);
lower!(
    MinMul,
    combine(a, b) = _mm256_mul_ps(a, b),
    _mm512_mul_ps(a, b),
    reduce(a, b) = min_ps(a, b),
    min_ps512(a, b),
);
lower!(
    MaxMul,
    combine(a, b) = _mm256_mul_ps(a, b),
    _mm512_mul_ps(a, b),
    reduce(a, b) = max_ps(a, b),
    max_ps512(a, b),
);
lower!(
    MinMax,
    combine(a, b) = max_ps(a, b),
    max_ps512(a, b),
    reduce(a, b) = min_ps(a, b),
    min_ps512(a, b),
);
lower!(
    MaxMin,
    combine(a, b) = min_ps(a, b),
    min_ps512(a, b),
    reduce(a, b) = max_ps(a, b),
    max_ps512(a, b),
);
// or-and: packed-mask bitwise ops. `reduce` inputs are arbitrary f32
// (any non-zero is truthy), so both sides re-derive truthiness masks.
lower!(
    OrAnd,
    combine(a, b) = _mm256_and_ps(
        _mm256_and_ps(truthy_ps(a), truthy_ps(b)),
        _mm256_set1_ps(1.0),
    ),
    _mm512_maskz_mov_ps(truthy_ps512(a) & truthy_ps512(b), _mm512_set1_ps(1.0)),
    reduce(a, b) = _mm256_and_ps(
        _mm256_or_ps(truthy_ps(a), truthy_ps(b)),
        _mm256_set1_ps(1.0),
    ),
    _mm512_maskz_mov_ps(truthy_ps512(a) | truthy_ps512(b), _mm512_set1_ps(1.0)),
);
// plus-norm: (a - b)² then sum.
lower!(
    PlusNorm,
    combine(a, b) = {
        let diff = _mm256_sub_ps(a, b);
        _mm256_mul_ps(diff, diff)
    },
    {
        let diff = _mm512_sub_ps(a, b);
        _mm512_mul_ps(diff, diff)
    },
    reduce(a, b) = _mm256_add_ps(a, b),
    _mm512_add_ps(a, b),
);

// ---------------------------------------------------------------------------
// Tile leaves.
// ---------------------------------------------------------------------------

/// AVX2 tile kernel: 8 output columns per vector, scalar tail columns.
///
/// # Safety
///
/// * The CPU must support AVX2.
/// * `a`, `b`, `c`, `d` must be flat row-major `n × n` slices with
///   `n ≤ MAX_TILE`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn mmo_tile_avx2<K: Kernel256>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
) {
    let full = n - n % LANES256;
    let mut partials = [_mm256_setzero_ps(); MAX_TILE];
    for i in 0..n {
        let row = i * n;
        let mut j = 0;
        while j < full {
            for k in 0..n {
                let av = _mm256_set1_ps(a[row + k]);
                // SAFETY: k < n and j + LANES256 <= n, so the 8-lane load
                // at k*n + j ends within the n*n slice.
                let bv = unsafe { _mm256_loadu_ps(b.as_ptr().add(k * n + j)) };
                // SAFETY: this leaf enables AVX2.
                partials[k] = unsafe { K::combine_v(av, bv) };
            }
            // In-place tree halving: the exact pairing order of
            // `tree_reduce_in_place`, one whole level per pass.
            let mut len = n;
            while len > 1 {
                let pairs = len / 2;
                for p in 0..pairs {
                    // SAFETY: this leaf enables AVX2.
                    partials[p] = unsafe { K::reduce_v(partials[2 * p], partials[2 * p + 1]) };
                }
                if len % 2 == 1 {
                    partials[pairs] = partials[len - 1];
                }
                len = len.div_ceil(2);
            }
            // SAFETY: row + j + LANES256 <= n*n (i < n, j + LANES256 <= n).
            let cv = unsafe { _mm256_loadu_ps(c.as_ptr().add(row + j)) };
            // SAFETY: this leaf enables AVX2. Accumulator is the first
            // `⊕` operand, as in the scalar kernel.
            let dv = unsafe { K::reduce_v(cv, partials[0]) };
            // SAFETY: same in-bounds argument as the `c` load; `d` is
            // exclusively borrowed.
            unsafe { _mm256_storeu_ps(d.as_mut_ptr().add(row + j), dv) };
            j += LANES256;
        }
    }
    scalar::mmo_columns::<K>(a, b, c, d, n, full);
}

/// AVX-512F tile kernel: 16 output columns per vector — exactly one
/// vector per row of the 16×16 ISA tile — with scalar tail columns.
///
/// # Safety
///
/// * The CPU must support AVX-512F.
/// * `a`, `b`, `c`, `d` must be flat row-major `n × n` slices with
///   `n ≤ MAX_TILE`.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn mmo_tile_avx512<K: Kernel512>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    d: &mut [f32],
    n: usize,
) {
    let full = n - n % LANES512;
    let mut partials = [_mm512_setzero_ps(); MAX_TILE];
    for i in 0..n {
        let row = i * n;
        let mut j = 0;
        while j < full {
            for k in 0..n {
                let av = _mm512_set1_ps(a[row + k]);
                // SAFETY: k < n and j + LANES512 <= n, so the 16-lane load
                // at k*n + j ends within the n*n slice.
                let bv = unsafe { _mm512_loadu_ps(b.as_ptr().add(k * n + j)) };
                // SAFETY: this leaf enables AVX-512F.
                partials[k] = unsafe { K::combine_v(av, bv) };
            }
            let mut len = n;
            while len > 1 {
                let pairs = len / 2;
                for p in 0..pairs {
                    // SAFETY: this leaf enables AVX-512F.
                    partials[p] = unsafe { K::reduce_v(partials[2 * p], partials[2 * p + 1]) };
                }
                if len % 2 == 1 {
                    partials[pairs] = partials[len - 1];
                }
                len = len.div_ceil(2);
            }
            // SAFETY: row + j + LANES512 <= n*n (i < n, j + LANES512 <= n).
            let cv = unsafe { _mm512_loadu_ps(c.as_ptr().add(row + j)) };
            // SAFETY: this leaf enables AVX-512F. Accumulator first, as
            // in the scalar kernel.
            let dv = unsafe { K::reduce_v(cv, partials[0]) };
            // SAFETY: same in-bounds argument as the `c` load; `d` is
            // exclusively borrowed.
            unsafe { _mm512_storeu_ps(d.as_mut_ptr().add(row + j), dv) };
            j += LANES512;
        }
    }
    scalar::mmo_columns::<K>(a, b, c, d, n, full);
}
