//! Monomorphized execution kernels — one zero-cost instance per operation.
//!
//! The dynamic [`OpKind`] methods (`combine_f32`, `reduce_f32`) match on
//! the operation *per scalar*, which is what a decoder does but not what
//! the datapath does: the paper's unit configures its `⊗`/`⊕` ALUs *once*
//! per instruction and then streams elements through fixed silicon
//! (§3.1–§3.2). [`SemiringKernel`] is the software analogue: a marker
//! type whose `#[inline]` combine/reduce and `const IDENTITY` compile
//! into straight-line code, and [`dispatch_kernel`] performs the
//! `OpKind → kernel` selection exactly once per matrix/tile operation.
//!
//! # Example
//!
//! ```
//! use simd2_semiring::kernel::{dispatch_kernel, KernelVisitor, SemiringKernel};
//! use simd2_semiring::OpKind;
//!
//! struct Dot<'a>(&'a [f32], &'a [f32]);
//! impl KernelVisitor for Dot<'_> {
//!     type Output = f32;
//!     fn visit<K: SemiringKernel>(self) -> f32 {
//!         let mut acc = K::IDENTITY;
//!         for (a, b) in self.0.iter().zip(self.1) {
//!             acc = K::reduce(acc, K::combine(*a, *b));
//!         }
//!         acc
//!     }
//! }
//! let d = dispatch_kernel(OpKind::MinPlus, Dot(&[1.0, 5.0], &[2.0, 1.0]));
//! assert_eq!(d, 3.0); // min(1+2, 5+1)
//! ```

use crate::typed::{
    MaxMin, MaxMul, MaxPlus, MinMax, MinMul, MinPlus, OrAnd, PlusMul, PlusNorm, Semiring,
};
use crate::OpKind;

/// A fully-monomorphizable `f32` execution kernel: the [`Semiring`]
/// contract plus a `const` `⊕` identity, so accumulator initialisation
/// compiles to a constant splat instead of a function call.
pub trait SemiringKernel: Semiring<Elem = f32> {
    /// Identity of `⊕` as a compile-time constant
    /// (`reduce(IDENTITY, x) == x`).
    const IDENTITY: f32;
}

macro_rules! kernel_impl {
    ($($name:ident = $id:expr),+ $(,)?) => {
        $(impl SemiringKernel for $name {
            const IDENTITY: f32 = $id;
        })+
    };
}

kernel_impl!(
    PlusMul = 0.0,
    MinPlus = f32::INFINITY,
    MaxPlus = f32::NEG_INFINITY,
    MinMul = f32::INFINITY,
    MaxMul = f32::NEG_INFINITY,
    MinMax = f32::INFINITY,
    MaxMin = f32::NEG_INFINITY,
    OrAnd = 0.0,
    PlusNorm = 0.0,
);

/// Reduces `values` pairwise as a balanced binary tree, monomorphized
/// over the kernel and performed by in-place halving — each level writes
/// its results into the front of the same buffer, so the whole reduction
/// runs in the caller's (stack) storage with zero heap traffic. The
/// pairing `(v[2i], v[2i+1])`, with an odd straggler carried down
/// unchanged, is exactly the level order of the paper's Figure 3/5 `⊕`
/// tree; every execution path in the repo (scalar oracle, vector
/// kernels, `simd2-mxu`) must reproduce this order bit-for-bit.
///
/// Returns `K::IDENTITY` for an empty slice.
#[inline]
pub fn tree_reduce_in_place<K: SemiringKernel>(values: &mut [f32]) -> f32 {
    let mut len = values.len();
    if len == 0 {
        return K::IDENTITY;
    }
    while len > 1 {
        let pairs = len / 2;
        for i in 0..pairs {
            values[i] = K::reduce(values[2 * i], values[2 * i + 1]);
        }
        if len % 2 == 1 {
            values[pairs] = values[len - 1];
        }
        len = len.div_ceil(2);
    }
    values[0]
}

/// Visitor consumed by [`dispatch_kernel`].
pub trait KernelVisitor {
    /// Result type produced by the visit.
    type Output;

    /// Invoked with the kernel type selected by the dynamic [`OpKind`].
    fn visit<K: SemiringKernel>(self) -> Self::Output;
}

/// Selects the monomorphized kernel for `kind` and runs `visitor` with it.
///
/// This is the once-per-operation dispatch point: the single `match`
/// here replaces a per-scalar `match` in the inner loops of everything
/// downstream.
#[inline]
pub fn dispatch_kernel<V: KernelVisitor>(kind: OpKind, visitor: V) -> V::Output {
    match kind {
        OpKind::PlusMul => visitor.visit::<PlusMul>(),
        OpKind::MinPlus => visitor.visit::<MinPlus>(),
        OpKind::MaxPlus => visitor.visit::<MaxPlus>(),
        OpKind::MinMul => visitor.visit::<MinMul>(),
        OpKind::MaxMul => visitor.visit::<MaxMul>(),
        OpKind::MinMax => visitor.visit::<MinMax>(),
        OpKind::MaxMin => visitor.visit::<MaxMin>(),
        OpKind::OrAnd => visitor.visit::<OrAnd>(),
        OpKind::PlusNorm => visitor.visit::<PlusNorm>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_OPS;

    struct Identity;
    impl KernelVisitor for Identity {
        type Output = f32;
        fn visit<K: SemiringKernel>(self) -> f32 {
            K::IDENTITY
        }
    }

    #[test]
    fn const_identity_matches_dynamic_identity() {
        for op in ALL_OPS {
            assert_eq!(
                dispatch_kernel(op, Identity).to_bits(),
                op.reduce_identity_f32().to_bits(),
                "{op}"
            );
        }
    }

    struct Fma(f32, f32, f32);
    impl KernelVisitor for Fma {
        type Output = f32;
        fn visit<K: SemiringKernel>(self) -> f32 {
            K::reduce(self.0, K::combine(self.1, self.2))
        }
    }

    #[test]
    fn kernels_match_dynamic_evaluation() {
        let cases = [
            (0.0f32, 0.0f32, 0.0f32),
            (1.0, 2.0, 3.0),
            (-1.5, 0.25, 8.0),
            (7.0, 1.0, 0.0),
            (f32::INFINITY, 3.0, 2.0),
        ];
        for op in ALL_OPS {
            for (acc, a, b) in cases {
                let typed = dispatch_kernel(op, Fma(acc, a, b));
                let dynamic = op.fma_f32(acc, a, b);
                assert_eq!(
                    typed.to_bits(),
                    dynamic.to_bits(),
                    "{op} fma({acc}, {a}, {b})"
                );
            }
        }
    }

    struct Kind;
    impl KernelVisitor for Kind {
        type Output = OpKind;
        fn visit<K: SemiringKernel>(self) -> OpKind {
            K::KIND
        }
    }

    #[test]
    fn dispatch_selects_matching_kernel() {
        for op in ALL_OPS {
            assert_eq!(dispatch_kernel(op, Kind), op);
        }
    }
}
