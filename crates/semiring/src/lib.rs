//! Semiring-like algebraic structures for the SIMD² instruction set.
//!
//! The SIMD² paper (ISCA 2022) observes that a large family of matrix
//! algorithms share the computation pattern
//!
//! ```text
//! D = C ⊕ (A ⊗ B)
//! ```
//!
//! where `⊕` behaves like addition (the *reduce* operator) and `⊗` behaves
//! like multiplication (the *combine* operator). General matrix
//! multiplication instantiates the pattern with `(+, ×)`; all-pairs shortest
//! path uses `(min, +)`; minimum spanning tree uses `(min, max)`; and so on.
//!
//! This crate provides:
//!
//! * [`OpKind`] — the nine operator pairs supported by SIMD² arithmetic
//!   instructions (Table 1 / Table 2 of the paper), with dynamic `f32`
//!   evaluation used by the functional matrix-unit model,
//! * the [`Semiring`] trait and one zero-sized marker type per operator pair
//!   ([`PlusMul`], [`MinPlus`], …) for statically-typed kernels,
//! * [`kernel`] — the [`SemiringKernel`] execution-kernel trait (`const`
//!   `⊕` identity, inlined steps) and the once-per-operation
//!   [`dispatch_kernel`] bridge from dynamic [`OpKind`]s to
//!   monomorphized code,
//! * [`precision`] — fp16-in / fp32-out numerics matching the SIMD² data
//!   path,
//! * [`simd`] — vectorized tile kernels (AVX-512 / AVX2 / NEON) with
//!   runtime CPU-feature dispatch and a portable scalar oracle, behind
//!   the safe [`TileKernel`] seam, and
//! * [`properties`] — reusable algebraic property checks backing the
//!   property-based test-suite.
//!
//! # Example
//!
//! ```
//! use simd2_semiring::{OpKind, Semiring, MinPlus};
//!
//! // Dynamic dispatch, as the hardware decoder would do:
//! let d = OpKind::MinPlus.reduce_f32(7.0, OpKind::MinPlus.combine_f32(3.0, 2.0));
//! assert_eq!(d, 5.0);
//!
//! // Static dispatch, as a monomorphised kernel would do:
//! let d = MinPlus::reduce(7.0, MinPlus::combine(3.0, 2.0));
//! assert_eq!(d, 5.0);
//! ```

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod kernel;
mod op;
pub mod precision;
pub mod properties;
// `unsafe` is confined to the `simd` module's `#[target_feature]` leaf
// functions behind a detection-guarded safe entry; see its module docs
// for the safety contract.
#[allow(unsafe_code)]
pub mod simd;
mod typed;

pub use kernel::{dispatch_kernel, tree_reduce_in_place, KernelVisitor, SemiringKernel};
pub use op::{OpKind, ParseOpKindError};
pub use simd::{CpuFeatures, KernelIsa, SelectedKernel, TileKernel};
pub use typed::{
    visit_f32_semiring, BoolOrAnd, F32SemiringVisitor, IntMinPlus, MaxMin, MaxMul, MaxPlus, MinMax,
    MinMul, MinPlus, OrAnd, PlusMul, PlusNorm, Semiring,
};

/// All nine operator pairs, in the order the paper lists them (Table 2).
pub const ALL_OPS: [OpKind; 9] = [
    OpKind::PlusMul,
    OpKind::MinPlus,
    OpKind::MaxPlus,
    OpKind::MinMul,
    OpKind::MaxMul,
    OpKind::MinMax,
    OpKind::MaxMin,
    OpKind::OrAnd,
    OpKind::PlusNorm,
];

/// The eight operator pairs *beyond* classic matrix-multiply-accumulate.
pub const EXTENDED_OPS: [OpKind; 8] = [
    OpKind::MinPlus,
    OpKind::MaxPlus,
    OpKind::MinMul,
    OpKind::MaxMul,
    OpKind::MinMax,
    OpKind::MaxMin,
    OpKind::OrAnd,
    OpKind::PlusNorm,
];
