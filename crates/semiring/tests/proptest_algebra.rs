//! Property-based tests over randomly sampled operands (not just the fixed
//! domain samples used by the unit tests).

use proptest::prelude::*;
use simd2_semiring::precision::{is_f16_exact, quantize_f16};
use simd2_semiring::properties::{self, PropertyResult};
use simd2_semiring::{OpKind, ALL_OPS};

/// Strategy producing an in-domain value for the given algebra.
fn domain_value(op: OpKind) -> BoxedStrategy<f32> {
    match op {
        OpKind::MinMul | OpKind::MaxMul => (0.01f32..=1.0).boxed(),
        OpKind::OrAnd => prop_oneof![Just(0.0f32), Just(1.0f32)].boxed(),
        OpKind::PlusMul | OpKind::PlusNorm => (-100.0f32..=100.0).boxed(),
        _ => (0.0f32..=1000.0).boxed(),
    }
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

proptest! {
    #[test]
    fn reduce_commutes(op in op_strategy(), seed in any::<u64>()) {
        // Derive two domain values deterministically from the seed so the
        // pair strategy matches the op drawn.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let x = domain_value(op).new_tree(&mut runner).unwrap().current();
        let y = domain_value(op).new_tree(&mut runner).unwrap().current();
        prop_assert_eq!(op.reduce_f32(x, y), op.reduce_f32(y, x));
    }

    #[test]
    fn idempotent_reductions_are_fixed_points(x in 0.0f32..1000.0) {
        for op in ALL_OPS {
            if op.reduce_is_idempotent() && op != OpKind::OrAnd {
                prop_assert_eq!(op.reduce_f32(x, x), x);
            }
        }
    }

    #[test]
    fn min_style_reduce_never_increases(x in 0.0f32..1000.0, y in 0.0f32..1000.0) {
        for op in [OpKind::MinPlus, OpKind::MinMul, OpKind::MinMax] {
            let r = op.reduce_f32(x, y);
            prop_assert!(r <= x && r <= y);
            prop_assert!(r == x || r == y);
        }
        for op in [OpKind::MaxPlus, OpKind::MaxMul, OpKind::MaxMin] {
            let r = op.reduce_f32(x, y);
            prop_assert!(r >= x && r >= y);
            prop_assert!(r == x || r == y);
        }
    }

    #[test]
    fn fma_with_no_edge_operand_is_inert(x in 0.0f32..1000.0, w in 0.0f32..1000.0) {
        for op in ALL_OPS {
            let Some(no_edge) = op.no_edge_f32() else { continue };
            // Clamp w into domain for the multiplicative reliability algebras.
            let w = match op {
                OpKind::MinMul | OpKind::MaxMul => (w / 1000.0).clamp(0.001, 1.0),
                OpKind::OrAnd => if w > 500.0 { 1.0 } else { 0.0 },
                _ => w,
            };
            let x = match op {
                OpKind::MinMul | OpKind::MaxMul => (x / 1000.0).clamp(0.001, 1.0),
                OpKind::OrAnd => if x > 500.0 { 1.0 } else { 0.0 },
                _ => x,
            };
            prop_assert_eq!(op.fma_f32(x, no_edge, w), x, "{} no-edge lhs", op);
            prop_assert_eq!(op.fma_f32(x, w, no_edge), x, "{} no-edge rhs", op);
        }
    }

    #[test]
    fn quantize_is_idempotent(x in any::<f32>()) {
        prop_assume!(!x.is_nan());
        let q = quantize_f16(x);
        prop_assert_eq!(quantize_f16(q), q);
        prop_assert!(is_f16_exact(q));
    }

    #[test]
    fn quantize_is_monotone(a in -1.0e5f32..1.0e5, b in -1.0e5f32..1.0e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_f16(lo) <= quantize_f16(hi));
    }

    #[test]
    fn min_max_family_is_f16_exact_end_to_end(
        x in 0u16..2048, y in 0u16..2048, z in 0u16..2048
    ) {
        // Integer weights ≤ 2048 survive fp16; hence min/max path algebras
        // produce bit-identical results at reduced precision (paper §5.1).
        let (x, y, z) = (f32::from(x), f32::from(y), f32::from(z));
        for op in [OpKind::MinPlus, OpKind::MinMax, OpKind::MaxMin] {
            let full = op.fma_f32(x, y, z);
            let reduced = op.fma_f32(x, quantize_f16(y), quantize_f16(z));
            prop_assert_eq!(full, reduced, "{}", op);
        }
    }
}

#[test]
fn property_helpers_agree_with_random_sampling() {
    for op in ALL_OPS {
        let samples = properties::domain_samples(op);
        assert!(matches!(
            properties::reduce_identity(op, &samples),
            PropertyResult::Holds
        ));
    }
}
