//! Property-based bit-identity checks for the vectorized tile kernels.
//!
//! The dispatch layer promises that every vector tier produces the
//! **same bits** as the scalar kernel for *arbitrary* `f32` inputs —
//! including NaN payloads, signed zeros, infinities and subnormals —
//! at every tile side, not just multiples of the vector width. These
//! properties sample raw bit patterns (so specials appear with their
//! natural density) plus a deterministic overlay of adversarial values,
//! and compare each supported ISA against [`KernelIsa::Scalar`].

use proptest::prelude::*;
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::simd::{self, KernelIsa, MAX_TILE};
use simd2_semiring::{OpKind, ALL_OPS};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// Adversarial values every tile is seeded with (beyond the random bit
/// patterns): NaN payload quirks, signed zeros, infinities, subnormals
/// and f16 rounding boundaries.
const SPECIALS: [f32; 10] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    0.0,
    -0.0,
    1.0e-40,
    f32::MIN_POSITIVE,
    65504.0,  // f16::MAX
    65520.0,  // rounds to f16 infinity
    6.104e-5, // near the f16 normal/subnormal boundary
];

/// A tile-side slice of `n * n` arbitrary bit patterns with a sprinkle
/// of [`SPECIALS`] at seed-derived positions.
fn tile_values(n: usize, bits: &[u32], salt: u32) -> Vec<f32> {
    (0..n * n)
        .map(|i| {
            if (i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 7 == 0 {
                SPECIALS[(i + salt as usize) % SPECIALS.len()]
            } else {
                f32::from_bits(bits[i % bits.len()].wrapping_add(i as u32))
            }
        })
        .collect()
}

/// The vector tiers available on this host (never empty — scalar is
/// always supported, and is skipped here as it is the reference).
fn vector_tiers() -> Vec<KernelIsa> {
    KernelIsa::ALL
        .into_iter()
        .filter(|isa| *isa != KernelIsa::Scalar && isa.is_supported())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported vector tier == scalar, bit for bit, over all nine
    /// ops × arbitrary bit-pattern operands × every tile side 1..=40
    /// (covering tails where `n` is not a multiple of 8 or 16 lanes).
    #[test]
    fn vector_tiers_match_scalar_bit_for_bit(
        op in op_strategy(),
        n in 1usize..=40,
        bits in proptest::collection::vec(any::<u32>(), 64),
        salt in any::<u32>(),
    ) {
        prop_assume!(n <= MAX_TILE);
        let a = tile_values(n, &bits, salt);
        let b = tile_values(n, &bits, salt.wrapping_add(1));
        let c = tile_values(n, &bits, salt.wrapping_add(2));

        let mut want = vec![0.0f32; n * n];
        simd::mmo_tile(KernelIsa::Scalar, op, &a, &b, &c, &mut want, n);

        for isa in vector_tiers() {
            let mut got = vec![0.0f32; n * n];
            simd::mmo_tile(isa, op, &a, &b, &c, &mut got, n);
            for (i, (x, y)) in want.iter().zip(&got).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} n={} isa={} element {} ({:e} vs {:e})",
                    op, n, isa, i, x, y
                );
            }
        }
    }

    /// The vectorized fp16 quantize roundtrip == the scalar `half`-based
    /// one, bit for bit, for arbitrary bit patterns at every slice
    /// length — including odd lengths that exercise the scalar tail.
    #[test]
    fn vector_quantize_matches_scalar_bit_for_bit(
        len in 0usize..=67,
        bits in proptest::collection::vec(any::<u32>(), 67),
        salt in any::<u32>(),
    ) {
        let src: Vec<f32> = (0..len)
            .map(|i| {
                if (i as u32).wrapping_add(salt) % 5 == 0 {
                    SPECIALS[i % SPECIALS.len()]
                } else {
                    f32::from_bits(bits[i])
                }
            })
            .collect();
        let want: Vec<u32> = src.iter().map(|&x| quantize_f16(x).to_bits()).collect();
        for isa in KernelIsa::ALL.into_iter().filter(|isa| isa.is_supported()) {
            let mut got = src.clone();
            simd::quantize_f16_slice(isa, &mut got);
            let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&want, &got, "isa={} len={}", isa, len);
        }
    }
}
