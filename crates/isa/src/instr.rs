//! Instruction forms and their binary encoding.

use std::fmt;

use simd2_semiring::OpKind;

/// Number of architectural matrix registers per warp.
///
/// Each register holds one 16×16 tile, physically striped across the
/// warp's 32 threads' vector registers (8 elements per thread), exactly as
/// wmma fragments are.
pub const MATRIX_REG_COUNT: usize = 16;

/// A matrix register name, `%m0` … `%m15`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixReg(u8);

impl MatrixReg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MATRIX_REG_COUNT`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < MATRIX_REG_COUNT,
            "matrix register %m{index} out of range"
        );
        Self(index)
    }

    /// The register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MatrixReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%m{}", self.0)
    }
}

/// Element type of a matrix transfer (paper Table 2: loads are fp16,
/// stores are fp32; we allow fp32 loads for the accumulator operand, as
/// wmma does for the `C` fragment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE binary16 — operand (`A`/`B`) transfers; values are quantised.
    Fp16,
    /// IEEE binary32 — accumulator (`C`) loads and all stores.
    Fp32,
}

impl Dtype {
    fn code(self) -> u64 {
        match self {
            Dtype::Fp16 => 0,
            Dtype::Fp32 => 1,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(Dtype::Fp16),
            1 => Some(Dtype::Fp32),
            _ => None,
        }
    }

    /// PTX-style suffix (`f16` / `f32`).
    pub fn suffix(self) -> &'static str {
        match self {
            Dtype::Fp16 => "f16",
            Dtype::Fp32 => "f32",
        }
    }
}

/// One SIMD² instruction (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instruction {
    /// `simd2.fill %md, imm` — fill the target matrix with a value.
    Fill {
        /// Destination matrix register.
        dst: MatrixReg,
        /// Fill value.
        value: f32,
    },
    /// `simd2.load.<dtype> %md, [addr], ld` — load a 16×16 matrix from the
    /// shared-memory address space, rows `ld` elements apart.
    Load {
        /// Destination matrix register.
        dst: MatrixReg,
        /// Element type (fp16 operands are quantised on the way in).
        dtype: Dtype,
        /// Base element address in shared memory.
        addr: u32,
        /// Leading dimension, elements.
        ld: u32,
    },
    /// `simd2.<op> %md, %ma, %mb, %mc` — the arithmetic matrix-matrix
    /// operation `D = C ⊕ (A ⊗ B)`.
    Mmo {
        /// Operator pair.
        op: OpKind,
        /// Destination register `D`.
        d: MatrixReg,
        /// Left operand register `A`.
        a: MatrixReg,
        /// Right operand register `B`.
        b: MatrixReg,
        /// Accumulator register `C`.
        c: MatrixReg,
    },
    /// `simd2.store.f32 [addr], %ms, ld` — store a 16×16 matrix.
    Store {
        /// Source matrix register.
        src: MatrixReg,
        /// Base element address in shared memory.
        addr: u32,
        /// Leading dimension, elements.
        ld: u32,
    },
}

// Encoding layout (64-bit word):
//   bits 60..63  instruction class (0=fill, 1=load, 2=mmo, 3=store)
//   fill : class | dst[4] @56 | f32 bits @0
//   load : class | dst[4] @56 | dtype[1] @55 | ld[23] @32 | addr[32] @0
//   mmo  : class | opcode[4] @56 | d[4] @52 | a[4] @48 | b[4] @44 | c[4] @40
//   store: class | src[4] @56 | ld[23] @32 | addr[32] @0
const CLASS_SHIFT: u32 = 60;
const CLASS_FILL: u64 = 0;
const CLASS_LOAD: u64 = 1;
const CLASS_MMO: u64 = 2;
const CLASS_STORE: u64 = 3;
const LD_MAX: u32 = (1 << 23) - 1;

/// Error produced when decoding a malformed instruction word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    word: u64,
    reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

impl Instruction {
    /// Encodes the instruction to its 64-bit binary form.
    ///
    /// # Panics
    ///
    /// Panics if a leading dimension exceeds the 23-bit encoding field.
    pub fn encode(&self) -> u64 {
        match *self {
            Instruction::Fill { dst, value } => {
                (CLASS_FILL << CLASS_SHIFT)
                    | ((dst.index() as u64) << 56)
                    | u64::from(value.to_bits())
            }
            Instruction::Load {
                dst,
                dtype,
                addr,
                ld,
            } => {
                assert!(
                    ld <= LD_MAX,
                    "leading dimension {ld} exceeds encoding field"
                );
                (CLASS_LOAD << CLASS_SHIFT)
                    | ((dst.index() as u64) << 56)
                    | (dtype.code() << 55)
                    | (u64::from(ld) << 32)
                    | u64::from(addr)
            }
            Instruction::Mmo { op, d, a, b, c } => {
                (CLASS_MMO << CLASS_SHIFT)
                    | (u64::from(op.opcode()) << 56)
                    | ((d.index() as u64) << 52)
                    | ((a.index() as u64) << 48)
                    | ((b.index() as u64) << 44)
                    | ((c.index() as u64) << 40)
            }
            Instruction::Store { src, addr, ld } => {
                assert!(
                    ld <= LD_MAX,
                    "leading dimension {ld} exceeds encoding field"
                );
                (CLASS_STORE << CLASS_SHIFT)
                    | ((src.index() as u64) << 56)
                    | (u64::from(ld) << 32)
                    | u64::from(addr)
            }
        }
    }

    /// Decodes a 64-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown instruction classes, opcodes,
    /// data types, or out-of-range register fields.
    pub fn decode(word: u64) -> Result<Self, DecodeError> {
        let err = |reason| DecodeError { word, reason };
        let reg = |v: u64, reason| {
            if (v as usize) < MATRIX_REG_COUNT {
                Ok(MatrixReg::new(v as u8))
            } else {
                Err(err(reason))
            }
        };
        match word >> CLASS_SHIFT {
            CLASS_FILL => Ok(Instruction::Fill {
                dst: reg((word >> 56) & 0xF, "bad fill dst register")?,
                value: f32::from_bits((word & 0xFFFF_FFFF) as u32),
            }),
            CLASS_LOAD => Ok(Instruction::Load {
                dst: reg((word >> 56) & 0xF, "bad load dst register")?,
                dtype: Dtype::from_code((word >> 55) & 1).ok_or_else(|| err("bad dtype"))?,
                ld: ((word >> 32) & u64::from(LD_MAX)) as u32,
                addr: (word & 0xFFFF_FFFF) as u32,
            }),
            CLASS_MMO => Ok(Instruction::Mmo {
                op: OpKind::from_opcode(((word >> 56) & 0xF) as u8)
                    .ok_or_else(|| err("unknown mmo opcode"))?,
                d: reg((word >> 52) & 0xF, "bad mmo d register")?,
                a: reg((word >> 48) & 0xF, "bad mmo a register")?,
                b: reg((word >> 44) & 0xF, "bad mmo b register")?,
                c: reg((word >> 40) & 0xF, "bad mmo c register")?,
            }),
            CLASS_STORE => Ok(Instruction::Store {
                src: reg((word >> 56) & 0xF, "bad store src register")?,
                ld: ((word >> 32) & u64::from(LD_MAX)) as u32,
                addr: (word & 0xFFFF_FFFF) as u32,
            }),
            _ => Err(err("unknown instruction class")),
        }
    }
}

impl fmt::Display for Instruction {
    /// PTX-like assembly rendering, parseable by [`crate::asm::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Fill { dst, value } => write!(f, "simd2.fill {dst}, {value}"),
            Instruction::Load {
                dst,
                dtype,
                addr,
                ld,
            } => {
                write!(f, "simd2.load.{} {dst}, [{addr}], {ld}", dtype.suffix())
            }
            Instruction::Mmo { op, d, a, b, c } => {
                write!(f, "{} {d}, {a}, {b}, {c}", op.ptx_mnemonic())
            }
            Instruction::Store { src, addr, ld } => {
                write!(f, "simd2.store.f32 [{addr}], {src}, {ld}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    fn samples() -> Vec<Instruction> {
        let mut v = vec![
            Instruction::Fill {
                dst: MatrixReg::new(3),
                value: f32::INFINITY,
            },
            Instruction::Fill {
                dst: MatrixReg::new(0),
                value: -1.25,
            },
            Instruction::Load {
                dst: MatrixReg::new(15),
                dtype: Dtype::Fp16,
                addr: 0xDEAD_BEEF,
                ld: 16384,
            },
            Instruction::Load {
                dst: MatrixReg::new(1),
                dtype: Dtype::Fp32,
                addr: 0,
                ld: 16,
            },
            Instruction::Store {
                src: MatrixReg::new(7),
                addr: 12345,
                ld: LD_MAX,
            },
        ];
        for op in ALL_OPS {
            v.push(Instruction::Mmo {
                op,
                d: MatrixReg::new(0),
                a: MatrixReg::new(1),
                b: MatrixReg::new(2),
                c: MatrixReg::new(3),
            });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in samples() {
            let word = instr.encode();
            assert_eq!(Instruction::decode(word).unwrap(), instr, "{instr}");
        }
    }

    #[test]
    fn decode_rejects_bad_class() {
        let err = Instruction::decode(0xF << CLASS_SHIFT).unwrap_err();
        assert!(err.to_string().contains("class"));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        // MMO class with opcode 12 (only 0..=8 defined).
        let word = (CLASS_MMO << CLASS_SHIFT) | (12u64 << 56);
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    fn fill_preserves_exact_bits() {
        let v = f32::from_bits(0x7F80_0001); // a signalling NaN pattern
        let i = Instruction::Fill {
            dst: MatrixReg::new(2),
            value: v,
        };
        match Instruction::decode(i.encode()).unwrap() {
            Instruction::Fill { value, .. } => assert_eq!(value.to_bits(), v.to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        let _ = MatrixReg::new(16);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn ld_field_bounds_checked() {
        let i = Instruction::Load {
            dst: MatrixReg::new(0),
            dtype: Dtype::Fp16,
            addr: 0,
            ld: LD_MAX + 1,
        };
        let _ = i.encode();
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instruction::Mmo {
                op: OpKind::MinPlus,
                d: MatrixReg::new(3),
                a: MatrixReg::new(0),
                b: MatrixReg::new(1),
                c: MatrixReg::new(2),
            }
            .to_string(),
            "simd2.minplus %m3, %m0, %m1, %m2"
        );
        assert_eq!(
            Instruction::Load {
                dst: MatrixReg::new(0),
                dtype: Dtype::Fp16,
                addr: 64,
                ld: 16
            }
            .to_string(),
            "simd2.load.f16 %m0, [64], 16"
        );
        assert_eq!(
            Instruction::Store {
                src: MatrixReg::new(5),
                addr: 0,
                ld: 32
            }
            .to_string(),
            "simd2.store.f32 [0], %m5, 32"
        );
    }

    #[test]
    fn mmo_encodings_are_distinct_per_op() {
        let mut words: Vec<u64> = ALL_OPS
            .iter()
            .map(|&op| {
                Instruction::Mmo {
                    op,
                    d: MatrixReg::new(0),
                    a: MatrixReg::new(1),
                    b: MatrixReg::new(2),
                    c: MatrixReg::new(3),
                }
                .encode()
            })
            .collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), ALL_OPS.len());
    }
}
