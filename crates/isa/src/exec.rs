//! Warp-level executor for SIMD² programs.
//!
//! Models the architectural state a warp sees: a 1-D shared-memory
//! address space (element-addressed `f32` words), sixteen matrix registers
//! of 16×16 elements each, and a functional [`Simd2Unit`] executing `mmo`
//! instructions. Running a program yields both the final memory state and
//! an [`ExecStats`] instruction mix, which is the input the GPU timing
//! model charges cycles for — mirroring how the paper's validation flow
//! "collect\[s\] the statistics regarding the total amount of various matrix
//! operations and provide\[s\] the input for performance emulation" (§5.1).

use std::collections::BTreeMap;
use std::fmt;

use simd2_fault::abft::{self, AbftConfig, AbftViolation};
use simd2_fault::FaultInjector;
use simd2_matrix::{Matrix, Tile, ISA_TILE};
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::OpKind;

use crate::{Dtype, Instruction, MATRIX_REG_COUNT};

/// Element-addressed shared-memory space backing `simd2.load`/`store`.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedMemory {
    data: Vec<f32>,
}

impl SharedMemory {
    /// Allocates `elements` zero-initialised `f32` words.
    pub fn new(elements: usize) -> Self {
        Self {
            data: vec![0.0; elements],
        }
    }

    /// Size in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies a matrix into memory at `addr` with leading dimension `ld`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadLeadingDimension`] when `ld` is narrower
    /// than a matrix row, and [`ExecError::OutOfBounds`] when the region
    /// does not fit.
    pub fn write_matrix(&mut self, addr: usize, ld: usize, m: &Matrix) -> Result<(), ExecError> {
        self.check_region(addr, ld, m.rows(), m.cols())?;
        for r in 0..m.rows() {
            let base = addr + r * ld;
            self.data[base..base + m.cols()].copy_from_slice(m.row(r));
        }
        Ok(())
    }

    /// Reads a `rows × cols` matrix from `addr` with leading dimension
    /// `ld`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadLeadingDimension`] when `ld` is narrower
    /// than a row, and [`ExecError::OutOfBounds`] when the region does
    /// not fit.
    pub fn read_matrix(
        &self,
        addr: usize,
        ld: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix, ExecError> {
        self.check_region(addr, ld, rows, cols)?;
        if rows == 0 || cols == 0 {
            return Ok(Matrix::zeros(rows, cols));
        }
        // Whole-row memcpy per row, mirroring `write_matrix`.
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let base = addr + r * ld;
            data.extend_from_slice(&self.data[base..base + cols]);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Bounds-checks a `rows × cols` region at `addr` with leading
    /// dimension `ld` — the shared logic behind tile and matrix access.
    fn check_region(
        &self,
        addr: usize,
        ld: usize,
        rows: usize,
        cols: usize,
    ) -> Result<(), ExecError> {
        if rows == 0 || cols == 0 {
            return Ok(());
        }
        if rows > 1 && ld < cols {
            return Err(ExecError::BadLeadingDimension { ld });
        }
        let last = (rows - 1)
            .checked_mul(ld)
            .and_then(|x| x.checked_add(addr))
            .and_then(|x| x.checked_add(cols - 1))
            .unwrap_or(usize::MAX);
        if last >= self.data.len() {
            return Err(ExecError::OutOfBounds {
                addr,
                last,
                size: self.data.len(),
            });
        }
        Ok(())
    }

    fn check_tile(&self, addr: u32, ld: u32) -> Result<(), ExecError> {
        let addr = addr as usize;
        let ld = ld as usize;
        if ld < ISA_TILE {
            return Err(ExecError::BadLeadingDimension { ld });
        }
        self.check_region(addr, ld, ISA_TILE, ISA_TILE)
    }
}

/// Execution error: memory faults and detected silent corruption —
/// encoding-level errors are caught at decode/assemble time.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Tile access past the end of shared memory.
    OutOfBounds {
        /// Base element address of the access.
        addr: usize,
        /// Last element address the tile would touch.
        last: usize,
        /// Shared memory size, elements.
        size: usize,
    },
    /// Leading dimension smaller than the tile side (rows would overlap).
    BadLeadingDimension {
        /// The offending leading dimension.
        ld: usize,
    },
    /// An `mmo` result failed its ABFT invariant check — the datapath
    /// produced a value the inputs cannot explain.
    SilentCorruption {
        /// The semiring operation that was executing.
        op: OpKind,
        /// Ordinal of the offending `mmo` within the run (0-based).
        mmo_index: u64,
        /// The invariant that failed.
        violation: AbftViolation,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { addr, last, size } => write!(
                f,
                "tile access at {addr} reaches element {last}, beyond shared memory size {size}"
            ),
            ExecError::BadLeadingDimension { ld } => {
                write!(
                    f,
                    "leading dimension {ld} is smaller than the 16-element tile row"
                )
            }
            ExecError::SilentCorruption {
                op,
                mmo_index,
                violation,
            } => {
                write!(
                    f,
                    "silent corruption detected at mmo #{mmo_index} ({op}): {violation}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Instruction-mix statistics of one program run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// `simd2.load` count.
    pub loads: u64,
    /// `simd2.store` count.
    pub stores: u64,
    /// `simd2.fill` count.
    pub fills: u64,
    /// `simd2.mmo` count per operation.
    pub mmos: BTreeMap<OpKind, u64>,
    /// Faults injected by an attached [`FaultInjector`] during the run.
    pub faults_injected: u64,
    /// `mmo` results that passed ABFT verification.
    pub mmos_verified: u64,
}

impl ExecStats {
    /// Total `mmo` instructions across all operations.
    pub fn total_mmos(&self) -> u64 {
        self.mmos.values().sum()
    }

    /// Total instructions executed.
    pub fn total_instructions(&self) -> u64 {
        self.loads + self.stores + self.fills + self.total_mmos()
    }

    /// Elements moved between shared memory and the register file.
    pub fn elements_moved(&self) -> u64 {
        (self.loads + self.stores) * (ISA_TILE * ISA_TILE) as u64
    }

    /// Accumulates another run's statistics into this one (field-wise
    /// sum; per-op `mmo` counts merge by key). Backends that execute one
    /// program per matrix operation use this to keep cumulative totals.
    pub fn merge(&mut self, other: &ExecStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.fills += other.fills;
        self.faults_injected += other.faults_injected;
        self.mmos_verified += other.mmos_verified;
        for (&op, &n) in &other.mmos {
            *self.mmos.entry(op).or_insert(0) += n;
        }
    }
}

/// The warp-level executor.
///
/// # Example
///
/// ```
/// use simd2_isa::{asm, Executor, SharedMemory};
/// use simd2_matrix::Matrix;
///
/// let mut mem = SharedMemory::new(1024);
/// mem.write_matrix(0, 16, &Matrix::filled(16, 16, 2.0))?;   // A
/// mem.write_matrix(256, 16, &Matrix::filled(16, 16, 3.0))?; // B
/// let prog = asm::parse(
///     "simd2.load.f16 %m0, [0], 16
///      simd2.load.f16 %m1, [256], 16
///      simd2.fill %m2, 0.0
///      simd2.mma %m2, %m0, %m1, %m2
///      simd2.store.f32 [512], %m2, 16",
/// )?;
/// let mut exec = Executor::new(mem);
/// let stats = exec.run(&prog)?;
/// assert_eq!(stats.total_mmos(), 1);
/// assert_eq!(exec.memory().read_matrix(512, 16, 16, 16)?[(0, 0)], 96.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Executor {
    memory: SharedMemory,
    regs: Vec<Tile<ISA_TILE>>,
    unit: Simd2Unit,
    injector: Option<Box<dyn FaultInjector>>,
    abft: Option<AbftConfig>,
}

impl Executor {
    /// Creates an executor over the given shared memory, with the default
    /// fp16-input datapath.
    pub fn new(memory: SharedMemory) -> Self {
        Self::with_unit(memory, Simd2Unit::new())
    }

    /// Creates an executor with an explicit unit configuration (e.g.
    /// fp32-input for precision ablations).
    pub fn with_unit(memory: SharedMemory, unit: Simd2Unit) -> Self {
        Self {
            memory,
            regs: vec![Tile::splat(0.0); MATRIX_REG_COUNT],
            unit,
            injector: None,
            abft: None,
        }
    }

    /// Attaches a fault injector: every subsequent `mmo` result and
    /// store passes through it. The injector keeps its site counters for
    /// the executor's lifetime, so re-running a program draws fresh
    /// faults.
    pub fn set_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Detaches and returns the fault injector, with its accumulated
    /// site counters and fault log.
    pub fn take_injector(&mut self) -> Option<Box<dyn FaultInjector>> {
        self.injector.take()
    }

    /// The attached fault injector, if any (for telemetry).
    pub fn injector(&self) -> Option<&dyn FaultInjector> {
        self.injector.as_deref()
    }

    /// Enables ABFT verification of every `mmo` result. A failed check
    /// aborts the run with [`ExecError::SilentCorruption`].
    pub fn enable_verification(&mut self, config: AbftConfig) {
        self.abft = Some(config);
    }

    /// Disables ABFT verification.
    pub fn disable_verification(&mut self) {
        self.abft = None;
    }

    /// The shared memory (for reading results back).
    pub fn memory(&self) -> &SharedMemory {
        &self.memory
    }

    /// Mutable shared-memory access (for staging inputs between runs).
    pub fn memory_mut(&mut self) -> &mut SharedMemory {
        &mut self.memory
    }

    /// Current contents of a matrix register.
    pub fn reg(&self, index: usize) -> &Tile<ISA_TILE> {
        &self.regs[index]
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on an out-of-bounds tile access.
    pub fn step(&mut self, instr: Instruction, stats: &mut ExecStats) -> Result<(), ExecError> {
        match instr {
            Instruction::Fill { dst, value } => {
                self.regs[dst.index()] = Tile::splat(value);
                stats.fills += 1;
            }
            Instruction::Load {
                dst,
                dtype,
                addr,
                ld,
            } => {
                self.memory.check_tile(addr, ld)?;
                let (addr, ld) = (addr as usize, ld as usize);
                let quantise = matches!(
                    (dtype, self.unit.precision()),
                    (Dtype::Fp16, PrecisionMode::Fp16Input)
                );
                self.regs[dst.index()] = Tile::from_fn(|r, c| {
                    let v = self.memory.data[addr + r * ld + c];
                    if quantise {
                        quantize_f16(v)
                    } else {
                        v
                    }
                });
                stats.loads += 1;
            }
            Instruction::Mmo { op, d, a, b, c } => {
                let (ta, tb, tc) = (
                    self.regs[a.index()],
                    self.regs[b.index()],
                    self.regs[c.index()],
                );
                let mut result = self.unit.execute(op, &ta, &tb, &tc);
                if let Some(injector) = self.injector.as_mut() {
                    let mut flat: Vec<f32> = (0..ISA_TILE * ISA_TILE)
                        .map(|i| result.get(i / ISA_TILE, i % ISA_TILE))
                        .collect();
                    if injector.inject_mmo(op, &mut flat, ISA_TILE).is_some() {
                        stats.faults_injected += 1;
                        result = Tile::from_fn(|r, c| flat[r * ISA_TILE + c]);
                    }
                }
                if let Some(config) = self.abft {
                    if let Err(violation) =
                        abft::verify_tile(op, &self.unit, &ta, &tb, &tc, &result, &config)
                    {
                        return Err(ExecError::SilentCorruption {
                            op,
                            mmo_index: stats.total_mmos(),
                            violation,
                        });
                    }
                    stats.mmos_verified += 1;
                }
                self.regs[d.index()] = result;
                *stats.mmos.entry(op).or_insert(0) += 1;
            }
            Instruction::Store { src, addr, ld } => {
                self.memory.check_tile(addr, ld)?;
                let (addr, ld) = (addr as usize, ld as usize);
                let tile = self.regs[src.index()];
                for (r, c, v) in tile.iter() {
                    self.memory.data[addr + r * ld + c] = v;
                }
                if let Some(injector) = self.injector.as_mut() {
                    if injector.inject_store(&mut self.memory.data).is_some() {
                        stats.faults_injected += 1;
                    }
                }
                stats.stores += 1;
            }
        }
        Ok(())
    }

    /// Runs a whole program, returning its instruction-mix statistics.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first memory fault.
    pub fn run(&mut self, program: &[Instruction]) -> Result<ExecStats, ExecError> {
        let mut stats = ExecStats::default();
        for &instr in program {
            self.step(instr, &mut stats)?;
        }
        Ok(stats)
    }

    /// Runs a program collecting a per-instruction trace — the disassembly
    /// plus a summary of each architectural effect, for debugging kernels.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first memory fault; the trace up to the
    /// fault is discarded with it.
    pub fn run_traced(
        &mut self,
        program: &[Instruction],
    ) -> Result<(ExecStats, Vec<TraceEntry>), ExecError> {
        let mut stats = ExecStats::default();
        let mut trace = Vec::with_capacity(program.len());
        for (pc, &instr) in program.iter().enumerate() {
            self.step(instr, &mut stats)?;
            let effect = match instr {
                Instruction::Fill { dst, value } => {
                    format!("%m{} <- splat({value})", dst.index())
                }
                Instruction::Load { dst, addr, .. } => {
                    let t = &self.regs[dst.index()];
                    format!(
                        "%m{} <- mem[{addr}..] (t[0][0]={})",
                        dst.index(),
                        t.get(0, 0)
                    )
                }
                Instruction::Mmo { d, .. } => {
                    let t = &self.regs[d.index()];
                    format!("%m{} <- mmo (d[0][0]={})", d.index(), t.get(0, 0))
                }
                Instruction::Store { src, addr, .. } => {
                    format!("mem[{addr}..] <- %m{}", src.index())
                }
            };
            trace.push(TraceEntry { pc, instr, effect });
        }
        Ok((stats, trace))
    }
}

/// One line of an execution trace (see [`Executor::run_traced`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: usize,
    /// The instruction executed.
    pub instr: Instruction,
    /// A short summary of its architectural effect.
    pub effect: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>4}] {:<44} ; {}",
            self.pc,
            self.instr.to_string(),
            self.effect
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::MatrixReg;
    use simd2_matrix::reference;

    fn exec_with_inputs(a: &Matrix, b: &Matrix, c: &Matrix, op: OpKind) -> (Matrix, ExecStats) {
        let mut mem = SharedMemory::new(4096);
        mem.write_matrix(0, 16, a).unwrap();
        mem.write_matrix(256, 16, b).unwrap();
        mem.write_matrix(512, 16, c).unwrap();
        let prog = vec![
            Instruction::Load {
                dst: MatrixReg::new(0),
                dtype: Dtype::Fp16,
                addr: 0,
                ld: 16,
            },
            Instruction::Load {
                dst: MatrixReg::new(1),
                dtype: Dtype::Fp16,
                addr: 256,
                ld: 16,
            },
            Instruction::Load {
                dst: MatrixReg::new(2),
                dtype: Dtype::Fp32,
                addr: 512,
                ld: 16,
            },
            Instruction::Mmo {
                op,
                d: MatrixReg::new(3),
                a: MatrixReg::new(0),
                b: MatrixReg::new(1),
                c: MatrixReg::new(2),
            },
            Instruction::Store {
                src: MatrixReg::new(3),
                addr: 768,
                ld: 16,
            },
        ];
        let mut exec = Executor::new(mem);
        let stats = exec.run(&prog).unwrap();
        (exec.memory().read_matrix(768, 16, 16, 16).unwrap(), stats)
    }

    #[test]
    fn mmo_matches_reference_for_all_ops() {
        // fp16-exact inputs so the ISA path agrees with the fp32 reference.
        let a = Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) % 9) as f32 * 0.25);
        let b = Matrix::from_fn(16, 16, |r, c| ((r + 3 * c) % 7) as f32 * 0.5);
        for op in simd2_semiring::ALL_OPS {
            let c = Matrix::filled(16, 16, op.reduce_identity_f32());
            let (got, stats) = exec_with_inputs(&a, &b, &c, op);
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 1e-4,
                _ => 0.0,
            };
            assert!(got.max_abs_diff(&want).unwrap() <= tol, "{op}");
            assert_eq!(stats.total_mmos(), 1);
            assert_eq!(stats.loads, 3);
            assert_eq!(stats.stores, 1);
        }
    }

    #[test]
    fn f16_loads_quantise_f32_loads_do_not() {
        let mut mem = SharedMemory::new(1024);
        mem.write_matrix(0, 16, &Matrix::filled(16, 16, 0.1))
            .unwrap(); // not fp16-exact
        let prog = asm::parse(
            "simd2.load.f16 %m0, [0], 16
             simd2.load.f32 %m1, [0], 16",
        )
        .unwrap();
        let mut exec = Executor::new(mem);
        exec.run(&prog).unwrap();
        assert_eq!(exec.reg(0).get(0, 0), quantize_f16(0.1));
        assert_eq!(exec.reg(1).get(0, 0), 0.1);
    }

    #[test]
    fn fp32_unit_mode_disables_quantisation() {
        let mut mem = SharedMemory::new(1024);
        mem.write_matrix(0, 16, &Matrix::filled(16, 16, 0.1))
            .unwrap();
        let prog = asm::parse("simd2.load.f16 %m0, [0], 16").unwrap();
        let mut exec =
            Executor::with_unit(mem, Simd2Unit::with_precision(PrecisionMode::Fp32Input));
        exec.run(&prog).unwrap();
        assert_eq!(exec.reg(0).get(0, 0), 0.1);
    }

    #[test]
    fn fill_sets_whole_register() {
        let prog = asm::parse("simd2.fill %m7, -inf").unwrap();
        let mut exec = Executor::new(SharedMemory::new(256));
        let stats = exec.run(&prog).unwrap();
        assert!(exec.reg(7).iter().all(|(_, _, v)| v == f32::NEG_INFINITY));
        assert_eq!(stats.fills, 1);
    }

    #[test]
    fn strided_load_respects_leading_dimension() {
        // A 32-column matrix in memory; load the tile starting at column 16.
        let mut mem = SharedMemory::new(32 * 32);
        let big = Matrix::from_fn(32, 32, |r, c| (r * 32 + c) as f32);
        mem.write_matrix(0, 32, &big).unwrap();
        let prog = asm::parse("simd2.load.f16 %m0, [16], 32").unwrap();
        let mut exec = Executor::new(mem);
        exec.run(&prog).unwrap();
        assert_eq!(exec.reg(0).get(0, 0), quantize_f16(16.0));
        assert_eq!(exec.reg(0).get(1, 0), quantize_f16((32 + 16) as f32));
    }

    #[test]
    fn out_of_bounds_faults() {
        let mem = SharedMemory::new(100); // too small for any tile
        let prog = asm::parse("simd2.load.f16 %m0, [0], 16").unwrap();
        let mut exec = Executor::new(mem);
        match exec.run(&prog) {
            Err(ExecError::OutOfBounds { size: 100, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn narrow_leading_dimension_faults() {
        let mem = SharedMemory::new(10_000);
        let prog = asm::parse("simd2.load.f16 %m0, [0], 8").unwrap();
        let mut exec = Executor::new(mem);
        assert_eq!(
            exec.run(&prog),
            Err(ExecError::BadLeadingDimension { ld: 8 })
        );
    }

    #[test]
    fn store_after_fault_does_not_happen() {
        let mut mem = SharedMemory::new(512);
        mem.write_matrix(0, 16, &Matrix::filled(16, 16, 1.0))
            .unwrap();
        let prog = asm::parse(
            "simd2.load.f16 %m0, [0], 16
             simd2.load.f16 %m1, [100000], 16
             simd2.store.f32 [256], %m0, 16",
        )
        .unwrap();
        let mut exec = Executor::new(mem);
        assert!(exec.run(&prog).is_err());
        // The store never executed.
        assert_eq!(
            exec.memory().read_matrix(256, 16, 16, 16).unwrap(),
            Matrix::zeros(16, 16)
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = SharedMemory::new(2048);
        mem.write_matrix(0, 16, &Matrix::filled(16, 16, 1.0))
            .unwrap();
        let prog = asm::parse(
            "simd2.load.f16 %m0, [0], 16
             simd2.fill %m1, 0.0
             simd2.fill %m2, inf
             simd2.minplus %m2, %m0, %m0, %m2
             simd2.minplus %m2, %m0, %m0, %m2
             simd2.mma %m1, %m0, %m0, %m1
             simd2.store.f32 [512], %m2, 16",
        )
        .unwrap();
        let mut exec = Executor::new(mem);
        let stats = exec.run(&prog).unwrap();
        assert_eq!(stats.mmos[&OpKind::MinPlus], 2);
        assert_eq!(stats.mmos[&OpKind::PlusMul], 1);
        assert_eq!(stats.total_mmos(), 3);
        assert_eq!(stats.total_instructions(), 7);
        assert_eq!(stats.elements_moved(), 2 * 256);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let mut mem = SharedMemory::new(2048);
        mem.write_matrix(0, 16, &Matrix::filled(16, 16, 2.0))
            .unwrap();
        let prog = asm::parse(
            "simd2.load.f16 %m0, [0], 16
             simd2.fill %m1, inf
             simd2.minplus %m1, %m0, %m0, %m1
             simd2.store.f32 [512], %m1, 16",
        )
        .unwrap();
        let mut plain = Executor::new(mem.clone());
        let plain_stats = plain.run(&prog).unwrap();
        let mut traced = Executor::new(mem);
        let (traced_stats, trace) = traced.run_traced(&prog).unwrap();
        assert_eq!(plain_stats, traced_stats);
        assert_eq!(plain.memory(), traced.memory());
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].pc, 0);
        assert!(trace[0].effect.contains("%m0 <- mem[0..]"));
        assert!(trace[2].effect.contains("mmo (d[0][0]=4"));
        assert!(trace[3].to_string().contains("simd2.store"));
    }

    #[test]
    fn traced_run_propagates_faults() {
        let mut exec = Executor::new(SharedMemory::new(16));
        let prog = asm::parse("simd2.load.f16 %m0, [0], 16").unwrap();
        assert!(exec.run_traced(&prog).is_err());
    }

    #[test]
    fn write_matrix_rejects_bad_regions() {
        let mut mem = SharedMemory::new(100);
        let m = Matrix::filled(4, 8, 1.0);
        assert_eq!(
            mem.write_matrix(0, 4, &m),
            Err(ExecError::BadLeadingDimension { ld: 4 })
        );
        assert!(matches!(
            mem.write_matrix(90, 8, &m),
            Err(ExecError::OutOfBounds { addr: 90, .. })
        ));
        // A failed write leaves memory untouched.
        assert_eq!(mem, SharedMemory::new(100));
        // Address arithmetic that would overflow is caught, not panicked.
        assert!(mem.write_matrix(usize::MAX - 3, usize::MAX, &m).is_err());
    }

    #[test]
    fn read_matrix_rejects_bad_regions() {
        let mem = SharedMemory::new(64);
        assert!(mem.read_matrix(0, 8, 8, 8).is_ok());
        assert!(matches!(
            mem.read_matrix(1, 8, 8, 8),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert_eq!(
            mem.read_matrix(0, 4, 2, 8),
            Err(ExecError::BadLeadingDimension { ld: 4 })
        );
        // Degenerate empty reads succeed, even at out-of-range addresses
        // (a zero-element region touches no memory).
        assert_eq!(mem.read_matrix(0, 8, 0, 8).unwrap(), Matrix::zeros(0, 8));
        assert_eq!(
            mem.read_matrix(1 << 40, 8, 5, 0).unwrap(),
            Matrix::zeros(5, 0)
        );
    }

    mod faults {
        use super::*;
        use simd2_fault::{AbftConfig, FaultPlan, FaultPlanConfig, PlannedInjector};

        fn single_mmo_program(op: OpKind) -> Vec<Instruction> {
            vec![
                Instruction::Load {
                    dst: MatrixReg::new(0),
                    dtype: Dtype::Fp16,
                    addr: 0,
                    ld: 16,
                },
                Instruction::Load {
                    dst: MatrixReg::new(1),
                    dtype: Dtype::Fp16,
                    addr: 256,
                    ld: 16,
                },
                Instruction::Load {
                    dst: MatrixReg::new(2),
                    dtype: Dtype::Fp32,
                    addr: 512,
                    ld: 16,
                },
                Instruction::Mmo {
                    op,
                    d: MatrixReg::new(3),
                    a: MatrixReg::new(0),
                    b: MatrixReg::new(1),
                    c: MatrixReg::new(2),
                },
                Instruction::Store {
                    src: MatrixReg::new(3),
                    addr: 768,
                    ld: 16,
                },
            ]
        }

        fn staged_memory(op: OpKind) -> SharedMemory {
            let mut mem = SharedMemory::new(4096);
            let a = Matrix::from_fn(16, 16, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.25 - 1.0);
            let b = Matrix::from_fn(16, 16, |r, c| ((r * 5 + c) % 13) as f32 * 0.5 - 2.0);
            let c = Matrix::filled(16, 16, op.reduce_identity_f32());
            mem.write_matrix(0, 16, &a).unwrap();
            mem.write_matrix(256, 16, &b).unwrap();
            mem.write_matrix(512, 16, &c).unwrap();
            mem
        }

        #[test]
        fn clean_runs_pass_verification_for_all_ops() {
            for op in simd2_semiring::ALL_OPS {
                let mut exec = Executor::new(staged_memory(op));
                exec.enable_verification(AbftConfig::default());
                let stats = exec.run(&single_mmo_program(op)).unwrap();
                assert_eq!(stats.mmos_verified, 1, "{op}");
                assert_eq!(stats.faults_injected, 0);
            }
        }

        #[test]
        fn every_injected_tile_fault_is_detected_or_provably_benign() {
            // Tile-class faults only (bit flips, stuck lanes, reducer
            // NaN/Inf); rates high enough that many runs are struck.
            // Every program has one mmo at site 0, so the strike draw is
            // shared by all ops within a seed — sweep enough seeds that
            // plenty of them strike.
            let mut struck = 0u64;
            let mut detected = 0u64;
            for seed in 0..32u64 {
                let plan = FaultPlan::new(
                    FaultPlanConfig::new(seed)
                        .with_bit_flip_ppm(150_000)
                        .with_stuck_lane_ppm(150_000)
                        .with_transient_nan_ppm(150_000),
                );
                for op in simd2_semiring::ALL_OPS {
                    let prog = single_mmo_program(op);
                    let mut pristine = Executor::new(staged_memory(op));
                    pristine.run(&prog).unwrap();
                    let baseline = pristine.memory().read_matrix(768, 16, 16, 16).unwrap();

                    let mut exec = Executor::new(staged_memory(op));
                    exec.set_injector(Box::new(PlannedInjector::new(plan)));
                    exec.enable_verification(AbftConfig::default());
                    match exec.run(&prog) {
                        Ok(stats) => {
                            let got = exec.memory().read_matrix(768, 16, 16, 16).unwrap();
                            if stats.faults_injected == 0 {
                                assert_eq!(
                                    got, baseline,
                                    "{op} seed {seed}: fault-free run drifted"
                                );
                                continue;
                            }
                            struck += 1;
                            if op.reduce_is_idempotent() {
                                // Witness checks are exact: an undetected
                                // fault cannot have changed any value.
                                assert_eq!(
                                    got.max_abs_diff(&baseline).unwrap(),
                                    0.0,
                                    "{op} seed {seed}: undetected fault changed a value"
                                );
                            } else {
                                // Checksum tolerance bounds the escape: the
                                // result sum can drift by at most ~2·τ.
                                let sum = |m: &Matrix| -> f64 {
                                    m.as_slice().iter().map(|&v| f64::from(v)).sum()
                                };
                                let drift = (sum(&got) - sum(&baseline)).abs();
                                // Bound ≈ 2·τ for the largest-magnitude
                                // algebra here (plus-norm, mag ≈ 5e4).
                                assert!(
                                    drift <= 10.0,
                                    "{op} seed {seed}: undetected fault drifted checksum by {drift}"
                                );
                            }
                        }
                        Err(ExecError::SilentCorruption { op: eop, .. }) => {
                            assert_eq!(eop, op);
                            let injected = exec.injector().unwrap().injected();
                            assert!(
                                injected >= 1,
                                "detection without injection (false positive)"
                            );
                            struck += 1;
                            detected += 1;
                        }
                        Err(other) => panic!("{op} seed {seed}: unexpected {other}"),
                    }
                }
            }
            assert!(
                struck >= 40,
                "campaign too quiet: only {struck} struck runs"
            );
            assert!(detected >= struck / 2, "{detected}/{struck} detected");
        }

        #[test]
        fn store_faults_corrupt_only_logged_words() {
            use simd2_fault::FaultKind;
            for seed in 0..16u64 {
                let plan = FaultPlan::new(FaultPlanConfig::new(seed).with_mem_ppm(600_000));
                let op = OpKind::PlusMul;
                let prog = single_mmo_program(op);
                let mut pristine = Executor::new(staged_memory(op));
                pristine.run(&prog).unwrap();
                let mut exec = Executor::new(staged_memory(op));
                exec.set_injector(Box::new(PlannedInjector::new(plan)));
                exec.run(&prog).unwrap();
                let faulted_words: Vec<usize> = exec
                    .injector()
                    .unwrap()
                    .log()
                    .iter()
                    .filter_map(|e| match e.kind {
                        FaultKind::MemBitFlip { word, .. } => Some(word),
                        _ => None,
                    })
                    .collect();
                let clean = pristine.memory().read_matrix(0, 1, 1, 4096).unwrap();
                let dirty = exec.memory().read_matrix(0, 1, 1, 4096).unwrap();
                for w in 0..4096 {
                    let same = clean.row(0)[w].to_bits() == dirty.row(0)[w].to_bits();
                    if !same {
                        assert!(
                            faulted_words.contains(&w),
                            "seed {seed}: word {w} differs but no fault was logged there"
                        );
                    }
                }
            }
        }

        #[test]
        fn detection_reports_telemetry() {
            let plan = FaultPlan::new(FaultPlanConfig::new(0).with_transient_nan_ppm(1_000_000));
            let op = OpKind::PlusMul;
            let mut exec = Executor::new(staged_memory(op));
            exec.set_injector(Box::new(PlannedInjector::new(plan)));
            exec.enable_verification(AbftConfig::default());
            let err = exec.run(&single_mmo_program(op)).unwrap_err();
            match err {
                ExecError::SilentCorruption {
                    op: eop,
                    mmo_index,
                    violation,
                } => {
                    assert_eq!(eop, op);
                    assert_eq!(mmo_index, 0);
                    // A transient NaN/Inf is caught by the tripwire or the
                    // checksum, never misattributed to a witness.
                    let text = violation.to_string();
                    assert!(!text.is_empty());
                }
                other => panic!("expected corruption, got {other:?}"),
            }
            assert_eq!(exec.injector().unwrap().injected(), 1);
            // The same seed replays identically.
            let mut replay = Executor::new(staged_memory(op));
            replay.set_injector(Box::new(PlannedInjector::new(plan)));
            replay.enable_verification(AbftConfig::default());
            assert_eq!(replay.run(&single_mmo_program(op)).unwrap_err(), err);
        }

        #[test]
        fn retry_with_live_injector_can_recover() {
            // At a 40% tile fault rate a handful of retries almost surely
            // reaches a clean mmo site, because the injector's site
            // counter advances across runs.
            let plan = FaultPlan::new(FaultPlanConfig::new(3).with_bit_flip_ppm(400_000));
            let op = OpKind::PlusMul;
            let prog = single_mmo_program(op);
            let mut exec = Executor::new(staged_memory(op));
            exec.set_injector(Box::new(PlannedInjector::new(plan)));
            exec.enable_verification(AbftConfig::default());
            let mut succeeded = false;
            for _ in 0..32 {
                if exec.run(&prog).is_ok() {
                    succeeded = true;
                    break;
                }
            }
            assert!(succeeded, "no retry out of 32 recovered");
        }
    }

    #[test]
    fn memory_matrix_roundtrip() {
        let mut mem = SharedMemory::new(1000);
        let m = Matrix::from_fn(7, 9, |r, c| (r * 9 + c) as f32);
        mem.write_matrix(37, 20, &m).unwrap();
        assert_eq!(mem.read_matrix(37, 20, 7, 9).unwrap(), m);
        assert!(!mem.is_empty());
        assert_eq!(mem.len(), 1000);
    }
}
