//! PTX-like assembly syntax for SIMD² programs.
//!
//! The textual form is exactly what [`Instruction`]'s `Display` impl
//! prints; `;`-suffixed statements, blank lines and `//` comments are
//! accepted. Example program (the inner loop of Figure 6's `simd2_minplus`
//! kernel for one output tile):
//!
//! ```text
//! // D(0,0) tile of a 32x32 min-plus mmo
//! simd2.fill %m3, inf
//! simd2.load.f32 %m2, [0], 32        // C tile
//! simd2.load.f16 %m0, [1024], 32     // A(0,0)
//! simd2.load.f16 %m1, [2048], 32     // B(0,0)
//! simd2.minplus %m2, %m0, %m1, %m2
//! simd2.store.f32 [0], %m2, 32
//! ```

use std::fmt;

use simd2_semiring::OpKind;

use crate::{Dtype, Instruction, MatrixReg, MATRIX_REG_COUNT};

/// Error from assembling a SIMD² program text.
#[derive(Clone, Debug, PartialEq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<MatrixReg, AsmError> {
    let body = tok
        .strip_prefix("%m")
        .ok_or_else(|| AsmError::new(line, format!("expected matrix register, got `{tok}`")))?;
    let idx: usize = body
        .parse()
        .map_err(|_| AsmError::new(line, format!("bad register index `{tok}`")))?;
    if idx >= MATRIX_REG_COUNT {
        return Err(AsmError::new(line, format!("register {tok} out of range")));
    }
    Ok(MatrixReg::new(idx as u8))
}

fn parse_addr(tok: &str, line: usize) -> Result<u32, AsmError> {
    let body = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(line, format!("expected [address], got `{tok}`")))?;
    let parsed = if let Some(hex) = body.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        body.parse()
    };
    parsed.map_err(|_| AsmError::new(line, format!("bad address `{tok}`")))
}

fn parse_value(tok: &str, line: usize) -> Result<f32, AsmError> {
    match tok {
        "inf" | "+inf" => Ok(f32::INFINITY),
        "-inf" => Ok(f32::NEG_INFINITY),
        _ => tok
            .parse()
            .map_err(|_| AsmError::new(line, format!("bad fill value `{tok}`"))),
    }
}

fn parse_u32(tok: &str, line: usize, what: &str) -> Result<u32, AsmError> {
    tok.parse()
        .map_err(|_| AsmError::new(line, format!("bad {what} `{tok}`")))
}

/// Parses one statement (without comments / terminating `;`).
fn parse_statement(stmt: &str, line: usize) -> Result<Instruction, AsmError> {
    let mut parts = stmt.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| {
        if operands.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                line,
                format!("{mnemonic} expects {n} operands, got {}", operands.len()),
            ))
        }
    };
    match mnemonic {
        "simd2.fill" => {
            want(2)?;
            Ok(Instruction::Fill {
                dst: parse_reg(operands[0], line)?,
                value: parse_value(operands[1], line)?,
            })
        }
        "simd2.load.f16" | "simd2.load.f32" | "simd2.load" => {
            want(3)?;
            let dtype = if mnemonic.ends_with(".f32") {
                Dtype::Fp32
            } else {
                Dtype::Fp16
            };
            Ok(Instruction::Load {
                dst: parse_reg(operands[0], line)?,
                dtype,
                addr: parse_addr(operands[1], line)?,
                ld: parse_u32(operands[2], line, "leading dimension")?,
            })
        }
        "simd2.store.f32" | "simd2.store" => {
            want(3)?;
            Ok(Instruction::Store {
                addr: parse_addr(operands[0], line)?,
                src: parse_reg(operands[1], line)?,
                ld: parse_u32(operands[2], line, "leading dimension")?,
            })
        }
        _ => {
            let op: OpKind = mnemonic
                .parse()
                .map_err(|_| AsmError::new(line, format!("unknown mnemonic `{mnemonic}`")))?;
            want(4)?;
            Ok(Instruction::Mmo {
                op,
                d: parse_reg(operands[0], line)?,
                a: parse_reg(operands[1], line)?,
                b: parse_reg(operands[2], line)?,
                c: parse_reg(operands[3], line)?,
            })
        }
    }
}

/// Assembles a multi-line program text into instructions.
///
/// Blank lines and `//` comments are skipped; a trailing `;` per statement
/// is allowed.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn parse(text: &str) -> Result<Vec<Instruction>, AsmError> {
    let mut program = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let no_comment = raw.split("//").next().unwrap_or("");
        let stmt = no_comment.trim().trim_end_matches(';').trim();
        if stmt.is_empty() {
            continue;
        }
        program.push(parse_statement(stmt, line)?);
    }
    Ok(program)
}

/// Disassembles a program back to its textual form (one statement per
/// line).
pub fn print(program: &[Instruction]) -> String {
    let mut out = String::new();
    for instr in program {
        out.push_str(&instr.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_roundtrip() {
        let text = "\
simd2.fill %m3, inf
simd2.load.f32 %m2, [0], 32
simd2.load.f16 %m0, [1024], 32
simd2.load.f16 %m1, [0x800], 32
simd2.minplus %m2, %m0, %m1, %m2
simd2.store.f32 [0], %m2, 32
";
        let prog = parse(text).unwrap();
        assert_eq!(prog.len(), 6);
        let printed = print(&prog);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn comments_blank_lines_and_semicolons() {
        let text = "\n// header comment\nsimd2.fill %m0, 1.5;   // trailing\n\n";
        let prog = parse(text).unwrap();
        assert_eq!(
            prog,
            vec![Instruction::Fill {
                dst: MatrixReg::new(0),
                value: 1.5
            }]
        );
    }

    #[test]
    fn all_mmo_mnemonics_parse() {
        for op in simd2_semiring::ALL_OPS {
            let text = format!("{} %m0, %m1, %m2, %m3", op.ptx_mnemonic());
            match parse(&text).unwrap()[0] {
                Instruction::Mmo { op: got, .. } => assert_eq!(got, op),
                ref other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn negative_infinity_fill() {
        match parse("simd2.fill %m1, -inf").unwrap()[0] {
            Instruction::Fill { value, .. } => assert_eq!(value, f32::NEG_INFINITY),
            ref other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("simd2.fill %m0, 1.0\nsimd2.bogus %m0").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn operand_count_checked() {
        assert!(parse("simd2.minplus %m0, %m1, %m2").is_err());
        assert!(parse("simd2.fill %m0").is_err());
        assert!(parse("simd2.load.f16 %m0, [0]").is_err());
    }

    #[test]
    fn register_range_checked() {
        let err = parse("simd2.fill %m16, 0.0").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn bad_address_rejected() {
        assert!(parse("simd2.load.f16 %m0, 1024, 32").is_err());
        assert!(parse("simd2.load.f16 %m0, [xyz], 32").is_err());
    }

    #[test]
    fn bare_load_defaults_to_f16() {
        match parse("simd2.load %m0, [0], 16").unwrap()[0] {
            Instruction::Load { dtype, .. } => assert_eq!(dtype, Dtype::Fp16),
            ref other => panic!("parsed {other:?}"),
        }
    }
}
