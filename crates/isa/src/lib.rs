//! The SIMD² instruction set architecture.
//!
//! Paper Table 2 defines the PTX-level ISA: two data-movement instructions
//! (`simd2.load`, `simd2.store`) moving fixed-size 16×16 matrices between
//! the 1-D shared-memory address space and the per-warp matrix register
//! file, a fill instruction, and nine arithmetic `mmo` instructions
//! (`simd2.mma`, `simd2.minplus`, …) sharing one data flow.
//!
//! This crate realises the ISA as data:
//!
//! * [`Instruction`] — the instruction forms with their operands,
//! * binary encoding/decoding to 64-bit words ([`Instruction::encode`] /
//!   [`Instruction::decode`]),
//! * a PTX-like [`asm`] text syntax with assembler and disassembler,
//! * [`exec`] — a warp-level executor: shared memory + matrix register
//!   file + a functional [`simd2_mxu::Simd2Unit`], producing the
//!   instruction-mix statistics the performance model consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod asm;
pub mod exec;
mod instr;
pub mod program;

pub use exec::{ExecError, ExecStats, Executor, SharedMemory, TraceEntry};
pub use instr::{DecodeError, Dtype, Instruction, MatrixReg, MATRIX_REG_COUNT};
pub use program::{from_image, to_image, ImageError};
