//! Binary program images: serialise SIMD² instruction streams to a
//! portable byte format.
//!
//! The image is a 16-byte header (magic, version, instruction count)
//! followed by the little-endian 64-bit encodings of each instruction —
//! the shape a driver would upload to the instruction front-end.

use std::fmt;

use crate::{DecodeError, Instruction};

/// Magic bytes opening every program image.
pub const MAGIC: [u8; 8] = *b"SIMD2PRG";

/// Current image format version.
pub const VERSION: u32 = 1;

/// Error from loading a program image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The image is shorter than its header or declared body.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// The magic bytes do not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// An instruction word failed to decode.
    BadInstruction {
        /// Index of the offending instruction.
        index: usize,
        /// The decode failure.
        source: DecodeError,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated program image: expected {expected} bytes, got {got}"
                )
            }
            ImageError::BadMagic => write!(f, "not a SIMD2 program image (bad magic)"),
            ImageError::BadVersion(v) => write!(f, "unsupported program image version {v}"),
            ImageError::BadInstruction { index, source } => {
                write!(f, "instruction {index}: {source}")
            }
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::BadInstruction { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serialises a program to its binary image.
pub fn to_image(program: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + program.len() * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    for instr in program {
        out.extend_from_slice(&instr.encode().to_le_bytes());
    }
    out
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Loads a program from its binary image.
///
/// # Errors
///
/// Returns an [`ImageError`] for malformed images (wrong magic/version,
/// truncation, or undecodable instruction words).
pub fn from_image(bytes: &[u8]) -> Result<Vec<Instruction>, ImageError> {
    if bytes.len() < 16 {
        return Err(ImageError::Truncated {
            expected: 16,
            got: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = le_u32(bytes, 8);
    if version != VERSION {
        return Err(ImageError::BadVersion(version));
    }
    let count = le_u32(bytes, 12) as usize;
    let expected = 16 + count * 8;
    if bytes.len() < expected {
        return Err(ImageError::Truncated {
            expected,
            got: bytes.len(),
        });
    }
    let mut program = Vec::with_capacity(count);
    for i in 0..count {
        let start = 16 + i * 8;
        let word = le_u64(bytes, start);
        let instr = Instruction::decode(word)
            .map_err(|source| ImageError::BadInstruction { index: i, source })?;
        program.push(instr);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    fn sample() -> Vec<Instruction> {
        asm::parse(
            "simd2.load.f16 %m0, [0], 16
             simd2.load.f16 %m1, [256], 16
             simd2.fill %m2, inf
             simd2.minplus %m2, %m0, %m1, %m2
             simd2.store.f32 [512], %m2, 16",
        )
        .unwrap()
    }

    #[test]
    fn image_roundtrip() {
        let prog = sample();
        let img = to_image(&prog);
        assert_eq!(img.len(), 16 + prog.len() * 8);
        assert_eq!(from_image(&img).unwrap(), prog);
    }

    #[test]
    fn empty_program_roundtrips() {
        let img = to_image(&[]);
        assert_eq!(from_image(&img).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = to_image(&sample());
        img[0] ^= 0xFF;
        assert_eq!(from_image(&img), Err(ImageError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut img = to_image(&sample());
        img[8] = 99;
        assert_eq!(from_image(&img), Err(ImageError::BadVersion(99)));
    }

    #[test]
    fn truncation_detected() {
        let img = to_image(&sample());
        let short = &img[..img.len() - 3];
        match from_image(short) {
            Err(ImageError::Truncated { expected, got }) => {
                assert_eq!(expected, img.len());
                assert_eq!(got, img.len() - 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            from_image(&img[..4]),
            Err(ImageError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_instruction_reports_index() {
        let mut img = to_image(&sample());
        // Clobber the 4th instruction's class nibble to an invalid value.
        let off = 16 + 3 * 8 + 7;
        img[off] = 0xF0;
        match from_image(&img) {
            Err(ImageError::BadInstruction { index: 3, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = ImageError::BadVersion(7);
        assert!(e.to_string().contains('7'));
        assert!(e.source().is_none());
        let mut img = to_image(&sample());
        img[16 + 7] = 0xF0;
        let e = from_image(&img).unwrap_err();
        assert!(e.source().is_some());
    }
}
