//! Property tests: the warp executor is panic-free.
//!
//! Any instruction stream that *decodes* successfully must execute
//! without panicking — out-of-bounds transfers, absurd leading
//! dimensions, and undersized shared memories all surface as
//! `Err(ExecError)`, never as a crash. The same holds with an active
//! fault injector and per-instruction ABFT verification enabled.

use proptest::collection;
use proptest::prelude::*;
use simd2_fault::{AbftConfig, FaultPlan, FaultPlanConfig, PlannedInjector};
use simd2_isa::{ExecStats, Executor, Instruction, SharedMemory};

const MAX_PROG: usize = 48;

/// Turns arbitrary 64-bit words into the decoded-valid instructions
/// among them. The top nibble is remapped onto the four valid classes
/// so all forms appear; everything else — registers, addresses, leading
/// dimensions up to the 23-bit field, fill bit patterns (including
/// NaN/Inf), opcodes — is whatever the raw bits say, kept only if the
/// decoder accepts it.
fn decode_stream(words: &[u64]) -> Vec<Instruction> {
    words
        .iter()
        .filter_map(|&w| Instruction::decode((w & !(0xF << 60)) | ((w >> 60) % 4) << 60).ok())
        .collect()
}

proptest! {
    /// `Executor::run` returns `Ok` or `Err` — it never panics — for any
    /// decoded-valid program on any shared-memory size.
    #[test]
    fn run_never_panics(
        words in collection::vec(any::<u64>(), MAX_PROG),
        len in 0usize..=MAX_PROG,
        mem_elems in 0usize..4096,
    ) {
        let prog = decode_stream(&words[..len]);
        let mut exec = Executor::new(SharedMemory::new(mem_elems));
        if let Ok(stats) = exec.run(&prog) {
            prop_assert_eq!(stats.total_instructions(), prog.len() as u64);
        } // a typed Err is the contract for invalid accesses
    }

    /// The same holds with a faulty datapath and ABFT verification: any
    /// corruption becomes `ExecError::SilentCorruption`, not a panic.
    #[test]
    fn run_never_panics_under_fault_injection(
        words in collection::vec(any::<u64>(), MAX_PROG),
        mem_elems in 0usize..2048,
        seed in any::<u64>(),
        ppm in 0u32..200_000,
    ) {
        let prog = decode_stream(&words);
        let mut exec = Executor::new(SharedMemory::new(mem_elems));
        exec.set_injector(Box::new(PlannedInjector::new(FaultPlan::new(
            FaultPlanConfig::new(seed)
                .with_bit_flip_ppm(ppm)
                .with_stuck_lane_ppm(ppm)
                .with_transient_nan_ppm(ppm)
                .with_mem_ppm(ppm),
        ))));
        exec.enable_verification(AbftConfig::default());
        let _ = exec.run(&prog);
    }

    /// Stepping instruction by instruction is equally panic-free, and an
    /// error on one instruction leaves the executor usable for the next.
    #[test]
    fn step_never_panics_and_errors_are_recoverable(
        words in collection::vec(any::<u64>(), MAX_PROG),
        mem_elems in 0usize..1024,
    ) {
        let mut exec = Executor::new(SharedMemory::new(mem_elems));
        let mut stats = ExecStats::default();
        for instr in decode_stream(&words) {
            let _ = exec.step(instr, &mut stats);
        }
    }
}
