//! Algorithm-based fault tolerance (ABFT) checks for semiring mmos.
//!
//! Two detection families, chosen by the algebra's reduction:
//!
//! * **Additive reductions** (`plus-mul`, `plus-norm`): the classic
//!   Huang–Abraham checksum invariant. For `D = C + A·B`,
//!   `Σ D = Σ C + Σₖ colsum(A)ₖ · rowsum(B)ₖ`, verified in f64 with a
//!   magnitude-scaled tolerance for fp32 reduction drift. `plus-norm`
//!   (`⊗ = (a−b)²`) expands to
//!   `Σₖ [ n·Σᵢa²ᵢₖ − 2·colsum(A)ₖ·rowsum(B)ₖ + m·Σⱼb²ₖⱼ ]`.
//! * **Idempotent reductions** (the min/max/or family): no checksum
//!   exists, but selection algebras are *exact* in fp32 — so a witness
//!   recomputation must match bit-for-bit at tile granularity, and at
//!   matrix granularity a cheap full dominance scan (`d ≤ c` for the
//!   min family, `d ≥ c` for the max family, `d ∈ {0,1}` for `or-and`)
//!   plus a deterministic sample of exact witnesses catches corruption.
//!
//! A NaN tripwire runs first for every algebra: a NaN in `D` when
//! `A`/`B`/`C` are NaN-free is always corruption.

use std::fmt;

use simd2_matrix::{Matrix, Tile};
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::precision::{quantize_f16, quantize_int8};
use simd2_semiring::OpKind;

/// A detected ABFT invariant violation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AbftViolation {
    /// `D` contains a NaN although every input was NaN-free.
    NonFinite {
        /// The op whose result was checked.
        op: OpKind,
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The offending value.
        value: f32,
    },
    /// The additive checksum invariant failed.
    ChecksumMismatch {
        /// The op whose result was checked.
        op: OpKind,
        /// Checksum predicted from the inputs.
        expected: f64,
        /// Checksum actually observed over `D`.
        got: f64,
        /// The tolerance the difference exceeded.
        tolerance: f64,
    },
    /// An exact witness recomputation disagreed with `D`.
    WitnessMismatch {
        /// The op whose result was checked.
        op: OpKind,
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The recomputed value.
        expected: f32,
        /// The value found in `D`.
        got: f32,
    },
    /// An idempotent-reduction dominance invariant failed
    /// (`d ≤ c` / `d ≥ c` / or-and truth forcing).
    DominanceViolation {
        /// The op whose result was checked.
        op: OpKind,
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The accumulator input at the site.
        c: f32,
        /// The output at the site.
        d: f32,
    },
    /// An `or-and` output was outside the canonical `{0, 1}` range.
    RangeViolation {
        /// The op whose result was checked.
        op: OpKind,
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The out-of-range value.
        value: f32,
    },
}

impl fmt::Display for AbftViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbftViolation::NonFinite {
                op,
                row,
                col,
                value,
            } => {
                write!(
                    f,
                    "{op}: non-finite {value} at d[{row}][{col}] with finite inputs"
                )
            }
            AbftViolation::ChecksumMismatch {
                op,
                expected,
                got,
                tolerance,
            } => {
                write!(
                    f,
                    "{op}: checksum {got} differs from predicted {expected} by more than {tolerance}"
                )
            }
            AbftViolation::WitnessMismatch {
                op,
                row,
                col,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{op}: d[{row}][{col}] = {got}, witness recomputation gives {expected}"
                )
            }
            AbftViolation::DominanceViolation { op, row, col, c, d } => {
                write!(
                    f,
                    "{op}: d[{row}][{col}] = {d} violates dominance against c = {c}"
                )
            }
            AbftViolation::RangeViolation {
                op,
                row,
                col,
                value,
            } => {
                write!(
                    f,
                    "{op}: d[{row}][{col}] = {value} outside the canonical {{0,1}} range"
                )
            }
        }
    }
}

impl std::error::Error for AbftViolation {}

/// Tolerances and sampling effort for ABFT verification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AbftConfig {
    /// Relative checksum tolerance, scaled by the f64 magnitude of all
    /// summed terms. fp32 tree reduction drifts by roughly
    /// `depth · ε · magnitude ≈ 1e-6 · magnitude`; the default leaves
    /// two orders of margin.
    pub rel_tol: f64,
    /// Absolute checksum tolerance floor for near-zero sums.
    pub abs_tol: f64,
    /// Number of exact witness samples per matrix-level idempotent
    /// check (clamped to the output size).
    pub witness_samples: usize,
}

impl Default for AbftConfig {
    fn default() -> Self {
        Self {
            rel_tol: 1e-4,
            abs_tol: 1e-6,
            witness_samples: 64,
        }
    }
}

impl AbftConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    fn tolerance(&self, magnitude: f64) -> f64 {
        self.rel_tol * magnitude + self.abs_tol
    }
}

/// Replicates the datapath's input quantiser.
fn quantize(mode: PrecisionMode, x: f32) -> f32 {
    match mode {
        PrecisionMode::Fp16Input => quantize_f16(x),
        PrecisionMode::Fp32Input => x,
        PrecisionMode::Int8Input => quantize_int8(x, 1.0),
    }
}

/// NaN-aware equality: exact selection algebras must reproduce values
/// (`-0.0 == 0.0` is accepted — reduction order may legally differ).
fn same_value(a: f32, b: f32) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

fn min_family(op: OpKind) -> bool {
    matches!(op, OpKind::MinPlus | OpKind::MinMul | OpKind::MinMax)
}

fn max_family(op: OpKind) -> bool {
    matches!(op, OpKind::MaxPlus | OpKind::MaxMul | OpKind::MaxMin)
}

/// Verifies one tile-granularity mmo `d = c ⊕ (a ⊗ b)` executed by
/// `unit`. `a`/`b` are the operand tiles exactly as fed to the unit
/// (the verifier re-applies the unit's input quantiser itself).
pub fn verify_tile<const N: usize>(
    op: OpKind,
    unit: &Simd2Unit,
    a: &Tile<N>,
    b: &Tile<N>,
    c: &Tile<N>,
    d: &Tile<N>,
    cfg: &AbftConfig,
) -> Result<(), AbftViolation> {
    // NaN tripwire.
    let inputs_nan = a.iter().any(|(_, _, v)| v.is_nan())
        || b.iter().any(|(_, _, v)| v.is_nan())
        || c.iter().any(|(_, _, v)| v.is_nan());
    if !inputs_nan {
        for (row, col, value) in d.iter() {
            if value.is_nan() {
                return Err(AbftViolation::NonFinite {
                    op,
                    row,
                    col,
                    value,
                });
            }
        }
    }

    if op.reduce_is_idempotent() {
        // Selection algebras are exact: a witness recomputation through
        // the same datapath must agree bit-for-bit.
        let witness = unit.execute(op, a, b, c);
        for (row, col, expected) in witness.iter() {
            let got = d.get(row, col);
            if !same_value(expected, got) {
                return Err(AbftViolation::WitnessMismatch {
                    op,
                    row,
                    col,
                    expected,
                    got,
                });
            }
        }
        return Ok(());
    }

    // Additive checksum in f64 over quantised operands.
    let mode = unit.precision();
    let qa = |i: usize, k: usize| f64::from(quantize(mode, a.get(i, k)));
    let qb = |k: usize, j: usize| f64::from(quantize(mode, b.get(k, j)));
    let mut expected = 0.0f64;
    let mut magnitude = 0.0f64;
    for (_, _, v) in c.iter() {
        expected += f64::from(v);
        magnitude += f64::from(v).abs();
    }
    match op {
        OpKind::PlusMul => {
            for k in 0..N {
                let (mut col_a, mut row_b) = (0.0f64, 0.0f64);
                let (mut abs_a, mut abs_b) = (0.0f64, 0.0f64);
                for i in 0..N {
                    let x = qa(i, k);
                    col_a += x;
                    abs_a += x.abs();
                }
                for j in 0..N {
                    let y = qb(k, j);
                    row_b += y;
                    abs_b += y.abs();
                }
                expected += col_a * row_b;
                magnitude += abs_a * abs_b;
            }
        }
        OpKind::PlusNorm => {
            let (m, n) = (N as f64, N as f64);
            for k in 0..N {
                let (mut col_a, mut sq_a) = (0.0f64, 0.0f64);
                let (mut row_b, mut sq_b) = (0.0f64, 0.0f64);
                for i in 0..N {
                    let x = qa(i, k);
                    col_a += x;
                    sq_a += x * x;
                }
                for j in 0..N {
                    let y = qb(k, j);
                    row_b += y;
                    sq_b += y * y;
                }
                expected += n * sq_a - 2.0 * col_a * row_b + m * sq_b;
                magnitude += n * sq_a + 2.0 * (col_a * row_b).abs() + m * sq_b;
            }
        }
        _ => unreachable!("additive path only handles plus-mul / plus-norm"),
    }
    let got: f64 = d.iter().map(|(_, _, v)| f64::from(v)).sum();
    if !got.is_finite() || !expected.is_finite() {
        // Overflow in either direction: fall back to agreement of
        // non-finiteness (quantisation can saturate legitimately).
        if got.is_finite() != expected.is_finite() {
            return Err(AbftViolation::ChecksumMismatch {
                op,
                expected,
                got,
                tolerance: cfg.tolerance(magnitude),
            });
        }
        return Ok(());
    }
    let tolerance = cfg.tolerance(magnitude);
    if (got - expected).abs() > tolerance {
        return Err(AbftViolation::ChecksumMismatch {
            op,
            expected,
            got,
            tolerance,
        });
    }
    Ok(())
}

/// Verifies a matrix-granularity mmo `d = c ⊕ (a ⊗ b)` produced by any
/// backend. `reduced` and `mode` describe the backend's datapath so the
/// verifier can mirror its input quantisation.
pub fn verify_matrix(
    op: OpKind,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    d: &Matrix,
    mode: PrecisionMode,
    cfg: &AbftConfig,
) -> Result<(), AbftViolation> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!((d.rows(), d.cols()), (m, n));
    debug_assert_eq!((c.rows(), c.cols()), (m, n));

    // NaN tripwire.
    let inputs_nan = a.as_slice().iter().any(|v| v.is_nan())
        || b.as_slice().iter().any(|v| v.is_nan())
        || c.as_slice().iter().any(|v| v.is_nan());
    if !inputs_nan {
        for (idx, &value) in d.as_slice().iter().enumerate() {
            if value.is_nan() {
                return Err(AbftViolation::NonFinite {
                    op,
                    row: idx / n,
                    col: idx % n,
                    value,
                });
            }
        }
    }

    let qa = |i: usize, kk: usize| f64::from(quantize(mode, a.row(i)[kk]));
    let qb = |kk: usize, j: usize| f64::from(quantize(mode, b.row(kk)[j]));

    if !op.reduce_is_idempotent() {
        // Additive checksum.
        let mut expected = 0.0f64;
        let mut magnitude = 0.0f64;
        for &v in c.as_slice() {
            expected += f64::from(v);
            magnitude += f64::from(v).abs();
        }
        for kk in 0..k {
            let (mut col_a, mut abs_a, mut sq_a) = (0.0f64, 0.0f64, 0.0f64);
            let (mut row_b, mut abs_b, mut sq_b) = (0.0f64, 0.0f64, 0.0f64);
            for i in 0..m {
                let x = qa(i, kk);
                col_a += x;
                abs_a += x.abs();
                sq_a += x * x;
            }
            for j in 0..n {
                let y = qb(kk, j);
                row_b += y;
                abs_b += y.abs();
                sq_b += y * y;
            }
            match op {
                OpKind::PlusMul => {
                    expected += col_a * row_b;
                    magnitude += abs_a * abs_b;
                }
                OpKind::PlusNorm => {
                    expected += n as f64 * sq_a - 2.0 * col_a * row_b + m as f64 * sq_b;
                    magnitude += n as f64 * sq_a + 2.0 * (col_a * row_b).abs() + m as f64 * sq_b;
                }
                _ => unreachable!("additive path only handles plus-mul / plus-norm"),
            }
        }
        let got: f64 = d.as_slice().iter().map(|&v| f64::from(v)).sum();
        if !got.is_finite() || !expected.is_finite() {
            if got.is_finite() != expected.is_finite() {
                return Err(AbftViolation::ChecksumMismatch {
                    op,
                    expected,
                    got,
                    tolerance: cfg.tolerance(magnitude),
                });
            }
            return Ok(());
        }
        let tolerance = cfg.tolerance(magnitude);
        if (got - expected).abs() > tolerance {
            return Err(AbftViolation::ChecksumMismatch {
                op,
                expected,
                got,
                tolerance,
            });
        }
        return Ok(());
    }

    // Idempotent family: full dominance scan …
    for i in 0..m {
        for j in 0..n {
            let cv = c.row(i)[j];
            let dv = d.row(i)[j];
            if op == OpKind::OrAnd {
                if dv != 0.0 && dv != 1.0 {
                    return Err(AbftViolation::RangeViolation {
                        op,
                        row: i,
                        col: j,
                        value: dv,
                    });
                }
                if cv != 0.0 && dv != 1.0 {
                    return Err(AbftViolation::DominanceViolation {
                        op,
                        row: i,
                        col: j,
                        c: cv,
                        d: dv,
                    });
                }
            } else if min_family(op) {
                if dv > cv {
                    return Err(AbftViolation::DominanceViolation {
                        op,
                        row: i,
                        col: j,
                        c: cv,
                        d: dv,
                    });
                }
            } else if max_family(op) && dv < cv {
                return Err(AbftViolation::DominanceViolation {
                    op,
                    row: i,
                    col: j,
                    c: cv,
                    d: dv,
                });
            }
        }
    }

    // … plus a deterministic sample of exact witnesses.
    let total = m * n;
    if total == 0 {
        return Ok(());
    }
    let samples = cfg.witness_samples.min(total);
    for s in 0..samples {
        // Low-discrepancy walk over the output; pure function of (s, dims).
        let idx = if samples == total {
            s
        } else {
            (s.wrapping_mul(2_654_435_761).wrapping_add(s / n + s)) % total
        };
        let (i, j) = (idx / n, idx % n);
        let mut acc = c.row(i)[j];
        for kk in 0..k {
            let x = quantize(mode, a.row(i)[kk]);
            let y = quantize(mode, b.row(kk)[j]);
            acc = op.reduce_f32(acc, op.combine_f32(x, y));
        }
        let got = d.row(i)[j];
        if !same_value(acc, got) {
            return Err(AbftViolation::WitnessMismatch {
                op,
                row: i,
                col: j,
                expected: acc,
                got,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::OpKind;

    const ALL: [OpKind; 9] = [
        OpKind::PlusMul,
        OpKind::MinPlus,
        OpKind::MaxPlus,
        OpKind::MinMul,
        OpKind::MaxMul,
        OpKind::MinMax,
        OpKind::MaxMin,
        OpKind::OrAnd,
        OpKind::PlusNorm,
    ];

    fn operands() -> (Tile<16>, Tile<16>, Tile<16>) {
        let a = Tile::<16>::from_fn(|r, c| ((r * 7 + c * 3) % 11) as f32 * 0.25 - 1.0);
        let b = Tile::<16>::from_fn(|r, c| ((r * 5 + c) % 13) as f32 * 0.5 - 2.0);
        let c = Tile::<16>::from_fn(|r, c| ((r + c) % 5) as f32 - 1.0);
        (a, b, c)
    }

    fn bool_operands() -> (Tile<16>, Tile<16>, Tile<16>) {
        let a = Tile::<16>::from_fn(|r, c| ((r * 7 + c) % 3 == 0) as u8 as f32);
        let b = Tile::<16>::from_fn(|r, c| ((r + c * 5) % 4 == 0) as u8 as f32);
        let c = Tile::<16>::from_fn(|r, c| ((r * c) % 7 == 0) as u8 as f32);
        (a, b, c)
    }

    fn pick(op: OpKind) -> (Tile<16>, Tile<16>, Tile<16>) {
        if op == OpKind::OrAnd {
            bool_operands()
        } else {
            operands()
        }
    }

    #[test]
    fn clean_tiles_verify_for_all_ops() {
        let unit = Simd2Unit::new();
        let cfg = AbftConfig::default();
        for op in ALL {
            let (a, b, c) = pick(op);
            let d = unit.execute(op, &a, &b, &c);
            assert_eq!(verify_tile(op, &unit, &a, &b, &c, &d, &cfg), Ok(()), "{op}");
        }
    }

    #[test]
    fn large_offset_is_detected_for_all_ops() {
        let unit = Simd2Unit::new();
        let cfg = AbftConfig::default();
        for op in ALL {
            let (a, b, c) = pick(op);
            let mut d = unit.execute(op, &a, &b, &c);
            // Large corruption: offset one element well past every
            // tolerance (guaranteed to change the value).
            let v = d.get(3, 7);
            d.set(3, 7, v + 50.0);
            assert!(
                verify_tile(op, &unit, &a, &b, &c, &d, &cfg).is_err(),
                "{op} missed the corruption"
            );
        }
    }

    #[test]
    fn injected_nan_is_detected_for_all_ops() {
        let unit = Simd2Unit::new();
        let cfg = AbftConfig::default();
        for op in ALL {
            let (a, b, c) = pick(op);
            let mut d = unit.execute(op, &a, &b, &c);
            d.set(0, 0, f32::NAN);
            assert!(
                matches!(
                    verify_tile(op, &unit, &a, &b, &c, &d, &cfg),
                    Err(AbftViolation::NonFinite { .. })
                ),
                "{op}"
            );
        }
    }

    #[test]
    fn nan_inputs_disable_the_tripwire() {
        let unit = Simd2Unit::new();
        let cfg = AbftConfig::default();
        let (a, b, mut c) = operands();
        c.set(0, 0, f32::NAN);
        let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
        // Legitimate NaN propagation must not be flagged.
        assert_eq!(
            verify_tile(OpKind::MinPlus, &unit, &a, &b, &c, &d, &cfg),
            Ok(())
        );
    }

    #[test]
    fn tiny_mantissa_noise_is_benign_for_checksums() {
        let unit = Simd2Unit::new();
        let cfg = AbftConfig::default();
        let (a, b, c) = operands();
        let mut d = unit.execute(OpKind::PlusMul, &a, &b, &c);
        let v = d.get(2, 2);
        d.set(2, 2, v + v.abs() * 1e-7);
        assert_eq!(
            verify_tile(OpKind::PlusMul, &unit, &a, &b, &c, &d, &cfg),
            Ok(())
        );
    }

    fn matrices(m: usize, k: usize, n: usize) -> (Matrix, Matrix, Matrix) {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 7) % 9) as f32 * 0.5 - 1.5);
        let b = Matrix::from_fn(k, n, |r, c| ((r + c * 11) % 7) as f32 * 0.25 - 0.5);
        let c = Matrix::from_fn(m, n, |r, c| ((r * c) % 4) as f32);
        (a, b, c)
    }

    fn reference_mmo(
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
        mode: PrecisionMode,
    ) -> Matrix {
        Matrix::from_fn(c.rows(), c.cols(), |i, j| {
            let mut acc = c.row(i)[j];
            for kk in 0..a.cols() {
                let x = quantize(mode, a.row(i)[kk]);
                let y = quantize(mode, b.row(kk)[j]);
                acc = op.reduce_f32(acc, op.combine_f32(x, y));
            }
            acc
        })
    }

    #[test]
    fn clean_matrices_verify_for_all_ops() {
        let cfg = AbftConfig::default();
        let mode = PrecisionMode::Fp16Input;
        for op in ALL {
            let (a, b, c) = matrices(20, 17, 23);
            let d = reference_mmo(op, &a, &b, &c, mode);
            assert_eq!(
                verify_matrix(op, &a, &b, &c, &d, mode, &cfg),
                Ok(()),
                "{op}"
            );
        }
    }

    #[test]
    fn matrix_corruption_is_detected_for_all_ops() {
        // Full witness: every element checked.
        let cfg = AbftConfig {
            witness_samples: usize::MAX,
            ..AbftConfig::default()
        };
        let mode = PrecisionMode::Fp16Input;
        for op in ALL {
            let (a, b, c) = matrices(20, 17, 23);
            let mut d = reference_mmo(op, &a, &b, &c, mode);
            let v = d.row(4)[9];
            d.as_mut_slice()[4 * 23 + 9] = v + 25.0;
            assert!(
                verify_matrix(op, &a, &b, &c, &d, mode, &cfg).is_err(),
                "{op} missed the corruption"
            );
        }
    }

    #[test]
    fn dominance_catches_directional_corruption_without_witness() {
        // Dominance scan only.
        let cfg = AbftConfig {
            witness_samples: 0,
            ..AbftConfig::default()
        };
        let mode = PrecisionMode::Fp32Input;
        let (a, b, c) = matrices(12, 8, 12);
        let mut d = reference_mmo(OpKind::MinPlus, &a, &b, &c, mode);
        d.as_mut_slice()[0] = c.row(0)[0] + 100.0; // min-plus result above c
        assert!(matches!(
            verify_matrix(OpKind::MinPlus, &a, &b, &c, &d, mode, &cfg),
            Err(AbftViolation::DominanceViolation { .. })
        ));
    }

    #[test]
    fn or_and_range_is_enforced() {
        let cfg = AbftConfig::default();
        let mode = PrecisionMode::Fp32Input;
        let a = Matrix::from_fn(8, 8, |r, c| ((r + c) % 2) as f32);
        let b = Matrix::from_fn(8, 8, |r, c| ((r * c) % 3 == 0) as u8 as f32);
        let c = Matrix::zeros(8, 8);
        let mut d = reference_mmo(OpKind::OrAnd, &a, &b, &c, mode);
        d.as_mut_slice()[5] = 0.5;
        assert!(matches!(
            verify_matrix(OpKind::OrAnd, &a, &b, &c, &d, mode, &cfg),
            Err(AbftViolation::RangeViolation { .. })
        ));
    }
}
