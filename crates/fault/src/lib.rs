//! Fault injection and algorithm-based fault tolerance (ABFT) for the
//! SIMD² reproduction.
//!
//! The paper's SIMD² unit is a *shared-hardware* extension of the MXU:
//! one faulty tile-pipe lane silently corrupts every semiring workload
//! routed through it. This crate makes that failure mode a first-class,
//! reproducible object of study:
//!
//! * [`plan`] — a seeded, deterministic [`FaultPlan`]: bit-flips in tile
//!   registers, stuck-at lanes in the 4×4 MXU grid, transient NaN/Inf
//!   injection in the `⊕`/`⊗` reducers, and shared-memory word
//!   corruption. Fault decisions are a pure hash of `(seed, site)`, so a
//!   campaign replays identically regardless of execution interleaving.
//! * [`inject`] — the [`FaultInjector`] seam: anything that executes
//!   `mmo`s (the functional [`simd2_mxu::Simd2Unit`] via
//!   [`FaultySimd2Unit`], or the warp-level executor in `simd2-isa`) can
//!   host an injector and run any program or app under a campaign.
//! * [`abft`] — detection: row/column-sum checksum invariants for the
//!   additive-reduction algebras (plus-mul, plus-norm) and witness /
//!   dominance / range checks for the idempotent min/max/or family,
//!   plus a NaN tripwire. Violations carry enough context to be logged
//!   and acted on by recovery policies.
//!
//! Recovery (fail-fast / retry / backend fallback) lives in
//! `simd2::resilient`, which consumes these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod abft;
pub mod inject;
pub mod plan;

pub use abft::{AbftConfig, AbftViolation};
pub use inject::{
    FaultInjector, FaultLogEntry, FaultySimd2Unit, MmoCoord, MmoUnit, PanicProbeUnit,
    PlannedInjector, ShardableInjector, TileCoord, PANIC_PROBE_PAYLOAD,
};
pub use plan::{FaultClass, FaultKind, FaultPlan, FaultPlanConfig, StallPlan};
