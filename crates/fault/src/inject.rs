//! The fault-injection seam.
//!
//! [`FaultInjector`] is the object-safe hook an execution engine calls
//! at each fault *site*: once per mmo (tile-granularity `D = C ⊕ A⊗B`)
//! and once per store. [`PlannedInjector`] drives it from a seeded
//! [`FaultPlan`] with monotonically increasing site counters, so a
//! retry of the same mmo consumes a fresh site and sees an independent
//! fault draw — the transient-fault model that makes retry a meaningful
//! recovery policy.
//!
//! [`MmoUnit`] abstracts "something that executes a tile mmo", letting
//! backends be generic over the pristine [`Simd2Unit`] or the
//! [`FaultySimd2Unit`] wrapper that corrupts its outputs.

use simd2_matrix::Tile;
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::OpKind;

use crate::plan::{FaultKind, FaultPlan, MXU_GRID};

/// One injected fault, for campaign logs and telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultLogEntry {
    /// The site index the fault struck at.
    pub site: u64,
    /// The semiring op executing at the site (`None` for store sites).
    pub op: Option<OpKind>,
    /// What was injected.
    pub kind: FaultKind,
}

/// Applies a tile-class fault to an `n × n` row-major output buffer.
pub fn apply_to_tile(kind: FaultKind, d: &mut [f32], n: usize) {
    debug_assert_eq!(d.len(), n * n);
    match kind {
        FaultKind::BitFlip { row, col, bit } => {
            let idx = row * n + col;
            d[idx] = f32::from_bits(d[idx].to_bits() ^ (1u32 << bit));
        }
        FaultKind::StuckLane { lane_row, lane_col, value } => {
            for r in 0..n {
                for c in 0..n {
                    if r % MXU_GRID == lane_row && c % MXU_GRID == lane_col {
                        d[r * n + c] = value;
                    }
                }
            }
        }
        FaultKind::TransientNan { row, col, inf } => {
            d[row * n + col] = if inf { f32::INFINITY } else { f32::NAN };
        }
        FaultKind::MemBitFlip { .. } => {
            debug_assert!(false, "memory fault applied to a tile");
        }
    }
}

/// Applies a memory-class fault to a shared-memory word buffer.
pub fn apply_to_memory(kind: FaultKind, words: &mut [f32]) {
    if let FaultKind::MemBitFlip { word, bit } = kind {
        if word < words.len() {
            words[word] = f32::from_bits(words[word].to_bits() ^ (1u32 << bit));
        }
    } else {
        debug_assert!(false, "tile fault applied to memory");
    }
}

/// Object-safe fault-injection hook.
///
/// Engines call [`inject_mmo`](FaultInjector::inject_mmo) with the
/// freshly computed output tile (row-major, `n × n`) and
/// [`inject_store`](FaultInjector::inject_store) with the whole shared
/// memory after each store. Both return the fault that struck, if any.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// Possibly corrupts the output tile of one mmo.
    fn inject_mmo(&mut self, op: OpKind, d: &mut [f32], n: usize) -> Option<FaultKind>;

    /// Possibly corrupts shared memory after a store.
    fn inject_store(&mut self, memory: &mut [f32]) -> Option<FaultKind>;

    /// Total faults injected so far.
    fn injected(&self) -> u64;

    /// Every fault injected so far, in order.
    fn log(&self) -> &[FaultLogEntry];

    /// Clones the injector behind its trait object.
    fn box_clone(&self) -> Box<dyn FaultInjector>;
}

impl Clone for Box<dyn FaultInjector> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A [`FaultInjector`] driven by a seeded [`FaultPlan`].
///
/// Site counters advance monotonically for the injector's lifetime and
/// never reset, so repeated execution of the same program draws fresh
/// faults each time.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedInjector {
    plan: FaultPlan,
    next_mmo_site: u64,
    next_store_site: u64,
    log: Vec<FaultLogEntry>,
}

impl PlannedInjector {
    /// A fresh injector at site zero.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, next_mmo_site: 0, next_store_site: 0, log: Vec::new() }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The number of mmo sites visited so far.
    pub fn mmo_sites(&self) -> u64 {
        self.next_mmo_site
    }

    /// The number of store sites visited so far.
    pub fn store_sites(&self) -> u64 {
        self.next_store_site
    }
}

impl FaultInjector for PlannedInjector {
    fn inject_mmo(&mut self, op: OpKind, d: &mut [f32], n: usize) -> Option<FaultKind> {
        let site = self.next_mmo_site;
        self.next_mmo_site += 1;
        let kind = self.plan.fault_for_mmo_site(site, n)?;
        apply_to_tile(kind, d, n);
        self.log.push(FaultLogEntry { site, op: Some(op), kind });
        Some(kind)
    }

    fn inject_store(&mut self, memory: &mut [f32]) -> Option<FaultKind> {
        let site = self.next_store_site;
        self.next_store_site += 1;
        let kind = self.plan.fault_for_mem_site(site, memory.len())?;
        apply_to_memory(kind, memory);
        self.log.push(FaultLogEntry { site, op: None, kind });
        Some(kind)
    }

    fn injected(&self) -> u64 {
        self.log.len() as u64
    }

    fn log(&self) -> &[FaultLogEntry] {
        &self.log
    }

    fn box_clone(&self) -> Box<dyn FaultInjector> {
        Box::new(self.clone())
    }
}

/// Something that executes tile mmos — the seam that lets tiled
/// backends run over either a pristine or a fault-injected datapath.
pub trait MmoUnit: std::fmt::Debug {
    /// Executes `D = C ⊕ (A ⊗ B)` on `N × N` tiles.
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N>;

    /// Whether the datapath quantises inputs below fp32.
    fn reduced_precision(&self) -> bool;

    /// The input precision mode of the underlying datapath.
    fn precision(&self) -> PrecisionMode;

    /// A stateless snapshot of the datapath that may be replicated
    /// across worker threads, or `None` when the unit carries mutable
    /// state whose visiting order is observable.
    ///
    /// The pristine [`Simd2Unit`] is pure (same inputs ⇒ same output
    /// tile, no internal state), so tiled backends may execute disjoint
    /// output tiles concurrently on copies of it. A
    /// [`FaultySimd2Unit`] returns `None`: its injector's site counter
    /// advances per mmo, so tile order is semantically meaningful and
    /// execution must stay sequential for fault campaigns to remain
    /// deterministic.
    fn parallel_snapshot(&self) -> Option<Simd2Unit> {
        None
    }
}

impl MmoUnit for Simd2Unit {
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        self.execute(op, a, b, c)
    }

    fn reduced_precision(&self) -> bool {
        self.precision() != PrecisionMode::Fp32Input
    }

    fn precision(&self) -> PrecisionMode {
        Simd2Unit::precision(self)
    }

    fn parallel_snapshot(&self) -> Option<Simd2Unit> {
        Some(*self)
    }
}

/// A [`Simd2Unit`] whose outputs pass through a fault injector.
#[derive(Clone, Debug)]
pub struct FaultySimd2Unit<I: FaultInjector = PlannedInjector> {
    unit: Simd2Unit,
    injector: I,
}

impl<I: FaultInjector> FaultySimd2Unit<I> {
    /// Wraps `unit` with `injector`.
    pub fn new(unit: Simd2Unit, injector: I) -> Self {
        Self { unit, injector }
    }

    /// The pristine underlying unit.
    pub fn unit(&self) -> &Simd2Unit {
        &self.unit
    }

    /// The injector, for telemetry.
    pub fn injector(&self) -> &I {
        &self.injector
    }

    /// Unwraps into the injector, e.g. to read the final fault log.
    pub fn into_injector(self) -> I {
        self.injector
    }
}

impl<I: FaultInjector> MmoUnit for FaultySimd2Unit<I> {
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        let d = self.unit.execute(op, a, b, c);
        let mut flat: Vec<f32> = (0..N * N).map(|i| d.get(i / N, i % N)).collect();
        if self.injector.inject_mmo(op, &mut flat, N).is_some() {
            return Tile::from_fn(|r, c| flat[r * N + c]);
        }
        d
    }

    fn reduced_precision(&self) -> bool {
        MmoUnit::reduced_precision(&self.unit)
    }

    fn precision(&self) -> PrecisionMode {
        self.unit.precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanConfig;

    fn always_plan() -> FaultPlan {
        FaultPlan::new(FaultPlanConfig::uniform(11, 1_000_000))
    }

    #[test]
    fn planned_injector_advances_sites_and_logs() {
        let mut inj = PlannedInjector::new(always_plan());
        let mut d = vec![1.0f32; 256];
        let first = inj.inject_mmo(OpKind::PlusMul, &mut d, 16);
        assert!(first.is_some());
        let mut mem = vec![0.5f32; 64];
        assert!(inj.inject_store(&mut mem).is_some());
        assert_eq!(inj.injected(), 2);
        assert_eq!(inj.mmo_sites(), 1);
        assert_eq!(inj.store_sites(), 1);
        assert_eq!(inj.log()[0].op, Some(OpKind::PlusMul));
        assert_eq!(inj.log()[1].op, None);
    }

    #[test]
    fn retries_draw_fresh_faults() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(11, 500_000));
        let mut inj = PlannedInjector::new(plan);
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            let mut d = vec![1.0f32; 256];
            outcomes.push(inj.inject_mmo(OpKind::PlusMul, &mut d, 16));
        }
        // At ~50% rate, 64 retries must see both struck and clean sites.
        assert!(outcomes.iter().any(Option::is_some));
        assert!(outcomes.iter().any(Option::is_none));
    }

    #[test]
    fn bit_flip_changes_exactly_one_element() {
        let mut d = vec![2.0f32; 16];
        apply_to_tile(FaultKind::BitFlip { row: 1, col: 2, bit: 31 }, &mut d, 4);
        assert_eq!(d[4 + 2], -2.0);
        assert_eq!(d.iter().filter(|&&x| x != 2.0).count(), 1);
    }

    #[test]
    fn stuck_lane_covers_the_grid_pattern() {
        let mut d = vec![7.0f32; 256];
        apply_to_tile(
            FaultKind::StuckLane { lane_row: 1, lane_col: 3, value: 0.0 },
            &mut d,
            16,
        );
        let stuck = d.iter().filter(|&&x| x == 0.0).count();
        assert_eq!(stuck, (16 / MXU_GRID) * (16 / MXU_GRID));
        assert_eq!(d[16 + 3], 0.0);
        assert_eq!(d[5 * 16 + 7], 0.0);
        assert_eq!(d[0], 7.0);
    }

    #[test]
    fn faulty_unit_differs_from_pristine_under_full_rate() {
        let unit = Simd2Unit::new();
        let a = Tile::<16>::from_fn(|r, c| (r + c) as f32 * 0.25);
        let b = Tile::<16>::from_fn(|r, c| (r * 16 + c) as f32 * 0.01);
        let c = Tile::<16>::splat(0.0);
        let clean = unit.execute(OpKind::PlusMul, &a, &b, &c);
        let mut faulty = FaultySimd2Unit::new(unit, PlannedInjector::new(always_plan()));
        let dirty = faulty.execute_tile(OpKind::PlusMul, &a, &b, &c);
        assert_eq!(faulty.injector().injected(), 1);
        // A full-rate plan must strike; the struck tile may still be
        // value-identical only if the flip hit an element's dead bits,
        // which the plan's parameters make impossible here (flip of a
        // nonzero value always changes its bits).
        let mut changed = false;
        for (r, cc, v) in clean.iter() {
            let w = dirty.get(r, cc);
            if v.to_bits() != w.to_bits() {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn only_pristine_units_offer_parallel_snapshots() {
        let unit = Simd2Unit::new();
        assert_eq!(MmoUnit::parallel_snapshot(&unit), Some(unit));
        let faulty = FaultySimd2Unit::new(unit, PlannedInjector::new(always_plan()));
        assert_eq!(faulty.parallel_snapshot(), None);
    }

    #[test]
    fn mem_fault_out_of_range_is_ignored() {
        // Defensive: apply_to_memory clamps rather than panics.
        let mut mem = vec![1.0f32; 4];
        apply_to_memory(FaultKind::MemBitFlip { word: 100, bit: 3 }, &mut mem);
        assert_eq!(mem, vec![1.0f32; 4]);
    }
}
