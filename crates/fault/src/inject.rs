//! The fault-injection seam.
//!
//! [`FaultInjector`] is the object-safe hook an execution engine calls
//! at each fault *site*: once per mmo (tile-granularity `D = C ⊕ A⊗B`)
//! and once per store. [`PlannedInjector`] drives it from a seeded
//! [`FaultPlan`]. Sites are addressed two ways:
//!
//! * **visit order** ([`FaultInjector::inject_mmo`]) — a monotonically
//!   increasing counter, for strictly sequential engines (the warp-level
//!   ISA executor);
//! * **coordinates** ([`FaultInjector::inject_mmo_at`]) — the site key
//!   derives from `(matrix-mmo sequence, ti, tj, tk)`, so the same plan
//!   strikes the same tiles regardless of execution order or worker
//!   count. This is what lets fault campaigns run on the panel-parallel
//!   tile-grid schedule with bit-identical results to sequential.
//!
//! Either way, a retry of the same mmo (a fresh visit-order site, or a
//! fresh matrix-mmo sequence number) sees an independent fault draw —
//! the transient-fault model that makes retry a meaningful recovery
//! policy.
//!
//! [`MmoUnit`] abstracts "something that executes a tile mmo", letting
//! backends be generic over the pristine [`Simd2Unit`] or the
//! [`FaultySimd2Unit`] wrapper that corrupts its outputs. Its
//! [`shard`](MmoUnit::shard)/[`absorb`](MmoUnit::absorb) seam is how a
//! parallel engine replicates a unit across workers and deterministically
//! merges per-worker fault logs after the join.

use std::collections::VecDeque;

use simd2_matrix::Tile;
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::simd::KernelIsa;
use simd2_semiring::OpKind;
use simd2_trace::{field, span, Counter, Tracer};

use crate::plan::{mix, FaultKind, FaultPlan, MXU_GRID};

/// Process-global count of injected faults (all injectors, all kinds).
static INJECTED_FAULTS: Counter = Counter::new("fault.injected");
/// Process-global count of fault-log ring-buffer evictions.
static LOG_DROPPED: Counter = Counter::new("fault.log_dropped");

/// Grid coordinates of one tile-level mmo within a whole-matrix
/// operation: output tile `(ti, tj)`, reduction step `tk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileCoord {
    /// Output tile row.
    pub ti: u32,
    /// Output tile column.
    pub tj: u32,
    /// Reduction (k) tile index.
    pub tk: u32,
}

impl TileCoord {
    /// Builds the coordinate (indices are tile-grid indices, not
    /// element indices).
    pub fn new(ti: usize, tj: usize, tk: usize) -> Self {
        Self {
            ti: ti as u32,
            tj: tj as u32,
            tk: tk as u32,
        }
    }
}

/// The full coordinate address of an mmo fault site: which whole-matrix
/// mmo (by sequence number within the injector's lifetime) and which
/// tile-grid step inside it.
///
/// Ordering is lexicographic `(mmo_seq, ti, tj, tk)` — exactly the order
/// a sequential row-major tile-grid schedule visits sites, which is the
/// canonical order merged parallel fault logs are kept in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MmoCoord {
    /// Whole-matrix mmo sequence number (1-based; see
    /// [`FaultInjector::begin_matrix_mmo`]).
    pub mmo_seq: u64,
    /// Output tile row.
    pub ti: u32,
    /// Output tile column.
    pub tj: u32,
    /// Reduction (k) tile index.
    pub tk: u32,
}

/// Domain separator keeping coordinate-derived site keys disjoint from
/// the small integers the visit-order stream uses.
const COORD_SITE_SALT: u64 = 0xc00d_517e_ad42_e55e;

impl MmoCoord {
    /// The plan-site key this coordinate hashes to. A pure function of
    /// the coordinate, so any execution order (or worker count) that
    /// reaches the same tile draws the same fault.
    pub fn site_key(self) -> u64 {
        let packed = (u64::from(self.ti) << 42) ^ (u64::from(self.tj) << 21) ^ u64::from(self.tk);
        mix(mix(self.mmo_seq ^ COORD_SITE_SALT) ^ packed)
    }

    /// The *sequence-free* site key: a pure function of `(ti, tj, tk)`
    /// with the mmo sequence number deliberately left out. Sticky
    /// repeat-offender draws key on this, so re-executing the same tile
    /// — on retry, on the sequential fallback schedule, or in a resumed
    /// plan — strikes the identical defect every time.
    pub fn coord_key(self) -> u64 {
        let packed = (u64::from(self.ti) << 42) ^ (u64::from(self.tj) << 21) ^ u64::from(self.tk);
        mix(COORD_SITE_SALT ^ packed)
    }
}

/// One injected fault, for campaign logs and telemetry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultLogEntry {
    /// The site key the fault struck at.
    pub site: u64,
    /// The coordinate address of the site, when the engine addressed it
    /// by coordinates (`None` for visit-order and store sites).
    pub coord: Option<MmoCoord>,
    /// The semiring op executing at the site (`None` for store sites).
    pub op: Option<OpKind>,
    /// What was injected.
    pub kind: FaultKind,
}

/// Applies a tile-class fault to an `n × n` row-major output buffer.
pub fn apply_to_tile(kind: FaultKind, d: &mut [f32], n: usize) {
    debug_assert_eq!(d.len(), n * n);
    match kind {
        FaultKind::BitFlip { row, col, bit } => {
            let idx = row * n + col;
            d[idx] = f32::from_bits(d[idx].to_bits() ^ (1u32 << bit));
        }
        FaultKind::StuckLane {
            lane_row,
            lane_col,
            value,
        } => {
            for r in 0..n {
                for c in 0..n {
                    if r % MXU_GRID == lane_row && c % MXU_GRID == lane_col {
                        d[r * n + c] = value;
                    }
                }
            }
        }
        FaultKind::TransientNan { row, col, inf } => {
            d[row * n + col] = if inf { f32::INFINITY } else { f32::NAN };
        }
        FaultKind::StickyNan { row, col } => {
            d[row * n + col] = f32::NAN;
        }
        FaultKind::MemBitFlip { .. } => {
            debug_assert!(false, "memory fault applied to a tile");
        }
    }
}

/// Applies a memory-class fault to a shared-memory word buffer.
pub fn apply_to_memory(kind: FaultKind, words: &mut [f32]) {
    if let FaultKind::MemBitFlip { word, bit } = kind {
        if word < words.len() {
            words[word] = f32::from_bits(words[word].to_bits() ^ (1u32 << bit));
        }
    } else {
        debug_assert!(false, "tile fault applied to memory");
    }
}

/// Object-safe fault-injection hook.
///
/// Engines call [`inject_mmo`](FaultInjector::inject_mmo) with the
/// freshly computed output tile (row-major, `n × n`) and
/// [`inject_store`](FaultInjector::inject_store) with the whole shared
/// memory after each store. Both return the fault that struck, if any.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// Possibly corrupts the output tile of one mmo (visit-order site
    /// addressing — for strictly sequential engines).
    fn inject_mmo(&mut self, op: OpKind, d: &mut [f32], n: usize) -> Option<FaultKind>;

    /// Possibly corrupts the output tile of one mmo at an explicit
    /// tile-grid coordinate. Order-independent: the draw depends only on
    /// the current matrix-mmo sequence number and `coord`, never on how
    /// many sites were visited before it. Defaults to the visit-order
    /// path for injectors that do not support coordinate addressing.
    fn inject_mmo_at(
        &mut self,
        coord: TileCoord,
        op: OpKind,
        d: &mut [f32],
        n: usize,
    ) -> Option<FaultKind> {
        let _ = coord;
        self.inject_mmo(op, d, n)
    }

    /// Marks the start of a new whole-matrix mmo, advancing the sequence
    /// number coordinate-addressed draws derive from. A retried mmo
    /// therefore sees fresh, independent faults — transients are
    /// transient. No-op for visit-order-only injectors.
    fn begin_matrix_mmo(&mut self) {}

    /// Possibly corrupts shared memory after a store.
    fn inject_store(&mut self, memory: &mut [f32]) -> Option<FaultKind>;

    /// Total faults injected so far (including any whose log entries
    /// were dropped by a bounded log).
    fn injected(&self) -> u64;

    /// A snapshot of the retained fault log, oldest first.
    fn log(&self) -> Vec<FaultLogEntry>;

    /// Log entries evicted by a bounded log (see
    /// [`PlannedInjector::with_log_capacity`]).
    fn dropped(&self) -> u64 {
        0
    }

    /// Clones the injector behind its trait object.
    fn box_clone(&self) -> Box<dyn FaultInjector>;
}

impl Clone for Box<dyn FaultInjector> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A [`FaultInjector`] that can be split into per-worker shards whose
/// state merges back deterministically after a parallel join.
///
/// Only injectors whose draws are order-independent (coordinate
/// addressing) can shard: every shard must produce the same fault for
/// the same tile no matter which worker visits it.
pub trait ShardableInjector: FaultInjector + Sized {
    /// A worker shard: same plan and current matrix-mmo sequence, empty
    /// log and zeroed telemetry counters.
    fn shard(&self) -> Self;

    /// Merges a shard's log and counters back into `self`.
    ///
    /// Callers must absorb shards in panel order (ascending output tile
    /// row); each shard logs its own panel in row-major order, so
    /// ordered absorption reproduces exactly the log a sequential
    /// schedule would have written.
    fn absorb(&mut self, shard: Self);
}

/// Default cap on retained [`FaultLogEntry`]s (~3 MB at saturation), so
/// unbounded campaigns — soak loops, long-lived serving backends — hold
/// memory constant while [`FaultInjector::injected`]/
/// [`FaultInjector::dropped`] keep exact totals.
pub const DEFAULT_LOG_CAPACITY: usize = 65_536;

/// A [`FaultInjector`] driven by a seeded [`FaultPlan`].
///
/// Visit-order site counters advance monotonically for the injector's
/// lifetime and never reset, so repeated execution of the same program
/// draws fresh faults each time; coordinate-addressed draws key off the
/// matrix-mmo sequence number advanced by
/// [`begin_matrix_mmo`](FaultInjector::begin_matrix_mmo) instead. The
/// fault log is a bounded ring: once `capacity` entries are retained the
/// oldest are evicted (counted in [`dropped`](FaultInjector::dropped)),
/// so the injector never grows without limit.
///
/// With a [`Tracer`] attached (see
/// [`set_tracer`](PlannedInjector::set_tracer)), every injection emits a
/// [`span::FAULT`] instant event (`stage = "injected"`, with the site
/// key, coordinate address, op, and fault kind) and every ring eviction
/// emits `stage = "dropped"` — so the previously injector-private
/// `dropped` total is visible in the telemetry stream.
#[derive(Clone, Debug)]
pub struct PlannedInjector {
    plan: FaultPlan,
    mmo_seq: u64,
    next_mmo_site: u64,
    next_store_site: u64,
    mmo_sites: u64,
    injected: u64,
    dropped: u64,
    capacity: usize,
    log: VecDeque<FaultLogEntry>,
    tracer: Tracer,
}

impl PartialEq for PlannedInjector {
    /// Telemetry wiring is not part of an injector's logical state:
    /// equality compares the plan, site cursors, counters, and log.
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan
            && self.mmo_seq == other.mmo_seq
            && self.next_mmo_site == other.next_mmo_site
            && self.next_store_site == other.next_store_site
            && self.mmo_sites == other.mmo_sites
            && self.injected == other.injected
            && self.dropped == other.dropped
            && self.capacity == other.capacity
            && self.log == other.log
    }
}

impl PlannedInjector {
    /// A fresh injector at site zero with the default log capacity.
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_log_capacity(plan, DEFAULT_LOG_CAPACITY)
    }

    /// A fresh injector retaining at most `capacity` log entries
    /// (oldest evicted first; `capacity` is clamped to at least 1).
    pub fn with_log_capacity(plan: FaultPlan, capacity: usize) -> Self {
        Self {
            plan,
            mmo_seq: 0,
            next_mmo_site: 0,
            next_store_site: 0,
            mmo_sites: 0,
            injected: 0,
            dropped: 0,
            capacity: capacity.max(1),
            log: VecDeque::new(),
            tracer: Tracer::off(),
        }
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a telemetry tracer. Shards taken after this call share
    /// it, so parallel campaigns stream into one sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The current whole-matrix mmo sequence number.
    pub fn mmo_seq(&self) -> u64 {
        self.mmo_seq
    }

    /// The number of mmo sites visited so far (both addressing modes).
    pub fn mmo_sites(&self) -> u64 {
        self.mmo_sites
    }

    /// The number of store sites visited so far.
    pub fn store_sites(&self) -> u64 {
        self.next_store_site
    }

    /// The maximum number of log entries retained.
    pub fn log_capacity(&self) -> usize {
        self.capacity
    }

    fn push_log(&mut self, entry: FaultLogEntry) {
        if self.log.len() == self.capacity {
            let evicted = self.log.pop_front();
            self.dropped += 1;
            if self.tracer.enabled() {
                LOG_DROPPED.add(1);
                let site = evicted.map_or(0, |e| e.site);
                self.tracer.instant(
                    span::FAULT,
                    &[field("stage", "dropped"), field("site", site)],
                );
            }
        }
        self.log.push_back(entry);
    }

    /// Emits the `stage = "injected"` telemetry event for `entry`.
    fn emit_injected(&self, entry: &FaultLogEntry) {
        if !self.tracer.enabled() {
            return;
        }
        INJECTED_FAULTS.add(1);
        let op = entry.op.map_or("store", |op| op.name());
        let kind = entry.kind.label();
        match entry.coord {
            Some(c) => self.tracer.instant(
                span::FAULT,
                &[
                    field("stage", "injected"),
                    field("site", entry.site),
                    field("op", op),
                    field("fault_kind", kind),
                    field("mmo_seq", c.mmo_seq),
                    field("ti", c.ti),
                    field("tj", c.tj),
                    field("tk", c.tk),
                ],
            ),
            None => self.tracer.instant(
                span::FAULT,
                &[
                    field("stage", "injected"),
                    field("site", entry.site),
                    field("op", op),
                    field("fault_kind", kind),
                ],
            ),
        }
    }
}

impl FaultInjector for PlannedInjector {
    fn inject_mmo(&mut self, op: OpKind, d: &mut [f32], n: usize) -> Option<FaultKind> {
        let site = self.next_mmo_site;
        self.next_mmo_site += 1;
        self.mmo_sites += 1;
        let kind = self.plan.fault_for_mmo_site(site, n)?;
        apply_to_tile(kind, d, n);
        self.injected += 1;
        let entry = FaultLogEntry {
            site,
            coord: None,
            op: Some(op),
            kind,
        };
        self.emit_injected(&entry);
        self.push_log(entry);
        Some(kind)
    }

    fn inject_mmo_at(
        &mut self,
        coord: TileCoord,
        op: OpKind,
        d: &mut [f32],
        n: usize,
    ) -> Option<FaultKind> {
        let coord = MmoCoord {
            mmo_seq: self.mmo_seq,
            ti: coord.ti,
            tj: coord.tj,
            tk: coord.tk,
        };
        self.mmo_sites += 1;
        // Sticky sites are tried first and keyed on the coordinate
        // alone: a retried mmo advances `mmo_seq` and so re-draws every
        // transient, but the sticky defect re-strikes identically.
        let (site, kind) = match self.plan.sticky_fault_for_site(coord.coord_key(), n) {
            Some(kind) => (coord.coord_key(), kind),
            None => {
                let site = coord.site_key();
                (site, self.plan.fault_for_mmo_site(site, n)?)
            }
        };
        apply_to_tile(kind, d, n);
        self.injected += 1;
        let entry = FaultLogEntry {
            site,
            coord: Some(coord),
            op: Some(op),
            kind,
        };
        self.emit_injected(&entry);
        self.push_log(entry);
        Some(kind)
    }

    fn begin_matrix_mmo(&mut self) {
        self.mmo_seq += 1;
    }

    fn inject_store(&mut self, memory: &mut [f32]) -> Option<FaultKind> {
        let site = self.next_store_site;
        self.next_store_site += 1;
        let kind = self.plan.fault_for_mem_site(site, memory.len())?;
        apply_to_memory(kind, memory);
        self.injected += 1;
        let entry = FaultLogEntry {
            site,
            coord: None,
            op: None,
            kind,
        };
        self.emit_injected(&entry);
        self.push_log(entry);
        Some(kind)
    }

    fn injected(&self) -> u64 {
        self.injected
    }

    fn log(&self) -> Vec<FaultLogEntry> {
        self.log.iter().copied().collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn box_clone(&self) -> Box<dyn FaultInjector> {
        Box::new(self.clone())
    }
}

impl ShardableInjector for PlannedInjector {
    fn shard(&self) -> Self {
        Self {
            plan: self.plan,
            mmo_seq: self.mmo_seq,
            next_mmo_site: 0,
            next_store_site: 0,
            mmo_sites: 0,
            injected: 0,
            dropped: 0,
            capacity: self.capacity,
            log: VecDeque::new(),
            tracer: self.tracer.clone(),
        }
    }

    fn absorb(&mut self, shard: Self) {
        self.mmo_sites += shard.mmo_sites;
        self.injected += shard.injected;
        self.dropped += shard.dropped;
        for entry in shard.log {
            self.push_log(entry);
        }
    }
}

/// Something that executes tile mmos — the seam that lets tiled
/// backends run over either a pristine or a fault-injected datapath.
pub trait MmoUnit: std::fmt::Debug {
    /// Executes `D = C ⊕ (A ⊗ B)` on `N × N` tiles.
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N>;

    /// Executes one tile mmo at an explicit tile-grid coordinate.
    ///
    /// Tiled backends call this (after one
    /// [`begin_matrix_mmo`](MmoUnit::begin_matrix_mmo) per whole-matrix
    /// operation) so any order-sensitive state — fault injection above
    /// all — can key off *where* the tile is instead of *when* it is
    /// visited. Pure datapaths ignore the coordinate.
    fn execute_tile_at<const N: usize>(
        &mut self,
        coord: TileCoord,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        let _ = coord;
        self.execute_tile(op, a, b, c)
    }

    /// Marks the start of a new whole-matrix mmo (called once per
    /// backend-level `mmo`, before any tile executes and before any
    /// shards are taken).
    fn begin_matrix_mmo(&mut self) {}

    /// Whether the datapath quantises inputs below fp32.
    fn reduced_precision(&self) -> bool;

    /// The instruction set the unit's tile kernel executes with, for
    /// telemetry. Fault injection addresses output *coordinates* after
    /// the datapath has produced its (kernel-independent) bits, so a
    /// campaign must be identical across ISAs; units without a vector
    /// kernel report [`KernelIsa::Scalar`].
    fn kernel_isa(&self) -> KernelIsa {
        KernelIsa::Scalar
    }

    /// Re-pins the unit's tile kernel to `isa` — the degradation seam a
    /// resilience layer uses to retreat from a suspect vector tier to
    /// the scalar kernel. Returns whether the unit honoured the pin;
    /// units without a selectable kernel refuse (the default).
    fn repin_kernel(&mut self, isa: KernelIsa) -> bool {
        let _ = isa;
        false
    }

    /// Fault-log entries evicted from the unit's bounded ring buffer
    /// (the injector `dropped` counter); zero for pristine units.
    fn fault_dropped(&self) -> u64 {
        0
    }

    /// The input precision mode of the underlying datapath.
    fn precision(&self) -> PrecisionMode;

    /// A per-worker shard of this unit for panel-parallel execution, or
    /// `None` when the unit cannot be replicated across workers.
    ///
    /// The pristine [`Simd2Unit`] is pure (same inputs ⇒ same output
    /// tile, no internal state), so a shard is a plain copy. A
    /// [`FaultySimd2Unit`] shards its coordinate-addressed injector:
    /// every shard draws the same fault for the same tile, so panel
    /// assignment cannot change a campaign. Units whose state is
    /// genuinely visit-order-dependent return `None` and force the
    /// sequential schedule.
    fn shard(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Merges a worker shard's state (fault logs, telemetry) back after
    /// the parallel join. Shards must be absorbed in panel order so the
    /// merged log is identical to the sequential schedule's log.
    fn absorb(&mut self, shard: Self)
    where
        Self: Sized,
    {
        let _ = shard;
    }
}

impl MmoUnit for Simd2Unit {
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        self.execute(op, a, b, c)
    }

    fn reduced_precision(&self) -> bool {
        self.precision() != PrecisionMode::Fp32Input
    }

    fn precision(&self) -> PrecisionMode {
        Simd2Unit::precision(self)
    }

    fn kernel_isa(&self) -> KernelIsa {
        Simd2Unit::kernel_isa(self)
    }

    fn repin_kernel(&mut self, isa: KernelIsa) -> bool {
        *self = self.with_kernel_isa(isa);
        true
    }

    fn shard(&self) -> Option<Self> {
        Some(*self)
    }
}

/// A [`Simd2Unit`] whose outputs pass through a fault injector.
#[derive(Clone, Debug)]
pub struct FaultySimd2Unit<I: FaultInjector = PlannedInjector> {
    unit: Simd2Unit,
    injector: I,
    vector_only: bool,
}

impl<I: FaultInjector> FaultySimd2Unit<I> {
    /// Wraps `unit` with `injector`.
    pub fn new(unit: Simd2Unit, injector: I) -> Self {
        Self {
            unit,
            injector,
            vector_only: false,
        }
    }

    /// Attributes the faults to the *vector* datapath: injection only
    /// happens while the unit's tile kernel runs on a vector tier, and
    /// stops entirely once the kernel is re-pinned to scalar — the
    /// hardware model where a marginal SIMD lane corrupts results the
    /// scalar datapath computes cleanly. This is what makes a
    /// degradation ladder's pin-to-scalar rung *provably* effective
    /// under chaos, not just plausibly.
    pub fn with_vector_only(mut self, vector_only: bool) -> Self {
        self.vector_only = vector_only;
        self
    }

    /// Whether injection is gated on a vector kernel tier.
    pub fn vector_only(&self) -> bool {
        self.vector_only
    }

    /// Whether the injector is live for the unit's current kernel tier.
    fn injection_armed(&self) -> bool {
        !self.vector_only || self.unit.kernel_isa() != KernelIsa::Scalar
    }

    /// The pristine underlying unit.
    pub fn unit(&self) -> &Simd2Unit {
        &self.unit
    }

    /// The injector, for telemetry.
    pub fn injector(&self) -> &I {
        &self.injector
    }

    /// Unwraps into the injector, e.g. to read the final fault log.
    pub fn into_injector(self) -> I {
        self.injector
    }
}

impl<I: ShardableInjector> MmoUnit for FaultySimd2Unit<I> {
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        let d = self.unit.execute(op, a, b, c);
        if !self.injection_armed() {
            return d;
        }
        let mut flat: Vec<f32> = (0..N * N).map(|i| d.get(i / N, i % N)).collect();
        if self.injector.inject_mmo(op, &mut flat, N).is_some() {
            return Tile::from_fn(|r, c| flat[r * N + c]);
        }
        d
    }

    fn execute_tile_at<const N: usize>(
        &mut self,
        coord: TileCoord,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        let d = self.unit.execute(op, a, b, c);
        if !self.injection_armed() {
            return d;
        }
        let mut flat: Vec<f32> = (0..N * N).map(|i| d.get(i / N, i % N)).collect();
        if self
            .injector
            .inject_mmo_at(coord, op, &mut flat, N)
            .is_some()
        {
            return Tile::from_fn(|r, c| flat[r * N + c]);
        }
        d
    }

    fn begin_matrix_mmo(&mut self) {
        self.injector.begin_matrix_mmo();
    }

    fn reduced_precision(&self) -> bool {
        MmoUnit::reduced_precision(&self.unit)
    }

    fn precision(&self) -> PrecisionMode {
        self.unit.precision()
    }

    fn kernel_isa(&self) -> KernelIsa {
        self.unit.kernel_isa()
    }

    fn repin_kernel(&mut self, isa: KernelIsa) -> bool {
        MmoUnit::repin_kernel(&mut self.unit, isa)
    }

    fn fault_dropped(&self) -> u64 {
        self.injector.dropped()
    }

    fn shard(&self) -> Option<Self> {
        Some(Self {
            unit: self.unit,
            injector: self.injector.shard(),
            vector_only: self.vector_only,
        })
    }

    fn absorb(&mut self, shard: Self) {
        self.injector.absorb(shard.injector);
    }
}

/// A chaos-probe datapath: computes exactly like [`Simd2Unit`], but a
/// worker *shard* panics when it reaches output tile row `panic_ti` —
/// the deterministic way to exercise a parallel engine's panic
/// containment. The parent unit (and therefore any sequential schedule,
/// including a post-panic sequential retry) never panics.
#[derive(Clone, Copy, Debug)]
pub struct PanicProbeUnit {
    unit: Simd2Unit,
    panic_ti: u32,
    is_shard: bool,
}

/// Prefix of the panic payload [`PanicProbeUnit`] raises, so harnesses
/// can tell an injected probe panic from a genuine defect.
pub const PANIC_PROBE_PAYLOAD: &str = "injected worker panic";

impl PanicProbeUnit {
    /// Wraps `unit`; shards of this probe panic at tile row `panic_ti`.
    pub fn new(unit: Simd2Unit, panic_ti: u32) -> Self {
        Self {
            unit,
            panic_ti,
            is_shard: false,
        }
    }

    /// The tile row whose shard execution panics.
    pub fn panic_ti(&self) -> u32 {
        self.panic_ti
    }
}

impl MmoUnit for PanicProbeUnit {
    fn execute_tile<const N: usize>(
        &mut self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        self.unit.execute(op, a, b, c)
    }

    fn execute_tile_at<const N: usize>(
        &mut self,
        coord: TileCoord,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        if self.is_shard && coord.ti == self.panic_ti {
            panic!("{PANIC_PROBE_PAYLOAD} at tile row {}", coord.ti);
        }
        self.unit.execute(op, a, b, c)
    }

    fn reduced_precision(&self) -> bool {
        MmoUnit::reduced_precision(&self.unit)
    }

    fn precision(&self) -> PrecisionMode {
        self.unit.precision()
    }

    fn repin_kernel(&mut self, isa: KernelIsa) -> bool {
        MmoUnit::repin_kernel(&mut self.unit, isa)
    }

    fn shard(&self) -> Option<Self> {
        Some(Self {
            is_shard: true,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlanConfig;

    fn always_plan() -> FaultPlan {
        FaultPlan::new(FaultPlanConfig::uniform(11, 1_000_000))
    }

    #[test]
    fn planned_injector_advances_sites_and_logs() {
        let mut inj = PlannedInjector::new(always_plan());
        let mut d = vec![1.0f32; 256];
        let first = inj.inject_mmo(OpKind::PlusMul, &mut d, 16);
        assert!(first.is_some());
        let mut mem = vec![0.5f32; 64];
        assert!(inj.inject_store(&mut mem).is_some());
        assert_eq!(inj.injected(), 2);
        assert_eq!(inj.mmo_sites(), 1);
        assert_eq!(inj.store_sites(), 1);
        assert_eq!(inj.log()[0].op, Some(OpKind::PlusMul));
        assert_eq!(inj.log()[1].op, None);
    }

    #[test]
    fn retries_draw_fresh_faults() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(11, 500_000));
        let mut inj = PlannedInjector::new(plan);
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            let mut d = vec![1.0f32; 256];
            outcomes.push(inj.inject_mmo(OpKind::PlusMul, &mut d, 16));
        }
        // At ~50% rate, 64 retries must see both struck and clean sites.
        assert!(outcomes.iter().any(Option::is_some));
        assert!(outcomes.iter().any(Option::is_none));
    }

    #[test]
    fn bit_flip_changes_exactly_one_element() {
        let mut d = vec![2.0f32; 16];
        apply_to_tile(
            FaultKind::BitFlip {
                row: 1,
                col: 2,
                bit: 31,
            },
            &mut d,
            4,
        );
        assert_eq!(d[4 + 2], -2.0);
        assert_eq!(d.iter().filter(|&&x| x != 2.0).count(), 1);
    }

    #[test]
    fn stuck_lane_covers_the_grid_pattern() {
        let mut d = vec![7.0f32; 256];
        apply_to_tile(
            FaultKind::StuckLane {
                lane_row: 1,
                lane_col: 3,
                value: 0.0,
            },
            &mut d,
            16,
        );
        let stuck = d.iter().filter(|&&x| x == 0.0).count();
        assert_eq!(stuck, (16 / MXU_GRID) * (16 / MXU_GRID));
        assert_eq!(d[16 + 3], 0.0);
        assert_eq!(d[5 * 16 + 7], 0.0);
        assert_eq!(d[0], 7.0);
    }

    #[test]
    fn faulty_unit_differs_from_pristine_under_full_rate() {
        let unit = Simd2Unit::new();
        let a = Tile::<16>::from_fn(|r, c| (r + c) as f32 * 0.25);
        let b = Tile::<16>::from_fn(|r, c| (r * 16 + c) as f32 * 0.01);
        let c = Tile::<16>::splat(0.0);
        let clean = unit.execute(OpKind::PlusMul, &a, &b, &c);
        let mut faulty = FaultySimd2Unit::new(unit, PlannedInjector::new(always_plan()));
        let dirty = faulty.execute_tile(OpKind::PlusMul, &a, &b, &c);
        assert_eq!(faulty.injector().injected(), 1);
        // A full-rate plan must strike; the struck tile may still be
        // value-identical only if the flip hit an element's dead bits,
        // which the plan's parameters make impossible here (flip of a
        // nonzero value always changes its bits).
        let mut changed = false;
        for (r, cc, v) in clean.iter() {
            let w = dirty.get(r, cc);
            if v.to_bits() != w.to_bits() {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn pristine_and_faulty_units_both_shard() {
        let unit = Simd2Unit::new();
        assert_eq!(MmoUnit::shard(&unit), Some(unit));
        let faulty = FaultySimd2Unit::new(unit, PlannedInjector::new(always_plan()));
        let shard = faulty.shard().unwrap();
        assert_eq!(shard.injector().injected(), 0);
        assert_eq!(shard.injector().plan(), faulty.injector().plan());
    }

    #[test]
    fn coordinate_draws_are_order_independent() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(13, 400_000));
        let coords: Vec<TileCoord> = (0..4)
            .flat_map(|ti| {
                (0..4).flat_map(move |tj| (0..3).map(move |tk| TileCoord::new(ti, tj, tk)))
            })
            .collect();
        let run = |order: &[TileCoord]| {
            let mut inj = PlannedInjector::new(plan);
            inj.begin_matrix_mmo();
            let mut log = Vec::new();
            for &c in order {
                let mut d = vec![1.0f32; 256];
                if let Some(k) = inj.inject_mmo_at(c, OpKind::PlusMul, &mut d, 16) {
                    log.push((c, k));
                }
            }
            log.sort_by_key(|&(c, _)| c);
            log
        };
        let forward = run(&coords);
        let mut reversed = coords.clone();
        reversed.reverse();
        assert!(!forward.is_empty());
        assert_eq!(
            forward,
            run(&reversed),
            "same tiles must draw the same faults"
        );
    }

    #[test]
    fn seeded_campaign_is_identical_under_scalar_and_simd_kernels() {
        // Fault injection addresses output coordinates after the unit's
        // datapath has produced its (bit-identical across ISAs) tile, so
        // a seeded campaign must strike the same sites with the same
        // values no matter which vector tier the unit selected. This is
        // the regression gate for new kernel tiers: a tier that changed
        // a single output bit would desynchronize nothing in the fault
        // draws (they are coordinate-keyed) but would surface here as a
        // diverging faulted output.
        let run = |unit: Simd2Unit| {
            let plan = FaultPlan::new(
                FaultPlanConfig::new(97)
                    .with_bit_flip_ppm(150_000)
                    .with_stuck_lane_ppm(50_000)
                    .with_transient_nan_ppm(80_000),
            );
            let mut faulty = FaultySimd2Unit::new(unit, PlannedInjector::new(plan));
            MmoUnit::begin_matrix_mmo(&mut faulty);
            let mut outputs = Vec::new();
            for ti in 0..4u32 {
                for tj in 0..4u32 {
                    let mut acc = Tile::<16>::splat(0.0);
                    for tk in 0..3u32 {
                        let a = Tile::<16>::from_fn(|r, c| {
                            (r + c + ti as usize + tk as usize) as f32 * 0.25
                        });
                        let b =
                            Tile::<16>::from_fn(|r, c| (r * 16 + c + tj as usize) as f32 * 0.01);
                        acc = faulty.execute_tile_at(
                            TileCoord { ti, tj, tk },
                            OpKind::PlusMul,
                            &a,
                            &b,
                            &acc,
                        );
                    }
                    outputs.push(acc);
                }
            }
            (
                outputs,
                faulty.injector().log(),
                faulty.injector().injected(),
            )
        };
        let (d_scalar, log_scalar, n_scalar) =
            run(Simd2Unit::new().with_kernel_isa(KernelIsa::Scalar));
        let (d_simd, log_simd, n_simd) = run(Simd2Unit::new());
        assert!(n_scalar > 0, "full-ish rate campaign must strike");
        assert_eq!(log_scalar, log_simd, "fault logs diverged across ISAs");
        assert_eq!(n_scalar, n_simd);
        for (i, (s, v)) in d_scalar.iter().zip(&d_simd).enumerate() {
            for (r, c, x) in s.iter() {
                assert_eq!(
                    x.to_bits(),
                    v.get(r, c).to_bits(),
                    "tile {i} ({r},{c}) diverged across ISAs"
                );
            }
        }
    }

    #[test]
    fn begin_matrix_mmo_refreshes_coordinate_draws() {
        // Same coordinate, consecutive matrix mmos: the draws must be
        // independent (≈40% rate over 64 sequences sees both outcomes).
        let plan = FaultPlan::new(FaultPlanConfig::uniform(21, 400_000));
        let mut inj = PlannedInjector::new(plan);
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            inj.begin_matrix_mmo();
            let mut d = vec![1.0f32; 256];
            outcomes.push(inj.inject_mmo_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &mut d, 16));
        }
        assert!(outcomes.iter().any(Option::is_some));
        assert!(outcomes.iter().any(Option::is_none));
    }

    #[test]
    fn absorbing_shards_in_panel_order_matches_sequential_log() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(5, 300_000));
        let mut seq = PlannedInjector::new(plan);
        seq.begin_matrix_mmo();
        let mut par = PlannedInjector::new(plan);
        par.begin_matrix_mmo();
        let mut shards: Vec<PlannedInjector> = (0..3).map(|_| par.shard()).collect();
        for ti in 0..6u32 {
            for tj in 0..4u32 {
                for tk in 0..2u32 {
                    let coord = TileCoord { ti, tj, tk };
                    let mut d = vec![1.0f32; 256];
                    seq.inject_mmo_at(coord, OpKind::MinPlus, &mut d, 16);
                    let mut d2 = vec![1.0f32; 256];
                    // Panel p owns tile rows 2p..2p+2.
                    shards[(ti / 2) as usize].inject_mmo_at(coord, OpKind::MinPlus, &mut d2, 16);
                }
            }
        }
        for shard in shards {
            par.absorb(shard);
        }
        assert_eq!(par.log(), seq.log());
        assert_eq!(par.injected(), seq.injected());
        assert_eq!(par.mmo_sites(), seq.mmo_sites());
        assert!(par.injected() > 0);
    }

    #[test]
    fn log_is_a_bounded_ring_with_drop_accounting() {
        let mut inj = PlannedInjector::with_log_capacity(always_plan(), 8);
        inj.begin_matrix_mmo();
        for tk in 0..20u32 {
            let mut d = vec![1.0f32; 256];
            inj.inject_mmo_at(
                TileCoord::new(0, 0, tk as usize),
                OpKind::PlusMul,
                &mut d,
                16,
            );
        }
        assert_eq!(inj.injected(), 20);
        assert_eq!(inj.dropped(), 12);
        let log = inj.log();
        assert_eq!(log.len(), 8);
        // The ring keeps the most recent entries, oldest first.
        let kept: Vec<u32> = log.iter().map(|e| e.coord.unwrap().tk).collect();
        assert_eq!(kept, (12..20).collect::<Vec<_>>());
        assert_eq!(inj.log_capacity(), 8);
    }

    #[test]
    fn coordinate_site_keys_avoid_visit_order_collisions() {
        // Visit-order sites are small integers; coordinate keys must not
        // land in that range for any plausible grid.
        for seq in 1..=4u64 {
            for ti in 0..8 {
                for tj in 0..8 {
                    for tk in 0..8 {
                        let coord = MmoCoord {
                            mmo_seq: seq,
                            ti,
                            tj,
                            tk,
                        };
                        assert!(coord.site_key() > 1 << 20);
                    }
                }
            }
        }
    }

    #[test]
    fn panic_probe_panics_only_on_shards() {
        let a = Tile::<16>::from_fn(|r, c| (r + c) as f32);
        let b = Tile::<16>::splat(1.0);
        let c = Tile::<16>::splat(0.0);
        let mut parent = PanicProbeUnit::new(Simd2Unit::new(), 1);
        // Parent (sequential) execution is clean, even at the armed row.
        let clean = parent.execute_tile_at(TileCoord::new(1, 0, 0), OpKind::PlusMul, &a, &b, &c);
        assert_eq!(clean, Simd2Unit::new().execute(OpKind::PlusMul, &a, &b, &c));
        let mut shard = parent.shard().unwrap();
        // A shard is clean off the armed row…
        shard.execute_tile_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &a, &b, &c);
        // …and panics on it.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard.execute_tile_at(TileCoord::new(1, 2, 0), OpKind::PlusMul, &a, &b, &c);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with(PANIC_PROBE_PAYLOAD), "{msg}");
    }

    #[test]
    fn telemetry_events_match_injector_counters() {
        let ring = simd2_trace::RingSink::shared();
        let mut inj = PlannedInjector::with_log_capacity(always_plan(), 4)
            .with_tracer(Tracer::to(ring.clone()));
        inj.begin_matrix_mmo();
        for tk in 0..10usize {
            let mut d = vec![1.0f32; 256];
            inj.inject_mmo_at(TileCoord::new(0, 0, tk), OpKind::MinPlus, &mut d, 16);
        }
        let events = ring.events();
        let injected = events
            .iter()
            .filter(|e| e.is_stage(span::FAULT, "injected"))
            .count() as u64;
        let dropped = events
            .iter()
            .filter(|e| e.is_stage(span::FAULT, "dropped"))
            .count() as u64;
        assert_eq!(injected, inj.injected());
        assert_eq!(dropped, inj.dropped());
        assert!(dropped > 0, "capacity 4 with 10 full-rate injections");
        // Injected events carry the coordinate address and kind label.
        let first = events
            .iter()
            .find(|e| e.is_stage(span::FAULT, "injected"))
            .unwrap();
        assert_eq!(first.u64("mmo_seq"), Some(1));
        assert!(first.str_value("fault_kind").is_some());
        assert_eq!(first.str_value("op"), Some(OpKind::MinPlus.name()));
    }

    #[test]
    fn shards_share_the_parent_tracer() {
        let ring = simd2_trace::RingSink::shared();
        let mut parent = PlannedInjector::new(always_plan()).with_tracer(Tracer::to(ring.clone()));
        parent.begin_matrix_mmo();
        let mut shard = parent.shard();
        let mut d = vec![1.0f32; 256];
        shard.inject_mmo_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &mut d, 16);
        assert_eq!(ring.len(), 1, "shard events land in the parent sink");
        parent.absorb(shard);
        assert_eq!(parent.injected(), 1);
    }

    #[test]
    fn sticky_sites_defeat_retry_and_schedule_changes() {
        let plan = FaultPlan::new(FaultPlanConfig::new(5).with_sticky_ppm(1_000_000));
        let mut inj = PlannedInjector::new(plan);
        let coord = TileCoord::new(1, 2, 3);
        let mut strike = |inj: &mut PlannedInjector| {
            inj.begin_matrix_mmo();
            let mut d = vec![1.0f32; 256];
            let kind = inj.inject_mmo_at(coord, OpKind::PlusMul, &mut d, 16);
            if let Some(FaultKind::StickyNan { row, col }) = kind {
                assert!(d[row * 16 + col].is_nan(), "sticky site must poison d");
            }
            kind
        };
        let first = strike(&mut inj).expect("full-rate sticky strikes");
        assert!(matches!(first, FaultKind::StickyNan { .. }), "{first:?}");
        // A retry advances mmo_seq — transients would re-draw — but the
        // sticky defect re-strikes identically: retry cannot help.
        for _ in 0..4 {
            assert_eq!(strike(&mut inj), Some(first));
        }
        // Worker shards see the same defect (schedule independence), and
        // the log records the coordinate-only site key.
        let mut shard = inj.shard();
        let mut d = vec![1.0f32; 256];
        assert_eq!(
            shard.inject_mmo_at(coord, OpKind::PlusMul, &mut d, 16),
            Some(first)
        );
        let log = shard.log();
        assert_eq!(
            log[0].site,
            MmoCoord {
                mmo_seq: 0,
                ti: 1,
                tj: 2,
                tk: 3
            }
            .coord_key()
        );
        inj.absorb(shard);
        assert_eq!(inj.injected(), 6);
        // A different coordinate under the same full-rate plan draws its
        // own (also repeatable) defect.
        let other = TileCoord::new(2, 2, 3);
        let mut d = vec![1.0f32; 256];
        let elsewhere = inj.inject_mmo_at(other, OpKind::PlusMul, &mut d, 16);
        assert!(elsewhere.is_some());
    }

    #[test]
    fn vector_only_injection_disarms_on_a_scalar_pin() {
        let a = Tile::<16>::from_fn(|r, c| (r + c) as f32 * 0.5);
        let b = Tile::<16>::splat(1.0);
        let c = Tile::<16>::splat(0.0);
        let mk = || {
            FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(always_plan()))
                .with_vector_only(true)
        };
        let mut unit = mk();
        assert!(unit.vector_only());
        let armed = MmoUnit::kernel_isa(&unit) != KernelIsa::Scalar;
        MmoUnit::begin_matrix_mmo(&mut unit);
        unit.execute_tile_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &a, &b, &c);
        assert_eq!(unit.injector().injected(), u64::from(armed));
        // Re-pin to scalar: injection stops and outputs are pristine.
        assert!(MmoUnit::repin_kernel(&mut unit, KernelIsa::Scalar));
        let before = unit.injector().injected();
        MmoUnit::begin_matrix_mmo(&mut unit);
        let d = unit.execute_tile_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &a, &b, &c);
        assert_eq!(unit.injector().injected(), before, "scalar pin disarms");
        assert_eq!(d, Simd2Unit::new().execute(OpKind::PlusMul, &a, &b, &c));
        // Shards inherit the gate.
        let shard = unit.shard().unwrap();
        assert!(shard.vector_only());
        // Without the gate the same plan strikes on any tier.
        let mut ungated =
            FaultySimd2Unit::new(Simd2Unit::new().with_kernel_isa(KernelIsa::Scalar), {
                PlannedInjector::new(always_plan())
            });
        MmoUnit::begin_matrix_mmo(&mut ungated);
        ungated.execute_tile_at(TileCoord::new(0, 0, 0), OpKind::PlusMul, &a, &b, &c);
        assert_eq!(ungated.injector().injected(), 1);
    }

    #[test]
    fn mem_fault_out_of_range_is_ignored() {
        // Defensive: apply_to_memory clamps rather than panics.
        let mut mem = vec![1.0f32; 4];
        apply_to_memory(FaultKind::MemBitFlip { word: 100, bit: 3 }, &mut mem);
        assert_eq!(mem, vec![1.0f32; 4]);
    }
}
