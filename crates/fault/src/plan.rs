//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] answers one question: *does fault class `C` strike at
//! site `s`, and if so with what parameters?* The answer is a pure hash
//! of `(seed, class, site)` — no RNG state is carried between sites —
//! so a campaign replays bit-identically no matter how execution is
//! interleaved, and a *retry* of an mmo (which consumes fresh site
//! indices) sees an independent fault draw, exactly like a transient
//! hardware upset.

use std::fmt;

/// Side of the MXU processing-element grid the paper's SIMD² unit is
/// built around (§4: a 4×4 grid of dot-product lanes per tile pipe).
pub const MXU_GRID: usize = 4;

/// The modelled hardware fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A single bit flips in a tile output register.
    TileBitFlip,
    /// One lane of the 4×4 MXU grid is stuck, forcing every output
    /// element it produces to a fixed value for this mmo.
    StuckLane,
    /// A reducer transiently emits a NaN or infinity.
    TransientNan,
    /// A word of shared memory is corrupted after a store.
    MemCorruption,
    /// A *persistent* defect pinned to a tile-grid coordinate: unlike
    /// the transient classes, whose draws are keyed on per-attempt site
    /// sequence numbers, a sticky site re-strikes identically on every
    /// visit to the same coordinate — retries and post-panic sequential
    /// re-executions included — defeating naive retry by construction.
    StickyNan,
}

impl FaultClass {
    /// All classes, in the order they are drawn at an mmo site.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::TileBitFlip,
        FaultClass::StuckLane,
        FaultClass::TransientNan,
        FaultClass::MemCorruption,
        FaultClass::StickyNan,
    ];

    /// Hash-domain separator for this class.
    fn salt(self) -> u64 {
        match self {
            FaultClass::TileBitFlip => 0x5b1f_f11b_0000_0001,
            FaultClass::StuckLane => 0x57ac_4a9e_0000_0002,
            FaultClass::TransientNan => 0x7a95_0a11_0000_0003,
            FaultClass::MemCorruption => 0x3e3c_044e_0000_0004,
            FaultClass::StickyNan => 0x571c_c1fe_0000_0005,
        }
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::TileBitFlip => "bit-flip",
            FaultClass::StuckLane => "stuck-lane",
            FaultClass::TransientNan => "transient-nan",
            FaultClass::MemCorruption => "mem-corruption",
            FaultClass::StickyNan => "sticky-nan",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete fault drawn from a plan, with the parameters needed to
/// apply it and to report it afterwards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Flip `bit` (0..32) of the output-tile element at `(row, col)`.
    BitFlip {
        /// Output row within the tile.
        row: usize,
        /// Output column within the tile.
        col: usize,
        /// Bit position in the IEEE 754 binary32 pattern.
        bit: u32,
    },
    /// Force every output element produced by grid lane
    /// `(lane_row, lane_col)` — i.e. all `(r, c)` with
    /// `r % MXU_GRID == lane_row && c % MXU_GRID == lane_col` — to
    /// `value`.
    StuckLane {
        /// Row of the stuck lane in the 4×4 grid.
        lane_row: usize,
        /// Column of the stuck lane in the 4×4 grid.
        lane_col: usize,
        /// The stuck output value.
        value: f32,
    },
    /// Replace the output element at `(row, col)` with NaN (or ±∞).
    TransientNan {
        /// Output row within the tile.
        row: usize,
        /// Output column within the tile.
        col: usize,
        /// `true` injects an infinity instead of a NaN.
        inf: bool,
    },
    /// Flip `bit` of the shared-memory word at `word`.
    MemBitFlip {
        /// Word offset into shared memory.
        word: usize,
        /// Bit position in the IEEE 754 binary32 pattern.
        bit: u32,
    },
    /// Replace the output element at `(row, col)` with NaN on *every*
    /// visit to this tile coordinate (a persistent lane defect).
    StickyNan {
        /// Output row within the tile.
        row: usize,
        /// Output column within the tile.
        col: usize,
    },
}

impl FaultKind {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::BitFlip { .. } => FaultClass::TileBitFlip,
            FaultKind::StuckLane { .. } => FaultClass::StuckLane,
            FaultKind::TransientNan { .. } => FaultClass::TransientNan,
            FaultKind::MemBitFlip { .. } => FaultClass::MemCorruption,
            FaultKind::StickyNan { .. } => FaultClass::StickyNan,
        }
    }

    /// A static label for telemetry fields.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BitFlip { .. } => "bit_flip",
            FaultKind::StuckLane { .. } => "stuck_lane",
            FaultKind::TransientNan { .. } => "transient_nan",
            FaultKind::MemBitFlip { .. } => "mem_bit_flip",
            FaultKind::StickyNan { .. } => "sticky_nan",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BitFlip { row, col, bit } => {
                write!(f, "bit-flip b{bit} at d[{row}][{col}]")
            }
            FaultKind::StuckLane {
                lane_row,
                lane_col,
                value,
            } => {
                write!(f, "lane ({lane_row},{lane_col}) stuck at {value}")
            }
            FaultKind::TransientNan { row, col, inf } => {
                let what = if *inf { "inf" } else { "nan" };
                write!(f, "transient {what} at d[{row}][{col}]")
            }
            FaultKind::MemBitFlip { word, bit } => {
                write!(f, "memory bit-flip b{bit} at word {word}")
            }
            FaultKind::StickyNan { row, col } => {
                write!(f, "sticky nan at d[{row}][{col}]")
            }
        }
    }
}

/// Per-class fault rates (parts per million of sites) plus the seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Campaign seed; all fault decisions derive from it.
    pub seed: u64,
    /// Rate of tile-register bit flips, per million mmo sites.
    pub bit_flip_ppm: u32,
    /// Rate of stuck MXU lanes, per million mmo sites.
    pub stuck_lane_ppm: u32,
    /// Rate of transient reducer NaN/Inf, per million mmo sites.
    pub transient_nan_ppm: u32,
    /// Rate of shared-memory word corruption, per million store sites.
    pub mem_ppm: u32,
    /// Rate of sticky (coordinate-pinned, retry-defeating) faults, per
    /// million tile coordinates. Zero in every constructor — sticky
    /// sites change what retry can promise, so campaigns opt in.
    pub sticky_ppm: u32,
}

impl FaultPlanConfig {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            bit_flip_ppm: 0,
            stuck_lane_ppm: 0,
            transient_nan_ppm: 0,
            mem_ppm: 0,
            sticky_ppm: 0,
        }
    }

    /// A plan striking every *transient* class at the same rate (sticky
    /// sites stay disarmed; see [`with_sticky_ppm`](Self::with_sticky_ppm)).
    pub fn uniform(seed: u64, ppm: u32) -> Self {
        Self {
            seed,
            bit_flip_ppm: ppm,
            stuck_lane_ppm: ppm,
            transient_nan_ppm: ppm,
            mem_ppm: ppm,
            sticky_ppm: 0,
        }
    }

    /// Sets the tile bit-flip rate.
    pub fn with_bit_flip_ppm(mut self, ppm: u32) -> Self {
        self.bit_flip_ppm = ppm;
        self
    }

    /// Sets the stuck-lane rate.
    pub fn with_stuck_lane_ppm(mut self, ppm: u32) -> Self {
        self.stuck_lane_ppm = ppm;
        self
    }

    /// Sets the transient NaN/Inf rate.
    pub fn with_transient_nan_ppm(mut self, ppm: u32) -> Self {
        self.transient_nan_ppm = ppm;
        self
    }

    /// Sets the shared-memory corruption rate.
    pub fn with_mem_ppm(mut self, ppm: u32) -> Self {
        self.mem_ppm = ppm;
        self
    }

    /// Sets the sticky repeat-offender rate (per million coordinates).
    pub fn with_sticky_ppm(mut self, ppm: u32) -> Self {
        self.sticky_ppm = ppm;
        self
    }

    fn rate(&self, class: FaultClass) -> u32 {
        match class {
            FaultClass::TileBitFlip => self.bit_flip_ppm,
            FaultClass::StuckLane => self.stuck_lane_ppm,
            FaultClass::TransientNan => self.transient_nan_ppm,
            FaultClass::MemCorruption => self.mem_ppm,
            FaultClass::StickyNan => self.sticky_ppm,
        }
    }
}

/// SplitMix64 finaliser: a bijective avalanche mix.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault plan: a stateless oracle over `(class, site)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    config: FaultPlanConfig,
}

impl FaultPlan {
    /// Builds the plan for a config.
    pub fn new(config: FaultPlanConfig) -> Self {
        Self { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    fn site_hash(&self, class: FaultClass, site: u64) -> u64 {
        mix(self.config.seed ^ class.salt() ^ mix(site))
    }

    /// Whether `class` strikes at `site`.
    pub fn strikes(&self, class: FaultClass, site: u64) -> bool {
        let rate = u64::from(self.config.rate(class));
        if rate == 0 {
            return false;
        }
        self.site_hash(class, site) % 1_000_000 < rate
    }

    /// Draws the fault (if any) for mmo site `site` producing an
    /// `n × n` output tile. Classes are tried in [`FaultClass::ALL`]
    /// order; at most one fault strikes per site.
    pub fn fault_for_mmo_site(&self, site: u64, n: usize) -> Option<FaultKind> {
        debug_assert!(n > 0);
        for class in [
            FaultClass::TileBitFlip,
            FaultClass::StuckLane,
            FaultClass::TransientNan,
        ] {
            if !self.strikes(class, site) {
                continue;
            }
            // Independent stream for parameters so they do not correlate
            // with the strike decision.
            let p = mix(self.site_hash(class, site) ^ 0x0fa7_a1f1_e1d5_ca1e);
            return Some(match class {
                FaultClass::TileBitFlip => FaultKind::BitFlip {
                    row: (p as usize) % n,
                    col: ((p >> 16) as usize) % n,
                    bit: ((p >> 32) as u32) % 32,
                },
                FaultClass::StuckLane => FaultKind::StuckLane {
                    lane_row: (p as usize) % MXU_GRID,
                    lane_col: ((p >> 16) as usize) % MXU_GRID,
                    // Stuck-at-zero and stuck-at-one are the classic
                    // hard-fault models for a dead / shorted lane.
                    value: if p & (1 << 32) == 0 { 0.0 } else { 1.0 },
                },
                FaultClass::TransientNan => FaultKind::TransientNan {
                    row: (p as usize) % n,
                    col: ((p >> 16) as usize) % n,
                    inf: p & (1 << 32) != 0,
                },
                FaultClass::MemCorruption | FaultClass::StickyNan => {
                    unreachable!("not a transient mmo class")
                }
            });
        }
        None
    }

    /// Draws the fault (if any) for store site `site` into a shared
    /// memory of `words` f32 words.
    pub fn fault_for_mem_site(&self, site: u64, words: usize) -> Option<FaultKind> {
        if words == 0 || !self.strikes(FaultClass::MemCorruption, site) {
            return None;
        }
        let p = mix(self.site_hash(FaultClass::MemCorruption, site) ^ 0x0fa7_a1f1_e1d5_ca1e);
        Some(FaultKind::MemBitFlip {
            word: (p as usize) % words,
            bit: ((p >> 32) as u32) % 32,
        })
    }

    /// Draws the sticky fault (if any) for `coord_site` — a key the
    /// caller derives from the tile-grid *coordinate alone*, with no
    /// per-attempt sequence number mixed in. The same coordinate
    /// therefore strikes identically every time it executes: a retry, a
    /// sequential re-execution, or a resumed plan all hit the defect
    /// again, which is exactly what escalation ladders must handle.
    pub fn sticky_fault_for_site(&self, coord_site: u64, n: usize) -> Option<FaultKind> {
        debug_assert!(n > 0);
        if !self.strikes(FaultClass::StickyNan, coord_site) {
            return None;
        }
        let p = mix(self.site_hash(FaultClass::StickyNan, coord_site) ^ 0x0fa7_a1f1_e1d5_ca1e);
        Some(FaultKind::StickyNan {
            row: (p as usize) % n,
            col: ((p >> 16) as usize) % n,
        })
    }
}

/// Seeded stall/slow-step oracle: a stateless map from a plan-step
/// index to *extra virtual execution cost*, modelling a straggler step
/// (memory contention, a thermally throttled unit) that burns deadline
/// budget without producing a detectable corruption. Naive retry cannot
/// help — the step completes correctly, just expensively — so the only
/// sound responses are suspending with a checkpoint or degrading the
/// schedule, which is what the serving layer's step-quantum accounting
/// exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallPlan {
    /// Campaign seed; all stall decisions derive from it.
    pub seed: u64,
    /// Rate of stalled steps, per million steps.
    pub stall_ppm: u32,
    /// Maximum extra units one stalled step costs (draws are uniform in
    /// `1..=max_extra_units`).
    pub max_extra_units: u64,
}

impl StallPlan {
    /// Hash-domain separator for stall draws.
    const SALT: u64 = 0x57a1_1bad_0000_0006;

    /// Builds the oracle.
    pub const fn new(seed: u64, stall_ppm: u32, max_extra_units: u64) -> Self {
        Self {
            seed,
            stall_ppm,
            max_extra_units,
        }
    }

    /// Extra virtual units step `step` costs beyond its base cost of
    /// one; zero for un-stalled steps.
    pub fn stall_units(&self, step: u64) -> u64 {
        if self.stall_ppm == 0 || self.max_extra_units == 0 {
            return 0;
        }
        let h = mix(self.seed ^ Self::SALT ^ mix(step));
        if h % 1_000_000 < u64::from(self.stall_ppm) {
            1 + mix(h ^ 0x0fa7_a1f1_e1d5_ca1e) % self.max_extra_units
        } else {
            0
        }
    }

    /// Total virtual cost (base one unit per step plus stalls) of
    /// executing steps `0..steps`.
    pub fn total_units(&self, steps: u64) -> u64 {
        (0..steps).map(|s| 1 + self.stall_units(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_strikes() {
        let plan = FaultPlan::new(FaultPlanConfig::new(42));
        for site in 0..10_000 {
            assert_eq!(plan.fault_for_mmo_site(site, 16), None);
            assert_eq!(plan.fault_for_mem_site(site, 4096), None);
        }
    }

    #[test]
    fn full_rate_always_strikes() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(42, 1_000_000));
        for site in 0..256 {
            assert!(plan.fault_for_mmo_site(site, 16).is_some());
            assert!(plan.fault_for_mem_site(site, 4096).is_some());
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let a = FaultPlan::new(FaultPlanConfig::uniform(7, 50_000));
        let b = FaultPlan::new(FaultPlanConfig::uniform(7, 50_000));
        for site in 0..50_000 {
            assert_eq!(
                a.fault_for_mmo_site(site, 16),
                b.fault_for_mmo_site(site, 16)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(FaultPlanConfig::uniform(1, 100_000));
        let b = FaultPlan::new(FaultPlanConfig::uniform(2, 100_000));
        let divergent = (0..10_000u64)
            .filter(|&s| a.fault_for_mmo_site(s, 16) != b.fault_for_mmo_site(s, 16))
            .count();
        assert!(divergent > 500, "only {divergent} divergent sites");
    }

    #[test]
    fn empirical_rate_is_near_nominal() {
        let plan = FaultPlan::new(FaultPlanConfig::new(99).with_bit_flip_ppm(100_000));
        let hits = (0..100_000u64)
            .filter(|&s| plan.strikes(FaultClass::TileBitFlip, s))
            .count();
        // 10% nominal over 100k sites: expect within ±1% absolute.
        assert!((9_000..=11_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn sticky_sites_restrike_identically_and_stay_opt_in() {
        let plan = FaultPlan::new(FaultPlanConfig::new(2022).with_sticky_ppm(250_000));
        let mut struck = 0usize;
        for site in 0..4096u64 {
            let first = plan.sticky_fault_for_site(site, 16);
            assert_eq!(first, plan.sticky_fault_for_site(site, 16));
            match first {
                Some(FaultKind::StickyNan { row, col }) => {
                    assert!(row < 16 && col < 16);
                    struck += 1;
                }
                None => {}
                other => panic!("sticky sites draw only StickyNan, got {other:?}"),
            }
        }
        // 25% nominal over 4096 sites.
        assert!((700..=1_350).contains(&struck), "struck = {struck}");
        // A sticky-only config never leaks into the transient paths, and
        // the stock constructors keep sticky disarmed.
        for site in 0..512 {
            assert_eq!(plan.fault_for_mmo_site(site, 16), None);
            assert_eq!(plan.fault_for_mem_site(site, 64), None);
        }
        assert_eq!(FaultPlanConfig::new(1).sticky_ppm, 0);
        assert_eq!(FaultPlanConfig::uniform(1, 500_000).sticky_ppm, 0);
    }

    #[test]
    fn stall_plan_is_deterministic_and_bounded() {
        let plan = StallPlan::new(7, 200_000, 5);
        assert_eq!(plan, StallPlan::new(7, 200_000, 5));
        let mut stalled = 0u64;
        for step in 0..10_000u64 {
            let units = plan.stall_units(step);
            assert_eq!(units, plan.stall_units(step));
            assert!(units <= 5);
            stalled += u64::from(units > 0);
        }
        // 20% nominal over 10k steps.
        assert!((1_500..=2_500).contains(&stalled), "stalled = {stalled}");
        assert_eq!(StallPlan::new(7, 0, 5).stall_units(3), 0);
        assert_eq!(StallPlan::new(7, 1_000_000, 0).stall_units(3), 0);
        let total = plan.total_units(100);
        let by_hand: u64 = (0..100).map(|s| 1 + plan.stall_units(s)).sum();
        assert_eq!(total, by_hand);
        assert!(total >= 100, "every step costs at least its base unit");
        // Different seeds stall different steps.
        let other = StallPlan::new(8, 200_000, 5);
        assert!((0..10_000u64).any(|s| other.stall_units(s) != plan.stall_units(s)));
    }

    #[test]
    fn parameters_are_in_range() {
        let plan = FaultPlan::new(FaultPlanConfig::uniform(3, 1_000_000));
        for site in 0..4096 {
            match plan.fault_for_mmo_site(site, 16) {
                Some(FaultKind::BitFlip { row, col, bit }) => {
                    assert!(row < 16 && col < 16 && bit < 32);
                }
                Some(FaultKind::StuckLane {
                    lane_row, lane_col, ..
                }) => {
                    assert!(lane_row < MXU_GRID && lane_col < MXU_GRID);
                }
                Some(FaultKind::TransientNan { row, col, .. }) => {
                    assert!(row < 16 && col < 16);
                }
                other => panic!("unexpected draw {other:?}"),
            }
            if let Some(FaultKind::MemBitFlip { word, bit }) = plan.fault_for_mem_site(site, 100) {
                assert!(word < 100 && bit < 32);
            }
        }
    }
}
