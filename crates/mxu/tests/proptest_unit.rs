//! Property-based tests of the functional SIMD² unit.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use simd2_matrix::{reference, Tile};
use simd2_mxu::{MmaUnit, PrecisionMode, Simd2Unit};
use simd2_semiring::{OpKind, ALL_OPS};

fn op_strategy() -> impl Strategy<Value = OpKind> {
    (0..ALL_OPS.len()).prop_map(|i| ALL_OPS[i])
}

/// In-domain fp16-exact tile values for the given op.
fn tile_strategy(op: OpKind) -> impl Strategy<Value = Tile<4>> {
    proptest::collection::vec(0u16..64, 16).prop_map(move |vals| {
        Tile::from_fn(|r, c| {
            let raw = f32::from(vals[r * 4 + c]);
            match op {
                OpKind::OrAnd => {
                    if raw >= 32.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
                OpKind::MinMul | OpKind::MaxMul => 0.5 + raw / 128.0,
                _ => raw * 0.25,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unit matches the reference triple loop on every op for
    /// arbitrary in-domain tiles (exact for selection algebras, within
    /// tree-rounding for additive ones).
    #[test]
    fn unit_matches_reference(op in op_strategy(), seed in any::<u32>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let a = tile_strategy(op).new_tree(&mut runner).unwrap().current();
        let b = tile_strategy(op).new_tree(&mut runner).unwrap().current();
        let c = Tile::<4>::splat(op.reduce_identity_f32());
        let got = Simd2Unit::new().execute(op, &a, &b, &c);
        let want = reference::mmo(op, &a.to_matrix(), &b.to_matrix(), &c.to_matrix()).unwrap();
        let want = Tile::<4>::try_from_matrix(&want).unwrap();
        let tol = match op {
            OpKind::PlusMul | OpKind::PlusNorm => 1e-3,
            _ => 0.0,
        };
        prop_assert!(got.max_abs_diff(&want) <= tol, "{}", op);
    }

    /// Idempotent algebras: feeding the result back as the accumulator
    /// changes nothing (the unit-level fixed-point property behind
    /// convergence checks).
    #[test]
    fn idempotent_ops_are_stable_under_reaccumulation(seed in any::<u32>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        for op in ALL_OPS {
            if !op.reduce_is_idempotent() {
                continue;
            }
            let a = tile_strategy(op).new_tree(&mut runner).unwrap().current();
            let b = tile_strategy(op).new_tree(&mut runner).unwrap().current();
            let unit = Simd2Unit::new();
            let first = unit.execute_no_acc(op, &a, &b);
            let second = unit.execute(op, &a, &b, &first);
            prop_assert_eq!(second, first, "{}", op);
        }
    }

    /// Monotonicity of min-reductions: improving the accumulator can only
    /// improve (or keep) every output element.
    #[test]
    fn min_plus_accumulator_monotonicity(seed in any::<u32>(), better in 0u8..16) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let op = OpKind::MinPlus;
        let a = tile_strategy(op).new_tree(&mut runner).unwrap().current();
        let b = tile_strategy(op).new_tree(&mut runner).unwrap().current();
        let unit = Simd2Unit::new();
        let c1 = Tile::<4>::splat(f32::INFINITY);
        let c2 = Tile::<4>::splat(f32::from(better));
        let d1 = unit.execute(op, &a, &b, &c1);
        let d2 = unit.execute(op, &a, &b, &c2);
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!(d2.get(r, c) <= d1.get(r, c));
                prop_assert!(d2.get(r, c) <= f32::from(better));
            }
        }
    }

    /// fp32 mode never produces *larger* quantisation error than fp16
    /// mode against the reference (sanity of the precision ladder).
    #[test]
    fn precision_ladder_is_ordered(seed in any::<u32>()) {
        let _ = seed;
        let op = OpKind::MaxMul; // the drift-prone algebra
        // Non-fp16-exact operands.
        let a = Tile::<4>::from_fn(|r, c| 0.5 + ((r * 4 + c) as f32) * 0.061);
        let b = Tile::<4>::from_fn(|r, c| 0.5 + ((c * 4 + r) as f32) * 0.043);
        let cacc = Tile::<4>::splat(op.reduce_identity_f32());
        let want = reference::mmo(op, &a.to_matrix(), &b.to_matrix(), &cacc.to_matrix()).unwrap();
        let want = Tile::<4>::try_from_matrix(&want).unwrap();
        let err = |mode| {
            Simd2Unit::with_precision(mode).execute(op, &a, &b, &cacc).max_abs_diff(&want)
        };
        prop_assert!(err(PrecisionMode::Fp32Input) <= err(PrecisionMode::Fp16Input));
        prop_assert!(err(PrecisionMode::Fp16Input) <= err(PrecisionMode::Int8Input));
    }

    /// The MMA baseline agrees with the SIMD² unit on plus-mul and rejects
    /// everything else, for arbitrary tiles.
    #[test]
    fn mma_baseline_contract(seed in any::<u32>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let a = tile_strategy(OpKind::PlusMul).new_tree(&mut runner).unwrap().current();
        let b = tile_strategy(OpKind::PlusMul).new_tree(&mut runner).unwrap().current();
        let c = Tile::<4>::splat(0.0);
        let mma = MmaUnit::new();
        prop_assert_eq!(
            mma.execute(OpKind::PlusMul, &a, &b, &c).unwrap(),
            Simd2Unit::new().execute(OpKind::PlusMul, &a, &b, &c)
        );
        for op in simd2_semiring::EXTENDED_OPS {
            prop_assert!(mma.execute(op, &a, &b, &c).is_err());
        }
    }
}
