//! Synthesis-calibrated area and power model (paper Table 5, §6.1).
//!
//! The paper implements the SIMD² unit in RTL and synthesises it with the
//! Synopsys design compiler against FreePDK45. We have no RTL flow, so this
//! module is a *component-level cost model calibrated to the published
//! synthesis results*: per-instruction datapath structures carry fitted
//! area constants (in units of one baseline 16-bit 4×4 MMA unit = 1.0), and
//! composition follows the paper's sharing argument —
//!
//! * a mirrored operation (max-plus after min-plus, …) reuses the same
//!   structure with a polarity mux, at negligible cost (cf. the paper's
//!   observation that combining min-mul and max-mul into one unit costs
//!   11.82% while each standalone accelerator costs ≈ one MMA),
//! * standalone accelerators share nothing, which is why their total is
//!   2.96× the baseline (Table 5(b)) versus 0.69× for the combined unit,
//! * datapath muxing across many distinct structures carries an
//!   integration overhead that grows with the number of structures.

use serde::{Deserialize, Serialize};
use simd2_semiring::precision::Precision;
use simd2_semiring::{OpKind, EXTENDED_OPS};

/// The baseline MMA unit's absolute area at 45 nm, mm² (paper §6.1).
pub const MMA_AREA_45NM_MM2: f64 = 11.52;

/// Distinct extension datapath structures. One structure serves both
/// polarities of a mirrored operation pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Structure {
    /// fp16 combine adders + fp32 comparator reduce tree (min/max-plus).
    AddCombineCmpReduce,
    /// Full-width product comparator reduce tree (min/max-mul); the fp16
    /// multiplier array itself is reused from the MMA datapath.
    WideProductCmpReduce,
    /// fp16 combine comparators + narrow comparator reduce (min-max /
    /// max-min).
    CmpCombineCmpReduce,
    /// Boolean AND array + OR reduce tree (or-and).
    BoolAndOrReduce,
    /// Subtract-and-square combine path (plus-norm); the fp32 adder reduce
    /// tree is reused from the MMA datapath.
    SubSquare,
}

fn structure_of(op: OpKind) -> Option<(Structure, bool)> {
    // (structure, is_mirror_polarity)
    match op {
        OpKind::PlusMul => None,
        OpKind::MinPlus => Some((Structure::AddCombineCmpReduce, false)),
        OpKind::MaxPlus => Some((Structure::AddCombineCmpReduce, true)),
        OpKind::MinMul => Some((Structure::WideProductCmpReduce, false)),
        OpKind::MaxMul => Some((Structure::WideProductCmpReduce, true)),
        OpKind::MinMax => Some((Structure::CmpCombineCmpReduce, false)),
        OpKind::MaxMin => Some((Structure::CmpCombineCmpReduce, true)),
        OpKind::OrAnd => Some((Structure::BoolAndOrReduce, false)),
        OpKind::PlusNorm => Some((Structure::SubSquare, false)),
    }
}

impl Structure {
    /// Incremental area of adding this structure to an MMA datapath
    /// (fitted to Table 5(a): `MMA + op` minus 1.0).
    fn incremental_area(self) -> f64 {
        match self {
            Structure::AddCombineCmpReduce => 0.21,
            Structure::WideProductCmpReduce => 0.12,
            Structure::CmpCombineCmpReduce => 0.01,
            Structure::BoolAndOrReduce => 0.04,
            Structure::SubSquare => 0.18,
        }
    }
}

/// Area of the polarity mux that turns a min-structure into min∪max.
const MIRROR_MUX_AREA: f64 = 0.002;

/// Integration (datapath muxing/wiring) overhead by number of distinct
/// extension structures present, fitted so the full-featured unit lands on
/// the paper's 1.69×.
const INTEGRATION_OVERHEAD: [f64; 6] = [0.0, 0.0, 0.01, 0.035, 0.075, 0.124];

/// Standalone accelerator area per operation (Table 5(b)): a dedicated
/// unit shares nothing, so each pays for its own operand registers,
/// control, and — for the multiplicative algebras — its own multiplier
/// array.
fn standalone_area(op: OpKind) -> f64 {
    match op {
        OpKind::PlusMul => 1.0,
        OpKind::MinPlus | OpKind::MaxPlus => 0.26,
        OpKind::MinMul | OpKind::MaxMul => 1.03,
        OpKind::MinMax | OpKind::MaxMin => 0.06,
        OpKind::OrAnd => 0.08,
        OpKind::PlusNorm => 0.19,
    }
}

/// Area model of a matrix unit supporting a chosen set of SIMD²
/// operations, at a chosen precision and tile shape.
///
/// All areas are relative to one baseline 16-bit 4×4 MMA unit (= 1.0);
/// [`AreaModel::area_mm2_45nm`] converts to the paper's absolute mm².
///
/// # Example
///
/// ```
/// use simd2_mxu::AreaModel;
/// use simd2_semiring::EXTENDED_OPS;
///
/// let full = AreaModel::combined(&EXTENDED_OPS);
/// assert!((full.relative_area() - 1.69).abs() < 0.01);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    relative_area: f64,
    description: String,
}

impl AreaModel {
    /// The baseline MMA-only unit (= 1.0 by definition).
    pub fn mma_baseline() -> Self {
        Self {
            relative_area: 1.0,
            description: "MMA only".to_owned(),
        }
    }

    /// An MMA unit extended with the given SIMD² operations (Table 5(a)).
    ///
    /// `PlusMul` entries are ignored (the baseline already provides it);
    /// duplicate operations are counted once.
    pub fn combined(extensions: &[OpKind]) -> Self {
        let mut structures: Vec<Structure> = Vec::new();
        let mut mirrors = 0usize;
        for &op in extensions {
            let Some((s, _)) = structure_of(op) else {
                continue;
            };
            if structures.contains(&s) {
                // Second polarity (or duplicate listing) of a structure.
                let pair_present = extensions
                    .iter()
                    .filter(|&&o| structure_of(o).map(|(t, _)| t) == Some(s))
                    .count()
                    > 1;
                if pair_present {
                    continue;
                }
            } else {
                structures.push(s);
            }
        }
        // Count mirror muxes: one per structure that hosts both polarities.
        for &s in &structures {
            let polarities: std::collections::HashSet<bool> = extensions
                .iter()
                .filter_map(|&o| structure_of(o))
                .filter(|&(t, _)| t == s)
                .map(|(_, m)| m)
                .collect();
            if polarities.len() > 1 {
                mirrors += 1;
            }
        }
        let base: f64 = structures.iter().map(|s| s.incremental_area()).sum();
        let integration = INTEGRATION_OVERHEAD[structures.len().min(5)];
        let relative_area = 1.0 + base + mirrors as f64 * MIRROR_MUX_AREA + integration;
        let names: Vec<&str> = {
            let mut v: Vec<&str> = extensions
                .iter()
                .filter(|&&o| o != OpKind::PlusMul)
                .map(|o| o.name())
                .collect();
            v.dedup();
            v
        };
        Self {
            relative_area,
            description: format!("MMA + {}", names.join(" + ")),
        }
    }

    /// A dedicated standalone accelerator for a single operation
    /// (Table 5(b)); shares nothing with an MMA unit.
    pub fn standalone(op: OpKind) -> Self {
        Self {
            relative_area: standalone_area(op),
            description: format!("standalone {}", op.name()),
        }
    }

    /// Sum of all eight standalone accelerators (Table 5(b) "Total" row —
    /// the 2.96× that motivates the combined design).
    pub fn standalone_total() -> f64 {
        EXTENDED_OPS.iter().map(|&op| standalone_area(op)).sum()
    }

    /// Area relative to the 16-bit 4×4 baseline MMA unit.
    pub fn relative_area(&self) -> f64 {
        self.relative_area
    }

    /// Absolute area at the paper's 45 nm synthesis node, mm².
    pub fn area_mm2_45nm(&self) -> f64 {
        self.relative_area * MMA_AREA_45NM_MM2
    }

    /// Human-readable configuration description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Precision scaling (Table 5(c)): relative area of the MMA-only unit
    /// at the given operand precision (16-bit = 1.0). Multiplier arrays
    /// dominate and scale roughly quadratically in operand width, with
    /// sub-quadratic relief at 64-bit; these are the paper's fitted points.
    pub fn mma_at_precision(p: Precision) -> f64 {
        match p {
            Precision::Bits8 => 0.25,
            Precision::Bits16 => 1.0,
            Precision::Bits32 => 4.04,
            Precision::Bits64 => 11.17,
        }
    }

    /// Precision scaling of the full SIMD² unit (Table 5(c) second row).
    ///
    /// The *relative* overhead of SIMD² support shrinks as precision grows
    /// (2.76× → 1.69× → 1.59× → 1.52×) because multipliers scale faster
    /// than the comparator/adder structures SIMD² adds.
    pub fn full_simd2_at_precision(p: Precision) -> f64 {
        match p {
            Precision::Bits8 => 0.69,
            Precision::Bits16 => 1.69,
            Precision::Bits32 => 6.42,
            Precision::Bits64 => 17.01,
        }
    }

    /// Shape scaling: relative area of an MMA unit operating on
    /// `side × side` tiles (4×4 = 1.0). The paper reports the 8×8 unit at
    /// 7.5× — MAC count grows with `side³` (64 → 512, 8×) with slightly
    /// sub-cubic wiring amortisation — and notes the SIMD² overhead ratio
    /// stays constant across shapes.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a power of two ≥ 4.
    pub fn shape_scale(side: usize) -> f64 {
        assert!(
            side >= 4 && side.is_power_of_two(),
            "tile side must be a power of two ≥ 4"
        );
        let ratio = (side / 4) as f64;
        // side³ MAC scaling damped to hit the published 7.5× at 8×8.
        ratio.powi(3) * 0.9375
    }
}

/// Active-power model (paper §6.1: 3.74 W baseline MMA, +0.79 W for the
/// full SIMD² unit). Power is taken proportional to the added switching
/// area.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerModel;

impl PowerModel {
    /// Baseline MMA unit active power, watts.
    pub const MMA_WATTS: f64 = 3.74;

    /// Added active power of the full 8-extension SIMD² unit, watts.
    pub const FULL_SIMD2_EXTRA_WATTS: f64 = 0.79;

    /// Active power of an MMA unit extended with `extensions`.
    pub fn combined_watts(extensions: &[OpKind]) -> f64 {
        let full = AreaModel::combined(&EXTENDED_OPS).relative_area() - 1.0;
        let this = AreaModel::combined(extensions).relative_area() - 1.0;
        Self::MMA_WATTS + Self::FULL_SIMD2_EXTRA_WATTS * (this / full)
    }
}

/// Die-level overhead model (paper §6.1, RTX 3080 / GA102 die-shot
/// arithmetic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DieModel {
    /// Total die area, mm² (GA102: 628.4).
    pub die_mm2: f64,
    /// Fraction of the die occupied by SMs (0.502 from the die shot).
    pub sm_fraction: f64,
    /// Area of one SM, mm² (3.75).
    pub sm_mm2: f64,
    /// Linear area scale factor from 45 nm to the GPU's process (Samsung
    /// 8N), applied to the synthesised overhead.
    pub process_scale_45nm_to_8n: f64,
}

impl Default for DieModel {
    fn default() -> Self {
        Self::rtx3080()
    }
}

impl DieModel {
    /// The paper's RTX 3080 (GA102) parameters. The process scale factor
    /// is chosen so the 69.23% overhead of an 11.52 mm² 45 nm unit lands
    /// on the published 0.378 mm² at 8N.
    pub fn rtx3080() -> Self {
        let overhead_45nm = MMA_AREA_45NM_MM2 * 0.6923;
        Self {
            die_mm2: 628.4,
            sm_fraction: 0.502,
            sm_mm2: 3.75,
            process_scale_45nm_to_8n: 0.378 / overhead_45nm,
        }
    }

    /// Number of SM sites implied by the die shot (GA102: 84).
    pub fn sm_count(&self) -> usize {
        (self.die_mm2 * self.sm_fraction / self.sm_mm2).round() as usize
    }

    /// Absolute per-SM area added by one full SIMD² unit, mm² at 8N.
    pub fn simd2_overhead_mm2(&self) -> f64 {
        let overhead_rel = AreaModel::combined(&EXTENDED_OPS).relative_area() - 1.0;
        overhead_rel * MMA_AREA_45NM_MM2 * self.process_scale_45nm_to_8n
    }

    /// SIMD² overhead as a fraction of one SM (paper: ≈ 10%).
    pub fn sm_overhead_fraction(&self) -> f64 {
        self.simd2_overhead_mm2() / self.sm_mm2
    }

    /// SIMD² overhead as a fraction of the whole die (paper: ≈ 5%).
    pub fn die_overhead_fraction(&self) -> f64 {
        self.simd2_overhead_mm2() * self.sm_count() as f64 / self.die_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn table5a_per_instruction_rows() {
        // Paper Table 5(a): MMA + one instruction.
        let rows = [
            (OpKind::MinPlus, 1.21),
            (OpKind::MaxPlus, 1.21),
            (OpKind::MinMul, 1.12),
            (OpKind::MaxMul, 1.12),
            (OpKind::MinMax, 1.01),
            (OpKind::MaxMin, 1.01),
            (OpKind::OrAnd, 1.04),
            (OpKind::PlusNorm, 1.18),
        ];
        for (op, want) in rows {
            let got = AreaModel::combined(&[op]).relative_area();
            assert!((got - want).abs() < 0.005, "{op}: {got} vs {want}");
        }
    }

    #[test]
    fn table5a_full_unit() {
        let got = AreaModel::combined(&EXTENDED_OPS).relative_area();
        assert!((got - 1.69).abs() < 0.005, "{got}");
    }

    #[test]
    fn table5b_standalone_rows_and_total() {
        let rows = [
            (OpKind::MinPlus, 0.26),
            (OpKind::MaxPlus, 0.26),
            (OpKind::MinMul, 1.03),
            (OpKind::MaxMul, 1.03),
            (OpKind::MinMax, 0.06),
            (OpKind::MaxMin, 0.06),
            (OpKind::OrAnd, 0.08),
            (OpKind::PlusNorm, 0.19),
        ];
        for (op, want) in rows {
            assert_eq!(AreaModel::standalone(op).relative_area(), want, "{op}");
        }
        // 2.97 by exact summation; the paper's printed total is 2.96
        // (row-level rounding).
        assert!((AreaModel::standalone_total() - 2.96).abs() < 0.015);
    }

    #[test]
    fn combined_beats_standalone_collection_by_4x() {
        // §3.1: dedicated units cost > 4× the combined design's overhead.
        let combined_overhead = AreaModel::combined(&EXTENDED_OPS).relative_area() - 1.0;
        assert!(AreaModel::standalone_total() / combined_overhead > 4.0);
    }

    #[test]
    fn mirror_pair_shares_structure() {
        // §6.1: min-mul + max-mul combined ⇒ ~11.8% overhead, not 24%.
        let pair = AreaModel::combined(&[OpKind::MinMul, OpKind::MaxMul]).relative_area();
        assert!(pair < 1.13, "{pair}");
        assert!(pair > 1.11, "{pair}");
    }

    #[test]
    fn combined_is_monotone_in_op_set() {
        let mut prev = 1.0;
        let mut set: Vec<OpKind> = Vec::new();
        for op in EXTENDED_OPS {
            set.push(op);
            let a = AreaModel::combined(&set).relative_area();
            assert!(a >= prev, "adding {op} shrank the unit: {a} < {prev}");
            prev = a;
        }
    }

    #[test]
    fn duplicates_and_plusmul_are_ignored() {
        let a = AreaModel::combined(&[OpKind::MinPlus]);
        let b = AreaModel::combined(&[OpKind::MinPlus, OpKind::MinPlus, OpKind::PlusMul]);
        assert_eq!(a.relative_area(), b.relative_area());
        assert_eq!(AreaModel::combined(&[]).relative_area(), 1.0);
        assert_eq!(AreaModel::combined(&[OpKind::PlusMul]).relative_area(), 1.0);
    }

    #[test]
    fn table5c_precision_scaling() {
        use Precision::*;
        assert_eq!(AreaModel::mma_at_precision(Bits16), 1.0);
        // Overhead ratio shrinks with precision.
        let mut prev_ratio = f64::INFINITY;
        for p in [Bits8, Bits16, Bits32, Bits64] {
            let ratio = AreaModel::full_simd2_at_precision(p) / AreaModel::mma_at_precision(p);
            assert!(ratio < prev_ratio, "{p:?}: {ratio}");
            assert!(ratio > 1.0);
            prev_ratio = ratio;
        }
        // Paper's 32-bit claim: SIMD² unit is 59% larger than 32-bit MMA.
        let r32 = AreaModel::full_simd2_at_precision(Bits32) / AreaModel::mma_at_precision(Bits32);
        assert!((r32 - 1.59).abs() < 0.01, "{r32}");
        // Paper's 64-bit claim: 52% overhead.
        let r64 = AreaModel::full_simd2_at_precision(Bits64) / AreaModel::mma_at_precision(Bits64);
        assert!((r64 - 1.52).abs() < 0.01, "{r64}");
    }

    #[test]
    fn shape_scaling_hits_8x8_point() {
        assert_eq!(AreaModel::shape_scale(4), 0.9375); // self-consistent damping
        assert!((AreaModel::shape_scale(8) - 7.5).abs() < 1e-9);
        assert!(AreaModel::shape_scale(16) > AreaModel::shape_scale(8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shape_scale_rejects_odd_sides() {
        let _ = AreaModel::shape_scale(5);
    }

    #[test]
    fn absolute_area_conversion() {
        let mma = AreaModel::mma_baseline();
        assert_eq!(mma.area_mm2_45nm(), 11.52);
        assert!(mma.description().contains("MMA"));
    }

    #[test]
    fn power_model_endpoints() {
        let full = PowerModel::combined_watts(&EXTENDED_OPS);
        assert!((full - 4.53).abs() < 1e-9);
        let none = PowerModel::combined_watts(&[]);
        assert_eq!(none, PowerModel::MMA_WATTS);
        let some = PowerModel::combined_watts(&[OpKind::MinPlus]);
        assert!(some > none && some < full);
    }

    #[test]
    fn die_model_reproduces_paper_percentages() {
        let die = DieModel::rtx3080();
        assert_eq!(die.sm_count(), 84);
        assert!((die.simd2_overhead_mm2() - 0.378).abs() < 0.002);
        let sm_frac = die.sm_overhead_fraction();
        assert!((sm_frac - 0.10).abs() < 0.005, "{sm_frac}");
        let die_frac = die.die_overhead_fraction();
        assert!((die_frac - 0.05).abs() < 0.003, "{die_frac}");
    }

    #[test]
    fn every_op_has_a_standalone_area() {
        for op in ALL_OPS {
            assert!(AreaModel::standalone(op).relative_area() > 0.0);
        }
    }
}
