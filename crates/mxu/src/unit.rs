//! Functional model of the SIMD² unit datapath.
//!
//! Paper Figure 4(c): the unit takes fixed-size operand tiles, runs every
//! element pair through the configurable `⊗` ALU array, reduces partial
//! results through the configurable `⊕` tree, and reduces the accumulator
//! tile in. Inputs are fp16, accumulation is fp32 (§3.2).
//!
//! The reduction over `k` is performed as a balanced binary *tree*, exactly
//! as drawn in Figure 3/5 — for min/max/or this is indistinguishable from a
//! sequential fold, for `+` it differs from a fold by rounding only, and
//! the tests pin down that tree order.

use std::fmt;

use simd2_semiring::kernel::{
    dispatch_kernel, tree_reduce_in_place, KernelVisitor, SemiringKernel,
};
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::simd::{self, KernelIsa, SelectedKernel, TileKernel};
use simd2_semiring::OpKind;

use simd2_matrix::Tile;

/// Error returned when a unit is asked to perform an operation its
/// datapath does not implement (e.g. `min-plus` on a plain MMA unit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedOpError {
    op: OpKind,
    unit: &'static str,
}

impl fmt::Display for UnsupportedOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} unit does not implement {}", self.unit, self.op)
    }
}

impl std::error::Error for UnsupportedOpError {}

/// Input operand precision handling of the functional datapath.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// Quantise `A`/`B` operands through fp16 before combining — the
    /// paper's design point, used to validate reduced-precision accuracy.
    #[default]
    Fp16Input,
    /// Keep operands in fp32 (the hypothetical 32-bit unit of Table 5(c)).
    Fp32Input,
    /// Symmetric signed int8 fixed-point operands at unit scale — the
    /// mode the paper evaluated and rejected because "fixed-precision
    /// format cannot converge to the same result as baseline fp32"
    /// (§3.2). Values saturate at ±127.
    Int8Input,
}

/// Reduces `values` pairwise as a balanced binary tree, in place, using
/// the scratch space of `values` itself (dynamic-op wrapper over the
/// monomorphized [`tree_reduce_in_place`], the canonical `⊕`-tree shared
/// with the vectorized kernels in `simd2_semiring::simd`). Returns `op`'s
/// `⊕` identity for an empty slice. This is the exact reduction order of
/// the unit's `⊕` tree, exposed for oracles that need to reproduce its
/// rounding.
pub fn tree_reduce(op: OpKind, values: &mut [f32]) -> f32 {
    struct Reduce<'a>(&'a mut [f32]);
    impl KernelVisitor for Reduce<'_> {
        type Output = f32;
        fn visit<K: SemiringKernel>(self) -> f32 {
            tree_reduce_in_place::<K>(self.0)
        }
    }
    dispatch_kernel(op, Reduce(values))
}

/// The fused, monomorphized *scalar* tile kernel: for each output
/// element, combine the `k` operand pairs into a `[f32; N]` stack
/// buffer, tree-reduce it in place, and fold the accumulator element in
/// last. Operands must already be quantised.
///
/// The production path runs the vectorized [`TileKernel`] instead; this
/// loop remains as the fallback for tiles wider than
/// [`simd::MAX_TILE`] and as the oracle the kernel-identity tests pin
/// the vector lowerings against.
#[inline]
fn execute_kernel<K: SemiringKernel, const N: usize>(
    a: &Tile<N>,
    b: &Tile<N>,
    c: &Tile<N>,
) -> Tile<N> {
    Tile::from_fn(|i, j| {
        let mut partials = [K::IDENTITY; N];
        for (k, p) in partials.iter_mut().enumerate() {
            *p = K::combine(a.get(i, k), b.get(k, j));
        }
        let reduced = tree_reduce_in_place::<K>(&mut partials);
        K::reduce(c.get(i, j), reduced)
    })
}

/// The SIMD² matrix unit: executes all nine operations on `N × N` tiles.
///
/// # Example
///
/// ```
/// use simd2_matrix::Tile;
/// use simd2_mxu::Simd2Unit;
/// use simd2_semiring::OpKind;
///
/// let unit = Simd2Unit::new();
/// let a = Tile::<4>::splat(1.0);
/// let b = Tile::<4>::splat(2.0);
/// let c = Tile::<4>::splat(f32::INFINITY);
/// let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
/// assert_eq!(d.get(0, 0), 3.0); // min over k of (1 + 2)
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Simd2Unit {
    precision: PrecisionMode,
    kernel: SelectedKernel,
}

impl Simd2Unit {
    /// A unit with the paper's default fp16-input data path and the
    /// widest tile kernel the host supports (honouring
    /// `SIMD2_FORCE_SCALAR`; the selection is made once per process).
    pub fn new() -> Self {
        Self::default()
    }

    /// A unit with the given input precision mode.
    pub fn with_precision(precision: PrecisionMode) -> Self {
        Self {
            precision,
            ..Self::default()
        }
    }

    /// This unit, re-pinned to the given kernel ISA (downgraded to
    /// [`KernelIsa::Scalar`] if the host cannot execute that tier).
    /// Used by the forced-scalar test legs and A/B identity checks.
    pub fn with_kernel_isa(self, isa: KernelIsa) -> Self {
        Self {
            kernel: SelectedKernel::with_isa(isa),
            ..self
        }
    }

    /// The unit's input precision mode.
    pub fn precision(&self) -> PrecisionMode {
        self.precision
    }

    /// The instruction set the unit's tile kernel executes with.
    pub fn kernel_isa(&self) -> KernelIsa {
        self.kernel.isa()
    }

    #[inline]
    fn quantize(&self, x: f32) -> f32 {
        match self.precision {
            PrecisionMode::Fp16Input => quantize_f16(x),
            PrecisionMode::Fp32Input => x,
            PrecisionMode::Int8Input => simd2_semiring::precision::quantize_int8(x, 1.0),
        }
    }

    /// Quantises every element of an operand tile once, up front — the
    /// input-stage registers of Figure 4(c). The quantiser is a pure
    /// per-element function, so hoisting it out of the `k` loop changes
    /// no bits while cutting the call count from `N³` to `N²`. The fp16
    /// round trip additionally runs on the unit's vector kernel when one
    /// is selected (bit-identical to the scalar quantiser — see
    /// [`simd::quantize_f16_slice`]); without it the quantiser dominates
    /// the vectorized tile path.
    #[inline]
    fn quantize_tile<const N: usize>(&self, t: &Tile<N>) -> Tile<N> {
        match self.precision {
            PrecisionMode::Fp32Input => *t,
            PrecisionMode::Fp16Input => {
                let mut q = *t;
                simd::quantize_f16_slice(self.kernel.isa(), q.as_flat_mut());
                q
            }
            PrecisionMode::Int8Input => Tile::from_fn(|r, c| self.quantize(t.get(r, c))),
        }
    }

    /// Executes `D = C ⊕ (A ⊗ B)` on tiles.
    ///
    /// `A`/`B` elements pass through the input quantiser; the `⊕`
    /// reduction over `k` runs as a balanced tree in fp32, is folded with
    /// the `C` element last, and the result is returned as a fresh tile.
    ///
    /// The operation is resolved to a monomorphized [`SemiringKernel`]
    /// exactly once per call, and the tile runs on the [`TileKernel`]
    /// selected at construction (AVX-512 / AVX2 / NEON / scalar) — the
    /// inner `N³` loop contains no dynamic dispatch, no feature tests
    /// and no heap allocation. Every vector tier is bit-identical to the
    /// scalar kernel, which stays available as the oracle (and as the
    /// fallback for `N` beyond the kernels' stack budget).
    pub fn execute<const N: usize>(
        &self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Tile<N> {
        let qa = self.quantize_tile(a);
        let qb = self.quantize_tile(b);
        if N <= simd::MAX_TILE {
            let mut d = Tile::splat(0.0);
            self.kernel.mmo_tile(
                op,
                qa.as_flat(),
                qb.as_flat(),
                c.as_flat(),
                d.as_flat_mut(),
                N,
            );
            return d;
        }
        struct Exec<'t, const N: usize> {
            a: &'t Tile<N>,
            b: &'t Tile<N>,
            c: &'t Tile<N>,
        }
        impl<const N: usize> KernelVisitor for Exec<'_, N> {
            type Output = Tile<N>;
            fn visit<K: SemiringKernel>(self) -> Tile<N> {
                execute_kernel::<K, N>(self.a, self.b, self.c)
            }
        }
        dispatch_kernel(op, Exec { a: &qa, b: &qb, c })
    }

    /// Executes with an implicit accumulator tile holding the `⊕` identity
    /// (`D = ⊕ₖ (A ⊗ B)`).
    pub fn execute_no_acc<const N: usize>(&self, op: OpKind, a: &Tile<N>, b: &Tile<N>) -> Tile<N> {
        let c = Tile::splat(op.reduce_identity_f32());
        self.execute(op, a, b, &c)
    }
}

/// A conventional MMA-only matrix unit (the Tensor-Core baseline): same
/// datapath, but only [`OpKind::PlusMul`] is wired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmaUnit {
    inner: Simd2Unit,
}

impl MmaUnit {
    /// A baseline MMA unit with the fp16-input data path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `D = C + A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedOpError`] for any operation other than
    /// [`OpKind::PlusMul`] — this is exactly the limitation that forces
    /// SIMD²-ized algorithms back onto CUDA cores on real hardware.
    pub fn execute<const N: usize>(
        &self,
        op: OpKind,
        a: &Tile<N>,
        b: &Tile<N>,
        c: &Tile<N>,
    ) -> Result<Tile<N>, UnsupportedOpError> {
        if op != OpKind::PlusMul {
            return Err(UnsupportedOpError { op, unit: "MMA" });
        }
        Ok(self.inner.execute(op, a, b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::reference;
    use simd2_matrix::Matrix;
    use simd2_semiring::ALL_OPS;

    fn tiles() -> (Tile<4>, Tile<4>, Tile<4>) {
        // Values chosen fp16-exact so the quantiser is transparent and the
        // reference (full-precision) model agrees bit-for-bit.
        let a = Tile::<4>::from_fn(|r, c| 0.25 * (r * 4 + c + 1) as f32);
        let b = Tile::<4>::from_fn(|r, c| 0.5 * ((r + 2 * c) % 5) as f32 + 0.25);
        let c = Tile::<4>::from_fn(|r, c| 0.125 * (r + c) as f32 + 0.5);
        (a, b, c)
    }

    #[test]
    fn matches_reference_model_on_all_ops() {
        let unit = Simd2Unit::new();
        let (a, b, c) = tiles();
        for op in ALL_OPS {
            let d = unit.execute(op, &a, &b, &c);
            let dm = reference::mmo(op, &a.to_matrix(), &b.to_matrix(), &c.to_matrix()).unwrap();
            let want = Tile::<4>::try_from_matrix(&dm).unwrap();
            // Tree vs fold reduction may differ by f32 rounding for the two
            // additive reductions; all others must be exact.
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 1e-5,
                _ => 0.0,
            };
            assert!(
                d.max_abs_diff(&want) <= tol,
                "{op}: diff {}",
                d.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn quantizes_fp16_inputs() {
        let unit = Simd2Unit::new();
        // 0.1 is not fp16-representable.
        let a = Tile::<4>::splat(0.1);
        let b = Tile::<4>::splat(1.0);
        let c = Tile::<4>::splat(0.0);
        let d = unit.execute(OpKind::PlusMul, &a, &b, &c);
        let q = quantize_f16(0.1);
        assert_eq!(d.get(0, 0), q * 4.0);
        assert_ne!(d.get(0, 0), 0.1 * 4.0);
    }

    #[test]
    fn fp32_mode_skips_quantisation() {
        let unit = Simd2Unit::with_precision(PrecisionMode::Fp32Input);
        assert_eq!(unit.precision(), PrecisionMode::Fp32Input);
        let a = Tile::<4>::splat(0.1);
        let b = Tile::<4>::splat(1.0);
        let c = Tile::<4>::splat(0.0);
        let d = unit.execute(OpKind::PlusMul, &a, &b, &c);
        assert_eq!(d.get(0, 0), 0.1f32 + 0.1 + 0.1 + 0.1);
    }

    #[test]
    fn int8_mode_saturates_long_distances() {
        // Distances beyond 127 collapse to the saturation point — the
        // non-convergence failure that ruled int8 out (§3.2).
        let unit = Simd2Unit::with_precision(PrecisionMode::Int8Input);
        let a = Tile::<4>::splat(100.0);
        let b = Tile::<4>::splat(60.0);
        let c = Tile::<4>::splat(f32::INFINITY);
        let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
        // True min-plus value is 160; int8 saturation yields 127+127=254?
        // No: each operand clamps to 100 and 60 (in range), sum 160 is
        // computed in fp32 — but a 200-weight edge would clamp:
        let big = Tile::<4>::splat(200.0);
        let d2 = unit.execute(OpKind::MinPlus, &big, &b, &c);
        assert_eq!(d.get(0, 0), 160.0);
        assert_eq!(d2.get(0, 0), 127.0 + 60.0, "200 saturated to 127");
        // Infinities still encode "no edge".
        let inf = Tile::<4>::splat(f32::INFINITY);
        let d3 = unit.execute(OpKind::MinPlus, &inf, &b, &c);
        assert!(d3.iter().all(|(_, _, v)| v == f32::INFINITY));
    }

    #[test]
    fn accumulator_is_reduced_last() {
        let unit = Simd2Unit::new();
        let a = Tile::<4>::splat(1.0);
        let b = Tile::<4>::splat(1.0);
        // min-plus: paths of length 2 each; C holds a better value.
        let c = Tile::<4>::splat(1.5);
        let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
        assert_eq!(d.get(2, 3), 1.5);
    }

    #[test]
    fn no_acc_variant_seeds_identity() {
        let unit = Simd2Unit::new();
        let (a, b, _) = tiles();
        for op in ALL_OPS {
            let c = Tile::<4>::splat(op.reduce_identity_f32());
            assert_eq!(
                unit.execute_no_acc(op, &a, &b),
                unit.execute(op, &a, &b, &c),
                "{op}"
            );
        }
    }

    #[test]
    fn mma_unit_rejects_extensions() {
        let mma = MmaUnit::new();
        let (a, b, c) = tiles();
        assert!(mma.execute(OpKind::PlusMul, &a, &b, &c).is_ok());
        for op in simd2_semiring::EXTENDED_OPS {
            let err = mma.execute(op, &a, &b, &c).unwrap_err();
            assert!(err.to_string().contains(op.name()), "{op}");
        }
    }

    #[test]
    fn mma_unit_matches_simd2_unit_on_plus_mul() {
        let mma = MmaUnit::new();
        let unit = Simd2Unit::new();
        let (a, b, c) = tiles();
        assert_eq!(
            mma.execute(OpKind::PlusMul, &a, &b, &c).unwrap(),
            unit.execute(OpKind::PlusMul, &a, &b, &c)
        );
    }

    #[test]
    fn in_place_tree_matches_level_materialising_tree() {
        // The balanced-tree rounding semantics the docs promise: the
        // in-place halving must produce bit-identical results to a tree
        // that materialises every level, for every length (odd lengths
        // exercise the straggler carry) and for a rounding-sensitive op.
        for len in 1..=40usize {
            let vals: Vec<f32> = (0..len).map(|i| 0.1 + (i as f32) * 0.3).collect();
            let mut levels = vals.clone();
            let mut reference = levels.clone();
            while reference.len() > 1 {
                reference = reference
                    .chunks(2)
                    .map(|p| if p.len() == 2 { p[0] + p[1] } else { p[0] })
                    .collect();
            }
            let got = tree_reduce(OpKind::PlusMul, &mut levels);
            assert_eq!(got.to_bits(), reference[0].to_bits(), "len {len}");
        }
    }

    #[test]
    fn tree_reduce_degenerate_cases() {
        let mut empty: Vec<f32> = vec![];
        assert_eq!(tree_reduce(OpKind::MinPlus, &mut empty), f32::INFINITY);
        let mut one = vec![3.0];
        assert_eq!(tree_reduce(OpKind::MinPlus, &mut one), 3.0);
        let mut odd = vec![5.0, 1.0, 4.0];
        assert_eq!(tree_reduce(OpKind::MinPlus, &mut odd), 1.0);
    }

    #[test]
    fn isa_tile_shape_works_too() {
        // The 16×16 ISA-visible shape runs through the same datapath.
        let unit = Simd2Unit::new();
        let a = Tile::<16>::from_fn(|r, c| ((r + c) % 7) as f32);
        let b = Tile::<16>::from_fn(|r, c| ((r * c) % 5) as f32);
        let c = Tile::<16>::splat(f32::INFINITY);
        let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
        let want = reference::mmo(
            OpKind::MinPlus,
            &a.to_matrix(),
            &b.to_matrix(),
            &c.to_matrix(),
        )
        .unwrap();
        assert_eq!(d.to_matrix(), want);
    }

    /// Adversarial element pool: NaN, ±0, infinities, a denormal, and
    /// values that quantise inexactly — everything the vector lowerings
    /// could get wrong relative to the scalar oracle.
    fn tricky(i: usize) -> f32 {
        const POOL: [f32; 12] = [
            0.0,
            -0.0,
            1.0,
            -2.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            1.0e-40,
            0.1,
            65504.0,
            -3.75,
            7.0,
        ];
        POOL[i % POOL.len()]
    }

    fn assert_tiles_bit_identical<const N: usize>(got: &Tile<N>, want: &Tile<N>, ctx: &str) {
        let gb: Vec<u32> = got.as_flat().iter().map(|x| x.to_bits()).collect();
        let wb: Vec<u32> = want.as_flat().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, wb, "{ctx}");
    }

    fn kernel_identity_case<const N: usize>() {
        let a = Tile::<N>::from_fn(|r, c| tricky(r * N + c));
        let b = Tile::<N>::from_fn(|r, c| tricky(3 * r + 5 * c + 1));
        for precision in [PrecisionMode::Fp16Input, PrecisionMode::Fp32Input] {
            for op in ALL_OPS {
                let c = Tile::<N>::from_fn(|r, cc| {
                    if (r + cc) % 3 == 0 {
                        op.reduce_identity_f32()
                    } else {
                        tricky(7 * r + cc + 2)
                    }
                });
                let scalar = Simd2Unit::with_precision(precision)
                    .with_kernel_isa(KernelIsa::Scalar)
                    .execute(op, &a, &b, &c);
                for isa in KernelIsa::ALL {
                    if !isa.is_supported() {
                        continue;
                    }
                    let unit = Simd2Unit::with_precision(precision).with_kernel_isa(isa);
                    let got = unit.execute(op, &a, &b, &c);
                    assert_tiles_bit_identical(
                        &got,
                        &scalar,
                        &format!("{op} N={N} {isa} {precision:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn every_supported_isa_is_bit_identical_to_scalar() {
        // Sides straddling every vector width: pure-tail shapes (N < 4),
        // NEON-exact (4), AVX2 block + tail (11), one AVX-512 vector per
        // row (16), and multi-block with tail on every tier (21).
        kernel_identity_case::<1>();
        kernel_identity_case::<3>();
        kernel_identity_case::<4>();
        kernel_identity_case::<11>();
        kernel_identity_case::<16>();
        kernel_identity_case::<21>();
    }

    #[test]
    fn vector_kernel_matches_the_const_generic_scalar_loop() {
        // The simd scalar leaf and the original `[f32; N]` loop are both
        // oracles; pin them to each other through the public seam.
        let a = Tile::<16>::from_fn(|r, c| tricky(r + 2 * c));
        let b = Tile::<16>::from_fn(|r, c| tricky(5 * r + c + 4));
        for op in ALL_OPS {
            let c = Tile::<16>::splat(op.reduce_identity_f32());
            struct Exec<'t, const N: usize> {
                a: &'t Tile<N>,
                b: &'t Tile<N>,
                c: &'t Tile<N>,
            }
            impl<const N: usize> KernelVisitor for Exec<'_, N> {
                type Output = Tile<N>;
                fn visit<K: SemiringKernel>(self) -> Tile<N> {
                    execute_kernel::<K, N>(self.a, self.b, self.c)
                }
            }
            let unit = Simd2Unit::with_precision(PrecisionMode::Fp32Input);
            let got = unit.execute(op, &a, &b, &c);
            let want = dispatch_kernel(
                op,
                Exec {
                    a: &a,
                    b: &b,
                    c: &c,
                },
            );
            assert_tiles_bit_identical(&got, &want, &format!("{op} vs execute_kernel"));
        }
    }

    #[test]
    fn default_unit_reports_the_selected_isa() {
        let unit = Simd2Unit::new();
        assert_eq!(unit.kernel_isa(), simd::selected_isa());
        assert!(unit.kernel_isa().is_supported());
        let forced = unit.with_kernel_isa(KernelIsa::Scalar);
        assert_eq!(forced.kernel_isa(), KernelIsa::Scalar);
        assert_eq!(forced.precision(), unit.precision());
    }

    #[test]
    fn infinities_propagate_correctly_for_min_plus() {
        let unit = Simd2Unit::new();
        // A row entirely disconnected: +inf + anything = +inf, min-reduce
        // over +inf = +inf.
        let a = Tile::<4>::splat(f32::INFINITY);
        let b = Tile::<4>::splat(1.0);
        let c = Tile::<4>::splat(f32::INFINITY);
        let d = unit.execute(OpKind::MinPlus, &a, &b, &c);
        assert!(d.iter().all(|(_, _, v)| v == f32::INFINITY));
    }

    /// Matrix helper for doc parity: the unit applied over a whole matrix
    /// equals the reference mmo when the matrix is exactly one tile.
    #[test]
    fn single_tile_matrix_parity() {
        let unit = Simd2Unit::new();
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32 * 0.25);
        let a = Tile::<4>::try_from_matrix(&m).unwrap();
        let d = unit.execute_no_acc(OpKind::MaxMin, &a, &a);
        let c = Matrix::filled(4, 4, f32::NEG_INFINITY);
        let want = reference::mmo(OpKind::MaxMin, &m, &m, &c).unwrap();
        assert_eq!(d.to_matrix(), want);
    }
}
