//! Instruction latency/throughput of the SIMD² unit.
//!
//! The paper provisions the SIMD² unit to match the baseline MMA unit's
//! clock period and throughput: "we carefully design the proposed
//! extensions to make the timing of the SIMD² unit the same as the
//! baseline … the modification never increases the critical path delay"
//! (§6.1), and "all SIMD² arithmetic instructions have the same latency"
//! (§3.2). This module encodes that contract so the GPU-level performance
//! model can charge identical cycle costs to every `simd2.mmo`, which is
//! also what makes the wmma-based performance-emulation methodology sound.

use simd2_semiring::OpKind;

/// Cycle-level timing of one SIMD² (or baseline MMA) unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitTiming {
    /// Tile side the unit consumes per step (4 in the synthesised design).
    pub tile_side: usize,
    /// Pipeline latency of one tile operation, cycles.
    pub latency_cycles: u32,
    /// Issue interval between back-to-back tile operations, cycles
    /// (1 = fully pipelined).
    pub initiation_interval: u32,
}

impl Default for UnitTiming {
    fn default() -> Self {
        Self::simd2_4x4()
    }
}

impl UnitTiming {
    /// The synthesised 4×4 design point: 4-stage pipeline (operand read,
    /// combine, reduce tree, accumulate/writeback), fully pipelined.
    pub fn simd2_4x4() -> Self {
        Self {
            tile_side: 4,
            latency_cycles: 4,
            initiation_interval: 1,
        }
    }

    /// The baseline MMA unit — identical timing by design (§6.1).
    pub fn mma_4x4() -> Self {
        Self::simd2_4x4()
    }

    /// Latency of one tile operation for the given op. Identical for all
    /// nine ops — the invariant this type exists to express.
    pub fn op_latency(&self, _op: OpKind) -> u32 {
        self.latency_cycles
    }

    /// `⊗` lane operations (MACs or the op's equivalent) retired per
    /// cycle once the pipeline is full: `side³` per tile op.
    pub fn lane_ops_per_cycle(&self) -> f64 {
        let per_tile = (self.tile_side * self.tile_side * self.tile_side) as f64;
        per_tile / self.initiation_interval as f64
    }

    /// Cycles to stream `n_tile_ops` back-to-back tile operations through
    /// one unit (pipeline fill + drain).
    pub fn cycles_for(&self, n_tile_ops: usize) -> u64 {
        if n_tile_ops == 0 {
            return 0;
        }
        self.latency_cycles as u64 + (n_tile_ops as u64 - 1) * self.initiation_interval as u64
    }

    /// Cycles for a 16×16 ISA-level `simd2.mmo`, which the unit executes
    /// as `(16/4)³ = 64` pipelined 4×4 tile steps.
    pub fn cycles_for_isa_mmo(&self) -> u64 {
        let steps_per_dim = 16 / self.tile_side;
        self.cycles_for(steps_per_dim * steps_per_dim * steps_per_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn all_ops_share_one_latency() {
        let t = UnitTiming::simd2_4x4();
        let base = t.op_latency(OpKind::PlusMul);
        for op in ALL_OPS {
            assert_eq!(t.op_latency(op), base, "{op}");
        }
    }

    #[test]
    fn simd2_matches_mma_timing() {
        assert_eq!(UnitTiming::simd2_4x4(), UnitTiming::mma_4x4());
    }

    #[test]
    fn pipelining_math() {
        let t = UnitTiming::simd2_4x4();
        assert_eq!(t.cycles_for(0), 0);
        assert_eq!(t.cycles_for(1), 4);
        assert_eq!(t.cycles_for(10), 4 + 9);
        assert_eq!(t.lane_ops_per_cycle(), 64.0);
    }

    #[test]
    fn isa_mmo_is_64_tile_steps() {
        let t = UnitTiming::simd2_4x4();
        assert_eq!(t.cycles_for_isa_mmo(), t.cycles_for(64));
    }
}
