//! The SIMD² matrix unit: functional tile datapath and hardware cost
//! models.
//!
//! A SIMD² unit (paper Figure 4(c)/Figure 5) is a conventional
//! matrix-multiply-accumulate (MMA) unit whose `⊗` ALU array and `⊕`
//! reduction tree are configurable by the instruction opcode. This crate
//! models that unit at two levels:
//!
//! * [`mod@unit`] — a bit-accurate *functional* model: executes any of the nine
//!   operations on operand tiles with the fp16-in / fp32-accumulate data
//!   path, including a baseline [`unit::MmaUnit`] that (like a real Tensor
//!   Core) only supports plus-mul,
//! * [`area`] — the synthesis-calibrated area/power model regenerating
//!   Table 5 (combined unit, standalone accelerators, precision and shape
//!   scaling, die-level overhead),
//! * [`timing`] — instruction latency/throughput: SIMD² instructions are
//!   provisioned to match MMA latency (paper §3.2/§6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod timing;
pub mod unit;

pub use area::{AreaModel, DieModel, PowerModel};
pub use unit::{tree_reduce, MmaUnit, PrecisionMode, Simd2Unit, UnsupportedOpError};
