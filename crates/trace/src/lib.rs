//! `simd2-trace`: zero-dependency observability facade for the SIMD2
//! reproduction stack — spans, counters, histograms, pluggable sinks.
//!
//! # Design
//!
//! Every instrumented subsystem holds a [`Tracer`], a cheap clonable
//! handle wrapping `Option<Arc<dyn Sink>>`:
//!
//! - **Disabled** (`Tracer::off()`, the default everywhere): emitting
//!   an event is one `Option` check on an inline field — no allocation,
//!   no locking, no atomics. The *global* arming gate ([`armed`]) that
//!   [`Tracer::current`] consults is a single relaxed atomic load, the
//!   cost quoted in DESIGN.md §9.
//! - **Enabled** (`Tracer::to(sink)`): events are forwarded to the sink
//!   with their fields as a borrowed stack slice. [`NullSink`] drops
//!   them, [`RingSink`] buffers them for tests, [`JsonLinesSink`]
//!   streams them to `results/telemetry/*.jsonl`.
//!
//! Tracers are deliberately *per-instance* rather than thread-local or
//! process-global: `cargo test` runs tests on concurrent threads, and
//! the telemetry test-suite asserts **exact** equality between
//! span-derived totals and `OpCount`/`RecoveryStats` — which only holds
//! if each test's events land in its own sink. Process-global state is
//! limited to the monotonic [`Counter`]/[`Histogram`] registry (whose
//! totals are only ever asserted `>=` across tests) and the [`arm`]
//! flag used by binaries that want ambient tracing.
//!
//! # Span vocabulary
//!
//! The stack emits a small fixed vocabulary, listed in [`span`]:
//! `mmo` / `tile_panel` spans from the tiled backend, `recovery` and
//! `fault` instants from the resilience layer, `pipeline` instants from
//! the GPU timing model, `app_phase` instants from the application
//! suite. Field keys are documented on each emitter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;

pub use event::{field, json_line_into, Event, EventKind, Field, Value};
pub use metrics::{
    snapshot, snapshot_json, Counter, CounterSnapshot, Histogram, HistogramSnapshot,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use sink::{FanoutSink, JsonLinesSink, NullSink, RingSink, Sink, DEFAULT_RING_CAPACITY};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Names of the spans and instant events the SIMD2 stack emits.
pub mod span {
    /// One matrix-level mmo through a backend (`begin`/`end` span).
    pub const MMO: &str = "mmo";
    /// One worker's row-panel slab within an mmo (`end`-only span
    /// summary; sequential runs emit exactly one covering the grid).
    pub const TILE_PANEL: &str = "tile_panel";
    /// A resilience-layer event (`instant`, keyed by a `stage` field:
    /// `verified`, `detection`, `retry`, `retry_success`, `fallback`,
    /// `worker_panic`, `panic_recovery`).
    pub const RECOVERY: &str = "recovery";
    /// A fault-injector event (`instant`, `stage` = `injected` or
    /// `dropped`).
    pub const FAULT: &str = "fault";
    /// One simulated SM pipeline drain (`instant`).
    pub const PIPELINE: &str = "pipeline";
    /// One application benchmark phase (`instant`).
    pub const APP_PHASE: &str = "app_phase";
    /// One recorded-plan execution through the plan executor
    /// (`begin`/`end` span; the end event carries step/slot totals).
    pub const PLAN: &str = "plan";
    /// One dispatch wave of independent plan steps (`end`-only span
    /// summary; sequential replays emit one wave per step).
    pub const PLAN_WAVE: &str = "plan_wave";
    /// A serving-layer job lifecycle event (`instant`, keyed by a
    /// `stage` field: `admitted`, `rejected_backpressure`,
    /// `rejected_quota`, `rejected_malformed`, `completed`, `expired`,
    /// `failed`, `recovered`, `cache_hit`). Every event carries numeric
    /// `tenant` and `job` fields, so per-tenant counters can be derived
    /// exactly from the event stream.
    pub const SERVE: &str = "serve";
}

/// Process-global arming gate consulted by [`Tracer::current`].
static ARMED: AtomicBool = AtomicBool::new(false);
/// The ambient sink installed by [`arm`].
static AMBIENT: OnceLock<Mutex<Option<Arc<dyn Sink>>>> = OnceLock::new();

fn ambient() -> &'static Mutex<Option<Arc<dyn Sink>>> {
    AMBIENT.get_or_init(|| Mutex::new(None))
}

/// Installs `sink` as the ambient process-wide sink and arms tracing,
/// so [`Tracer::current`] starts emitting. Intended for binaries
/// (benches, apps); tests should pass explicit tracers instead.
pub fn arm(sink: Arc<dyn Sink>) {
    *ambient().lock().unwrap() = Some(sink);
    ARMED.store(true, Ordering::Release);
}

/// Disarms ambient tracing and drops the ambient sink.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *ambient().lock().unwrap() = None;
}

/// Whether ambient tracing is armed — one relaxed atomic load, the
/// entire disabled-path cost for code using [`Tracer::current`].
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// A cheap, clonable handle instrumented code emits events through.
///
/// `Tracer::off()` (the `Default`) drops everything at the cost of one
/// `Option` check; `Tracer::to(sink)` forwards to the sink. Clones
/// share the sink, so a parallel backend hands each worker a clone and
/// all events land in one place.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn Sink>>,
}

impl Tracer {
    /// A disabled tracer: every emit is a no-op.
    pub const fn off() -> Self {
        Self { sink: None }
    }

    /// A tracer forwarding to `sink`.
    pub fn to(sink: Arc<dyn Sink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// The ambient tracer: forwards to the sink installed by [`arm`],
    /// or disabled if not armed. Costs one relaxed atomic load when
    /// disarmed.
    pub fn current() -> Self {
        if !armed() {
            return Self::off();
        }
        Self {
            sink: ambient().lock().unwrap().clone(),
        }
    }

    /// Whether events emitted through this tracer go anywhere.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event; `fields` stays on the caller's stack.
    #[inline]
    pub fn emit(&self, span: &'static str, kind: EventKind, fields: &[Field]) {
        if let Some(sink) = &self.sink {
            sink.record(span, kind, fields);
        }
    }

    /// Emits a span-begin event.
    #[inline]
    pub fn begin(&self, span: &'static str, fields: &[Field]) {
        self.emit(span, EventKind::Begin, fields);
    }

    /// Emits a span-end event (carrying the span's summary fields).
    #[inline]
    pub fn end(&self, span: &'static str, fields: &[Field]) {
        self.emit(span, EventKind::End, fields);
    }

    /// Emits an instant event.
    #[inline]
    pub fn instant(&self, span: &'static str, fields: &[Field]) {
        self.emit(span, EventKind::Instant, fields);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_emits_nothing_and_is_disabled() {
        let t = Tracer::off();
        assert!(!t.enabled());
        // No sink to observe; just exercise the no-op path.
        t.begin(span::MMO, &[field("op", "min-plus")]);
        t.end(span::MMO, &[]);
        t.instant(span::FAULT, &[]);
    }

    #[test]
    fn ring_tracer_captures_in_order() {
        let ring = RingSink::shared();
        let t = Tracer::to(ring.clone());
        assert!(t.enabled());
        t.begin(span::MMO, &[field("op", "max-plus")]);
        t.end(span::MMO, &[field("tile_mmos", 27u64)]);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].str_value("op"), Some("max-plus"));
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].u64("tile_mmos"), Some(27));
    }

    #[test]
    fn clones_share_the_sink() {
        let ring = RingSink::shared();
        let t = Tracer::to(ring.clone());
        let t2 = t.clone();
        t.instant(span::RECOVERY, &[field("stage", "retry")]);
        t2.instant(span::RECOVERY, &[field("stage", "fallback")]);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn ambient_arm_disarm_round_trip() {
        // Serialize against other tests touching the ambient state.
        let ring = RingSink::shared();
        arm(ring.clone());
        assert!(armed());
        Tracer::current().instant(span::APP_PHASE, &[field("app", "bfs")]);
        assert_eq!(ring.len(), 1);
        disarm();
        assert!(!armed());
        assert!(!Tracer::current().enabled());
    }
}
