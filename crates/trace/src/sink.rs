//! Pluggable event sinks.
//!
//! A [`Sink`] receives every event a [`crate::Tracer`] emits. The facade
//! hands sinks a *borrowed* field slice so the disabled/`NullSink` path
//! never allocates; sinks that retain events ([`RingSink`]) or format
//! them ([`JsonLinesSink`]) pay for their own storage.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{json_line_into, Event, EventKind, Field};

/// Receives telemetry events. Implementations must be `Send + Sync`:
/// one sink instance is shared by every worker thread of a parallel
/// backend.
pub trait Sink: Send + Sync {
    /// Handles one event. `fields` is borrowed from the emitter's stack;
    /// copy it if the sink retains the event.
    fn record(&self, span: &'static str, kind: EventKind, fields: &[Field]);
}

/// Discards every event. With this sink (or no sink at all) the
/// per-event cost in instrumented code is one relaxed atomic load on
/// the `Tracer::enabled` fast path — no allocation, no locking.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _span: &'static str, _kind: EventKind, _fields: &[Field]) {}
}

/// A bounded in-memory event buffer for tests: keeps the most recent
/// `capacity` events and counts evictions in `dropped`.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

/// Default [`RingSink`] capacity — large enough for every test in the
/// repo to capture a full run without eviction.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl Default for RingSink {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Shared default-capacity ring, ready to hand to `Tracer::to`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Number of events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.lock().unwrap().is_empty()
    }

    /// Drops all buffered events and resets the eviction counter.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// The buffered events rendered as JSON lines (one event per line,
    /// trailing newline) — the exact format the snapshot tests pin.
    pub fn json_lines(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::new();
        for e in events.iter() {
            json_line_into(&mut out, e.span, e.kind, &e.fields);
            out.push('\n');
        }
        out
    }
}

impl Sink for RingSink {
    fn record(&self, span: &'static str, kind: EventKind, fields: &[Field]) {
        let mut events = self.events.lock().unwrap();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(Event::new(span, kind, fields));
    }
}

/// Streams events to a file as JSON lines (machine-readable export,
/// conventionally under `results/telemetry/`). Parent directories are
/// created on open; lines are buffered and flushed on drop (or
/// explicitly via [`JsonLinesSink::flush`]).
#[derive(Debug)]
pub struct JsonLinesSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Creates (truncating) the JSONL file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Self {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, span: &'static str, kind: EventKind, fields: &[Field]) {
        let mut line = String::with_capacity(48 + 16 * fields.len());
        json_line_into(&mut line, span, kind, fields);
        line.push('\n');
        // Telemetry export is best-effort: a full disk must not take the
        // computation down with it.
        let _ = self.writer.lock().unwrap().write_all(line.as_bytes());
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Broadcasts each event to every inner sink, in order. Lets a bench
/// keep a [`RingSink`] for its report while also exporting a
/// [`JsonLinesSink`] artifact from the same run.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, span: &'static str, kind: EventKind, fields: &[Field]) {
        for sink in &self.sinks {
            sink.record(span, kind, fields);
        }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingSink::with_capacity(2);
        for i in 0..5u64 {
            ring.record("mmo", EventKind::Instant, &[field("i", i)]);
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.len(), 2);
        let events = ring.events();
        assert_eq!(events[0].u64("i"), Some(3));
        assert_eq!(events[1].u64("i"), Some(4));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_json_lines_match_event_json() {
        let ring = RingSink::default();
        ring.record("mmo", EventKind::Begin, &[field("op", "min-plus")]);
        ring.record("mmo", EventKind::End, &[field("tile_mmos", 8u64)]);
        let expected: String = ring.events().iter().map(|e| e.json_line() + "\n").collect();
        assert_eq!(ring.json_lines(), expected);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("simd2-trace-test");
        let path = dir.join("events.jsonl");
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.record("fault", EventKind::Instant, &[field("stage", "injected")]);
        sink.record("fault", EventKind::Instant, &[field("stage", "dropped")]);
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"span\":\"fault\",\"kind\":\"instant\",\"stage\":\"injected\"}\n\
             {\"span\":\"fault\",\"kind\":\"instant\",\"stage\":\"dropped\"}\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = RingSink::shared();
        let b = RingSink::shared();
        let fan = FanoutSink::new(vec![a.clone() as Arc<dyn Sink>, b.clone() as Arc<dyn Sink>]);
        fan.record("recovery", EventKind::Instant, &[field("stage", "retry")]);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
