//! Process-global atomic counters and fixed-bucket histograms.
//!
//! Metrics are `static`s registered by name on first use:
//!
//! ```
//! use simd2_trace::Counter;
//! static TILE_MMOS: Counter = Counter::new("core.tile_mmos");
//! TILE_MMOS.add(64);
//! assert!(TILE_MMOS.get() >= 64);
//! ```
//!
//! Registration appends the metric to a global `Mutex<Vec<&'static _>>`
//! exactly once per process (guarded by a relaxed flag, so the steady-
//! state hot path is one atomic load + one `fetch_add` and never takes
//! the lock). [`snapshot`] / [`snapshot_json`] enumerate everything
//! ever touched. Counters are process-wide and monotonic; tests that
//! need isolation assert on per-`Tracer` sink events instead (see the
//! crate docs).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Global registry of every counter touched so far.
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
/// Global registry of every histogram touched so far.
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named, process-global, monotonically increasing counter.
///
/// Designed to live in a `static`; `add` is one relaxed load (the
/// registration guard) plus one relaxed `fetch_add`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name` (call in a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registered name.
    pub fn name(&'static self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        let mut reg = COUNTERS.lock().unwrap();
        // Re-check under the lock so racing first-bumps insert once.
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }

    /// Adds `n` to the counter (registering it on first use).
    pub fn add(&'static self, n: u64) {
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&'static self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: powers of two from 1 up to
/// `2^62`, plus a catch-all final bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A named, process-global histogram with fixed power-of-two buckets.
///
/// `record(v)` lands `v` in bucket `64 - leading_zeros(v)` — bucket 0
/// holds zeros, bucket 1 holds {1}, bucket 2 holds {2, 3}, and so on —
/// so the bucket layout needs no configuration and merging is trivial.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram named `name` (call in a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registered name.
    pub fn name(&'static self) -> &'static str {
        self.name
    }

    /// Index of the bucket value `v` falls in.
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        let mut reg = HISTOGRAMS.lock().unwrap();
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }

    /// Records one observation of `v`.
    pub fn record(&'static self, v: u64) {
        self.register();
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&'static self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    pub fn sum(&'static self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the non-empty buckets as `(inclusive_bound, count)`.
    pub fn buckets(&'static self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_bound(i), n))
            })
            .collect()
    }
}

/// One counter's name and value, as returned by [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram's summary, as returned by [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty `(inclusive_bound, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time view of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters touched so far.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms touched so far.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots every registered counter and histogram, sorted by name.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<CounterSnapshot> = COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterSnapshot {
            name: c.name,
            value: c.value.load(Ordering::Relaxed),
        })
        .collect();
    counters.sort_by_key(|c| c.name);

    let mut histograms: Vec<HistogramSnapshot> = HISTOGRAMS
        .lock()
        .unwrap()
        .iter()
        .map(|h| HistogramSnapshot {
            name: h.name,
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            buckets: h.buckets(),
        })
        .collect();
    histograms.sort_by_key(|h| h.name);

    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Renders [`snapshot`] as a single JSON object:
/// `{"counters":{name:value,...},"histograms":{name:{...},...}}`.
pub fn snapshot_json() -> String {
    use std::fmt::Write as _;
    let snap = snapshot();
    let mut out = String::from("{\"counters\":{");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name, c.value);
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            h.name, h.count, h.sum
        );
        for (j, (bound, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bound},{n}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("test.metrics.counter");
    static TEST_HIST: Histogram = Histogram::new("test.metrics.hist");

    #[test]
    fn counter_accumulates_and_registers_once() {
        TEST_COUNTER.add(3);
        TEST_COUNTER.add(4);
        assert!(TEST_COUNTER.get() >= 7);
        let snap = snapshot();
        let matches: Vec<_> = snap
            .counters
            .iter()
            .filter(|c| c.name == "test.metrics.counter")
            .collect();
        assert_eq!(matches.len(), 1, "registered exactly once");
        assert!(matches[0].value >= 7);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);

        TEST_HIST.record(0);
        TEST_HIST.record(5);
        TEST_HIST.record(5);
        assert!(TEST_HIST.count() >= 3);
        assert!(TEST_HIST.sum() >= 10);
        let buckets = TEST_HIST.buckets();
        assert!(buckets.iter().any(|&(bound, n)| bound == 0 && n >= 1));
        assert!(buckets.iter().any(|&(bound, n)| bound == 7 && n >= 2));
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        TEST_COUNTER.add(1);
        TEST_HIST.record(2);
        let json = snapshot_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.ends_with("}}"));
        assert!(json.contains("\"test.metrics.counter\":"));
        assert!(json.contains("\"test.metrics.hist\":{\"count\":"));
    }
}
