//! Structured telemetry events and their JSON-lines serialization.
//!
//! An [`Event`] is a span marker (begin/end) or an instant observation,
//! carrying a flat list of key/value [`Field`]s. Keys and span names are
//! `&'static str` so the emitting hot path never allocates; values are
//! small [`Value`] scalars for the same reason. Sinks that *retain*
//! events own-copy the borrowed field slice into an `Event`.
//!
//! The serialized form is one JSON object per line (`json_line`), the
//! format [`crate::JsonLinesSink`] writes and the snapshot tests pin.

use std::fmt::Write as _;

/// A telemetry field value: a small copyable scalar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (span stages, op names, labels).
    Str(&'static str),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// One key/value pair attached to an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    /// Field name (static so emission never allocates).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

/// Builds a [`Field`] from anything convertible to a [`Value`].
pub fn field(key: &'static str, value: impl Into<Value>) -> Field {
    Field {
        key,
        value: value.into(),
    }
}

/// Where in a span's lifetime an event sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span entry.
    Begin,
    /// Span exit (carries the span's summary fields).
    End,
    /// A point observation with no duration.
    Instant,
}

impl EventKind {
    /// The serialized label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// An owned telemetry event, as retained by [`crate::RingSink`].
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Span (or instant-event) name, e.g. `"mmo"`.
    pub span: &'static str,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Structured payload.
    pub fields: Vec<Field>,
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes one `span`/`kind`/`fields` triple as a JSON object on a
/// single line — shared by [`Event::json_line`] and the streaming
/// [`crate::JsonLinesSink`] (which formats borrowed fields without ever
/// materializing an [`Event`]).
pub fn json_line_into(out: &mut String, span: &str, kind: EventKind, fields: &[Field]) {
    out.push_str("{\"span\":\"");
    escape_into(out, span);
    out.push_str("\",\"kind\":\"");
    out.push_str(kind.label());
    out.push('"');
    for f in fields {
        out.push_str(",\"");
        escape_into(out, f.key);
        out.push_str("\":");
        match f.value {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                // `{:?}` prints the shortest representation that
                // round-trips, which is deterministic — snapshot-safe.
                let _ = write!(out, "{v:?}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => {
                out.push('"');
                escape_into(out, v);
                out.push('"');
            }
        }
    }
    out.push('}');
}

impl Event {
    /// Builds an owned event from a borrowed field slice.
    pub fn new(span: &'static str, kind: EventKind, fields: &[Field]) -> Self {
        Self {
            span,
            kind,
            fields: fields.to_vec(),
        }
    }

    /// The value of field `key`, if present.
    pub fn value(&self, key: &str) -> Option<Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| f.value)
    }

    /// The field `key` as a `u64` (`None` if absent or not an integer).
    pub fn u64(&self, key: &str) -> Option<u64> {
        match self.value(key)? {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The field `key` as an `f64` (integers widen).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.value(key)? {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The field `key` as a static string.
    pub fn str_value(&self, key: &str) -> Option<&'static str> {
        match self.value(key)? {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the event is `span` with a `"stage"` field equal to
    /// `stage` — the common shape of recovery/fault instant events.
    pub fn is_stage(&self, span: &str, stage: &str) -> bool {
        self.span == span && self.str_value("stage") == Some(stage)
    }

    /// One-line JSON rendering (no trailing newline).
    pub fn json_line(&self) -> String {
        let mut out = String::with_capacity(48 + 16 * self.fields.len());
        json_line_into(&mut out, self.span, self.kind, &self.fields);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_renders_every_value_kind() {
        let e = Event::new(
            "mmo",
            EventKind::End,
            &[
                field("op", "min-plus"),
                field("tile_mmos", 64u64),
                field("delta", -3i64),
                field("seconds", 0.25f64),
                field("nan", f64::NAN),
                field("ok", true),
            ],
        );
        assert_eq!(
            e.json_line(),
            "{\"span\":\"mmo\",\"kind\":\"end\",\"op\":\"min-plus\",\
             \"tile_mmos\":64,\"delta\":-3,\"seconds\":0.25,\"nan\":null,\"ok\":true}"
        );
    }

    #[test]
    fn field_accessors() {
        let e = Event::new(
            "fault",
            EventKind::Instant,
            &[
                field("stage", "injected"),
                field("site", 42u64),
                field("x", 1.5f64),
            ],
        );
        assert_eq!(e.u64("site"), Some(42));
        assert_eq!(e.str_value("stage"), Some("injected"));
        assert_eq!(e.f64("x"), Some(1.5));
        assert_eq!(e.f64("site"), Some(42.0));
        assert_eq!(e.u64("missing"), None);
        assert!(e.is_stage("fault", "injected"));
        assert!(!e.is_stage("fault", "dropped"));
        assert!(!e.is_stage("recovery", "injected"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        json_line_into(
            &mut out,
            "weird\"span",
            EventKind::Instant,
            &[field("k", "a\\b\nc")],
        );
        assert_eq!(
            out,
            "{\"span\":\"weird\\\"span\",\"kind\":\"instant\",\"k\":\"a\\\\b\\nc\"}"
        );
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-1i64), Value::I64(-1));
        assert_eq!(Value::from(false), Value::Bool(false));
    }
}
