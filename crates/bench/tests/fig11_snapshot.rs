//! Pins the Figure-11 report byte-for-byte against the committed golden
//! copy at `results/fig11_apps.txt`.
//!
//! The figure is pure arithmetic over the analytic timing model, so any
//! diff means the model (or the table renderer) changed observable
//! numbers. Re-bless deliberately with
//! `SIMD2_BLESS=1 cargo test -p simd2-bench --test fig11_snapshot`.

use simd2_apps::AppTiming;
use simd2_bench::fig11;
use simd2_gpu::Gpu;
use simd2_trace::RingSink;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/fig11_apps.txt");

#[test]
fn fig11_report_matches_committed_golden() {
    let ring = RingSink::shared();
    let model = AppTiming::new(Gpu::default()).with_tracer(simd2_trace::Tracer::to(ring.clone()));
    let got = fig11::render(&model, &ring);
    if std::env::var_os("SIMD2_BLESS").is_some() {
        std::fs::write(GOLDEN, &got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect("read golden fig11 report");
    assert!(
        got == want,
        "Figure-11 report drifted from results/fig11_apps.txt.\n\
         If the change is intentional, re-bless with SIMD2_BLESS=1.\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}
