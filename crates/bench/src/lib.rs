//! Experiment harness: regenerates every table and figure of the SIMD²
//! paper.
//!
//! One binary per experiment (see `src/bin/`); this library holds the
//! shared table-rendering and result-recording helpers. Criterion
//! micro-benchmarks over the functional kernels live under `benches/`.
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table4_apps`    | Table 4 (application/baseline/input inventory) |
//! | `table5_area`    | Table 5(a)(b)(c) + §6.1 power & die overheads |
//! | `fig09_micro`    | Figure 9 (square microbenchmarks) |
//! | `fig10_nonsquare`| Figure 10 (non-square microbenchmarks) |
//! | `fig11_apps`     | Figure 11 (application speedups, 3 configs) |
//! | `fig12_ablation` | Figure 12 (algorithm/convergence ablation) |
//! | `fig13_sparse`   | Figure 13 (sparse SIMD² units) |
//! | `fig14_crossover`| Figure 14 (spGEMM vs dense crossover + OOM) |
//! | `validate_apps`  | §5.1 correctness validation sweep (plan replay cross-checked) |
//! | `throughput`     | host engine throughput: fused kernels vs scalar baseline, thread sweep (`BENCH_throughput.json`) |
//! | `plan_smoke`     | plan-IR smoke: record + replay every Figure-11 app on every backend |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig11;
pub mod report;

pub use report::Table;
