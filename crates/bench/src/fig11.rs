//! Figure-11 sweep and rendering, shared by the `fig11_apps` binary and
//! the snapshot test that pins its stdout.
//!
//! The figure is built from the timing model's `app_phase` telemetry
//! events (one instant per evaluation, captured in a [`RingSink`])
//! rather than from the returned values — the printed table is a view
//! of the event stream. Evaluation order is deterministic, so the
//! rendered text reproduces bit for bit; the committed golden copy
//! lives at `results/fig11_apps.txt`.

use std::fmt::Write as _;

use simd2_apps::{AppKind, AppTiming, Config};
use simd2_gpu::geomean;
use simd2_matrix::gen::InputScale;
use simd2_trace::{span, Event, RingSink};

use crate::report::fmt_speedup;
use crate::Table;

/// Runs one `(app, scale)` sweep through the model and hands back the
/// `app_phase` events it emitted, in evaluation order.
///
/// # Panics
///
/// Panics if the model emits an event outside the `app_phase` span.
pub fn sweep(model: &AppTiming, ring: &RingSink, config: Config) -> Vec<Event> {
    ring.clear();
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let _ = model.speedup(app, app.dimension(scale), config);
        }
    }
    let events = ring.events();
    assert!(
        events.iter().all(|e| e.span == span::APP_PHASE),
        "unexpected span in the timing model's event stream"
    );
    events
}

/// Renders the full Figure-11 report — both configuration tables with
/// their GMEAN rows, plus the peak-speedup line quoted in the abstract —
/// exactly as the `fig11_apps` binary prints it.
///
/// # Panics
///
/// Panics if the event stream does not carry one `speedup` instant per
/// `(app, scale, config)` evaluation.
pub fn render(model: &AppTiming, ring: &RingSink) -> String {
    let mut out = String::new();
    for config in [Config::Simd2Units, Config::Simd2CudaCores] {
        let events = sweep(model, ring, config);
        let mut t = Table::new(
            format!("Figure 11: speedup of `{}` over baseline", config.label()),
            &["app", "small", "medium", "large"],
        );
        let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut it = events.iter();
        for app in AppKind::all() {
            let mut row = vec![app.spec().label.to_owned()];
            for col in &mut per_scale {
                let e = it.next().expect("one event per evaluation");
                assert_eq!(e.str_value("app"), Some(app.spec().label));
                assert_eq!(e.str_value("config"), Some(config.label()));
                let s = e.f64("speedup").expect("speedup field");
                col.push(s);
                row.push(fmt_speedup(s));
            }
            t.row(&row);
        }
        let mut gm = vec!["GMEAN".to_owned()];
        for col in &per_scale {
            gm.push(fmt_speedup(geomean(col)));
        }
        t.row(&gm);
        out.push_str(&t.render());
        out.push('\n');
    }
    // Peak speedup quoted in the abstract — again read off the events.
    let events = sweep(model, ring, Config::Simd2Units);
    let mut best = (0.0f64, String::new());
    let mut it = events.iter();
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let e = it.next().expect("one event per evaluation");
            let s = e.f64("speedup").expect("speedup field");
            if s > best.0 {
                best = (s, format!("{} / {}", app.spec().label, scale.label()));
            }
        }
    }
    writeln!(
        out,
        "Peak SIMD2-unit speedup: {} ({})",
        fmt_speedup(best.0),
        best.1
    )
    .expect("writing to a String is infallible");
    out
}
