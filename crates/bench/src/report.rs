//! Plain-text table rendering for the experiment harnesses.

use std::fmt::Write as _;

/// A simple left-aligned text table with a title, printed in the style the
/// paper's tables/figure captions use.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                s.push_str(c);
                s.extend(std::iter::repeat_n(' ', pad));
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as a JSON document (`{"title", "rows": [{...}]}`)
    /// with header cells as keys — hand-rolled to keep the dependency set
    /// minimal.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":\"{}\",\"rows\":[", esc(&self.title));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (h, c)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", esc(h), esc(c));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders and prints to stdout — as JSON when the `SIMD2_JSON`
    /// environment variable is set (machine-readable harness output),
    /// as an aligned text table otherwise.
    pub fn print(&self) {
        if std::env::var_os("SIMD2_JSON").is_some() {
            println!("{}", self.render_json());
        } else {
            print!("{}", self.render());
        }
    }
}

/// Formats a speedup factor the way the paper quotes them (`12.34x`).
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats seconds with an auto-scaled unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1.0e-3 {
        format!("{:.3} ms", s * 1.0e3)
    } else {
        format!("{:.1} us", s * 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name    value"));
        assert!(s.contains("longer  2.5"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("J \"quoted\"", &["app", "speedup"]);
        t.row(&["APSP".into(), "12.3x".into()]);
        t.row(&["line\nbreak".into(), "1x".into()]);
        let j = t.render_json();
        assert!(j.starts_with("{\"title\":\"J \\\"quoted\\\"\""), "{j}");
        assert!(
            j.contains("{\"app\":\"APSP\",\"speedup\":\"12.3x\"}"),
            "{j}"
        );
        assert!(j.contains("line\\nbreak"), "{j}");
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(12.345), "12.35x");
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(0.0025), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 us");
    }
}
