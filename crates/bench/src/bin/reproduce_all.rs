//! Runs every experiment harness in sequence, teeing each one's output to
//! `results/<name>.txt` — one command to regenerate the whole evaluation.
//!
//! ```text
//! cargo run --release -p simd2-bench --bin reproduce_all
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const HARNESSES: &[&str] = &[
    "table4_apps",
    "table5_area",
    "fig09_micro",
    "fig10_nonsquare",
    "fig11_apps",
    "fig12_ablation",
    "fig13_sparse",
    "fig14_crossover",
    "ablate_sharing",
    "ablate_fused_vector",
    "ablate_tile_shape",
    "ablate_precision",
    "ablate_standalone",
    "validate_apps",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let bin_dir = me.parent().expect("exe has a parent dir").to_path_buf();
    let out_dir = PathBuf::from("results");
    fs::create_dir_all(&out_dir).expect("create results/ directory");
    let mut failures = 0usize;
    for name in HARNESSES {
        let exe = bin_dir.join(name);
        if !exe.exists() {
            eprintln!(
                "skipping {name}: {} not built (build with --bins)",
                exe.display()
            );
            failures += 1;
            continue;
        }
        print!("running {name:<22}… ");
        let output = Command::new(&exe).output().expect("spawn harness");
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, &output.stdout).expect("write result file");
        if output.status.success() {
            println!("ok -> {}", path.display());
        } else {
            failures += 1;
            println!("FAILED (status {:?})", output.status.code());
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        }
    }
    if failures > 0 {
        eprintln!("{failures} harness(es) failed or were missing");
        std::process::exit(1);
    }
    println!("\nall experiments regenerated under results/");
}
