//! Plan-IR smoke sweep: records every Figure-11 application as a
//! [`Plan`](simd2::Plan) and replays it on every backend the lowering
//! pipeline supports.
//!
//! For each app at a host-tractable scale this checks, end to end:
//!
//! 1. the recorded run validates against the baseline oracle
//!    ([`AppRun::passed`]);
//! 2. sequential replay on a fresh tiled backend reproduces the recorded
//!    work counters, and its per-step outputs match a batched replay on
//!    a 4-thread worker pool bit for bit;
//! 3. the replayed tile-MMO count equals the plan's static
//!    [`predicted_op_count`](simd2::Plan::predicted_op_count);
//! 4. the fp32 [`ReferenceBackend`] and the instruction-level
//!    [`IsaBackend`] lower the same plan without error;
//! 5. the standard pass pipeline's optimized plan replays bit-identically
//!    to the unoptimized sequential replay for *every* original step
//!    (read back through the [`OptimizedPlan`] remap), and the table
//!    reports steps before/after plus per-app merged/eliminated counts.
//!
//! Run via `SIMD2_PLAN_SMOKE=1 scripts/verify.sh` (or directly).

use simd2::backend::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::{OptimizedPlan, Parallelism, PassPipeline, PlanExecutor};
use simd2_apps::{harness, AppKind, AppRun};
use simd2_bench::Table;

const N: usize = 48;
const SEED: u64 = 42;

/// Runs the standard pipeline over the app's recorded plan and proves
/// the optimized replay reproduces every original step's bits through
/// the remap.
fn check_pipeline(app: AppKind, run: &AppRun, seq: &simd2::Replay) -> OptimizedPlan {
    let optimized = PassPipeline::standard().run(run.plan.clone());
    let mut opt_be = TiledBackend::new();
    let opt = PlanExecutor::new()
        .run_optimized(&optimized, &mut opt_be)
        .expect("optimized replay");
    assert_eq!(
        opt_be.op_count(),
        optimized.plan().predicted_op_count(),
        "{app:?}: optimized replay work"
    );
    for step in 0..run.plan.step_count() {
        let got = optimized
            .step_output(&opt, step)
            .unwrap_or_else(|| panic!("{app:?}: step {step} unreachable after optimization"));
        assert_eq!(
            got,
            seq.step_output(step),
            "{app:?}: optimized replay diverged at step {step}"
        );
    }
    optimized
}

fn check_app(app: AppKind) -> (AppRun, usize, u64, OptimizedPlan) {
    let mut rec_be = TiledBackend::new();
    let run = harness::run_app(&mut rec_be, app, N, SEED, ClosureAlgorithm::Leyzorek, true);
    assert!(run.passed(), "{app:?}: diff {} out of tolerance", run.diff);
    assert!(!run.plan.is_empty(), "{app:?}: empty plan");

    // Sequential replay reproduces the recorded work exactly.
    let mut seq_be = TiledBackend::new();
    let seq = PlanExecutor::new()
        .run(&run.plan, &mut seq_be)
        .expect("sequential replay");
    assert_eq!(seq_be.op_count(), rec_be.op_count(), "{app:?}: counters");

    // Static prediction agrees with the dynamic tiled count.
    let predicted = run.plan.predicted_op_count();
    assert_eq!(
        predicted.tile_mmos,
        seq_be.op_count().tile_mmos,
        "{app:?}: predicted_op_count"
    );

    // Batched replay through the worker pool does not change a bit.
    let mut bat_be = TiledBackend::with_parallelism(Parallelism::Threads(4));
    let bat = PlanExecutor::batched()
        .run(&run.plan, &mut bat_be)
        .expect("batched replay");
    assert_eq!(
        bat_be.op_count(),
        rec_be.op_count(),
        "{app:?}: batched counters"
    );
    for step in 0..run.plan.step_count() {
        assert_eq!(
            seq.step_output(step),
            bat.step_output(step),
            "{app:?}: batched replay diverged at step {step}"
        );
    }

    // The other lowerings accept the same plan (their numerics differ
    // from fp16, so only successful execution is asserted).
    PlanExecutor::new()
        .run(&run.plan, &mut ReferenceBackend::new())
        .expect("reference replay");
    PlanExecutor::new()
        .run(&run.plan, &mut IsaBackend::new())
        .expect("isa replay");

    let optimized = check_pipeline(app, &run, &seq);

    let waves = run.plan.waves().len();
    (run, waves, predicted.tile_mmos, optimized)
}

fn main() {
    let mut t = Table::new(
        format!("Plan smoke at n = {N}: record once, optimize, replay everywhere"),
        &[
            "app",
            "steps",
            "opt",
            "merged",
            "elim",
            "waves",
            "tile mmos",
            "diff",
            "verdict",
        ],
    );
    for app in AppKind::all() {
        let (run, waves, tile_mmos, optimized) = check_app(app);
        let report = optimized.report();
        t.row(&[
            app.spec().label.to_owned(),
            report.steps_before.to_string(),
            report.steps_after.to_string(),
            report.steps_merged.to_string(),
            report.steps_eliminated.to_string(),
            waves.to_string(),
            tile_mmos.to_string(),
            format!("{:.3e}", run.diff),
            "PASS".to_owned(),
        ]);
    }
    t.print();
}
