//! Plan-IR smoke sweep: records every Figure-11 application as a
//! [`Plan`](simd2::Plan) and replays it on every backend the lowering
//! pipeline supports.
//!
//! For each app at a host-tractable scale this checks, end to end:
//!
//! 1. the recorded run validates against the baseline oracle
//!    ([`AppRun::passed`]);
//! 2. sequential replay on a fresh tiled backend reproduces the recorded
//!    work counters, and its per-step outputs match a batched replay on
//!    a 4-thread worker pool bit for bit;
//! 3. the replayed tile-MMO count equals the plan's static
//!    [`predicted_op_count`](simd2::Plan::predicted_op_count);
//! 4. the fp32 [`ReferenceBackend`] and the instruction-level
//!    [`IsaBackend`] lower the same plan without error.
//!
//! Run via `SIMD2_PLAN_SMOKE=1 scripts/verify.sh` (or directly).

use simd2::backend::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::{Parallelism, PlanExecutor};
use simd2_apps::{harness, AppKind, AppRun};
use simd2_bench::Table;

const N: usize = 48;
const SEED: u64 = 42;

fn check_app(app: AppKind) -> (AppRun, usize, u64) {
    let mut rec_be = TiledBackend::new();
    let run = harness::run_app(&mut rec_be, app, N, SEED, ClosureAlgorithm::Leyzorek, true);
    assert!(run.passed(), "{app:?}: diff {} out of tolerance", run.diff);
    assert!(!run.plan.is_empty(), "{app:?}: empty plan");

    // Sequential replay reproduces the recorded work exactly.
    let mut seq_be = TiledBackend::new();
    let seq = PlanExecutor::new()
        .run(&run.plan, &mut seq_be)
        .expect("sequential replay");
    assert_eq!(seq_be.op_count(), rec_be.op_count(), "{app:?}: counters");

    // Static prediction agrees with the dynamic tiled count.
    let predicted = run.plan.predicted_op_count();
    assert_eq!(
        predicted.tile_mmos,
        seq_be.op_count().tile_mmos,
        "{app:?}: predicted_op_count"
    );

    // Batched replay through the worker pool does not change a bit.
    let mut bat_be = TiledBackend::with_parallelism(Parallelism::Threads(4));
    let bat = PlanExecutor::batched()
        .run(&run.plan, &mut bat_be)
        .expect("batched replay");
    assert_eq!(
        bat_be.op_count(),
        rec_be.op_count(),
        "{app:?}: batched counters"
    );
    for step in 0..run.plan.step_count() {
        assert_eq!(
            seq.step_output(step),
            bat.step_output(step),
            "{app:?}: batched replay diverged at step {step}"
        );
    }

    // The other lowerings accept the same plan (their numerics differ
    // from fp16, so only successful execution is asserted).
    PlanExecutor::new()
        .run(&run.plan, &mut ReferenceBackend::new())
        .expect("reference replay");
    PlanExecutor::new()
        .run(&run.plan, &mut IsaBackend::new())
        .expect("isa replay");

    let waves = run.plan.waves().len();
    (run, waves, predicted.tile_mmos)
}

fn main() {
    let mut t = Table::new(
        format!("Plan smoke at n = {N}: record once, replay everywhere"),
        &["app", "steps", "waves", "tile mmos", "diff", "verdict"],
    );
    for app in AppKind::all() {
        let (run, waves, tile_mmos) = check_app(app);
        t.row(&[
            app.spec().label.to_owned(),
            run.plan.step_count().to_string(),
            waves.to_string(),
            tile_mmos.to_string(),
            format!("{:.3e}", run.diff),
            "PASS".to_owned(),
        ]);
    }
    t.print();
}
