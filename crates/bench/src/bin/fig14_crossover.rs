//! Regenerates Figure 14: cuSPARSE-style spGEMM vs dense Tensor-Core GEMM
//! across sparsities and sizes, including the OOM wall at 16384.

use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::Gpu;
use simd2_sparse::model::{crossover_point, fig14_sizes, fig14_sparsities};

fn main() {
    let gpu = Gpu::default();
    let sparsities = fig14_sparsities();
    let mut header: Vec<String> = vec!["size".into()];
    header.extend(sparsities.iter().map(|s| format!("{:.2}%", s * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 14: spGEMM speedup over dense Tensor-Core GEMM (OOM = exceeds 10 GB)",
        &header_refs,
    );
    for n in fig14_sizes() {
        let mut row = vec![n.to_string()];
        for &s in &sparsities {
            let p = crossover_point(&gpu, n, s);
            row.push(match p.speedup() {
                Some(sp) => fmt_speedup(sp),
                None => "OOM".to_owned(),
            });
        }
        t.row(&row);
    }
    t.print();
    println!();
    println!(
        "Dense fp16-operand GEMM footprint at 32768^2: {:.1} GB (fits the 10 GB device)",
        (2.0 * 32768.0f64 * 32768.0 * 2.0 + 32768.0f64 * 32768.0 * 4.0) / 1.0e9
    );
}
