//! Ablation (Table 5(c) design choice): 4x4 vs 8x8 SIMD2 units, priced
//! on the cycle-level SM pipeline simulator and the area model — the
//! performance-per-area trade behind the paper's 4x4 design point.

use simd2_bench::Table;
use simd2_gpu::sim::{tile_mmo_program, SmPipeline};
use simd2_mxu::timing::UnitTiming;
use simd2_mxu::AreaModel;
use simd2_semiring::OpKind;

fn main() {
    let warps = 8usize;
    let k_tiles = 32usize;
    let programs: Vec<_> = (0..warps)
        .map(|_| tile_mmo_program(OpKind::MinPlus, k_tiles))
        .collect();
    let mut t = Table::new(
        format!("Tile-shape ablation: {warps} warps x {k_tiles} ISA mmos on one sub-core"),
        &[
            "unit",
            "cycles",
            "cycles/mmo",
            "SIMD2 util",
            "area (rel)",
            "perf/area",
        ],
    );
    let shapes = [
        ("4x4 (paper)", UnitTiming::simd2_4x4(), 4usize),
        (
            "8x8",
            UnitTiming {
                tile_side: 8,
                latency_cycles: 4,
                initiation_interval: 1,
            },
            8,
        ),
    ];
    let mut results = Vec::new();
    for (name, unit, side) in shapes {
        let stats = SmPipeline::with_unit(unit).simulate(&programs);
        // The SIMD2 overhead ratio is shape-invariant (§6.1), so the full
        // unit scales with the MMA shape factor.
        let area = AreaModel::shape_scale(side) / AreaModel::shape_scale(4)
            * AreaModel::combined(&simd2_semiring::EXTENDED_OPS).relative_area();
        let perf = 1.0 / stats.cycles as f64;
        results.push((name, stats, area, perf));
        let (_, ref s, a, p) = results[results.len() - 1];
        t.row(&[
            name.to_owned(),
            s.cycles.to_string(),
            format!("{:.1}", s.cycles_per_mmo()),
            format!("{:.0}%", 100.0 * s.simd2_utilization()),
            format!("{a:.2}"),
            format!("{:.3}", p / a * 1.0e4),
        ]);
    }
    t.print();
    let speedup = results[0].1.cycles as f64 / results[1].1.cycles as f64;
    let area_cost = results[1].2 / results[0].2;
    println!(
        "\n8x8 is {speedup:.2}x faster but {area_cost:.1}x larger: {:.2}x perf/area — \
         the 4x4 point wins on efficiency, matching the paper's design choice.",
        speedup / area_cost
    );
}
