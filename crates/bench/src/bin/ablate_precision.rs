//! Ablation (§3.2 design choice): operand precision. The paper chose
//! fp16-in/fp32-out and rejected fixed-precision int8 because "for many
//! algorithms, we find fixed-precision format cannot converge to the same
//! result as baseline fp32". This harness demonstrates both halves on the
//! functional stack: the selection algebras are bit-exact at fp16, the
//! multiplicative ones drift slightly, and int8 breaks APSP outright.

use simd2::backend::TiledBackend;
use simd2::solve::ClosureAlgorithm;
use simd2::validate::compare_outputs;
use simd2_apps::{apsp, paths};
use simd2_bench::Table;
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::OpKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let modes = [
        ("fp32", PrecisionMode::Fp32Input),
        ("fp16 (paper)", PrecisionMode::Fp16Input),
        ("int8", PrecisionMode::Int8Input),
    ];
    let mut t = Table::new(
        format!("Operand-precision ablation at n = {n} (max |diff| vs fp32 baseline algorithm)"),
        &["app", "mode", "max abs diff", "verdict"],
    );

    // APSP: integer weights scaled so optimal distances exceed the int8
    // range (but stay fp16-exact) — int8 saturates at 127 and breaks.
    let g = apsp::generate(n, 9).map_weights(|w| w * 8.0);
    let oracle = apsp::baseline(&g);
    for (name, mode) in modes {
        let mut be = TiledBackend::with_unit(Simd2Unit::with_precision(mode));
        let got = apsp::simd2(&mut be, &g, ClosureAlgorithm::Leyzorek, true);
        let v = compare_outputs("apsp", &oracle, &got.closure, 0.0);
        t.row(&[
            "APSP".to_owned(),
            name.to_owned(),
            format!("{:.3e}", v.max_abs_diff),
            if v.passed() {
                "converges"
            } else {
                "DOES NOT CONVERGE"
            }
            .to_owned(),
        ]);
    }

    // MAXRP: products in (0,1] — fp16 drifts slightly, int8 collapses the
    // whole probability resolution.
    let g = paths::generate_maxrp(n, 9);
    let oracle = paths::baseline(OpKind::MaxMul, &g);
    for (name, mode) in modes {
        let mut be = TiledBackend::with_unit(Simd2Unit::with_precision(mode));
        let got = paths::simd2(
            &mut be,
            OpKind::MaxMul,
            &g,
            ClosureAlgorithm::Leyzorek,
            true,
        );
        let v = compare_outputs("maxrp", &oracle, &got.closure, 0.02);
        t.row(&[
            "MAXRP".to_owned(),
            name.to_owned(),
            format!("{:.3e}", v.max_abs_diff),
            if v.passed() {
                "converges"
            } else {
                "DOES NOT CONVERGE"
            }
            .to_owned(),
        ]);
    }
    t.print();
}
