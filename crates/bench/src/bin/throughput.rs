//! Whole-matrix MMO throughput of the tiled execution engine.
//!
//! Measures the monomorphized, allocation-free kernel path of
//! [`simd2::TiledBackend`] against a *scalar baseline* — a faithful
//! reimplementation of the pre-fusion datapath (per-scalar dynamic
//! `OpKind` dispatch, per-element partial-product `Vec`, per-level
//! reduction `Vec`) — and sweeps the worker-pool size.
//!
//! For every `(op, N, threads)` point it reports wall time, tile-MMOs/s
//! and effective tile-traffic GB/s (tile loads + stores × 16×16 × 4 B),
//! plus the speedup over the scalar baseline at the same size. Results
//! are printed as a table and written to `BENCH_throughput.json`
//! (hand-rolled JSON; the build vendors no JSON serializer).
//!
//! The per-point tile counts are derived from the backend's
//! `simd2-trace` mmo-span events (a [`RingSink`] attached to each timed
//! backend) and asserted equal to [`Backend::op_count`] — the report is
//! a view of the telemetry stream, cross-checked against the engine's
//! own accounting.
//!
//! A `sparse_crossover` section sweeps input density through
//! [`SparseTiledBackend`] with CSR-declared operands vs the same
//! backend's dense path (bit-identity asserted at every point), locating
//! the density below which the sharded Gustavson path wins on this host.
//!
//! A final section replays a merged nine-step [`Plan`] (one independent
//! MMO per op) sequentially vs batched across the thread sweep — the
//! plan-IR dispatch path over the same worker pool — asserting the
//! batched replay bit-identical per step.
//!
//! Pass `--quick` for a seconds-scale smoke run (small N, fewer ops and
//! thread counts, single rep) used by `scripts/bench.sh`.

use std::time::Instant;

use simd2::{
    Backend, MatrixRef, OperandRepr, Parallelism, PassPipeline, Plan, PlanBuilder, PlanExecutor,
    TiledBackend,
};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_matrix::tiling::TileGrid;
use simd2_matrix::{gen, tiling, Matrix, Tile, ISA_TILE};
use simd2_semiring::{precision::quantize_f16, OpKind, ALL_OPS};
use simd2_sparse::SparseTiledBackend;
use simd2_trace::{span, EventKind, RingSink, Tracer};

/// The pre-optimization reduction: materializes a fresh `Vec` per tree
/// level. Pairing is identical to the fused in-place kernel, so outputs
/// stay bit-identical — only the allocation behaviour differs.
fn scalar_tree_reduce(op: OpKind, mut level: Vec<f32>) -> f32 {
    if level.is_empty() {
        return op.reduce_identity_f32();
    }
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|p| {
                if p.len() == 2 {
                    op.reduce_f32(p[0], p[1])
                } else {
                    p[0]
                }
            })
            .collect();
    }
    level[0]
}

/// The pre-optimization tile datapath: one `match` on `op` per scalar
/// (inside `combine_f32`/`reduce_f32`), one heap allocation per output
/// element, quantization re-applied per scalar read.
fn scalar_execute(
    op: OpKind,
    a: &Tile<ISA_TILE>,
    b: &Tile<ISA_TILE>,
    c: &Tile<ISA_TILE>,
) -> Tile<ISA_TILE> {
    Tile::from_fn(|i, j| {
        let mut partials = Vec::with_capacity(ISA_TILE);
        for k in 0..ISA_TILE {
            let x = quantize_f16(a.get(i, k));
            let y = quantize_f16(b.get(k, j));
            partials.push(op.combine_f32(x, y));
        }
        let reduced = scalar_tree_reduce(op, partials);
        op.reduce_f32(c.get(i, j), reduced)
    })
}

/// Whole-matrix MMO through the scalar tile datapath — same tile loop as
/// the sequential `TiledBackend` path, different per-tile kernel.
fn scalar_mmo(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Matrix {
    let grid = TileGrid::new(a.rows(), b.cols(), a.cols(), ISA_TILE);
    let mut d = Matrix::zeros(a.rows(), b.cols());
    for (ti, tj) in grid.output_coords() {
        let mut acc = tiling::load_c_tile::<ISA_TILE>(op, c, ti, tj);
        for tk in 0..grid.k_tiles {
            let at = tiling::load_a_tile::<ISA_TILE>(op, a, ti, tk);
            let bt = tiling::load_b_tile::<ISA_TILE>(op, b, tk, tj);
            acc = scalar_execute(op, &at, &bt, &acc);
        }
        tiling::store_d_tile(&mut d, &acc, ti, tj);
    }
    d
}

/// In-domain operands for `op` (booleans for or-and, reliabilities in
/// (0, 1] for the min/max-mul algebras, small weights otherwise).
fn operands(op: OpKind, m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
    match op {
        OpKind::OrAnd => (
            gen::random_bool_matrix(m, k, 0.5, 11),
            gen::random_bool_matrix(k, n, 0.5, 12),
            gen::random_bool_matrix(m, n, 0.5, 13),
        ),
        OpKind::MinMul | OpKind::MaxMul => (
            gen::random_matrix(m, k, 0.05, 1.0, 11),
            gen::random_matrix(k, n, 0.05, 1.0, 12),
            gen::random_matrix(m, n, 0.05, 1.0, 13),
        ),
        _ => (
            gen::random_matrix(m, k, 0.0, 8.0, 11),
            gen::random_matrix(k, n, 0.0, 8.0, 12),
            gen::random_matrix(m, n, 0.0, 8.0, 13),
        ),
    }
}

struct Entry {
    op: OpKind,
    n: usize,
    threads: usize,
    isa: &'static str,
    seconds: f64,
    tile_mmos_per_s: f64,
    gbps: f64,
    speedup_vs_scalar: f64,
}

struct SparseEntry {
    op: OpKind,
    n: usize,
    density: f64,
    threads: usize,
    dense_seconds: f64,
    sparse_seconds: f64,
    speedup_sparse_vs_dense: f64,
    skipped_term_frac: f64,
}

/// Times `f` over `reps` runs (after one warmup) and returns the best.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6e}")
    } else {
        "null".to_owned()
    }
}

fn render_json(quick: bool, entries: &[Entry], sparse: &[SparseEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"tile\": {ISA_TILE},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"n\": {}, \"threads\": {}, \"isa\": \"{}\", \
             \"seconds\": {}, \"tile_mmos_per_s\": {}, \"gbps\": {}, \
             \"speedup_vs_scalar\": {}}}{}\n",
            e.op.name(),
            e.n,
            e.threads,
            e.isa,
            jnum(e.seconds),
            jnum(e.tile_mmos_per_s),
            jnum(e.gbps),
            jnum(e.speedup_vs_scalar),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sparse_crossover\": [\n");
    for (i, e) in sparse.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"n\": {}, \"density\": {}, \"threads\": {}, \
             \"dense_seconds\": {}, \"sparse_seconds\": {}, \
             \"speedup_sparse_vs_dense\": {}, \"skipped_term_frac\": {}}}{}\n",
            e.op.name(),
            e.n,
            jnum(e.density),
            e.threads,
            jnum(e.dense_seconds),
            jnum(e.sparse_seconds),
            jnum(e.speedup_sparse_vs_dense),
            jnum(e.skipped_term_frac),
            if i + 1 == sparse.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Thins `m` to roughly `density` by writing the op's annihilator into
/// the complement, with a fixed splitmix-style stream so every run of
/// the bench sees the same operand.
fn sparsify(op: OpKind, m: &Matrix, density: f64, seed: u64) -> Matrix {
    let zero = op.no_edge_f32().expect("sparsify needs an annihilator");
    let mut out = m.clone();
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in out.as_mut_slice().iter_mut() {
        s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        if ((s >> 11) as f64 / (1u64 << 53) as f64) >= density {
            *v = zero;
        }
    }
    out
}

/// Dense/sparse crossover: the same MMO dispatched through
/// [`SparseTiledBackend`] twice — once with all-dense operand
/// declarations (the tiled kernel path) and once with `A`/`B` declared
/// [`OperandRepr::csr`] (the sharded Gustavson path) — across an input
/// density sweep. The sparse leg is asserted bit-identical to the dense
/// leg at every point (the representation contract), so the speedup
/// column doubles as an equivalence check; the crossover density is
/// wherever the speedup column passes 1.0 on this host.
fn sparse_crossover_sweep(quick: bool, reps: usize) -> Vec<SparseEntry> {
    let n = if quick { 128 } else { 256 };
    let densities: &[f64] = if quick {
        &[0.01, 0.1, 0.5]
    } else {
        &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0]
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 4] };
    let ops = [OpKind::PlusMul, OpKind::MinPlus];

    let mut entries = Vec::new();
    let mut t = Table::new(
        format!("Sparse crossover: CSR-declared vs dense dispatch ({n}x{n})"),
        &[
            "op",
            "density",
            "threads",
            "dense s",
            "sparse s",
            "sparse vs dense",
            "skipped",
        ],
    );
    for op in ops {
        let csr = OperandRepr::csr_for(op).expect("crossover ops carry an annihilator");
        let (a0, b0, c) = operands(op, n, n, n);
        for &density in densities {
            let a = sparsify(op, &a0, density, 21);
            let b = sparsify(op, &b0, density, 22);
            for &threads in thread_counts {
                let par = Parallelism::Threads(threads);
                let mut dense_be = SparseTiledBackend::new().with_parallelism(par);
                let mut sparse_be = SparseTiledBackend::new().with_parallelism(par);
                let dense_out = dense_be.mmo(op, &a, &b, &c).expect("dense mmo");
                let sparse_out = sparse_be
                    .mmo_ref(
                        op,
                        MatrixRef::new(&a, csr),
                        MatrixRef::new(&b, csr),
                        MatrixRef::dense(&c),
                    )
                    .expect("sparse mmo");
                assert!(
                    dense_out
                        .as_slice()
                        .iter()
                        .zip(sparse_out.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "sparse dispatch diverged from dense: {op} d={density} T={threads}"
                );
                let counts = sparse_be.sparse_count();
                assert!(counts.sparse_mmos > 0, "sparse leg must route sparse");
                let terms = (counts.fma_terms + counts.skipped_terms) as f64;
                let skipped_term_frac = if terms > 0.0 {
                    counts.skipped_terms as f64 / terms
                } else {
                    0.0
                };
                let dense_seconds = time_best(reps, || dense_be.mmo(op, &a, &b, &c).expect("mmo"));
                let sparse_seconds = time_best(reps, || {
                    sparse_be
                        .mmo_ref(
                            op,
                            MatrixRef::new(&a, csr),
                            MatrixRef::new(&b, csr),
                            MatrixRef::dense(&c),
                        )
                        .expect("mmo")
                });
                let e = SparseEntry {
                    op,
                    n,
                    density,
                    threads,
                    dense_seconds,
                    sparse_seconds,
                    speedup_sparse_vs_dense: dense_seconds / sparse_seconds,
                    skipped_term_frac,
                };
                t.row(&[
                    op.name().to_owned(),
                    format!("{density:.2}"),
                    threads.to_string(),
                    format!("{dense_seconds:.4}"),
                    format!("{sparse_seconds:.4}"),
                    fmt_speedup(e.speedup_sparse_vs_dense),
                    format!("{:.1}%", 100.0 * skipped_term_frac),
                ]);
                entries.push(e);
            }
        }
    }
    t.print();
    entries
}

/// Plan-IR batch dispatch: records one independent MMO per op as a
/// [`Plan`], merges the nine single-step plans into one nine-step plan
/// (one wave — no cross-step dependencies), and replays it sequentially
/// vs batched across the thread sweep. Every batched replay is asserted
/// bit-identical to the sequential one per step, and the replayed work
/// is cross-checked against [`Plan::predicted_op_count`].
fn plan_batch_sweep(quick: bool, thread_counts: &[usize], reps: usize) {
    let n = if quick { 96 } else { 256 };
    let plan = Plan::merge(ALL_OPS.iter().map(|&op| {
        let (a, b, c) = operands(op, n, n, n);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(op, &a, &b, &c).expect("recording mmo");
        rec.finish()
    }));
    assert_eq!(plan.step_count(), ALL_OPS.len());
    assert_eq!(plan.waves().len(), 1, "merged steps must be independent");
    let predicted = plan.predicted_op_count();

    let mut seq_be = TiledBackend::new();
    let seq = PlanExecutor::new()
        .run(&plan, &mut seq_be)
        .expect("sequential replay");
    assert_eq!(seq_be.op_count().tile_mmos, predicted.tile_mmos);
    let seq_s = time_best(reps, || {
        PlanExecutor::new()
            .run(&plan, &mut TiledBackend::new())
            .expect("sequential replay")
    });

    let mut t = Table::new(
        format!(
            "Plan batch replay: {} independent {n}x{n} steps, one per op",
            plan.step_count()
        ),
        &["threads", "seconds", "vs sequential"],
    );
    for &threads in thread_counts {
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(threads));
        let bat = PlanExecutor::batched()
            .run(&plan, &mut be)
            .expect("batched replay");
        assert_eq!(be.op_count().tile_mmos, predicted.tile_mmos);
        for step in 0..plan.step_count() {
            assert_eq!(
                seq.step_output(step),
                bat.step_output(step),
                "batched replay diverged at step {step} (threads={threads})"
            );
        }
        let seconds = time_best(reps, || {
            let mut be = TiledBackend::with_parallelism(Parallelism::Threads(threads));
            PlanExecutor::batched()
                .run(&plan, &mut be)
                .expect("batched replay")
        });
        t.row(&[
            threads.to_string(),
            format!("{seconds:.4}"),
            fmt_speedup(seq_s / seconds),
        ]);
    }
    t.print();
}

/// Pass-pipeline replay speedup: records every op's MMO *twice* (a
/// duplicated instruction stream, the shape a naive recording loop
/// produces), lets the standard pipeline CSE the duplicates away, and
/// times unoptimized vs optimized sequential replay. Every original
/// step's output — including the merged duplicates — is asserted
/// bit-identical through the [`OptimizedPlan`](simd2::OptimizedPlan)
/// remap, so the speedup row is also an end-to-end equivalence check.
fn pass_pipeline_sweep(quick: bool, reps: usize) {
    let n = if quick { 96 } else { 256 };
    let plan = Plan::merge(ALL_OPS.iter().map(|&op| {
        let (a, b, c) = operands(op, n, n, n);
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(op, &a, &b, &c).expect("recording mmo");
        rec.mmo(op, &a, &b, &c).expect("recording duplicate mmo");
        rec.finish()
    }));
    let optimized = PassPipeline::standard().run(plan.clone());
    let report = optimized.report().clone();
    assert_eq!(report.steps_before, 2 * ALL_OPS.len());
    assert_eq!(report.steps_merged, ALL_OPS.len());
    assert_eq!(report.steps_after, ALL_OPS.len());

    let seq = PlanExecutor::new()
        .run(&plan, &mut TiledBackend::new())
        .expect("unoptimized replay");
    let mut opt_be = TiledBackend::new();
    let opt = PlanExecutor::new()
        .run_optimized(&optimized, &mut opt_be)
        .expect("optimized replay");
    assert_eq!(
        opt_be.op_count(),
        optimized.plan().predicted_op_count(),
        "optimized replay work"
    );
    for step in 0..plan.step_count() {
        assert_eq!(
            optimized.step_output(&opt, step),
            Some(seq.step_output(step)),
            "optimized replay diverged at original step {step}"
        );
    }

    let base_s = time_best(reps, || {
        PlanExecutor::new()
            .run(&plan, &mut TiledBackend::new())
            .expect("unoptimized replay")
    });
    let opt_s = time_best(reps, || {
        PlanExecutor::new()
            .run_optimized(&optimized, &mut TiledBackend::new())
            .expect("optimized replay")
    });

    let mut t = Table::new(
        format!("Pass-pipeline replay: duplicated {n}x{n} op stream, CSE'd"),
        &["plan", "steps", "merged", "seconds", "replay speedup"],
    );
    t.row(&[
        "recorded".to_owned(),
        report.steps_before.to_string(),
        "-".to_owned(),
        format!("{base_s:.4}"),
        fmt_speedup(1.0),
    ]);
    t.row(&[
        "optimized".to_owned(),
        report.steps_after.to_string(),
        report.steps_merged.to_string(),
        format!("{opt_s:.4}"),
        fmt_speedup(base_s / opt_s),
    ]);
    t.print();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[128], 1)
    } else {
        (&[256, 512, 1024], 3)
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    // All nine ops at the smallest size; a representative plus-mul /
    // min-plus / plus-norm subset at the larger ones keeps full mode
    // minutes-scale on one core.
    let subset = [OpKind::PlusMul, OpKind::MinPlus, OpKind::PlusNorm];

    let mut entries: Vec<Entry> = Vec::new();
    let mut t = Table::new(
        "MMO throughput: fused engine vs scalar baseline (square NxN)",
        &[
            "op",
            "N",
            "threads",
            "isa",
            "seconds",
            "tile-MMOs/s",
            "GB/s",
            "vs scalar",
        ],
    );

    for (si, &n) in sizes.iter().enumerate() {
        let ops: Vec<OpKind> = if si == 0 {
            ALL_OPS.to_vec()
        } else {
            subset.to_vec()
        };
        for op in ops {
            let (a, b, c) = operands(op, n, n, n);
            let scalar_s = time_best(reps, || scalar_mmo(op, &a, &b, &c));
            for &threads in thread_counts {
                let ring = RingSink::shared();
                let mut be = TiledBackend::with_parallelism(Parallelism::Threads(threads))
                    .with_tracer(Tracer::to(ring.clone()));
                // Sanity: fusion and the worker pool must not change a
                // single bit relative to the scalar datapath.
                if threads == thread_counts[0] {
                    let fused = be.mmo(op, &a, &b, &c).expect("mmo");
                    let scalar = scalar_mmo(op, &a, &b, &c);
                    assert!(
                        fused
                            .as_slice()
                            .iter()
                            .zip(scalar.as_slice())
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "fused engine diverged from scalar baseline: {op} N={n}"
                    );
                }
                be.reset_count();
                ring.clear();
                let seconds = time_best(reps, || be.mmo(op, &a, &b, &c).expect("mmo"));
                // Telemetry covers warmup + reps; normalize to one run.
                // The report reads the mmo-span end events and asserts
                // them against the backend's own counters.
                let runs = (reps + 1) as f64;
                let (mut ev_mmos, mut ev_tile_mmos, mut ev_loads, mut ev_stores) =
                    (0u64, 0u64, 0u64, 0u64);
                for e in ring.events() {
                    if e.span == span::MMO && e.kind == EventKind::End {
                        ev_mmos += 1;
                        ev_tile_mmos += e.u64("tile_mmos").unwrap_or(0);
                        ev_loads += e.u64("tile_loads").unwrap_or(0);
                        ev_stores += e.u64("tile_stores").unwrap_or(0);
                    }
                }
                assert_eq!(ring.dropped(), 0, "telemetry ring overflowed");
                let count = be.op_count();
                assert_eq!(
                    (ev_mmos, ev_tile_mmos, ev_loads, ev_stores),
                    (
                        count.matrix_mmos,
                        count.tile_mmos,
                        count.tile_loads,
                        count.tile_stores
                    ),
                    "span-derived totals diverged from op_count: {op} N={n} T={threads}"
                );
                let tile_mmos = ev_tile_mmos as f64 / runs;
                let traffic_bytes =
                    (ev_loads + ev_stores) as f64 / runs * (ISA_TILE * ISA_TILE) as f64 * 4.0;
                let e = Entry {
                    op,
                    n,
                    threads,
                    isa: be.kernel_isa().name(),
                    seconds,
                    tile_mmos_per_s: tile_mmos / seconds,
                    gbps: traffic_bytes / seconds / 1e9,
                    speedup_vs_scalar: scalar_s / seconds,
                };
                t.row(&[
                    op.name().to_owned(),
                    n.to_string(),
                    threads.to_string(),
                    e.isa.to_owned(),
                    format!("{:.4}", e.seconds),
                    format!("{:.3e}", e.tile_mmos_per_s),
                    format!("{:.2}", e.gbps),
                    fmt_speedup(e.speedup_vs_scalar),
                ]);
                entries.push(e);
            }
        }
    }

    t.print();
    println!();
    let sparse_entries = sparse_crossover_sweep(quick, reps);
    plan_batch_sweep(quick, thread_counts, reps);
    pass_pipeline_sweep(quick, reps);
    let json = render_json(quick, &entries, &sparse_entries);
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    eprintln!("wrote BENCH_throughput.json ({} entries)", entries.len());
}
