//! Regenerates Figure 10: microbenchmark speedups on non-square shapes.

use simd2::micro::{fig10_shapes, MicroBench};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::{geomean, Gpu};
use simd2_semiring::ALL_OPS;

fn main() {
    let gpu = Gpu::default();
    let shapes = fig10_shapes();
    let mut header: Vec<String> = vec!["op".into()];
    header.extend(shapes.iter().map(|(l, _, _, _)| (*l).to_owned()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 10: microbenchmark speedup on non-square shapes",
        &header_refs,
    );
    let mut per_shape: Vec<Vec<f64>> = vec![Vec::new(); shapes.len()];
    for op in ALL_OPS {
        let mut row = vec![op.name().to_owned()];
        for (i, &(_, m, n, k)) in shapes.iter().enumerate() {
            let s = MicroBench { op, m, n, k }.time(&gpu).speedup();
            per_shape[i].push(s);
            row.push(fmt_speedup(s));
        }
        t.row(&row);
    }
    let mut gm = vec!["GMEAN".to_owned()];
    for col in &per_shape {
        gm.push(fmt_speedup(geomean(col)));
    }
    t.row(&gm);
    t.print();
}
