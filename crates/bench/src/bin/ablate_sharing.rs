//! Ablation (§3.1/§6.1 design choice): how much area does datapath
//! sharing save, pairwise and cumulatively? The paper's headline: the
//! combined unit costs 0.69 MMA-equivalents versus 2.96 for dedicated
//! accelerators, and a mirror pair like min-mul/max-mul shares so much
//! circuitry that supporting both costs 11.82% instead of 2×103%.

use simd2_bench::Table;
use simd2_mxu::AreaModel;
use simd2_semiring::{OpKind, EXTENDED_OPS};

fn main() {
    let mut t = Table::new(
        "Mirror-pair sharing: combined increment vs sum of per-op increments",
        &[
            "pair",
            "each standalone",
            "sum standalone",
            "combined w/ MMA",
            "sharing saves",
        ],
    );
    for (a, b) in [
        (OpKind::MinPlus, OpKind::MaxPlus),
        (OpKind::MinMul, OpKind::MaxMul),
        (OpKind::MinMax, OpKind::MaxMin),
    ] {
        let standalone = AreaModel::standalone(a).relative_area();
        let combined = AreaModel::combined(&[a, b]).relative_area();
        let separate_increment = 2.0 * (AreaModel::combined(&[a]).relative_area() - 1.0);
        t.row(&[
            format!("{} + {}", a.name(), b.name()),
            format!("{standalone:.2}"),
            format!("{:.2}", 2.0 * standalone),
            format!("{combined:.2}"),
            format!(
                "{:.0}%",
                100.0 * (1.0 - (combined - 1.0) / separate_increment)
            ),
        ]);
    }
    t.print();
    println!();

    let mut c = Table::new(
        "Cumulative build-up of the full SIMD2 unit",
        &[
            "ops included",
            "combined area",
            "sum of standalone accelerators",
        ],
    );
    let mut set: Vec<OpKind> = Vec::new();
    let mut standalone_sum = 1.0; // the MMA unit itself
    for op in EXTENDED_OPS {
        set.push(op);
        standalone_sum += AreaModel::standalone(op).relative_area();
        c.row(&[
            format!("MMA + {} ext ops", set.len()),
            format!("{:.2}", AreaModel::combined(&set).relative_area()),
            format!("{standalone_sum:.2}"),
        ]);
    }
    c.print();
    let full = AreaModel::combined(&EXTENDED_OPS).relative_area() - 1.0;
    println!(
        "\nDedicated accelerators cost {:.1}x the combined design's overhead (paper: > 4x).",
        AreaModel::standalone_total() / full
    );
}
