//! Regenerates Figure 11: application kernel speedups over the
//! state-of-the-art GPU baselines, in both SIMD2 configurations, across
//! the three Table-4 input scales.

use simd2_apps::{AppKind, AppTiming, Config};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::{geomean, Gpu};
use simd2_matrix::gen::InputScale;

fn main() {
    let model = AppTiming::new(Gpu::default());
    for config in [Config::Simd2Units, Config::Simd2CudaCores] {
        let mut t = Table::new(
            format!("Figure 11: speedup of `{}` over baseline", config.label()),
            &["app", "small", "medium", "large"],
        );
        let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for app in AppKind::all() {
            let mut row = vec![app.spec().label.to_owned()];
            for (i, scale) in InputScale::all().into_iter().enumerate() {
                let n = app.dimension(scale);
                let s = model.speedup(app, n, config);
                per_scale[i].push(s);
                row.push(fmt_speedup(s));
            }
            t.row(&row);
        }
        let mut gm = vec!["GMEAN".to_owned()];
        for col in &per_scale {
            gm.push(fmt_speedup(geomean(col)));
        }
        t.row(&gm);
        t.print();
        println!();
    }
    // Peak speedup quoted in the abstract.
    let mut best = (0.0f64, String::new());
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let s = model.speedup(app, app.dimension(scale), Config::Simd2Units);
            if s > best.0 {
                best = (s, format!("{} / {}", app.spec().label, scale.label()));
            }
        }
    }
    println!(
        "Peak SIMD2-unit speedup: {} ({})",
        fmt_speedup(best.0),
        best.1
    );
}
