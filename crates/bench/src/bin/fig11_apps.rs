//! Regenerates Figure 11: application kernel speedups over the
//! state-of-the-art GPU baselines, in both SIMD2 configurations, across
//! the three Table-4 input scales.
//!
//! The table is built from the timing model's `app_phase` telemetry
//! events (one instant per evaluation, captured in a [`RingSink`] and
//! streamed to `results/telemetry/fig11_apps.jsonl`) rather than from
//! the returned values — the printed figure is a view of the event
//! stream. Evaluation order is deterministic, so both the stdout table
//! and the JSON-lines export reproduce bit for bit.

use std::sync::Arc;

use simd2_apps::{AppKind, AppTiming, Config};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::{geomean, Gpu};
use simd2_matrix::gen::InputScale;
use simd2_trace::{span, Event, FanoutSink, JsonLinesSink, RingSink, Sink, Tracer};

/// Runs one `(app, scale)` sweep through the model and hands back the
/// `app_phase` events it emitted, in evaluation order.
fn sweep(model: &AppTiming, ring: &RingSink, config: Config) -> Vec<Event> {
    ring.clear();
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let _ = model.speedup(app, app.dimension(scale), config);
        }
    }
    let events = ring.events();
    assert!(
        events.iter().all(|e| e.span == span::APP_PHASE),
        "unexpected span in the timing model's event stream"
    );
    events
}

fn main() {
    let ring = RingSink::shared();
    let export = JsonLinesSink::create("results/telemetry/fig11_apps.jsonl")
        .ok()
        .map(Arc::new);
    let sink: Arc<dyn Sink> = match &export {
        Some(jsonl) => Arc::new(FanoutSink::new(vec![
            ring.clone() as Arc<dyn Sink>,
            jsonl.clone() as Arc<dyn Sink>,
        ])),
        None => ring.clone(),
    };
    let model = AppTiming::new(Gpu::default()).with_tracer(Tracer::to(sink));
    for config in [Config::Simd2Units, Config::Simd2CudaCores] {
        let events = sweep(&model, &ring, config);
        let mut t = Table::new(
            format!("Figure 11: speedup of `{}` over baseline", config.label()),
            &["app", "small", "medium", "large"],
        );
        let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut it = events.iter();
        for app in AppKind::all() {
            let mut row = vec![app.spec().label.to_owned()];
            for col in &mut per_scale {
                let e = it.next().expect("one event per evaluation");
                assert_eq!(e.str_value("app"), Some(app.spec().label));
                assert_eq!(e.str_value("config"), Some(config.label()));
                let s = e.f64("speedup").expect("speedup field");
                col.push(s);
                row.push(fmt_speedup(s));
            }
            t.row(&row);
        }
        let mut gm = vec!["GMEAN".to_owned()];
        for col in &per_scale {
            gm.push(fmt_speedup(geomean(col)));
        }
        t.row(&gm);
        t.print();
        println!();
    }
    // Peak speedup quoted in the abstract — again read off the events.
    let events = sweep(&model, &ring, Config::Simd2Units);
    let mut best = (0.0f64, String::new());
    let mut it = events.iter();
    for app in AppKind::all() {
        for scale in InputScale::all() {
            let e = it.next().expect("one event per evaluation");
            let s = e.f64("speedup").expect("speedup field");
            if s > best.0 {
                best = (s, format!("{} / {}", app.spec().label, scale.label()));
            }
        }
    }
    println!(
        "Peak SIMD2-unit speedup: {} ({})",
        fmt_speedup(best.0),
        best.1
    );
    if let Some(jsonl) = &export {
        let _ = jsonl.flush();
        eprintln!("wrote {}", jsonl.path().display());
    }
}
