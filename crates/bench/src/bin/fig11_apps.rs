//! Regenerates Figure 11: application kernel speedups over the
//! state-of-the-art GPU baselines, in both SIMD2 configurations, across
//! the three Table-4 input scales.
//!
//! The sweep and rendering live in [`simd2_bench::fig11`] (shared with
//! the snapshot test that pins this binary's stdout against
//! `results/fig11_apps.txt`); this binary adds the telemetry export to
//! `results/telemetry/fig11_apps.jsonl`.

use std::sync::Arc;

use simd2_apps::AppTiming;
use simd2_gpu::Gpu;
use simd2_trace::{FanoutSink, JsonLinesSink, RingSink, Sink, Tracer};

fn main() {
    let ring = RingSink::shared();
    let export = JsonLinesSink::create("results/telemetry/fig11_apps.jsonl")
        .ok()
        .map(Arc::new);
    let sink: Arc<dyn Sink> = match &export {
        Some(jsonl) => Arc::new(FanoutSink::new(vec![
            ring.clone() as Arc<dyn Sink>,
            jsonl.clone() as Arc<dyn Sink>,
        ])),
        None => ring.clone(),
    };
    let model = AppTiming::new(Gpu::default()).with_tracer(Tracer::to(sink));
    print!("{}", simd2_bench::fig11::render(&model, &ring));
    if let Some(jsonl) = &export {
        let _ = jsonl.flush();
        eprintln!("wrote {}", jsonl.path().display());
    }
}
