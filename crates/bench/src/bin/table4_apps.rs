//! Regenerates Table 4: the application / baseline / input inventory.

use simd2_apps::AppKind;
use simd2_bench::Table;
use simd2_matrix::gen::InputScale;

fn main() {
    let mut t = Table::new(
        "Table 4: benchmark applications, baselines and input dimensions",
        &[
            "Application",
            "Label",
            "SIMD2 op",
            "Baseline source",
            "Small",
            "Medium",
            "Large",
        ],
    );
    for app in AppKind::all() {
        let s = app.spec();
        t.row(&[
            s.full_name.to_owned(),
            s.label.to_owned(),
            s.op.ptx_mnemonic().to_owned(),
            s.baseline_source.to_owned(),
            app.dimension(InputScale::Small).to_string(),
            app.dimension(InputScale::Medium).to_string(),
            app.dimension(InputScale::Large).to_string(),
        ]);
    }
    t.print();
}
