//! Regenerates Figure 12: algorithmic ablation — Leyzorek with/without
//! convergence checks, and all-pairs Bellman-Ford — against the same
//! baselines as Figure 11 (SIMD2-unit configuration).

use simd2::solve::ClosureAlgorithm;
use simd2_apps::{AppKind, AppTiming, Config};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::Gpu;
use simd2_matrix::gen::InputScale;

fn main() {
    let model = AppTiming::new(Gpu::default());
    let variants: [(&str, ClosureAlgorithm, bool); 4] = [
        ("Leyzorek + convergence", ClosureAlgorithm::Leyzorek, true),
        (
            "Leyzorek w/o convergence",
            ClosureAlgorithm::Leyzorek,
            false,
        ),
        (
            "Bellman-Ford + convergence",
            ClosureAlgorithm::BellmanFord,
            true,
        ),
        (
            "Bellman-Ford w/o convergence",
            ClosureAlgorithm::BellmanFord,
            false,
        ),
    ];
    for scale in [InputScale::Small, InputScale::Large] {
        let mut t = Table::new(
            format!(
                "Figure 12: algorithm ablation, speedup over baseline ({})",
                scale.label()
            ),
            &[
                "app",
                variants[0].0,
                variants[1].0,
                variants[2].0,
                variants[3].0,
            ],
        );
        for app in AppKind::all() {
            if app == AppKind::Knn {
                continue; // KNN has no closure loop to ablate
            }
            let n = app.dimension(scale);
            let base = model.baseline_time(app, n);
            let mut row = vec![app.spec().label.to_owned()];
            for &(_, alg, conv) in &variants {
                let iters = model.iterations(app, n, alg, conv);
                let time = model.simd2_time(app, n, iters, conv, Config::Simd2Units);
                row.push(fmt_speedup(time.speedup_over(base)));
            }
            t.row(&row);
        }
        t.print();
        println!();
    }
}
