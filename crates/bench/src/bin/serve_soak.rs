//! Randomized multi-tenant soak for the `simd2-serve` plan service.
//!
//! A seeded, time-bounded episode loop. Each episode builds a fresh
//! [`PlanService`] in one of seven chaos modes — clean, transient-fault
//! injected, worker-panic armed, quantum-resume, sticky-fault with
//! circuit breakers, panic-resume with the degradation ladder, or
//! vector-tier-only faults with the scalar-pin rung — registers 2–4
//! tenants with randomized quotas and scheduler weights, and drives a
//! randomized
//! batch of submissions (op × shape × chain length × deadline × cache
//! duplicates × quota probes × malformed probes × NaN-poisoned inputs),
//! then asserts:
//!
//! 1. **Explicit admission** — every submission's accept/reject
//!    response matches an arithmetic mirror of the admission controller
//!    (backpressure gate, then in-flight / queued-step / queued-byte
//!    quotas, in order); nothing is silently dropped.
//! 2. **Deterministic scheduling** — terminal outcomes arrive exactly
//!    in the weighted-round-robin order predicted from the tenant
//!    weights and queue contents.
//! 3. **Exactly-one terminal** — every admitted job lands exactly one
//!    [`JobStatus`]; over-deadline jobs expire at the predicted step
//!    boundary with exact partial-work accounting; only fault-injected
//!    episodes may fail, and failures carry the failing step.
//! 4. **Bit identity** — 100% of completed jobs (cold, cache-hit,
//!    recovered, or NaN-poisoned) match a clean sequential replay of
//!    their plan bit for bit: one tenant's chaos never corrupts
//!    another's results.
//! 5. **Isolation** — in panic mode only the chaos tenant's multi-tile
//!    jobs recover from panics; calm tenants complete unrecovered. In
//!    clean mode nothing recovers or fails.
//! 6. **Telemetry lock-step** — per-tenant counters derived from
//!    [`span::SERVE`] events equal the scheduler's [`TenantStats`]
//!    exactly, field by field, and both equal the soak's own mirror.
//! 7. **Resume exactness** — with a round quantum armed, suspended jobs
//!    resume bit-identically with exact suspension/resumption counts,
//!    and the backend op counter proves no completed wave was ever
//!    re-executed; terminal expiries carry exact
//!    `{executed, budget, resumed_from, checkpoint, resumable}` math.
//! 8. **Breaker determinism** — sticky-fault episodes replay a mirror
//!    of the tenant/plan circuit-breaker state machine outcome by
//!    outcome (short-circuits, half-open probes, quarantines), and two
//!    identically seeded runs produce identical outcome streams.
//! 9. **Degradation ladder** — repeated worker panics demote dispatch
//!    to sequential (after which every checkpointed job completes), and
//!    on vector hosts repeated ABFT detections pin the kernel to scalar
//!    and disarm the vector-only injector.
//!
//! At exit the per-tenant SLO aggregates (admitted / rejected / expired
//! / recovered / deadline-miss / suspension / breaker / quarantine /
//! fault-log-drop counts) are exported to
//! `results/telemetry/serve_soak.jsonl`.
//!
//! Usage: `cargo run -p simd2-bench --bin serve_soak [--seed S]
//! [--seconds T] [--iters N]`. The episode stream is a pure function of
//! the seed; any violation prints the failing episode's parameters and
//! exits 1.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simd2::solve::ClosureAlgorithm;
use simd2::{
    Backend, Parallelism, Plan, PlanBuilder, PlanExecutor, PlanKey, RecoveryPolicy, RetryBackoff,
    TiledBackend,
};
use simd2_apps::{harness, AppKind};
use simd2_fault::{
    AbftConfig, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PanicProbeUnit, PlannedInjector,
    PANIC_PROBE_PAYLOAD,
};
use simd2_matrix::{gen, Matrix, ISA_TILE};
use simd2_mxu::Simd2Unit;
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::simd::KernelIsa;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_serve::{
    plan_input_bytes, Breaker, BreakerConfig, Deadline, DegradeConfig, JobSpec, JobStatus,
    PlanService, ResumeConfig, ServeConfig, TenantId, TenantQuota,
};
use simd2_trace::{field, json_line_into, span, EventKind, RingSink, Tracer};

/// SplitMix64: the soak's own deterministic parameter stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChaosMode {
    Clean,
    Faults,
    Panic,
    /// Clean backend, round quantum armed: jobs suspend at wave
    /// boundaries and resume bit-identically, never re-executing a
    /// completed wave (counter-verified against the backend op count).
    Resume,
    /// Sticky (retry-defeating) faults with tenant+plan circuit
    /// breakers armed: short-circuits and quarantines must replay the
    /// mirror breaker state machine exactly.
    Sticky,
    /// Worker panics with resume + the degradation ladder armed:
    /// panicked jobs checkpoint, the ladder demotes dispatch to
    /// sequential, and every job still completes bit-identically.
    PanicResume,
    /// Vector-tier-only faults with the scalar-pin rung armed: on
    /// vector hosts detections pin the kernel to scalar and injection
    /// disarms; on scalar hosts (SIMD2_FORCE_SCALAR) nothing ever arms.
    VectorPin,
}

/// One episode's randomized parameters.
#[derive(Debug)]
struct Episode {
    mode: ChaosMode,
    tenants: usize,
    weights: Vec<u32>,
    max_in_flight: Vec<usize>,
    max_queued_steps: Vec<u64>,
    max_queued_bytes: Vec<u64>,
    max_queued_jobs: usize,
    jobs_per_tenant: usize,
    ppm: u32,
    fault_seed: u64,
    workers: usize,
    data_seed: u64,
    /// Round quantum (steps per scheduling round) for resume modes.
    quantum: u64,
}

fn draw_episode(rng: &mut Rng) -> Episode {
    let mode = rng.pick(&[
        ChaosMode::Clean,
        ChaosMode::Faults,
        ChaosMode::Panic,
        ChaosMode::Resume,
        ChaosMode::Sticky,
        ChaosMode::PanicResume,
        ChaosMode::VectorPin,
    ]);
    let tenants = 2 + rng.below(3) as usize;
    Episode {
        mode,
        tenants,
        weights: (0..tenants).map(|_| 1 + rng.below(3) as u32).collect(),
        max_in_flight: (0..tenants).map(|_| 2 + rng.below(6) as usize).collect(),
        max_queued_steps: (0..tenants).map(|_| 4 + rng.below(20)).collect(),
        max_queued_bytes: (0..tenants)
            .map(|_| rng.pick(&[24u64 << 10, 1 << 20, 64 << 20]))
            .collect(),
        max_queued_jobs: 6 + rng.below(18) as usize,
        jobs_per_tenant: 3 + rng.below(6) as usize,
        ppm: rng.pick(&[20_000u32, 200_000]),
        fault_seed: rng.next(),
        workers: rng.pick(&[2usize, 3, 4]),
        data_seed: rng.next(),
        quantum: 1 + rng.below(3),
    }
}

/// What the soak expects back from one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    Admit,
    Backpressure,
    Quota,
    Malformed,
}

/// One submission the soak will make, with everything the mirror needs.
struct Submission {
    tenant: usize,
    spec: JobSpec,
    /// The plan behind the spec (regenerated locally for app payloads).
    plan: Plan,
    /// Whether the plan carries deliberate NaN inputs.
    poisoned: bool,
    /// Whether the plan spans more than one output tile row — in panic
    /// mode, exactly the jobs that strike the armed probe (regardless
    /// of which tenant ends up submitting a duplicate of them).
    tall: bool,
}

/// Records a `len`-step chain (D0 = A⊗B⊕C, Di = A⊗B⊕D(i-1)) over
/// in-domain side×side operands.
fn record_chain(op: OpKind, side: usize, len: usize, seed: u64, poison: bool) -> Plan {
    let mut a = gen::random_operands_for(op, side, side, seed);
    let mut b = gen::random_operands_for(op, side, side, seed ^ 0x5eed);
    // Pre-quantize to the backends' fp16 input precision so clean
    // results pass ABFT verification exactly (mirrors the engine soak).
    for v in a.as_mut_slice().iter_mut().chain(b.as_mut_slice()) {
        *v = quantize_f16(*v);
    }
    if poison {
        let idx = (seed % (side * side) as u64) as usize;
        a.as_mut_slice()[idx] = f32::NAN;
    }
    let c = Matrix::filled(side, side, op.reduce_identity_f32());
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let mut acc = rec.mmo(op, &a, &b, &c).expect("recording step 0");
    for _ in 1..len {
        acc = rec.mmo(op, &a, &b, &acc).expect("recording chain step");
    }
    rec.finish()
}

/// The clean sequential reference every completed job must match bit
/// for bit.
fn clean_replay(plan: &Plan) -> Matrix {
    PlanExecutor::new()
        .run(plan, &mut TiledBackend::new())
        .expect("clean replay")
        .into_final_output()
        .expect("non-empty plan")
}

/// Draws one episode's submission batch. Tenant 0 is the chaos tenant:
/// in panic mode it gets the multi-tile jobs that strike the probe, and
/// in clean/panic modes it occasionally submits NaN-poisoned inputs.
fn draw_submissions(ep: &Episode, rng: &mut Rng) -> Vec<Submission> {
    let idempotent: Vec<OpKind> = ALL_OPS
        .iter()
        .copied()
        .filter(|op| op.reduce_is_idempotent())
        .collect();
    let mut subs: Vec<Submission> = Vec::new();
    for tenant in 0..ep.tenants {
        for _ in 0..ep.jobs_per_tenant {
            // 1-in-4: resubmit an earlier plan verbatim (cache probe).
            if rng.below(4) == 0 {
                if let Some(prev) = subs.get(rng.below(subs.len().max(1) as u64) as usize) {
                    let deadline = prev.spec.deadline;
                    let plan = prev.plan.clone();
                    let (poisoned, tall) = (prev.poisoned, prev.tall);
                    subs.push(Submission {
                        tenant,
                        spec: JobSpec::plan(plan.clone()).with_deadline(deadline),
                        plan,
                        poisoned,
                        tall,
                    });
                    continue;
                }
            }
            // 1-in-8 in clean mode: a registry-app payload.
            if ep.mode == ChaosMode::Clean && rng.below(8) == 0 {
                let app = rng.pick(&AppKind::all());
                let n = rng.pick(&[16usize, 32]);
                let seed = rng.below(2);
                let mut recorder = TiledBackend::new();
                let run = harness::run_app(
                    &mut recorder,
                    app,
                    n,
                    seed,
                    ClosureAlgorithm::Leyzorek,
                    true,
                );
                subs.push(Submission {
                    tenant,
                    spec: JobSpec::app(app, n, seed),
                    plan: run.plan,
                    poisoned: false,
                    tall: n > ISA_TILE,
                });
                continue;
            }
            let faulty = matches!(
                ep.mode,
                ChaosMode::Faults | ChaosMode::Sticky | ChaosMode::VectorPin
            );
            let op = if faulty {
                rng.pick(&idempotent)
            } else {
                rng.pick(&ALL_OPS)
            };
            let side = match (ep.mode, tenant) {
                // Chaos tenant's jobs span >= 3 tile rows: the probe
                // (armed at tile row 1) strikes every parallel mmo.
                (ChaosMode::Panic | ChaosMode::PanicResume, 0) => {
                    2 * ISA_TILE + 1 + rng.below(31) as usize
                }
                // Calm tenants stay within one tile row: sequential
                // path, never strikes.
                (ChaosMode::Panic | ChaosMode::PanicResume, _) => {
                    5 + rng.below(ISA_TILE as u64 - 4) as usize
                }
                _ => 5 + rng.below(36) as usize,
            };
            let len = 1 + rng.below(3) as usize;
            let poison = !faulty && tenant == 0 && rng.below(8) == 0;
            let plan = record_chain(op, side, len, ep.data_seed ^ rng.next(), poison);
            let deadline = if rng.below(4) == 0 {
                Deadline::Steps(rng.below(len as u64 + 2))
            } else {
                Deadline::None
            };
            subs.push(Submission {
                tenant,
                spec: JobSpec::plan(plan.clone()).with_deadline(deadline),
                plan,
                poisoned: poison,
                tall: side > ISA_TILE,
            });
        }
    }
    // A malformed probe: an empty plan, from a random tenant.
    let empty = PlanBuilder::over(&mut TiledBackend::new()).finish();
    subs.push(Submission {
        tenant: rng.below(ep.tenants as u64) as usize,
        spec: JobSpec::plan(empty.clone()),
        plan: empty,
        poisoned: false,
        tall: false,
    });
    subs
}

struct Violation {
    what: String,
}

macro_rules! soak_check {
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(Violation { what: format!($($fmt)*) });
        }
    };
}

/// Per-tenant mirror of what the service must report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct MirrorStats {
    submitted: u64,
    admitted: u64,
    rejected_backpressure: u64,
    rejected_quota: u64,
    rejected_malformed: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    cache_hits: u64,
    executed_steps: u64,
    suspended: u64,
    resumed: u64,
    breaker_short_circuits: u64,
    breaker_trips: u64,
    quarantined: u64,
}

#[derive(Default)]
struct Totals {
    episodes: u64,
    submissions: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    recovered: u64,
    cache_hits: u64,
    panic_recoveries: u64,
    detections: u64,
    suspended: u64,
    resumed: u64,
    breaker_trips: u64,
    quarantined: u64,
    fault_dropped: u64,
    /// Aggregated per tenant index across episodes, for the SLO export.
    slo: HashMap<u32, SloRow>,
}

#[derive(Clone, Copy, Debug, Default)]
struct SloRow {
    episodes: u64,
    submitted: u64,
    admitted: u64,
    rejected_backpressure: u64,
    rejected_quota: u64,
    rejected_malformed: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    recovered: u64,
    cache_hits: u64,
    deadline_misses: u64,
    suspended: u64,
    resumed: u64,
    breaker_short_circuits: u64,
    breaker_trips: u64,
    quarantined: u64,
    fault_dropped: u64,
}

/// Builds the service for the episode's mode, runs the batch, and
/// checks every invariant.
fn run_episode(ep: &Episode, subs: &[Submission], totals: &mut Totals) -> Result<(), Violation> {
    match ep.mode {
        ChaosMode::Clean => {
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                ..ServeConfig::default()
            };
            check_episode(TiledBackend::new(), config, ep, subs, totals)
        }
        ChaosMode::Faults => {
            let plan =
                FaultPlan::new(FaultPlanConfig::new(ep.fault_seed).with_transient_nan_ppm(ep.ppm));
            let inner = TiledBackend::with_unit(FaultySimd2Unit::new(
                Simd2Unit::new(),
                PlannedInjector::new(plan),
            ));
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 32 },
                backoff: RetryBackoff::unbounded(),
                abft: AbftConfig {
                    witness_samples: usize::MAX,
                    ..AbftConfig::default()
                },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
        ChaosMode::Panic => {
            let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
            inner.set_parallelism(Parallelism::Threads(ep.workers));
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
        ChaosMode::Resume => {
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                resume: ResumeConfig {
                    quantum: ep.quantum,
                    max_resumes: 64,
                },
                ..ServeConfig::default()
            };
            check_episode(TiledBackend::new(), config, ep, subs, totals)
        }
        ChaosMode::Sticky => {
            let build = || {
                let plan =
                    FaultPlan::new(FaultPlanConfig::new(ep.fault_seed).with_sticky_ppm(ep.ppm));
                TiledBackend::with_unit(FaultySimd2Unit::new(
                    Simd2Unit::new(),
                    PlannedInjector::new(plan),
                ))
            };
            let config = || ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                abft: AbftConfig {
                    witness_samples: usize::MAX,
                    ..AbftConfig::default()
                },
                breaker: BreakerConfig {
                    trip_after: 2,
                    cooldown: 2,
                    quarantine_after: 2,
                },
                ..ServeConfig::default()
            };
            // Breaker state-machine determinism: two identically seeded
            // services must land an identical outcome stream.
            let first = outcome_fingerprint(build(), config(), ep, subs);
            let second = outcome_fingerprint(build(), config(), ep, subs);
            if first != second {
                return Err(Violation {
                    what: format!(
                        "sticky episode outcome stream diverged between identical \
                         runs:\n  {first:?}\n  {second:?}"
                    ),
                });
            }
            check_episode(build(), config(), ep, subs, totals)
        }
        ChaosMode::PanicResume => {
            let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
            inner.set_parallelism(Parallelism::Threads(ep.workers));
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                resume: ResumeConfig {
                    quantum: 0,
                    max_resumes: 8,
                },
                degrade: DegradeConfig {
                    scalar_after_detections: 0,
                    sequential_after_panics: 2,
                },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
        ChaosMode::VectorPin => {
            let plan =
                FaultPlan::new(FaultPlanConfig::new(ep.fault_seed).with_transient_nan_ppm(ep.ppm));
            let unit = FaultySimd2Unit::new(Simd2Unit::new(), PlannedInjector::new(plan))
                .with_vector_only(true);
            let inner = TiledBackend::with_unit(unit);
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 32 },
                backoff: RetryBackoff::unbounded(),
                abft: AbftConfig {
                    witness_samples: usize::MAX,
                    ..AbftConfig::default()
                },
                degrade: DegradeConfig {
                    scalar_after_detections: 1,
                    sequential_after_panics: 0,
                },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
    }
}

/// Runs an episode's submissions to completion and reduces each outcome
/// to a compact fingerprint — the determinism witness for breaker
/// episodes.
fn outcome_fingerprint<B: Backend>(
    inner: B,
    config: ServeConfig,
    ep: &Episode,
    subs: &[Submission],
) -> Vec<String> {
    let mut svc = PlanService::new(inner, config);
    for t in 0..ep.tenants {
        svc.register_tenant(
            TenantId(t as u32),
            TenantQuota::default()
                .with_weight(ep.weights[t])
                .with_max_in_flight(ep.max_in_flight[t])
                .with_max_queued_steps(ep.max_queued_steps[t])
                .with_max_queued_bytes(ep.max_queued_bytes[t]),
        );
    }
    for sub in subs {
        let _ = svc.submit(TenantId(sub.tenant as u32), sub.spec.clone());
    }
    svc.run_until_idle();
    svc.take_outcomes()
        .iter()
        .map(|o| match &o.status {
            JobStatus::Completed {
                executed_steps,
                cache_hit,
                ..
            } => format!("{} completed e={executed_steps} c={cache_hit}", o.job),
            JobStatus::Expired {
                executed_steps,
                resumed_from,
                ..
            } => format!("{} expired e={executed_steps} r={resumed_from}", o.job),
            JobStatus::Failed { step, error, .. } => format!("{} failed s={step} {error}", o.job),
            JobStatus::Quarantined { trips, .. } => format!("{} quarantined t={trips}", o.job),
        })
        .collect()
}

/// The terminal outcome the resume simulator predicts for one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pred {
    /// Served from the result cache on the job's first round.
    CacheHit,
    /// Ran to completion (possibly across suspended rounds).
    Done,
    /// Terminal expiry with exact resume accounting.
    Expired {
        executed: u64,
        resumed_from: u64,
        resumable: bool,
    },
    /// Worker panic with the resume budget exhausted.
    Failed,
}

/// What the simulator predicts for a resume-armed episode.
struct SimResult {
    /// Terminal outcomes in order: (tenant, job id, submission index).
    order: Vec<(usize, u64, usize)>,
    /// Predicted terminal outcome per entry of `order`.
    preds: Vec<Pred>,
    /// Per-tenant suspension / resumption counts.
    suspended: Vec<u64>,
    resumed: Vec<u64>,
    /// Total scheduling rounds (`run_until_idle`'s return value).
    rounds: u64,
    /// Worker-panic strikes (panic-resume episodes only).
    strikes: u64,
}

/// Replays the scheduler's drain loop arithmetically for resume-armed
/// episodes: weighted round-robin with suspended jobs re-entering the
/// back of their tenant's queue, the result cache consulted only on
/// first rounds, and (for panic episodes) the degradation ladder's
/// sequential demotion after `panic_ladder` strikes.
fn simulate_resume(
    ep: &Episode,
    subs: &[Submission],
    queues: &[VecDeque<(u64, usize)>],
    quantum: u64,
    max_resumes: u64,
    panic_ladder: Option<u64>,
) -> SimResult {
    struct SimJob {
        id: u64,
        sub: usize,
        done: u64,
        suspends: u64,
    }
    let mut q: Vec<VecDeque<SimJob>> = queues
        .iter()
        .map(|queue| {
            queue
                .iter()
                .map(|&(id, sub)| SimJob {
                    id,
                    sub,
                    done: 0,
                    suspends: 0,
                })
                .collect()
        })
        .collect();
    let mut out = SimResult {
        order: Vec::new(),
        preds: Vec::new(),
        suspended: vec![0; ep.tenants],
        resumed: vec![0; ep.tenants],
        rounds: 0,
        strikes: 0,
    };
    let mut cache: HashSet<PlanKey> = HashSet::new();
    let mut sequential = false;
    loop {
        let mut progressed = false;
        for t in 0..ep.tenants {
            for _ in 0..ep.weights[t].max(1) {
                let Some(mut j) = q[t].pop_front() else { break };
                out.rounds += 1;
                progressed = true;
                let sub = &subs[j.sub];
                let steps = sub.plan.step_count() as u64;
                let key = sub.plan.cache_key();
                let budget = sub.spec.deadline.budget();
                if j.suspends > 0 {
                    out.resumed[t] += 1;
                } else if cache.contains(&key) {
                    out.order.push((t, j.id, j.sub));
                    out.preds.push(Pred::CacheHit);
                    continue;
                }
                // A tall job on a parallel backend panics at its first
                // dispatch and makes no progress until the ladder
                // demotes dispatch to sequential.
                if panic_ladder.is_some() && sub.tall && !sequential {
                    if budget.is_none_or(|b| j.done < b) {
                        out.strikes += 1;
                        if panic_ladder.is_some_and(|after| out.strikes >= after) {
                            sequential = true;
                        }
                        if j.suspends < max_resumes {
                            j.suspends += 1;
                            out.suspended[t] += 1;
                            q[t].push_back(j);
                        } else {
                            out.order.push((t, j.id, j.sub));
                            out.preds.push(Pred::Failed);
                        }
                    } else {
                        // The deadline cancels before any dispatch.
                        out.order.push((t, j.id, j.sub));
                        out.preds.push(Pred::Expired {
                            executed: j.done,
                            resumed_from: j.suspends,
                            resumable: false,
                        });
                    }
                    continue;
                }
                // One clean round under the quantum and budget caps.
                let cap_q = if quantum == 0 { u64::MAX } else { quantum };
                let cap_b = budget.map_or(u64::MAX, |b| b - j.done);
                let room = (steps - j.done).min(cap_q).min(cap_b);
                j.done += room;
                if j.done == steps {
                    cache.insert(key);
                    out.order.push((t, j.id, j.sub));
                    out.preds.push(Pred::Done);
                } else if budget == Some(j.done) {
                    out.order.push((t, j.id, j.sub));
                    out.preds.push(Pred::Expired {
                        executed: j.done,
                        resumed_from: j.suspends,
                        resumable: false,
                    });
                } else if room > 0 && j.suspends < max_resumes {
                    j.suspends += 1;
                    out.suspended[t] += 1;
                    q[t].push_back(j);
                } else {
                    out.order.push((t, j.id, j.sub));
                    out.preds.push(Pred::Expired {
                        executed: j.done,
                        resumed_from: j.suspends,
                        resumable: true,
                    });
                }
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[allow(clippy::too_many_lines)]
fn check_episode<B: Backend>(
    inner: B,
    config: ServeConfig,
    ep: &Episode,
    subs: &[Submission],
    totals: &mut Totals,
) -> Result<(), Violation> {
    let breaker_cfg = config.breaker;
    let resume_cfg = config.resume;
    let degrade_cfg = config.degrade;
    // Which dispatch leg this host runs (SIMD2_FORCE_SCALAR lands here
    // as KernelIsa::Scalar) — vector-pin assertions branch on it.
    let scalar_host = inner.kernel_isa() == KernelIsa::Scalar;
    let sink: Arc<RingSink> = RingSink::shared();
    let mut svc = PlanService::new(inner, config).with_tracer(Tracer::to(sink.clone()));
    for t in 0..ep.tenants {
        svc.register_tenant(
            TenantId(t as u32),
            TenantQuota::default()
                .with_weight(ep.weights[t])
                .with_max_in_flight(ep.max_in_flight[t])
                .with_max_queued_steps(ep.max_queued_steps[t])
                .with_max_queued_bytes(ep.max_queued_bytes[t]),
        );
    }

    // An unknown tenant is refused outright and appears in no ledger.
    let probe = svc.submit(TenantId(99), JobSpec::plan(subs[0].plan.clone()));
    soak_check!(
        matches!(probe, Err(simd2_serve::Rejected::Malformed { .. })),
        "unknown tenant must be rejected as malformed, got {probe:?}"
    );

    // --- Submission phase, mirrored arithmetically. ------------------
    let mut mirror = vec![MirrorStats::default(); ep.tenants];
    let mut ledger_if = vec![0usize; ep.tenants];
    let mut ledger_steps = vec![0u64; ep.tenants];
    let mut ledger_bytes = vec![0u64; ep.tenants];
    let mut queued_total = 0usize;
    // Admitted jobs per tenant, in order: (expected id, submission idx).
    let mut queues: Vec<VecDeque<(u64, usize)>> = vec![VecDeque::new(); ep.tenants];
    let mut next_id = 0u64;

    for (i, sub) in subs.iter().enumerate() {
        let t = sub.tenant;
        mirror[t].submitted += 1;
        let steps = sub.plan.step_count() as u64;
        let bytes = plan_input_bytes(&sub.plan);
        let expect = if sub.plan.is_empty() {
            Expect::Malformed
        } else if queued_total >= ep.max_queued_jobs {
            Expect::Backpressure
        } else if ledger_if[t] + 1 > ep.max_in_flight[t] {
            Expect::Quota
        } else if ledger_steps[t] + steps > ep.max_queued_steps[t]
            || ledger_bytes[t] + bytes > ep.max_queued_bytes[t]
        {
            Expect::Quota
        } else {
            Expect::Admit
        };
        let got = svc.submit(TenantId(t as u32), sub.spec.clone());
        match (expect, &got) {
            (Expect::Admit, Ok(id)) => {
                soak_check!(
                    id.0 == next_id,
                    "job ids are dense: want {next_id}, got {id}"
                );
                mirror[t].admitted += 1;
                ledger_if[t] += 1;
                ledger_steps[t] += steps;
                ledger_bytes[t] += bytes;
                queued_total += 1;
                queues[t].push_back((next_id, i));
                next_id += 1;
            }
            (Expect::Backpressure, Err(simd2_serve::Rejected::Backpressure { .. })) => {
                mirror[t].rejected_backpressure += 1;
            }
            (Expect::Quota, Err(simd2_serve::Rejected::QuotaExceeded { .. })) => {
                mirror[t].rejected_quota += 1;
            }
            (Expect::Malformed, Err(simd2_serve::Rejected::Malformed { .. })) => {
                mirror[t].rejected_malformed += 1;
            }
            _ => soak_check!(
                false,
                "submission {i} (tenant {t}): expected {expect:?}, got {got:?}"
            ),
        }
    }

    // --- Scheduling phase: weighted-round-robin prediction. ----------
    let admitted: u64 = mirror.iter().map(|m| m.admitted).sum();
    let executed = svc.run_until_idle();
    // With resume armed the drain loop is simulated exactly (suspended
    // jobs re-enter the back of their tenant's queue); otherwise plain
    // WRR, one round per admitted job.
    let sim = if resume_cfg.armed() {
        Some(simulate_resume(
            ep,
            subs,
            &queues,
            resume_cfg.quantum,
            resume_cfg.max_resumes,
            (degrade_cfg.sequential_after_panics != 0)
                .then_some(degrade_cfg.sequential_after_panics),
        ))
    } else {
        None
    };
    let (expected_order, preds, want_rounds) = match sim.as_ref() {
        Some(s) => (s.order.clone(), Some(&s.preds), s.rounds),
        None => {
            let mut order: Vec<(usize, u64, usize)> = Vec::new();
            loop {
                let mut progressed = false;
                for (t, queue) in queues.iter_mut().enumerate() {
                    for _ in 0..ep.weights[t].max(1) {
                        let Some((id, i)) = queue.pop_front() else {
                            break;
                        };
                        order.push((t, id, i));
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            (order, None, admitted)
        }
    };
    soak_check!(
        executed as u64 == want_rounds,
        "run_until_idle ran {executed} rounds, predicted {want_rounds} \
         (admitted {admitted})"
    );

    // --- Outcome phase: exactly-one-terminal + bit identity. ---------
    let mut oracle: HashMap<PlanKey, Matrix> = HashMap::new();
    let mut mirror_cache: HashSet<PlanKey> = HashSet::new();
    // Steps actually dispatched from multi-tile plans: in panic mode,
    // each one strikes the probe exactly once.
    let mut tall_steps = 0u64;
    let outcomes = svc.take_outcomes();
    soak_check!(
        outcomes.len() == expected_order.len(),
        "outcome count {} != admitted {}",
        outcomes.len(),
        expected_order.len()
    );
    // Mirror breakers, advanced in lock-step with the outcome stream:
    // the scheduler's gate decisions must replay this state machine
    // exactly.
    let mut ten_breakers = vec![Breaker::new(); ep.tenants];
    let mut plan_breakers: HashMap<PlanKey, Breaker> = HashMap::new();
    for (pos, (outcome, &(t, id, i))) in outcomes.iter().zip(&expected_order).enumerate() {
        soak_check!(
            outcome.tenant == TenantId(t as u32) && outcome.job.0 == id,
            "WRR order diverged: expected tenant {t} job {id}, got {} {}",
            outcome.tenant,
            outcome.job
        );
        let sub = &subs[i];
        let steps = sub.plan.step_count() as u64;
        let key = sub.plan.cache_key();
        let budget = sub.spec.deadline.budget();
        let pred = preds.map(|p| p[pos]);
        match &outcome.status {
            JobStatus::Completed {
                output,
                cache_hit,
                recovered,
                executed_steps,
            } => {
                mirror[t].completed += 1;
                mirror[t].executed_steps += executed_steps;
                if sub.tall {
                    tall_steps += executed_steps;
                }
                if *cache_hit {
                    mirror[t].cache_hits += 1;
                }
                match pred {
                    // Resume modes: the simulator owns the cache and
                    // completion prediction (a cold completion of an
                    // already-cached key is legal while the original
                    // holder is suspended).
                    Some(Pred::CacheHit) => {
                        soak_check!(
                            *cache_hit && *executed_steps == 0,
                            "predicted cache hit, got cold completion"
                        );
                    }
                    Some(Pred::Done) => {
                        soak_check!(
                            !*cache_hit && *executed_steps == steps,
                            "predicted cold completion, got cache_hit={cache_hit} \
                             executed={executed_steps} of {steps}"
                        );
                    }
                    Some(other) => {
                        soak_check!(false, "predicted {other:?}, job completed")
                    }
                    None => {
                        if *cache_hit {
                            soak_check!(
                                mirror_cache.contains(&key),
                                "cache hit for a key never completed cold"
                            );
                            soak_check!(*executed_steps == 0, "cache hit executed steps");
                        } else {
                            soak_check!(
                                !mirror_cache.contains(&key),
                                "cold run for a key already cached"
                            );
                            soak_check!(
                                budget.is_none_or(|b| b >= steps),
                                "completed past its deadline: budget {budget:?}, steps {steps}"
                            );
                            soak_check!(*executed_steps == steps, "cold run executed steps");
                            mirror_cache.insert(key);
                        }
                    }
                }
                match ep.mode {
                    ChaosMode::Clean => {
                        soak_check!(!recovered, "clean episode recovered a job")
                    }
                    ChaosMode::Panic => {
                        // Exactly the multi-tile jobs strike the probe
                        // (cache hits never execute, so never recover);
                        // single-tile jobs are never dragged into a
                        // recovery, whichever tenant runs next to the
                        // chaos.
                        let want = sub.tall && !*cache_hit;
                        soak_check!(
                            *recovered == want,
                            "panic isolation: tall={} cache_hit={cache_hit} but \
                             recovered={recovered} (tenant {t} job {id})",
                            sub.tall
                        );
                    }
                    // Resume rounds run clean; panic-resume handles
                    // panics by checkpointing, never by in-place
                    // recovery; sticky episodes either fail or run
                    // fault-free.
                    ChaosMode::Resume | ChaosMode::PanicResume | ChaosMode::Sticky => {
                        soak_check!(
                            !recovered,
                            "{:?} episode recovered a completed job",
                            ep.mode
                        );
                    }
                    ChaosMode::VectorPin => {
                        if scalar_host {
                            soak_check!(
                                !recovered,
                                "scalar leg: vector-only faults must never arm"
                            );
                        }
                    }
                    ChaosMode::Faults => {}
                }
                let want = oracle.entry(key).or_insert_with(|| clean_replay(&sub.plan));
                soak_check!(
                    output.shape() == want.shape(),
                    "completed output shape diverged"
                );
                for (x, y) in output.as_slice().iter().zip(want.as_slice()) {
                    soak_check!(
                        x.to_bits() == y.to_bits(),
                        "tenant {t} job {id}: completed output diverged from the \
                         clean sequential reference (poisoned={})",
                        sub.poisoned
                    );
                }
            }
            JobStatus::Expired {
                executed_steps,
                budget: got_budget,
                total_steps,
                resumed_from,
                checkpoint,
                resumable,
            } => {
                mirror[t].expired += 1;
                mirror[t].executed_steps += executed_steps;
                if sub.tall {
                    tall_steps += executed_steps;
                }
                if let Some(p) = pred {
                    let Pred::Expired {
                        executed,
                        resumed_from: want_resumes,
                        resumable: want_resumable,
                    } = p
                    else {
                        soak_check!(false, "predicted {p:?}, job expired");
                        unreachable!()
                    };
                    soak_check!(
                        *executed_steps == executed
                            && *resumed_from == want_resumes
                            && *resumable == want_resumable,
                        "resume expiry accounting: executed {executed_steps} (want \
                         {executed}), resumed_from {resumed_from} (want \
                         {want_resumes}), resumable {resumable} (want {want_resumable})"
                    );
                    soak_check!(
                        *got_budget == budget.unwrap_or(0)
                            && *total_steps == steps
                            && *checkpoint == Some(key),
                        "expiry identity: budget {got_budget}, total {total_steps}, \
                         checkpoint {checkpoint:?}"
                    );
                } else {
                    let b = budget.unwrap_or(u64::MAX);
                    soak_check!(
                        !mirror_cache.contains(&key),
                        "a cached job expired instead of hitting"
                    );
                    soak_check!(
                        b < steps && *got_budget == b && *total_steps == steps,
                        "expiry accounting: budget {got_budget} (want {b}), total \
                         {total_steps} (want {steps})"
                    );
                    soak_check!(
                        *executed_steps == b.min(steps),
                        "expired after {executed_steps} steps, predicted {}",
                        b.min(steps)
                    );
                    soak_check!(
                        *resumed_from == 0 && checkpoint.is_none() && !resumable,
                        "resume accounting in a non-resume episode: resumed_from \
                         {resumed_from}, checkpoint {checkpoint:?}, resumable {resumable}"
                    );
                }
            }
            JobStatus::Failed {
                step,
                executed_steps,
                error,
            } => {
                mirror[t].failed += 1;
                mirror[t].executed_steps += executed_steps;
                if let Some(p) = pred {
                    soak_check!(
                        p == Pred::Failed,
                        "unpredicted failure in a resume episode: {error}"
                    );
                } else {
                    let failures_allowed = matches!(ep.mode, ChaosMode::Faults | ChaosMode::Sticky)
                        || (ep.mode == ChaosMode::VectorPin && !scalar_host);
                    soak_check!(
                        failures_allowed,
                        "job failed outside a fault episode: {error}"
                    );
                }
                soak_check!(
                    (*step as u64) < steps && executed_steps < &steps && !error.is_empty(),
                    "failure attribution: step {step}, executed {executed_steps}, \
                     of {steps}"
                );
            }
            JobStatus::Quarantined {
                key: got_key,
                trips,
            } => {
                mirror[t].quarantined += 1;
                soak_check!(
                    breaker_cfg.armed() && pred.is_none(),
                    "quarantine outside a breaker episode"
                );
                soak_check!(
                    *got_key == key && *trips >= breaker_cfg.quarantine_after,
                    "quarantine identity: key {got_key:?} (want {key:?}), trips {trips}"
                );
            }
        }
        // Replay the scheduler's pre-execution breaker gate and outcome
        // recording against the mirror state machine.
        if breaker_cfg.armed() {
            let quarantined = plan_breakers
                .get(&key)
                .is_some_and(|b| b.quarantined(&breaker_cfg));
            if quarantined {
                let trips = plan_breakers[&key].trips();
                soak_check!(
                    matches!(&outcome.status, JobStatus::Quarantined { trips: got, .. } if *got == trips),
                    "mirror predicted quarantine (trips {trips}), got {}",
                    outcome.status.label()
                );
            } else if !plan_breakers.entry(key).or_default().admit(&breaker_cfg) {
                soak_check!(
                    matches!(&outcome.status, JobStatus::Failed { error, .. }
                        if error.contains("circuit breaker open for plan")),
                    "mirror predicted a plan short-circuit, got {}",
                    outcome.status.label()
                );
                mirror[t].breaker_short_circuits += 1;
            } else if !ten_breakers[t].admit(&breaker_cfg) {
                soak_check!(
                    matches!(&outcome.status, JobStatus::Failed { error, .. }
                        if error.contains("circuit breaker open for tenant")),
                    "mirror predicted a tenant short-circuit, got {}",
                    outcome.status.label()
                );
                mirror[t].breaker_short_circuits += 1;
            } else {
                match &outcome.status {
                    JobStatus::Completed { cache_hit, .. } => {
                        // Cache hits never executed: breaker-neutral.
                        if !cache_hit {
                            ten_breakers[t].record_success();
                            if let Some(b) = plan_breakers.get_mut(&key) {
                                b.record_success();
                            }
                        }
                    }
                    JobStatus::Failed { error, .. } => {
                        soak_check!(
                            !error.contains("circuit breaker open"),
                            "short-circuit without an open mirror breaker: {error}"
                        );
                        let mut trips = 0u64;
                        if ten_breakers[t].record_failure(&breaker_cfg) {
                            trips += 1;
                        }
                        if plan_breakers
                            .entry(key)
                            .or_default()
                            .record_failure(&breaker_cfg)
                        {
                            trips += 1;
                        }
                        mirror[t].breaker_trips += trips;
                    }
                    JobStatus::Expired { .. } => {}
                    JobStatus::Quarantined { .. } => {
                        soak_check!(false, "quarantine the mirror did not predict")
                    }
                }
            }
        }
    }

    // --- Telemetry phase: events == stats == mirror. -----------------
    if let Some(s) = sim.as_ref() {
        for t in 0..ep.tenants {
            mirror[t].suspended = s.suspended[t];
            mirror[t].resumed = s.resumed[t];
        }
    }
    let events = sink.events();
    for t in 0..ep.tenants {
        let stats = svc.tenant_stats(TenantId(t as u32)).expect("registered");
        let count = |stage: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.is_stage(span::SERVE, stage))
                .filter(|e| e.u64("tenant") == Some(t as u64))
                .count() as u64
        };
        let pairs: [(&str, u64); 14] = [
            ("submitted", stats.submitted),
            ("admitted", stats.admitted),
            ("rejected_backpressure", stats.rejected_backpressure),
            ("rejected_quota", stats.rejected_quota),
            ("rejected_malformed", stats.rejected_malformed),
            ("completed", stats.completed),
            ("expired", stats.expired),
            ("failed", stats.failed),
            ("cache_hit", stats.cache_hits),
            ("suspended", stats.suspended),
            ("resumed", stats.resumed),
            ("breaker_short_circuit", stats.breaker_short_circuits),
            ("breaker_trip", stats.breaker_trips),
            ("quarantined", stats.quarantined),
        ];
        for (stage, want) in pairs {
            soak_check!(
                count(stage) == want,
                "tenant {t}: {stage} events ({}) != scheduler tally ({want})",
                count(stage)
            );
        }
        soak_check!(
            count("recovered") == stats.recovered,
            "tenant {t}: recovered events != stats"
        );
        // Per-round step accounting: the executed_steps fields on the
        // tenant's terminal + suspension events sum to the exact tally,
        // so no wave is double-counted across suspensions.
        let step_stages = ["completed", "expired", "failed", "quarantined", "suspended"];
        let step_sum: u64 = events
            .iter()
            .filter(|e| step_stages.iter().any(|s| e.is_stage(span::SERVE, s)))
            .filter(|e| e.u64("tenant") == Some(t as u64))
            .filter_map(|e| e.u64("executed_steps"))
            .sum();
        soak_check!(
            step_sum == stats.executed_steps,
            "tenant {t}: per-round event steps ({step_sum}) != scheduler tally ({})",
            stats.executed_steps
        );
        let m = &mirror[t];
        let flat = MirrorStats {
            submitted: stats.submitted,
            admitted: stats.admitted,
            rejected_backpressure: stats.rejected_backpressure,
            rejected_quota: stats.rejected_quota,
            rejected_malformed: stats.rejected_malformed,
            completed: stats.completed,
            expired: stats.expired,
            failed: stats.failed,
            cache_hits: stats.cache_hits,
            executed_steps: stats.executed_steps,
            suspended: stats.suspended,
            resumed: stats.resumed,
            breaker_short_circuits: stats.breaker_short_circuits,
            breaker_trips: stats.breaker_trips,
            quarantined: stats.quarantined,
        };
        soak_check!(
            flat == *m,
            "tenant {t}: scheduler tallies {flat:?} != soak mirror {m:?}"
        );
        soak_check!(
            svc.tenant_ledger(TenantId(t as u32)) == Some(Default::default()),
            "tenant {t}: ledger not drained to zero"
        );

        let row = totals.slo.entry(t as u32).or_default();
        row.episodes += 1;
        row.submitted += stats.submitted;
        row.admitted += stats.admitted;
        row.rejected_backpressure += stats.rejected_backpressure;
        row.rejected_quota += stats.rejected_quota;
        row.rejected_malformed += stats.rejected_malformed;
        row.completed += stats.completed;
        row.expired += stats.expired;
        row.failed += stats.failed;
        row.recovered += stats.recovered;
        row.cache_hits += stats.cache_hits;
        row.deadline_misses += stats.expired;
        row.suspended += stats.suspended;
        row.resumed += stats.resumed;
        row.breaker_short_circuits += stats.breaker_short_circuits;
        row.breaker_trips += stats.breaker_trips;
        row.quarantined += stats.quarantined;
        row.fault_dropped += stats.fault_log_dropped;
        totals.submissions += stats.submitted;
        totals.admitted += stats.admitted;
        totals.rejected += stats.rejected();
        totals.completed += stats.completed;
        totals.expired += stats.expired;
        totals.failed += stats.failed;
        totals.recovered += stats.recovered;
        totals.cache_hits += stats.cache_hits;
        totals.suspended += stats.suspended;
        totals.resumed += stats.resumed;
        totals.breaker_trips += stats.breaker_trips;
        totals.quarantined += stats.quarantined;
        totals.fault_dropped += stats.fault_log_dropped;
    }

    // The per-tenant attribution of injector ring-buffer drops must
    // account for every drop the backend saw.
    let dropped_total: u64 = (0..ep.tenants)
        .map(|t| {
            svc.tenant_stats(TenantId(t as u32))
                .expect("registered")
                .fault_log_dropped
        })
        .sum();
    soak_check!(
        dropped_total == svc.fault_log_dropped(),
        "fault-log drop attribution: tenants saw {dropped_total}, backend {}",
        svc.fault_log_dropped()
    );

    let recovery = svc.recovery_stats();
    match ep.mode {
        ChaosMode::Clean => soak_check!(
            recovery.detections == 0 && recovery.panic_recoveries == 0,
            "clean episode saw recovery activity: {recovery:?}"
        ),
        ChaosMode::Panic => {
            soak_check!(
                recovery.panic_recoveries == tall_steps,
                "panic episode: {} multi-tile steps dispatched but {} panic \
                 recoveries",
                tall_steps,
                recovery.panic_recoveries
            );
        }
        ChaosMode::Faults => soak_check!(
            recovery.fallbacks == 0,
            "retry-only policy must never fall back"
        ),
        ChaosMode::Resume => {
            soak_check!(
                recovery.detections == 0 && recovery.worker_panics == 0 && recovery.retries == 0,
                "resume episode saw recovery activity: {recovery:?}"
            );
            // Counter-verified: across every suspension and resumption,
            // the backend dispatched each plan step exactly once.
            let total_steps: u64 = mirror.iter().map(|m| m.executed_steps).sum();
            let mmos = Backend::op_count(svc.resilient()).matrix_mmos;
            soak_check!(
                mmos == total_steps,
                "resume episode re-executed completed waves: {mmos} mmos \
                 dispatched for {total_steps} accounted steps"
            );
        }
        ChaosMode::Sticky => {
            soak_check!(
                recovery.fallbacks == 0,
                "retry-only policy must never fall back"
            );
            // The service's breakers ended in the mirror's exact state.
            for (t, want) in ten_breakers.iter().enumerate() {
                let got = svc.tenant_breaker(TenantId(t as u32));
                soak_check!(
                    got == Some(*want),
                    "tenant {t} breaker diverged from the mirror: {got:?} vs {want:?}"
                );
            }
            for (key, want) in &plan_breakers {
                let got = svc.plan_breaker(*key);
                soak_check!(
                    got == Some(*want),
                    "plan breaker diverged from the mirror: {got:?} vs {want:?}"
                );
            }
        }
        ChaosMode::PanicResume => {
            let strikes = sim.as_ref().map_or(0, |s| s.strikes);
            soak_check!(
                recovery.panic_recoveries == 0,
                "resume owns panic handling: no in-place recovery, got {}",
                recovery.panic_recoveries
            );
            soak_check!(
                recovery.worker_panics == strikes,
                "panic-resume strikes: backend saw {}, simulator predicted {strikes}",
                recovery.worker_panics
            );
            let degrade = svc.degrade_state();
            soak_check!(
                degrade.panic_strikes == strikes
                    && degrade.sequential == (strikes >= degrade_cfg.sequential_after_panics),
                "degradation ladder accounting: {degrade:?} vs {strikes} strikes"
            );
        }
        ChaosMode::VectorPin => {
            soak_check!(
                recovery.fallbacks == 0,
                "retry-only policy must never fall back"
            );
            let degrade = svc.degrade_state();
            if scalar_host {
                soak_check!(
                    recovery.detections == 0 && !degrade.scalar_pinned,
                    "scalar leg: vector-only injection armed anyway: {recovery:?}"
                );
            } else {
                soak_check!(
                    degrade.scalar_pinned
                        == (degrade.vector_detections >= degrade_cfg.scalar_after_detections),
                    "scalar-pin rung accounting: {degrade:?}"
                );
                if degrade.scalar_pinned {
                    soak_check!(
                        Backend::kernel_isa(svc.resilient()) == KernelIsa::Scalar,
                        "pinned service still reports a vector kernel tier"
                    );
                }
            }
        }
    }
    totals.panic_recoveries += recovery.panic_recoveries;
    totals.detections += recovery.detections;
    Ok(())
}

/// Deterministic sparse-serving episode (`--sparse`): the two
/// streaming-update registry apps, expanded at admission into plans
/// with CSR-declared delta slots, served over a `SparseTiledBackend`
/// worker pool with the serving pass pipeline and a round quantum
/// armed. Runs on whichever kernel dispatch leg the host provides —
/// re-run under `SIMD2_FORCE_SCALAR=1` to cover the scalar leg.
///
/// Asserts: every job (including a cross-tenant duplicate per app)
/// lands `Completed` bit-identical to a clean sequential dense replay,
/// suspensions balance resumptions, and the compressed kernels
/// genuinely executed (`sparse_mmos` / `skipped_terms` nonzero).
fn run_sparse_episode(seed: u64) -> Result<(), Violation> {
    use simd2_sparse::SparseTiledBackend;
    let config = ServeConfig {
        max_queued_jobs: 64,
        cache_capacity: 1024,
        policy: RecoveryPolicy::Retry { attempts: 2 },
        batched: true,
        optimize_plans: true,
        resume: ResumeConfig {
            quantum: 4,
            max_resumes: 64,
        },
        ..ServeConfig::default()
    };
    let inner = SparseTiledBackend::new().with_parallelism(Parallelism::Threads(4));
    let mut svc = PlanService::new(inner, config);
    svc.register_tenant(TenantId(0), TenantQuota::default().with_weight(2));
    svc.register_tenant(TenantId(1), TenantQuota::default().with_weight(1));

    // The admission expansion is deterministic per (app, n, seed):
    // recompute it locally for the clean-replay oracles. Tenant 1
    // duplicates tenant 0's submissions, probing the plan cache (or a
    // legal cold re-run while the original holder is suspended).
    let mut wants: HashMap<u64, (AppKind, Matrix)> = HashMap::new();
    for app in AppKind::streaming() {
        for (tenant, n) in [(0u32, 32usize), (1, 32), (0, 24)] {
            let run = harness::run_app(
                &mut TiledBackend::new(),
                app,
                n,
                seed,
                ClosureAlgorithm::Leyzorek,
                true,
            );
            soak_check!(
                run.passed() && run.plan.has_sparse_slots(),
                "sparse episode: {app:?} n={n} failed local validation \
                 (diff {}, sparse_slots {})",
                run.diff,
                run.plan.has_sparse_slots()
            );
            let id = match svc.submit(TenantId(tenant), JobSpec::app(app, n, seed)) {
                Ok(id) => id,
                Err(e) => {
                    return Err(Violation {
                        what: format!("sparse episode: {app:?} n={n} rejected: {e:?}"),
                    })
                }
            };
            wants.insert(id.0, (app, clean_replay(&run.plan)));
        }
    }
    svc.run_until_idle();

    let outcomes = svc.take_outcomes();
    soak_check!(
        outcomes.len() == wants.len(),
        "sparse episode: {} outcomes for {} submissions",
        outcomes.len(),
        wants.len()
    );
    let mut cache_hits = 0u64;
    for outcome in &outcomes {
        let (app, want) = &wants[&outcome.job.0];
        let JobStatus::Completed {
            output, cache_hit, ..
        } = &outcome.status
        else {
            return Err(Violation {
                what: format!(
                    "sparse episode: {app:?} job {} must complete, got {}",
                    outcome.job,
                    outcome.status.label()
                ),
            });
        };
        cache_hits += u64::from(*cache_hit);
        soak_check!(
            output.shape() == want.shape(),
            "sparse episode: {app:?} output shape diverged"
        );
        for (x, y) in output.as_slice().iter().zip(want.as_slice()) {
            soak_check!(
                x.to_bits() == y.to_bits(),
                "sparse episode: {app:?} job {} diverged from the clean \
                 sequential dense replay",
                outcome.job
            );
        }
    }
    let mut suspended = 0u64;
    let mut resumed = 0u64;
    for t in 0..2 {
        let stats = svc.tenant_stats(TenantId(t)).expect("registered");
        suspended += stats.suspended;
        resumed += stats.resumed;
    }
    soak_check!(
        suspended > 0 && suspended == resumed,
        "sparse episode: quantum must suspend and resume in balance \
         (suspended {suspended}, resumed {resumed})"
    );
    let counts = svc.resilient().inner().sparse_count();
    soak_check!(
        counts.sparse_mmos > 0 && counts.skipped_terms > 0,
        "sparse episode: compressed kernels never executed: {counts:?}"
    );
    println!(
        "serve_soak sparse PASS: seed={seed} isa={:?} jobs={} cache-hits={cache_hits} \
         suspended={suspended} sparse-mmos={} skipped-terms={}",
        Backend::kernel_isa(svc.resilient()),
        outcomes.len(),
        counts.sparse_mmos,
        counts.skipped_terms,
    );
    Ok(())
}

fn arg(name: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Writes the per-tenant SLO aggregates as JSON lines.
fn export_slo(seed: u64, totals: &Totals) -> std::io::Result<String> {
    let dir = std::path::Path::new("results/telemetry");
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    let mut rows: Vec<(&u32, &SloRow)> = totals.slo.iter().collect();
    rows.sort_by_key(|(tenant, _)| **tenant);
    for (tenant, row) in rows {
        json_line_into(
            &mut out,
            "serve_slo",
            EventKind::Instant,
            &[
                field("seed", seed),
                field("tenant", u64::from(*tenant)),
                field("episodes", row.episodes),
                field("submitted", row.submitted),
                field("admitted", row.admitted),
                field("rejected_backpressure", row.rejected_backpressure),
                field("rejected_quota", row.rejected_quota),
                field("rejected_malformed", row.rejected_malformed),
                field("completed", row.completed),
                field("expired", row.expired),
                field("failed", row.failed),
                field("recovered", row.recovered),
                field("cache_hits", row.cache_hits),
                field("deadline_misses", row.deadline_misses),
                field("suspended", row.suspended),
                field("resumed", row.resumed),
                field("breaker_short_circuits", row.breaker_short_circuits),
                field("breaker_trips", row.breaker_trips),
                field("quarantined", row.quarantined),
                field("fault_dropped", row.fault_dropped),
            ],
        );
        out.push('\n');
    }
    let path = dir.join("serve_soak.jsonl");
    std::fs::write(&path, &out)?;
    Ok(path.display().to_string())
}

fn main() {
    let seed = arg("--seed", 2022);
    let seconds = arg("--seconds", 10);
    let iter_cap = arg("--iters", 0);
    if std::env::args().any(|a| a == "--sparse") {
        if let Err(v) = run_sparse_episode(seed) {
            eprintln!("serve_soak VIOLATION in the sparse episode: {}", v.what);
            std::process::exit(1);
        }
        return;
    }
    println!(
        "serve_soak: seed={seed} budget={seconds}s episode-cap={}  \
         modes={{clean,faults,panic,resume,sticky,panic-resume,vector-pin}} \
         tenants=2..4 jobs/tenant=3..8 ppm={{20k,200k}} cache-dups~1/4 poison~1/8",
        if iter_cap == 0 {
            "none".to_owned()
        } else {
            iter_cap.to_string()
        }
    );

    // Probe panics are contained by design; keep the default hook for
    // anything else so genuine defects still print a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let is_probe = payload
            .downcast_ref::<String>()
            .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            })
            .unwrap_or(false);
        if !is_probe {
            default_hook(info);
        }
    }));

    let mut rng = Rng(seed);
    let mut totals = Totals::default();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    while Instant::now() < deadline && (iter_cap == 0 || totals.episodes < iter_cap) {
        let ep = draw_episode(&mut rng);
        let subs = draw_submissions(&ep, &mut rng);
        if let Err(v) = run_episode(&ep, &subs, &mut totals) {
            eprintln!(
                "serve_soak VIOLATION at episode {}: {}",
                totals.episodes, v.what
            );
            eprintln!("  params: {ep:?}");
            std::process::exit(1);
        }
        totals.episodes += 1;
    }

    match export_slo(seed, &totals) {
        Ok(path) => println!("serve_soak SLO export: {path}"),
        Err(e) => {
            eprintln!("serve_soak: SLO export failed: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "serve_soak PASS: {} episodes  submissions={} admitted={} rejected={} \
         completed={} expired={} failed={} recovered={} cache-hits={} \
         panic-recoveries={} detections={} suspended={} resumed={} \
         breaker-trips={} quarantined={} fault-dropped={}",
        totals.episodes,
        totals.submissions,
        totals.admitted,
        totals.rejected,
        totals.completed,
        totals.expired,
        totals.failed,
        totals.recovered,
        totals.cache_hits,
        totals.panic_recoveries,
        totals.detections,
        totals.suspended,
        totals.resumed,
        totals.breaker_trips,
        totals.quarantined,
        totals.fault_dropped,
    );
}
