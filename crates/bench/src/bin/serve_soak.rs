//! Randomized multi-tenant soak for the `simd2-serve` plan service.
//!
//! A seeded, time-bounded episode loop. Each episode builds a fresh
//! [`PlanService`] in one of three chaos modes — clean, transient-fault
//! injected, or worker-panic armed — registers 2–4 tenants with
//! randomized quotas and scheduler weights, and drives a randomized
//! batch of submissions (op × shape × chain length × deadline × cache
//! duplicates × quota probes × malformed probes × NaN-poisoned inputs),
//! then asserts:
//!
//! 1. **Explicit admission** — every submission's accept/reject
//!    response matches an arithmetic mirror of the admission controller
//!    (backpressure gate, then in-flight / queued-step / queued-byte
//!    quotas, in order); nothing is silently dropped.
//! 2. **Deterministic scheduling** — terminal outcomes arrive exactly
//!    in the weighted-round-robin order predicted from the tenant
//!    weights and queue contents.
//! 3. **Exactly-one terminal** — every admitted job lands exactly one
//!    [`JobStatus`]; over-deadline jobs expire at the predicted step
//!    boundary with exact partial-work accounting; only fault-injected
//!    episodes may fail, and failures carry the failing step.
//! 4. **Bit identity** — 100% of completed jobs (cold, cache-hit,
//!    recovered, or NaN-poisoned) match a clean sequential replay of
//!    their plan bit for bit: one tenant's chaos never corrupts
//!    another's results.
//! 5. **Isolation** — in panic mode only the chaos tenant's multi-tile
//!    jobs recover from panics; calm tenants complete unrecovered. In
//!    clean mode nothing recovers or fails.
//! 6. **Telemetry lock-step** — per-tenant counters derived from
//!    [`span::SERVE`] events equal the scheduler's [`TenantStats`]
//!    exactly, field by field, and both equal the soak's own mirror.
//!
//! At exit the per-tenant SLO aggregates (admitted / rejected / expired
//! / recovered / deadline-miss counts) are exported to
//! `results/telemetry/serve_soak.jsonl`.
//!
//! Usage: `cargo run -p simd2-bench --bin serve_soak [--seed S]
//! [--seconds T] [--iters N]`. The episode stream is a pure function of
//! the seed; any violation prints the failing episode's parameters and
//! exits 1.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simd2::solve::ClosureAlgorithm;
use simd2::{
    Backend, Parallelism, Plan, PlanBuilder, PlanExecutor, PlanKey, RecoveryPolicy, RetryBackoff,
    TiledBackend,
};
use simd2_apps::{harness, AppKind};
use simd2_fault::{
    AbftConfig, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PanicProbeUnit, PlannedInjector,
    PANIC_PROBE_PAYLOAD,
};
use simd2_matrix::{gen, Matrix, ISA_TILE};
use simd2_mxu::Simd2Unit;
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_serve::{
    plan_input_bytes, Deadline, JobSpec, JobStatus, PlanService, ServeConfig, TenantId, TenantQuota,
};
use simd2_trace::{field, json_line_into, span, EventKind, RingSink, Tracer};

/// SplitMix64: the soak's own deterministic parameter stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChaosMode {
    Clean,
    Faults,
    Panic,
}

/// One episode's randomized parameters.
#[derive(Debug)]
struct Episode {
    mode: ChaosMode,
    tenants: usize,
    weights: Vec<u32>,
    max_in_flight: Vec<usize>,
    max_queued_steps: Vec<u64>,
    max_queued_bytes: Vec<u64>,
    max_queued_jobs: usize,
    jobs_per_tenant: usize,
    ppm: u32,
    fault_seed: u64,
    workers: usize,
    data_seed: u64,
}

fn draw_episode(rng: &mut Rng) -> Episode {
    let mode = rng.pick(&[ChaosMode::Clean, ChaosMode::Faults, ChaosMode::Panic]);
    let tenants = 2 + rng.below(3) as usize;
    Episode {
        mode,
        tenants,
        weights: (0..tenants).map(|_| 1 + rng.below(3) as u32).collect(),
        max_in_flight: (0..tenants).map(|_| 2 + rng.below(6) as usize).collect(),
        max_queued_steps: (0..tenants).map(|_| 4 + rng.below(20)).collect(),
        max_queued_bytes: (0..tenants)
            .map(|_| rng.pick(&[24u64 << 10, 1 << 20, 64 << 20]))
            .collect(),
        max_queued_jobs: 6 + rng.below(18) as usize,
        jobs_per_tenant: 3 + rng.below(6) as usize,
        ppm: rng.pick(&[20_000u32, 200_000]),
        fault_seed: rng.next(),
        workers: rng.pick(&[2usize, 3, 4]),
        data_seed: rng.next(),
    }
}

/// What the soak expects back from one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    Admit,
    Backpressure,
    Quota,
    Malformed,
}

/// One submission the soak will make, with everything the mirror needs.
struct Submission {
    tenant: usize,
    spec: JobSpec,
    /// The plan behind the spec (regenerated locally for app payloads).
    plan: Plan,
    /// Whether the plan carries deliberate NaN inputs.
    poisoned: bool,
    /// Whether the plan spans more than one output tile row — in panic
    /// mode, exactly the jobs that strike the armed probe (regardless
    /// of which tenant ends up submitting a duplicate of them).
    tall: bool,
}

/// Records a `len`-step chain (D0 = A⊗B⊕C, Di = A⊗B⊕D(i-1)) over
/// in-domain side×side operands.
fn record_chain(op: OpKind, side: usize, len: usize, seed: u64, poison: bool) -> Plan {
    let mut a = gen::random_operands_for(op, side, side, seed);
    let mut b = gen::random_operands_for(op, side, side, seed ^ 0x5eed);
    // Pre-quantize to the backends' fp16 input precision so clean
    // results pass ABFT verification exactly (mirrors the engine soak).
    for v in a.as_mut_slice().iter_mut().chain(b.as_mut_slice()) {
        *v = quantize_f16(*v);
    }
    if poison {
        let idx = (seed % (side * side) as u64) as usize;
        a.as_mut_slice()[idx] = f32::NAN;
    }
    let c = Matrix::filled(side, side, op.reduce_identity_f32());
    let mut be = TiledBackend::new();
    let mut rec = PlanBuilder::over(&mut be);
    let mut acc = rec.mmo(op, &a, &b, &c).expect("recording step 0");
    for _ in 1..len {
        acc = rec.mmo(op, &a, &b, &acc).expect("recording chain step");
    }
    rec.finish()
}

/// The clean sequential reference every completed job must match bit
/// for bit.
fn clean_replay(plan: &Plan) -> Matrix {
    PlanExecutor::new()
        .run(plan, &mut TiledBackend::new())
        .expect("clean replay")
        .into_final_output()
        .expect("non-empty plan")
}

/// Draws one episode's submission batch. Tenant 0 is the chaos tenant:
/// in panic mode it gets the multi-tile jobs that strike the probe, and
/// in clean/panic modes it occasionally submits NaN-poisoned inputs.
fn draw_submissions(ep: &Episode, rng: &mut Rng) -> Vec<Submission> {
    let idempotent: Vec<OpKind> = ALL_OPS
        .iter()
        .copied()
        .filter(|op| op.reduce_is_idempotent())
        .collect();
    let mut subs: Vec<Submission> = Vec::new();
    for tenant in 0..ep.tenants {
        for _ in 0..ep.jobs_per_tenant {
            // 1-in-4: resubmit an earlier plan verbatim (cache probe).
            if rng.below(4) == 0 {
                if let Some(prev) = subs.get(rng.below(subs.len().max(1) as u64) as usize) {
                    let deadline = prev.spec.deadline;
                    let plan = prev.plan.clone();
                    let (poisoned, tall) = (prev.poisoned, prev.tall);
                    subs.push(Submission {
                        tenant,
                        spec: JobSpec::plan(plan.clone()).with_deadline(deadline),
                        plan,
                        poisoned,
                        tall,
                    });
                    continue;
                }
            }
            // 1-in-8 in clean mode: a registry-app payload.
            if ep.mode == ChaosMode::Clean && rng.below(8) == 0 {
                let app = rng.pick(&AppKind::all());
                let n = rng.pick(&[16usize, 32]);
                let seed = rng.below(2);
                let mut recorder = TiledBackend::new();
                let run = harness::run_app(
                    &mut recorder,
                    app,
                    n,
                    seed,
                    ClosureAlgorithm::Leyzorek,
                    true,
                );
                subs.push(Submission {
                    tenant,
                    spec: JobSpec::app(app, n, seed),
                    plan: run.plan,
                    poisoned: false,
                    tall: n > ISA_TILE,
                });
                continue;
            }
            let op = if ep.mode == ChaosMode::Faults {
                rng.pick(&idempotent)
            } else {
                rng.pick(&ALL_OPS)
            };
            let side = match (ep.mode, tenant) {
                // Chaos tenant's jobs span >= 3 tile rows: the probe
                // (armed at tile row 1) strikes every parallel mmo.
                (ChaosMode::Panic, 0) => 2 * ISA_TILE + 1 + rng.below(31) as usize,
                // Calm tenants stay within one tile row: sequential
                // path, never strikes.
                (ChaosMode::Panic, _) => 5 + rng.below(ISA_TILE as u64 - 4) as usize,
                _ => 5 + rng.below(36) as usize,
            };
            let len = 1 + rng.below(3) as usize;
            let poison = ep.mode != ChaosMode::Faults && tenant == 0 && rng.below(8) == 0;
            let plan = record_chain(op, side, len, ep.data_seed ^ rng.next(), poison);
            let deadline = if rng.below(4) == 0 {
                Deadline::Steps(rng.below(len as u64 + 2))
            } else {
                Deadline::None
            };
            subs.push(Submission {
                tenant,
                spec: JobSpec::plan(plan.clone()).with_deadline(deadline),
                plan,
                poisoned: poison,
                tall: side > ISA_TILE,
            });
        }
    }
    // A malformed probe: an empty plan, from a random tenant.
    let empty = PlanBuilder::over(&mut TiledBackend::new()).finish();
    subs.push(Submission {
        tenant: rng.below(ep.tenants as u64) as usize,
        spec: JobSpec::plan(empty.clone()),
        plan: empty,
        poisoned: false,
        tall: false,
    });
    subs
}

struct Violation {
    what: String,
}

macro_rules! soak_check {
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(Violation { what: format!($($fmt)*) });
        }
    };
}

/// Per-tenant mirror of what the service must report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct MirrorStats {
    submitted: u64,
    admitted: u64,
    rejected_backpressure: u64,
    rejected_quota: u64,
    rejected_malformed: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    cache_hits: u64,
    executed_steps: u64,
}

#[derive(Default)]
struct Totals {
    episodes: u64,
    submissions: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    recovered: u64,
    cache_hits: u64,
    panic_recoveries: u64,
    detections: u64,
    /// Aggregated per tenant index across episodes, for the SLO export.
    slo: HashMap<u32, SloRow>,
}

#[derive(Clone, Copy, Debug, Default)]
struct SloRow {
    episodes: u64,
    submitted: u64,
    admitted: u64,
    rejected_backpressure: u64,
    rejected_quota: u64,
    rejected_malformed: u64,
    completed: u64,
    expired: u64,
    failed: u64,
    recovered: u64,
    cache_hits: u64,
    deadline_misses: u64,
}

/// Builds the service for the episode's mode, runs the batch, and
/// checks every invariant.
fn run_episode(ep: &Episode, subs: &[Submission], totals: &mut Totals) -> Result<(), Violation> {
    match ep.mode {
        ChaosMode::Clean => {
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                ..ServeConfig::default()
            };
            check_episode(TiledBackend::new(), config, ep, subs, totals)
        }
        ChaosMode::Faults => {
            let plan =
                FaultPlan::new(FaultPlanConfig::new(ep.fault_seed).with_transient_nan_ppm(ep.ppm));
            let inner = TiledBackend::with_unit(FaultySimd2Unit::new(
                Simd2Unit::new(),
                PlannedInjector::new(plan),
            ));
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 32 },
                backoff: RetryBackoff::unbounded(),
                abft: AbftConfig {
                    witness_samples: usize::MAX,
                    ..AbftConfig::default()
                },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
        ChaosMode::Panic => {
            let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
            inner.set_parallelism(Parallelism::Threads(ep.workers));
            let config = ServeConfig {
                max_queued_jobs: ep.max_queued_jobs,
                cache_capacity: 1024,
                policy: RecoveryPolicy::Retry { attempts: 2 },
                ..ServeConfig::default()
            };
            check_episode(inner, config, ep, subs, totals)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn check_episode<B: Backend>(
    inner: B,
    config: ServeConfig,
    ep: &Episode,
    subs: &[Submission],
    totals: &mut Totals,
) -> Result<(), Violation> {
    let sink: Arc<RingSink> = RingSink::shared();
    let mut svc = PlanService::new(inner, config).with_tracer(Tracer::to(sink.clone()));
    for t in 0..ep.tenants {
        svc.register_tenant(
            TenantId(t as u32),
            TenantQuota::default()
                .with_weight(ep.weights[t])
                .with_max_in_flight(ep.max_in_flight[t])
                .with_max_queued_steps(ep.max_queued_steps[t])
                .with_max_queued_bytes(ep.max_queued_bytes[t]),
        );
    }

    // An unknown tenant is refused outright and appears in no ledger.
    let probe = svc.submit(TenantId(99), JobSpec::plan(subs[0].plan.clone()));
    soak_check!(
        matches!(probe, Err(simd2_serve::Rejected::Malformed { .. })),
        "unknown tenant must be rejected as malformed, got {probe:?}"
    );

    // --- Submission phase, mirrored arithmetically. ------------------
    let mut mirror = vec![MirrorStats::default(); ep.tenants];
    let mut ledger_if = vec![0usize; ep.tenants];
    let mut ledger_steps = vec![0u64; ep.tenants];
    let mut ledger_bytes = vec![0u64; ep.tenants];
    let mut queued_total = 0usize;
    // Admitted jobs per tenant, in order: (expected id, submission idx).
    let mut queues: Vec<VecDeque<(u64, usize)>> = vec![VecDeque::new(); ep.tenants];
    let mut next_id = 0u64;

    for (i, sub) in subs.iter().enumerate() {
        let t = sub.tenant;
        mirror[t].submitted += 1;
        let steps = sub.plan.step_count() as u64;
        let bytes = plan_input_bytes(&sub.plan);
        let expect = if sub.plan.is_empty() {
            Expect::Malformed
        } else if queued_total >= ep.max_queued_jobs {
            Expect::Backpressure
        } else if ledger_if[t] + 1 > ep.max_in_flight[t] {
            Expect::Quota
        } else if ledger_steps[t] + steps > ep.max_queued_steps[t]
            || ledger_bytes[t] + bytes > ep.max_queued_bytes[t]
        {
            Expect::Quota
        } else {
            Expect::Admit
        };
        let got = svc.submit(TenantId(t as u32), sub.spec.clone());
        match (expect, &got) {
            (Expect::Admit, Ok(id)) => {
                soak_check!(
                    id.0 == next_id,
                    "job ids are dense: want {next_id}, got {id}"
                );
                mirror[t].admitted += 1;
                ledger_if[t] += 1;
                ledger_steps[t] += steps;
                ledger_bytes[t] += bytes;
                queued_total += 1;
                queues[t].push_back((next_id, i));
                next_id += 1;
            }
            (Expect::Backpressure, Err(simd2_serve::Rejected::Backpressure { .. })) => {
                mirror[t].rejected_backpressure += 1;
            }
            (Expect::Quota, Err(simd2_serve::Rejected::QuotaExceeded { .. })) => {
                mirror[t].rejected_quota += 1;
            }
            (Expect::Malformed, Err(simd2_serve::Rejected::Malformed { .. })) => {
                mirror[t].rejected_malformed += 1;
            }
            _ => soak_check!(
                false,
                "submission {i} (tenant {t}): expected {expect:?}, got {got:?}"
            ),
        }
    }

    // --- Scheduling phase: weighted-round-robin prediction. ----------
    let admitted: u64 = mirror.iter().map(|m| m.admitted).sum();
    let executed = svc.run_until_idle();
    soak_check!(
        executed as u64 == admitted,
        "run_until_idle executed {executed}, admitted {admitted}"
    );
    let mut expected_order: Vec<(usize, u64, usize)> = Vec::new();
    loop {
        let mut progressed = false;
        for (t, queue) in queues.iter_mut().enumerate() {
            for _ in 0..ep.weights[t].max(1) {
                let Some((id, i)) = queue.pop_front() else {
                    break;
                };
                expected_order.push((t, id, i));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // --- Outcome phase: exactly-one-terminal + bit identity. ---------
    let mut oracle: HashMap<PlanKey, Matrix> = HashMap::new();
    let mut mirror_cache: HashSet<PlanKey> = HashSet::new();
    // Steps actually dispatched from multi-tile plans: in panic mode,
    // each one strikes the probe exactly once.
    let mut tall_steps = 0u64;
    let outcomes = svc.take_outcomes();
    soak_check!(
        outcomes.len() == expected_order.len(),
        "outcome count {} != admitted {}",
        outcomes.len(),
        expected_order.len()
    );
    for (outcome, &(t, id, i)) in outcomes.iter().zip(&expected_order) {
        soak_check!(
            outcome.tenant == TenantId(t as u32) && outcome.job.0 == id,
            "WRR order diverged: expected tenant {t} job {id}, got {} {}",
            outcome.tenant,
            outcome.job
        );
        let sub = &subs[i];
        let steps = sub.plan.step_count() as u64;
        let key = sub.plan.cache_key();
        let budget = sub.spec.deadline.budget();
        match &outcome.status {
            JobStatus::Completed {
                output,
                cache_hit,
                recovered,
                executed_steps,
            } => {
                mirror[t].completed += 1;
                mirror[t].executed_steps += executed_steps;
                if sub.tall {
                    tall_steps += executed_steps;
                }
                if *cache_hit {
                    mirror[t].cache_hits += 1;
                    soak_check!(
                        mirror_cache.contains(&key),
                        "cache hit for a key never completed cold"
                    );
                    soak_check!(*executed_steps == 0, "cache hit executed steps");
                } else {
                    soak_check!(
                        !mirror_cache.contains(&key),
                        "cold run for a key already cached"
                    );
                    soak_check!(
                        budget.is_none_or(|b| b >= steps),
                        "completed past its deadline: budget {budget:?}, steps {steps}"
                    );
                    soak_check!(*executed_steps == steps, "cold run executed steps");
                    mirror_cache.insert(key);
                }
                match ep.mode {
                    ChaosMode::Clean => {
                        soak_check!(!recovered, "clean episode recovered a job")
                    }
                    ChaosMode::Panic => {
                        // Exactly the multi-tile jobs strike the probe
                        // (cache hits never execute, so never recover);
                        // single-tile jobs are never dragged into a
                        // recovery, whichever tenant runs next to the
                        // chaos.
                        let want = sub.tall && !*cache_hit;
                        soak_check!(
                            *recovered == want,
                            "panic isolation: tall={} cache_hit={cache_hit} but \
                             recovered={recovered} (tenant {t} job {id})",
                            sub.tall
                        );
                    }
                    ChaosMode::Faults => {}
                }
                let want = oracle.entry(key).or_insert_with(|| clean_replay(&sub.plan));
                soak_check!(
                    output.shape() == want.shape(),
                    "completed output shape diverged"
                );
                for (x, y) in output.as_slice().iter().zip(want.as_slice()) {
                    soak_check!(
                        x.to_bits() == y.to_bits(),
                        "tenant {t} job {id}: completed output diverged from the \
                         clean sequential reference (poisoned={})",
                        sub.poisoned
                    );
                }
            }
            JobStatus::Expired {
                executed_steps,
                budget: got_budget,
                total_steps,
            } => {
                mirror[t].expired += 1;
                mirror[t].executed_steps += executed_steps;
                if sub.tall {
                    tall_steps += executed_steps;
                }
                let b = budget.unwrap_or(u64::MAX);
                soak_check!(
                    !mirror_cache.contains(&key),
                    "a cached job expired instead of hitting"
                );
                soak_check!(
                    b < steps && *got_budget == b && *total_steps == steps,
                    "expiry accounting: budget {got_budget} (want {b}), total \
                     {total_steps} (want {steps})"
                );
                soak_check!(
                    *executed_steps == b.min(steps),
                    "expired after {executed_steps} steps, predicted {}",
                    b.min(steps)
                );
            }
            JobStatus::Failed {
                step,
                executed_steps,
                error,
            } => {
                mirror[t].failed += 1;
                mirror[t].executed_steps += executed_steps;
                soak_check!(
                    ep.mode == ChaosMode::Faults,
                    "job failed outside the fault episode: {error}"
                );
                soak_check!(
                    (*step as u64) < steps && executed_steps < &steps && !error.is_empty(),
                    "failure attribution: step {step}, executed {executed_steps}, \
                     of {steps}"
                );
            }
        }
    }

    // --- Telemetry phase: events == stats == mirror. -----------------
    let events = sink.events();
    for t in 0..ep.tenants {
        let stats = svc.tenant_stats(TenantId(t as u32)).expect("registered");
        let count = |stage: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.is_stage(span::SERVE, stage))
                .filter(|e| e.u64("tenant") == Some(t as u64))
                .count() as u64
        };
        let pairs: [(&str, u64); 9] = [
            ("submitted", stats.submitted),
            ("admitted", stats.admitted),
            ("rejected_backpressure", stats.rejected_backpressure),
            ("rejected_quota", stats.rejected_quota),
            ("rejected_malformed", stats.rejected_malformed),
            ("completed", stats.completed),
            ("expired", stats.expired),
            ("failed", stats.failed),
            ("cache_hit", stats.cache_hits),
        ];
        for (stage, want) in pairs {
            soak_check!(
                count(stage) == want,
                "tenant {t}: {stage} events ({}) != scheduler tally ({want})",
                count(stage)
            );
        }
        soak_check!(
            count("recovered") == stats.recovered,
            "tenant {t}: recovered events != stats"
        );
        let m = &mirror[t];
        let flat = MirrorStats {
            submitted: stats.submitted,
            admitted: stats.admitted,
            rejected_backpressure: stats.rejected_backpressure,
            rejected_quota: stats.rejected_quota,
            rejected_malformed: stats.rejected_malformed,
            completed: stats.completed,
            expired: stats.expired,
            failed: stats.failed,
            cache_hits: stats.cache_hits,
            executed_steps: stats.executed_steps,
        };
        soak_check!(
            flat == *m,
            "tenant {t}: scheduler tallies {flat:?} != soak mirror {m:?}"
        );
        soak_check!(
            svc.tenant_ledger(TenantId(t as u32)) == Some(Default::default()),
            "tenant {t}: ledger not drained to zero"
        );

        let row = totals.slo.entry(t as u32).or_default();
        row.episodes += 1;
        row.submitted += stats.submitted;
        row.admitted += stats.admitted;
        row.rejected_backpressure += stats.rejected_backpressure;
        row.rejected_quota += stats.rejected_quota;
        row.rejected_malformed += stats.rejected_malformed;
        row.completed += stats.completed;
        row.expired += stats.expired;
        row.failed += stats.failed;
        row.recovered += stats.recovered;
        row.cache_hits += stats.cache_hits;
        row.deadline_misses += stats.expired;
        totals.submissions += stats.submitted;
        totals.admitted += stats.admitted;
        totals.rejected += stats.rejected();
        totals.completed += stats.completed;
        totals.expired += stats.expired;
        totals.failed += stats.failed;
        totals.recovered += stats.recovered;
        totals.cache_hits += stats.cache_hits;
    }

    let recovery = svc.recovery_stats();
    match ep.mode {
        ChaosMode::Clean => soak_check!(
            recovery.detections == 0 && recovery.panic_recoveries == 0,
            "clean episode saw recovery activity: {recovery:?}"
        ),
        ChaosMode::Panic => {
            soak_check!(
                recovery.panic_recoveries == tall_steps,
                "panic episode: {} multi-tile steps dispatched but {} panic \
                 recoveries",
                tall_steps,
                recovery.panic_recoveries
            );
        }
        ChaosMode::Faults => soak_check!(
            recovery.fallbacks == 0,
            "retry-only policy must never fall back"
        ),
    }
    totals.panic_recoveries += recovery.panic_recoveries;
    totals.detections += recovery.detections;
    Ok(())
}

fn arg(name: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Writes the per-tenant SLO aggregates as JSON lines.
fn export_slo(seed: u64, totals: &Totals) -> std::io::Result<String> {
    let dir = std::path::Path::new("results/telemetry");
    std::fs::create_dir_all(dir)?;
    let mut out = String::new();
    let mut rows: Vec<(&u32, &SloRow)> = totals.slo.iter().collect();
    rows.sort_by_key(|(tenant, _)| **tenant);
    for (tenant, row) in rows {
        json_line_into(
            &mut out,
            "serve_slo",
            EventKind::Instant,
            &[
                field("seed", seed),
                field("tenant", u64::from(*tenant)),
                field("episodes", row.episodes),
                field("submitted", row.submitted),
                field("admitted", row.admitted),
                field("rejected_backpressure", row.rejected_backpressure),
                field("rejected_quota", row.rejected_quota),
                field("rejected_malformed", row.rejected_malformed),
                field("completed", row.completed),
                field("expired", row.expired),
                field("failed", row.failed),
                field("recovered", row.recovered),
                field("cache_hits", row.cache_hits),
                field("deadline_misses", row.deadline_misses),
            ],
        );
        out.push('\n');
    }
    let path = dir.join("serve_soak.jsonl");
    std::fs::write(&path, &out)?;
    Ok(path.display().to_string())
}

fn main() {
    let seed = arg("--seed", 2022);
    let seconds = arg("--seconds", 10);
    let iter_cap = arg("--iters", 0);
    println!(
        "serve_soak: seed={seed} budget={seconds}s episode-cap={}  \
         modes={{clean,faults,panic}} tenants=2..4 jobs/tenant=3..8 \
         ppm={{20k,200k}} cache-dups~1/4 poison~1/8",
        if iter_cap == 0 {
            "none".to_owned()
        } else {
            iter_cap.to_string()
        }
    );

    // Probe panics are contained by design; keep the default hook for
    // anything else so genuine defects still print a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let is_probe = payload
            .downcast_ref::<String>()
            .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            })
            .unwrap_or(false);
        if !is_probe {
            default_hook(info);
        }
    }));

    let mut rng = Rng(seed);
    let mut totals = Totals::default();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    while Instant::now() < deadline && (iter_cap == 0 || totals.episodes < iter_cap) {
        let ep = draw_episode(&mut rng);
        let subs = draw_submissions(&ep, &mut rng);
        if let Err(v) = run_episode(&ep, &subs, &mut totals) {
            eprintln!(
                "serve_soak VIOLATION at episode {}: {}",
                totals.episodes, v.what
            );
            eprintln!("  params: {ep:?}");
            std::process::exit(1);
        }
        totals.episodes += 1;
    }

    match export_slo(seed, &totals) {
        Ok(path) => println!("serve_soak SLO export: {path}"),
        Err(e) => {
            eprintln!("serve_soak: SLO export failed: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "serve_soak PASS: {} episodes  submissions={} admitted={} rejected={} \
         completed={} expired={} failed={} recovered={} cache-hits={} \
         panic-recoveries={} detections={}",
        totals.episodes,
        totals.submissions,
        totals.admitted,
        totals.rejected,
        totals.completed,
        totals.expired,
        totals.failed,
        totals.recovered,
        totals.cache_hits,
        totals.panic_recoveries,
        totals.detections,
    );
}
