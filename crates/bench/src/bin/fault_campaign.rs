//! Seeded fault-injection campaign over the Figure-11 application suite.
//!
//! Every application kernel runs on a SIMD²-unit backend whose datapath
//! injects deterministic faults (bit flips, stuck MXU lanes, transient
//! NaN/Inf) drawn from a seeded [`FaultPlan`]. The resilient dispatch
//! layer verifies each whole-matrix mmo with ABFT invariants and
//! recovers by re-execution (transient faults draw fresh outcomes) or by
//! falling back to the scalar reference backend. A second sweep drives
//! the ISA-level executor with per-instruction verification plus
//! shared-memory corruption.
//!
//! Usage: `cargo run -p simd2-bench --bin fault_campaign [--seed S]
//! [--trials T] [--size N] [--threads W]`. Output is a pure function of
//! the arguments — rerunning reproduces it bit for bit. The tiled sweep
//! runs twice, on the sequential schedule and on `W` panel workers:
//! coordinate-addressed fault sites make the two campaigns strike the
//! same tiles, so their telemetry must be identical — the harness
//! asserts it.
//!
//! Every number in the report is derived from the `simd2-trace` event
//! stream (a per-trial [`RingSink`] attached to the injector, the tiled
//! backend and the resilient layer), then cross-checked against the
//! subsystems' own counters — any divergence aborts the run. The
//! sequential tiled sweep additionally streams its events to
//! `results/telemetry/fault_campaign.jsonl`.

use simd2::backend::{Backend, IsaBackend, Parallelism, TiledBackend};
use simd2::resilient::{RecoveryPolicy, ResilientBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::validate::compare_outputs;
use simd2_apps::{aplp, apsp, gtc, knn, mst, paths, streaming, AppKind};
use simd2_bench::Table;
use simd2_fault::{
    AbftConfig, FaultInjector, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector,
};
use simd2_mxu::Simd2Unit;
use simd2_semiring::OpKind;
use simd2_trace::{span, Event, FanoutSink, JsonLinesSink, RingSink, Sink, Tracer};

use std::sync::Arc;

/// Per-tile-mmo fault rates (parts per million) for the tiled sweep.
const BIT_FLIP_PPM: u32 = 9_000;
const STUCK_LANE_PPM: u32 = 5_000;
const TRANSIENT_NAN_PPM: u32 = 5_000;
/// Per-store shared-memory corruption rate for the ISA sweep.
const MEM_PPM: u32 = 60_000;

/// One trial's telemetry, derived entirely from the trace-event stream.
#[derive(Clone, PartialEq, Eq)]
struct Outcome {
    injected: u64,
    /// Fault-log ring evictions — must match across schedules too.
    dropped: u64,
    detections: u64,
    retries: u64,
    retry_successes: u64,
    fallbacks: u64,
    correct: bool,
}

/// Counts the trial's stage-tagged events into an [`Outcome`]. The
/// counts are order-independent, so the parallel schedule (whose worker
/// events interleave nondeterministically) compares exactly against the
/// sequential one.
fn outcome_from_events(events: &[Event], correct: bool) -> Outcome {
    let stage = |sp: &str, st: &str| events.iter().filter(|e| e.is_stage(sp, st)).count() as u64;
    Outcome {
        injected: stage(span::FAULT, "injected"),
        dropped: stage(span::FAULT, "dropped"),
        detections: stage(span::RECOVERY, "detection"),
        retries: stage(span::RECOVERY, "retry"),
        retry_successes: stage(span::RECOVERY, "retry_success"),
        fallbacks: stage(span::RECOVERY, "fallback"),
        correct,
    }
}

/// The per-trial sink: a fresh ring, optionally fanned out to the
/// campaign's JSON-lines export.
fn trial_sink(export: Option<&Arc<JsonLinesSink>>) -> (Arc<RingSink>, Tracer) {
    let ring = RingSink::shared();
    let tracer = match export {
        Some(jsonl) => Tracer::to(Arc::new(FanoutSink::new(vec![
            ring.clone() as Arc<dyn Sink>,
            jsonl.clone() as Arc<dyn Sink>,
        ]))),
        None => Tracer::to(ring.clone()),
    };
    (ring, tracer)
}

/// Runs one application end to end on `be` and checks the result against
/// the baseline algorithm, with the same per-op bars as `validate_apps`.
fn run_app_and_check<B: Backend>(app: AppKind, n: usize, seed: u64, be: &mut B) -> bool {
    let alg = ClosureAlgorithm::Leyzorek;
    match app {
        AppKind::Apsp => {
            let g = apsp::generate(n, seed);
            let r = apsp::simd2(be, &g, alg, true);
            compare_outputs("apsp", &apsp::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Aplp => {
            let g = aplp::generate(n, seed);
            let r = aplp::simd2(be, &g, alg, true);
            compare_outputs("aplp", &aplp::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Mcp => {
            let g = paths::generate_mcp(n, seed);
            let r = paths::simd2(be, OpKind::MaxMin, &g, alg, true);
            compare_outputs("mcp", &paths::baseline(OpKind::MaxMin, &g), &r.closure, 0.0).passed()
        }
        AppKind::MaxRp => {
            let g = paths::generate_maxrp(n, seed);
            let r = paths::simd2(be, OpKind::MaxMul, &g, alg, true);
            compare_outputs(
                "maxrp",
                &paths::baseline(OpKind::MaxMul, &g),
                &r.closure,
                0.02,
            )
            .passed()
        }
        AppKind::MinRp => {
            let g = paths::generate_minrp(n, seed);
            let r = paths::simd2(be, OpKind::MinMul, &g, alg, true);
            compare_outputs(
                "minrp",
                &paths::baseline(OpKind::MinMul, &g),
                &r.closure,
                0.02,
            )
            .passed()
        }
        AppKind::Mst => {
            let g = mst::generate(n, 0.1, seed);
            let want = mst::baseline(&g);
            let (got, _) = mst::simd2(be, &g, alg, true);
            want.edges == got.edges
        }
        AppKind::Gtc => {
            let g = gtc::generate(n, seed);
            let r = gtc::simd2(be, &g, alg, true);
            compare_outputs("gtc", &gtc::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Knn => {
            let pts = knn::generate(n, seed);
            let want = knn::baseline(&pts, knn::K);
            let got = knn::simd2(be, &pts, knn::K);
            knn::recall(&want, &got) >= 0.95
        }
        AppKind::StreamingApsp | AppKind::StreamingBfs => {
            let w = streaming::generate(app.spec().op, n, streaming::DEFAULT_BATCHES, seed);
            let (got, _) = streaming::simd2(be, &w);
            compare_outputs(app.spec().label, &streaming::baseline(&w), &got, 0.0).passed()
        }
    }
}

/// Full-coverage ABFT: sampled witnesses would let an in-range stuck
/// value slip through on idempotent algebras.
fn abft() -> AbftConfig {
    AbftConfig {
        witness_samples: usize::MAX,
        ..AbftConfig::default()
    }
}

/// One trial on the tiled backend with a fault-injected SIMD² unit.
/// The outcome is read back from the trial's event stream and asserted
/// equal to the private counters it replaced.
fn tiled_trial(
    app: AppKind,
    n: usize,
    trial_seed: u64,
    par: Parallelism,
    export: Option<&Arc<JsonLinesSink>>,
) -> Outcome {
    let (ring, tracer) = trial_sink(export);
    let cfg = FaultPlanConfig::new(trial_seed)
        .with_bit_flip_ppm(BIT_FLIP_PPM)
        .with_stuck_lane_ppm(STUCK_LANE_PPM)
        .with_transient_nan_ppm(TRANSIENT_NAN_PPM);
    let mut inner = TiledBackend::with_unit(FaultySimd2Unit::new(
        Simd2Unit::new(),
        PlannedInjector::new(FaultPlan::new(cfg)).with_tracer(tracer.clone()),
    ));
    inner.set_parallelism(par);
    inner.set_tracer(tracer.clone());
    let mut be = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 3 },
        abft(),
    )
    .with_tracer(tracer);
    let correct = run_app_and_check(app, n, trial_seed ^ 0xa99, &mut be);
    let s = be.recovery_stats();
    let o = outcome_from_events(&ring.events(), correct);
    let inj = be.inner().unit().injector();
    assert_eq!(o.injected, inj.injected(), "telemetry vs injector counter");
    assert_eq!(o.dropped, inj.dropped(), "telemetry vs log-drop counter");
    assert_eq!(o.detections, s.detections, "telemetry vs recovery stats");
    assert_eq!(o.retries, s.retries, "telemetry vs recovery stats");
    assert_eq!(o.retry_successes, s.retry_successes, "telemetry vs stats");
    assert_eq!(o.fallbacks, s.fallbacks, "telemetry vs recovery stats");
    o
}

/// One trial on the ISA executor with per-instruction ABFT plus
/// shared-memory store corruption.
fn isa_trial(app: AppKind, n: usize, trial_seed: u64) -> Outcome {
    let (ring, tracer) = trial_sink(None);
    let cfg = FaultPlanConfig::new(trial_seed)
        .with_bit_flip_ppm(BIT_FLIP_PPM)
        .with_transient_nan_ppm(TRANSIENT_NAN_PPM)
        .with_mem_ppm(MEM_PPM);
    let mut inner = IsaBackend::new();
    inner.set_injector(Box::new(
        PlannedInjector::new(FaultPlan::new(cfg)).with_tracer(tracer.clone()),
    ));
    inner.enable_verification(AbftConfig::default());
    inner.set_tracer(tracer.clone());
    let mut be = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 3 },
        abft(),
    )
    .with_tracer(tracer);
    let correct = run_app_and_check(app, n, trial_seed ^ 0xa99, &mut be);
    let s = be.recovery_stats();
    let o = outcome_from_events(&ring.events(), correct);
    let injected = be
        .inner()
        .injector()
        .map(FaultInjector::injected)
        .unwrap_or_default();
    let dropped = be
        .inner()
        .injector()
        .map(FaultInjector::dropped)
        .unwrap_or_default();
    assert_eq!(o.injected, injected, "telemetry vs injector counter");
    assert_eq!(o.dropped, dropped, "telemetry vs log-drop counter");
    assert_eq!(o.detections, s.detections, "telemetry vs recovery stats");
    assert_eq!(o.retries, s.retries, "telemetry vs recovery stats");
    assert_eq!(o.retry_successes, s.retry_successes, "telemetry vs stats");
    assert_eq!(o.fallbacks, s.fallbacks, "telemetry vs recovery stats");
    o
}

/// Runs the sweep, prints the table, and returns every trial's telemetry
/// (in app-then-trial order) so schedules can be compared exactly.
fn campaign<F: Fn(AppKind, usize, u64) -> Outcome>(
    title: &str,
    seed: u64,
    trials: u64,
    n: usize,
    run: F,
) -> Vec<Outcome> {
    let mut t = Table::new(
        title.to_owned(),
        &[
            "app",
            "op",
            "injected",
            "dropped",
            "detected",
            "retries",
            "rescued",
            "fallbacks",
            "correct",
        ],
    );
    let (mut struck_trials, mut struck_handled, mut struck_correct, mut total) =
        (0u64, 0u64, 0u64, 0u64);
    let mut outcomes = Vec::new();
    for app in AppKind::all() {
        let mut agg = Outcome {
            injected: 0,
            dropped: 0,
            detections: 0,
            retries: 0,
            retry_successes: 0,
            fallbacks: 0,
            correct: true,
        };
        let mut correct_trials = 0u64;
        for trial in 0..trials {
            // One independent deterministic stream per (app, trial).
            let o = run(
                app,
                n,
                seed ^ (app as u64) << 8 ^ trial.wrapping_mul(0x9e37),
            );
            total += 1;
            if o.injected > 0 {
                struck_trials += 1;
                // A struck trial is *handled* when the pipeline either
                // detected the corruption or the faults were benign
                // (the result still passed the clean-run bar).
                if o.detections > 0 || o.correct {
                    struck_handled += 1;
                }
                if o.correct {
                    struck_correct += 1;
                }
            }
            correct_trials += u64::from(o.correct);
            agg.injected += o.injected;
            agg.dropped += o.dropped;
            agg.detections += o.detections;
            agg.retries += o.retries;
            agg.retry_successes += o.retry_successes;
            agg.fallbacks += o.fallbacks;
            outcomes.push(o);
        }
        t.row(&[
            app.spec().label.to_owned(),
            app.spec().op.to_string(),
            agg.injected.to_string(),
            agg.dropped.to_string(),
            agg.detections.to_string(),
            agg.retries.to_string(),
            agg.retry_successes.to_string(),
            agg.fallbacks.to_string(),
            format!("{correct_trials}/{trials}"),
        ]);
    }
    t.print();
    let pct = |num: u64, den: u64| {
        if den == 0 {
            100.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    println!(
        "struck trials: {struck_trials}/{total}  \
         detection (detected-or-benign): {:.1}%  \
         end-to-end recovery: {:.1}%",
        pct(struck_handled, struck_trials),
        pct(struck_correct, struck_trials),
    );
    println!();
    outcomes
}

fn arg(name: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = arg("--seed", 2022);
    let trials = arg("--trials", 4);
    let n = arg("--size", 48) as usize;
    let threads = arg("--threads", 4) as usize;
    println!(
        "fault campaign: seed={seed} trials={trials}/app size={n} threads={threads}  \
         rates(ppm): flip={BIT_FLIP_PPM} stuck={STUCK_LANE_PPM} nan={TRANSIENT_NAN_PPM} \
         mem={MEM_PPM}  policy=retry(3)-then-fallback"
    );
    println!();
    // The sequential sweep's events additionally stream to disk; its
    // event order is deterministic, so the export reproduces bit for bit.
    let export = JsonLinesSink::create("results/telemetry/fault_campaign.jsonl")
        .ok()
        .map(Arc::new);
    let seq = campaign(
        format!(
            "Tiled SIMD2 units with faulty datapath (matrix-level ABFT, seed {seed}, sequential)"
        )
        .as_str(),
        seed,
        trials,
        n,
        |app, n, s| tiled_trial(app, n, s, Parallelism::Sequential, export.as_ref()),
    );
    if let Some(jsonl) = &export {
        let _ = jsonl.flush();
        eprintln!("wrote {}", jsonl.path().display());
    }
    let par = campaign(
        format!(
            "Tiled SIMD2 units with faulty datapath (matrix-level ABFT, seed {seed}, {threads} workers)"
        )
        .as_str(),
        seed,
        trials,
        n,
        |app, n, s| tiled_trial(app, n, s, Parallelism::Threads(threads), None),
    );
    // Coordinate-addressed fault sites: both schedules strike the same
    // tiles, so every trial's telemetry — including fault-log ring
    // evictions — must match exactly.
    assert!(
        seq == par,
        "parallel faulty campaign diverged from sequential telemetry"
    );
    assert!(
        seq.iter().zip(&par).all(|(a, b)| a.dropped == b.dropped),
        "dropped-log telemetry diverged across schedules"
    );
    println!(
        "tiled sweep: {threads}-worker telemetry identical to sequential \
         across all {} trials (dropped counts included)",
        seq.len()
    );
    println!();
    campaign(
        format!(
            "ISA executor with faulty datapath + memory corruption (per-instruction ABFT, seed {seed})"
        )
        .as_str(),
        seed,
        trials,
        n.min(32),
        isa_trial,
    );
}
