//! Seeded fault-injection campaign over the Figure-11 application suite.
//!
//! Every application kernel runs on a SIMD²-unit backend whose datapath
//! injects deterministic faults (bit flips, stuck MXU lanes, transient
//! NaN/Inf) drawn from a seeded [`FaultPlan`]. The resilient dispatch
//! layer verifies each whole-matrix mmo with ABFT invariants and
//! recovers by re-execution (transient faults draw fresh outcomes) or by
//! falling back to the scalar reference backend. A second sweep drives
//! the ISA-level executor with per-instruction verification plus
//! shared-memory corruption.
//!
//! Usage: `cargo run -p simd2-bench --bin fault_campaign [--seed S]
//! [--trials T] [--size N] [--threads W]`. Output is a pure function of
//! the arguments — rerunning reproduces it bit for bit. The tiled sweep
//! runs twice, on the sequential schedule and on `W` panel workers:
//! coordinate-addressed fault sites make the two campaigns strike the
//! same tiles, so their telemetry must be identical — the harness
//! asserts it.

use simd2::backend::{Backend, IsaBackend, Parallelism, TiledBackend};
use simd2::resilient::{RecoveryPolicy, ResilientBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::validate::compare_outputs;
use simd2_apps::{aplp, apsp, gtc, knn, mst, paths, AppKind};
use simd2_bench::Table;
use simd2_fault::{
    AbftConfig, FaultInjector, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector,
};
use simd2_mxu::Simd2Unit;
use simd2_semiring::OpKind;

/// Per-tile-mmo fault rates (parts per million) for the tiled sweep.
const BIT_FLIP_PPM: u32 = 9_000;
const STUCK_LANE_PPM: u32 = 5_000;
const TRANSIENT_NAN_PPM: u32 = 5_000;
/// Per-store shared-memory corruption rate for the ISA sweep.
const MEM_PPM: u32 = 60_000;

/// One trial's telemetry.
#[derive(Clone, PartialEq, Eq)]
struct Outcome {
    injected: u64,
    detections: u64,
    retries: u64,
    retry_successes: u64,
    fallbacks: u64,
    correct: bool,
}

/// Runs one application end to end on `be` and checks the result against
/// the baseline algorithm, with the same per-op bars as `validate_apps`.
fn run_app_and_check<B: Backend>(app: AppKind, n: usize, seed: u64, be: &mut B) -> bool {
    let alg = ClosureAlgorithm::Leyzorek;
    match app {
        AppKind::Apsp => {
            let g = apsp::generate(n, seed);
            let r = apsp::simd2(be, &g, alg, true);
            compare_outputs("apsp", &apsp::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Aplp => {
            let g = aplp::generate(n, seed);
            let r = aplp::simd2(be, &g, alg, true);
            compare_outputs("aplp", &aplp::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Mcp => {
            let g = paths::generate_mcp(n, seed);
            let r = paths::simd2(be, OpKind::MaxMin, &g, alg, true);
            compare_outputs("mcp", &paths::baseline(OpKind::MaxMin, &g), &r.closure, 0.0).passed()
        }
        AppKind::MaxRp => {
            let g = paths::generate_maxrp(n, seed);
            let r = paths::simd2(be, OpKind::MaxMul, &g, alg, true);
            compare_outputs(
                "maxrp",
                &paths::baseline(OpKind::MaxMul, &g),
                &r.closure,
                0.02,
            )
            .passed()
        }
        AppKind::MinRp => {
            let g = paths::generate_minrp(n, seed);
            let r = paths::simd2(be, OpKind::MinMul, &g, alg, true);
            compare_outputs(
                "minrp",
                &paths::baseline(OpKind::MinMul, &g),
                &r.closure,
                0.02,
            )
            .passed()
        }
        AppKind::Mst => {
            let g = mst::generate(n, 0.1, seed);
            let want = mst::baseline(&g);
            let (got, _) = mst::simd2(be, &g, alg, true);
            want.edges == got.edges
        }
        AppKind::Gtc => {
            let g = gtc::generate(n, seed);
            let r = gtc::simd2(be, &g, alg, true);
            compare_outputs("gtc", &gtc::baseline(&g), &r.closure, 0.0).passed()
        }
        AppKind::Knn => {
            let pts = knn::generate(n, seed);
            let want = knn::baseline(&pts, knn::K);
            let got = knn::simd2(be, &pts, knn::K);
            knn::recall(&want, &got) >= 0.95
        }
    }
}

/// Full-coverage ABFT: sampled witnesses would let an in-range stuck
/// value slip through on idempotent algebras.
fn abft() -> AbftConfig {
    AbftConfig {
        witness_samples: usize::MAX,
        ..AbftConfig::default()
    }
}

/// One trial on the tiled backend with a fault-injected SIMD² unit.
fn tiled_trial(app: AppKind, n: usize, trial_seed: u64, par: Parallelism) -> Outcome {
    let cfg = FaultPlanConfig::new(trial_seed)
        .with_bit_flip_ppm(BIT_FLIP_PPM)
        .with_stuck_lane_ppm(STUCK_LANE_PPM)
        .with_transient_nan_ppm(TRANSIENT_NAN_PPM);
    let mut inner = TiledBackend::with_unit(FaultySimd2Unit::new(
        Simd2Unit::new(),
        PlannedInjector::new(FaultPlan::new(cfg)),
    ));
    inner.set_parallelism(par);
    let mut be = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 3 },
        abft(),
    );
    let correct = run_app_and_check(app, n, trial_seed ^ 0xa99, &mut be);
    let s = be.recovery_stats();
    Outcome {
        injected: be.inner().unit().injector().injected(),
        detections: s.detections,
        retries: s.retries,
        retry_successes: s.retry_successes,
        fallbacks: s.fallbacks,
        correct,
    }
}

/// One trial on the ISA executor with per-instruction ABFT plus
/// shared-memory store corruption.
fn isa_trial(app: AppKind, n: usize, trial_seed: u64) -> Outcome {
    let cfg = FaultPlanConfig::new(trial_seed)
        .with_bit_flip_ppm(BIT_FLIP_PPM)
        .with_transient_nan_ppm(TRANSIENT_NAN_PPM)
        .with_mem_ppm(MEM_PPM);
    let mut inner = IsaBackend::new();
    inner.set_injector(Box::new(PlannedInjector::new(FaultPlan::new(cfg))));
    inner.enable_verification(AbftConfig::default());
    let mut be = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 3 },
        abft(),
    );
    let correct = run_app_and_check(app, n, trial_seed ^ 0xa99, &mut be);
    let s = be.recovery_stats();
    Outcome {
        injected: be
            .inner()
            .injector()
            .map(FaultInjector::injected)
            .unwrap_or_default(),
        detections: s.detections,
        retries: s.retries,
        retry_successes: s.retry_successes,
        fallbacks: s.fallbacks,
        correct,
    }
}

/// Runs the sweep, prints the table, and returns every trial's telemetry
/// (in app-then-trial order) so schedules can be compared exactly.
fn campaign<F: Fn(AppKind, usize, u64) -> Outcome>(
    title: &str,
    seed: u64,
    trials: u64,
    n: usize,
    run: F,
) -> Vec<Outcome> {
    let mut t = Table::new(
        title.to_owned(),
        &[
            "app",
            "op",
            "injected",
            "detected",
            "retries",
            "rescued",
            "fallbacks",
            "correct",
        ],
    );
    let (mut struck_trials, mut struck_handled, mut struck_correct, mut total) =
        (0u64, 0u64, 0u64, 0u64);
    let mut outcomes = Vec::new();
    for app in AppKind::all() {
        let mut agg = Outcome {
            injected: 0,
            detections: 0,
            retries: 0,
            retry_successes: 0,
            fallbacks: 0,
            correct: true,
        };
        let mut correct_trials = 0u64;
        for trial in 0..trials {
            // One independent deterministic stream per (app, trial).
            let o = run(
                app,
                n,
                seed ^ (app as u64) << 8 ^ trial.wrapping_mul(0x9e37),
            );
            total += 1;
            if o.injected > 0 {
                struck_trials += 1;
                // A struck trial is *handled* when the pipeline either
                // detected the corruption or the faults were benign
                // (the result still passed the clean-run bar).
                if o.detections > 0 || o.correct {
                    struck_handled += 1;
                }
                if o.correct {
                    struck_correct += 1;
                }
            }
            correct_trials += u64::from(o.correct);
            agg.injected += o.injected;
            agg.detections += o.detections;
            agg.retries += o.retries;
            agg.retry_successes += o.retry_successes;
            agg.fallbacks += o.fallbacks;
            outcomes.push(o);
        }
        t.row(&[
            app.spec().label.to_owned(),
            app.spec().op.to_string(),
            agg.injected.to_string(),
            agg.detections.to_string(),
            agg.retries.to_string(),
            agg.retry_successes.to_string(),
            agg.fallbacks.to_string(),
            format!("{correct_trials}/{trials}"),
        ]);
    }
    t.print();
    let pct = |num: u64, den: u64| {
        if den == 0 {
            100.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    println!(
        "struck trials: {struck_trials}/{total}  \
         detection (detected-or-benign): {:.1}%  \
         end-to-end recovery: {:.1}%",
        pct(struck_handled, struck_trials),
        pct(struck_correct, struck_trials),
    );
    println!();
    outcomes
}

fn arg(name: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = arg("--seed", 2022);
    let trials = arg("--trials", 4);
    let n = arg("--size", 48) as usize;
    let threads = arg("--threads", 4) as usize;
    println!(
        "fault campaign: seed={seed} trials={trials}/app size={n} threads={threads}  \
         rates(ppm): flip={BIT_FLIP_PPM} stuck={STUCK_LANE_PPM} nan={TRANSIENT_NAN_PPM} \
         mem={MEM_PPM}  policy=retry(3)-then-fallback"
    );
    println!();
    let seq = campaign(
        format!(
            "Tiled SIMD2 units with faulty datapath (matrix-level ABFT, seed {seed}, sequential)"
        )
        .as_str(),
        seed,
        trials,
        n,
        |app, n, s| tiled_trial(app, n, s, Parallelism::Sequential),
    );
    let par = campaign(
        format!(
            "Tiled SIMD2 units with faulty datapath (matrix-level ABFT, seed {seed}, {threads} workers)"
        )
        .as_str(),
        seed,
        trials,
        n,
        |app, n, s| tiled_trial(app, n, s, Parallelism::Threads(threads)),
    );
    // Coordinate-addressed fault sites: both schedules strike the same
    // tiles, so every trial's telemetry must match exactly.
    assert!(
        seq == par,
        "parallel faulty campaign diverged from sequential telemetry"
    );
    println!(
        "tiled sweep: {threads}-worker telemetry identical to sequential \
         across all {} trials",
        seq.len()
    );
    println!();
    campaign(
        format!(
            "ISA executor with faulty datapath + memory corruption (per-instruction ABFT, seed {seed})"
        )
        .as_str(),
        seed,
        trials,
        n.min(32),
        isa_trial,
    );
}
