//! Randomized soak harness for the hardened concurrent engine.
//!
//! A seeded, time-bounded stress loop that randomizes operation × shape ×
//! input precision × worker count × fault rate × panic arming, and
//! asserts on every iteration:
//!
//! 1. **Bit identity** — the faulty parallel schedule produces the same
//!    `D`, the same merged fault log, and the same injection count as
//!    the faulty sequential schedule (coordinate-addressed fault sites).
//! 2. **Exact accounting** — the merged [`OpCount`] equals the tile-grid
//!    arithmetic prediction, with nothing dropped or double-counted.
//! 3. **Detection-or-benign** — under resilient dispatch every struck
//!    iteration is either detected (and recovered) or benign: the
//!    delivered result matches the clean oracle bitwise for the
//!    idempotent algebras and within checksum tolerance for the
//!    additive ones.
//! 4. **Panic containment** — an armed probe panics a panel worker; the
//!    direct backend surfaces [`BackendError::WorkerPanic`] instead of
//!    aborting, and the resilient layer recovers on the sequential
//!    schedule with the panic counted in its stats.
//! 5. **Telemetry lock-step** — every run carries a `simd2-trace`
//!    [`RingSink`]; span-derived totals must equal [`Backend::op_count`]
//!    exactly, fault-event counts must equal the injector's counters on
//!    both schedules, recovery stage events must reproduce
//!    [`simd2::resilient::RecoveryStats`], and a panicked mmo must
//!    leave its `mmo` span open (a `begin` with no `end`). The final
//!    PASS line's tallies are read back from the event stream.
//!
//! Usage: `cargo run -p simd2-bench --bin soak [--seed S] [--seconds T]
//! [--iters N]`. The iteration stream is a pure function of the seed;
//! `--seconds` only decides how far down the stream the loop runs, and
//! `--iters` caps the count deterministically (0 = no cap). Any
//! violation prints the failing iteration's parameters and exits 1.

use std::time::{Duration, Instant};

use simd2::backend::{Backend, OpCount, Parallelism, TiledBackend};
use simd2::error::BackendError;
use simd2::resilient::{RecoveryPolicy, ResilientBackend};
use simd2_fault::{
    AbftConfig, FaultInjector, FaultPlan, FaultPlanConfig, FaultySimd2Unit, PanicProbeUnit,
    PlannedInjector, PANIC_PROBE_PAYLOAD,
};
use simd2_matrix::tiling::TileGrid;
use simd2_matrix::{gen, Matrix, ISA_TILE};
use simd2_mxu::{PrecisionMode, Simd2Unit};
use simd2_semiring::precision::quantize_f16;
use simd2_semiring::{OpKind, ALL_OPS};
use simd2_trace::{span, Event, EventKind, RingSink, Tracer};

use std::sync::Arc;

/// SplitMix64: the soak's own deterministic parameter stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

/// One iteration's randomized parameters.
#[derive(Debug)]
struct Params {
    op: OpKind,
    m: usize,
    n: usize,
    k: usize,
    workers: usize,
    ppm: u32,
    precision: PrecisionMode,
    plan_seed: u64,
    data_seed: u64,
    /// Tile row whose shard panics; `None` when the iteration is not
    /// panic-armed.
    panic_ti: Option<u32>,
}

fn draw(rng: &mut Rng) -> Params {
    let m = 1 + rng.below(80) as usize;
    let op = ALL_OPS[rng.below(ALL_OPS.len() as u64) as usize];
    // A probe shard only executes (and panics) when the parallel path is
    // taken, which needs at least two tile rows.
    let panic_armed = rng.below(8) == 0 && m > ISA_TILE;
    let m_tiles = m.div_ceil(ISA_TILE);
    Params {
        op,
        m,
        n: 1 + rng.below(80) as usize,
        k: 1 + rng.below(48) as usize,
        workers: rng.pick(&[2usize, 3, 4, 8]),
        ppm: rng.pick(&[0u32, 2_000, 20_000, 200_000]),
        precision: rng.pick(&[PrecisionMode::Fp16Input, PrecisionMode::Fp32Input]),
        plan_seed: rng.next(),
        data_seed: rng.next(),
        panic_ti: panic_armed.then(|| rng.below(m_tiles as u64) as u32),
    }
}

/// In-domain operands, pre-quantized to the iteration's input precision
/// so clean results pass ABFT exactly.
fn operands(p: &Params) -> (Matrix, Matrix, Matrix) {
    let mut a = gen::random_operands_for(p.op, p.m, p.k, p.data_seed);
    let mut b = gen::random_operands_for(p.op, p.k, p.n, p.data_seed ^ 0x5eed);
    if p.precision == PrecisionMode::Fp16Input {
        for v in a.as_mut_slice().iter_mut().chain(b.as_mut_slice()) {
            *v = quantize_f16(*v);
        }
    }
    let c = Matrix::filled(p.m, p.n, p.op.reduce_identity_f32());
    (a, b, c)
}

fn plan(p: &Params) -> FaultPlan {
    // Rotate the struck fault class per iteration so every class soaks.
    let cfg = FaultPlanConfig::new(p.plan_seed);
    let cfg = match p.plan_seed % 3 {
        0 => cfg.with_bit_flip_ppm(p.ppm),
        1 => cfg.with_stuck_lane_ppm(p.ppm),
        _ => cfg.with_transient_nan_ppm(p.ppm),
    };
    FaultPlan::new(cfg)
}

fn faulty_backend(p: &Params, par: Parallelism, tracer: &Tracer) -> TiledBackend<FaultySimd2Unit> {
    let unit = FaultySimd2Unit::new(
        Simd2Unit::with_precision(p.precision),
        PlannedInjector::new(plan(p)).with_tracer(tracer.clone()),
    );
    let mut be = TiledBackend::with_unit(unit);
    be.set_parallelism(par);
    be.set_tracer(tracer.clone());
    be
}

/// Counts `stage`-tagged instants on `sp` — order-independent, so
/// sequential and parallel streams compare by totals.
fn stage_count(events: &[Event], sp: &str, stage: &str) -> u64 {
    events.iter().filter(|e| e.is_stage(sp, stage)).count() as u64
}

/// Rebuilds an [`OpCount`] from a run's `mmo` span-end events.
fn op_count_from_events(events: &[Event]) -> OpCount {
    let mut c = OpCount::default();
    for e in events {
        if e.span == span::MMO && e.kind == EventKind::End {
            c.matrix_mmos += 1;
            c.tile_mmos += e.u64("tile_mmos").unwrap_or(0);
            c.tile_loads += e.u64("tile_loads").unwrap_or(0);
            c.tile_stores += e.u64("tile_stores").unwrap_or(0);
        }
    }
    c
}

/// Clean oracle at the iteration's precision.
fn clean_backend(p: &Params) -> TiledBackend<Simd2Unit> {
    TiledBackend::with_unit(Simd2Unit::with_precision(p.precision))
}

/// Full witness coverage: in-range stuck values on the idempotent
/// algebras can evade a sampled witness check.
fn abft() -> AbftConfig {
    AbftConfig {
        witness_samples: usize::MAX,
        ..AbftConfig::default()
    }
}

/// The magnitude-scaled tolerance the additive checksum actually grants
/// — mirrors [`simd2_fault::abft::verify_matrix`]'s magnitude term over
/// precision-quantized operands with the default [`AbftConfig`] knobs.
fn checksum_tolerance(p: &Params, a: &Matrix, b: &Matrix, c: &Matrix) -> f64 {
    let op = p.op;
    let q = |v: f32| -> f64 {
        if p.precision == PrecisionMode::Fp16Input {
            f64::from(quantize_f16(v))
        } else {
            f64::from(v)
        }
    };
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut magnitude: f64 = c.as_slice().iter().map(|&v| f64::from(v).abs()).sum();
    for kk in 0..k {
        let (mut abs_a, mut sq_a, mut col_a) = (0.0f64, 0.0f64, 0.0f64);
        let (mut abs_b, mut sq_b, mut row_b) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..m {
            let x = q(a.row(i)[kk]);
            abs_a += x.abs();
            sq_a += x * x;
            col_a += x;
        }
        for j in 0..n {
            let y = q(b.row(kk)[j]);
            abs_b += y.abs();
            sq_b += y * y;
            row_b += y;
        }
        magnitude += match op {
            OpKind::PlusNorm => n as f64 * sq_a + 2.0 * (col_a * row_b).abs() + m as f64 * sq_b,
            _ => abs_a * abs_b,
        };
    }
    let cfg = abft();
    cfg.rel_tol * magnitude + cfg.abs_tol
}

struct Violation {
    what: String,
}

macro_rules! soak_check {
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(Violation { what: format!($($fmt)*) });
        }
    };
}

/// Aggregate telemetry over the whole soak.
#[derive(Default)]
struct Totals {
    iters: u64,
    struck: u64,
    injected: u64,
    detections: u64,
    retry_successes: u64,
    fallbacks: u64,
    panics: u64,
    panic_recoveries: u64,
}

/// Invariant 4: an armed probe panics a worker; the direct backend
/// contains it and the resilient layer recovers sequentially.
fn soak_panic(p: &Params, totals: &mut Totals) -> Result<(), Violation> {
    let panic_ti = p.panic_ti.unwrap_or_default();
    let (a, b, c) = operands(p);
    let clean = clean_backend(p)
        .mmo(p.op, &a, &b, &c)
        .map_err(|e| Violation {
            what: format!("clean oracle failed: {e}"),
        })?;

    let direct_ring = RingSink::shared();
    let mut direct = TiledBackend::with_unit(PanicProbeUnit::new(
        Simd2Unit::with_precision(p.precision),
        panic_ti,
    ))
    .with_tracer(Tracer::to(direct_ring.clone()));
    direct.set_parallelism(Parallelism::Threads(p.workers));
    match direct.mmo(p.op, &a, &b, &c) {
        Err(BackendError::WorkerPanic { payload, .. }) => {
            soak_check!(
                payload.starts_with(PANIC_PROBE_PAYLOAD),
                "unexpected panic payload {payload:?}"
            );
        }
        other => {
            soak_check!(false, "armed probe must surface WorkerPanic, got {other:?}");
        }
    }
    soak_check!(
        direct.op_count() == OpCount::default(),
        "panicked mmo must contribute no completed-work counters"
    );
    // Invariant 5: the failed mmo's span stays open — a begin with no
    // end — so event-derived totals also attribute it zero work.
    let direct_events = direct_ring.events();
    let begins = direct_events
        .iter()
        .filter(|e| e.span == span::MMO && e.kind == EventKind::Begin)
        .count();
    soak_check!(
        begins == 1 && op_count_from_events(&direct_events) == OpCount::default(),
        "panicked mmo must emit one open span and no completed-work events"
    );

    let ring = RingSink::shared();
    let tracer = Tracer::to(ring.clone() as Arc<_>);
    let inner = {
        let mut be = TiledBackend::with_unit(PanicProbeUnit::new(
            Simd2Unit::with_precision(p.precision),
            panic_ti,
        ));
        be.set_parallelism(Parallelism::Threads(p.workers));
        be.set_tracer(tracer.clone());
        be
    };
    let mut resilient =
        ResilientBackend::with_config(inner, RecoveryPolicy::FailFast, abft()).with_tracer(tracer);
    let d = resilient.mmo(p.op, &a, &b, &c).map_err(|e| Violation {
        what: format!("resilient layer failed to recover: {e}"),
    })?;
    let s = resilient.recovery_stats();
    soak_check!(
        s.worker_panics == 1 && s.panic_recoveries == 1,
        "panic recovery not counted: {s:?}"
    );
    soak_check!(
        d == clean,
        "sequential panic recovery diverged from the clean oracle"
    );
    // Invariant 5: the recovery stage events reproduce the stats struct;
    // the PASS line's tallies come from the event stream.
    let events = ring.events();
    let ev_panics = stage_count(&events, span::RECOVERY, "worker_panic");
    let ev_recoveries = stage_count(&events, span::RECOVERY, "panic_recovery");
    soak_check!(
        ev_panics == s.worker_panics && ev_recoveries == s.panic_recoveries,
        "panic telemetry diverged from recovery stats: \
         events ({ev_panics}, {ev_recoveries}) vs {s:?}"
    );
    totals.panics += ev_panics;
    totals.panic_recoveries += ev_recoveries;
    Ok(())
}

/// Invariants 1–3 for a (possibly clean) fault iteration.
fn soak_faults(p: &Params, totals: &mut Totals) -> Result<(), Violation> {
    let (a, b, c) = operands(p);

    // 1. Bit identity across schedules, plus identical fault telemetry.
    let seq_ring = RingSink::shared();
    let mut seq_be = faulty_backend(p, Parallelism::Sequential, &Tracer::to(seq_ring.clone()));
    let d_seq = seq_be.mmo(p.op, &a, &b, &c).map_err(|e| Violation {
        what: format!("sequential faulty mmo failed: {e}"),
    })?;
    let par_ring = RingSink::shared();
    let mut par_be = faulty_backend(
        p,
        Parallelism::Threads(p.workers),
        &Tracer::to(par_ring.clone()),
    );
    let d_par = par_be.mmo(p.op, &a, &b, &c).map_err(|e| Violation {
        what: format!("parallel faulty mmo failed: {e}"),
    })?;
    let bits_equal = d_seq
        .as_slice()
        .iter()
        .zip(d_par.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    soak_check!(bits_equal, "parallel faulty D diverged from sequential");
    soak_check!(
        seq_be.unit().injector().log() == par_be.unit().injector().log(),
        "merged fault log diverged from sequential"
    );
    soak_check!(
        seq_be.unit().injector().injected() == par_be.unit().injector().injected(),
        "injection counters diverged"
    );
    soak_check!(
        seq_be.unit().injector().dropped() == 0,
        "soak shapes must not overflow the fault-log ring"
    );
    // Invariant 5: fault-event totals equal the injector counters on
    // both schedules (parallel event *order* may differ; totals may not).
    let seq_events = seq_ring.events();
    let par_events = par_ring.events();
    for (label, events, be) in [
        ("sequential", &seq_events, &seq_be),
        ("parallel", &par_events, &par_be),
    ] {
        let injected_events = stage_count(events, span::FAULT, "injected");
        let dropped_events = stage_count(events, span::FAULT, "dropped");
        soak_check!(
            injected_events == be.unit().injector().injected()
                && dropped_events == be.unit().injector().dropped(),
            "{label} fault telemetry diverged from injector counters: \
             events ({injected_events}, {dropped_events}) vs ({}, {})",
            be.unit().injector().injected(),
            be.unit().injector().dropped()
        );
    }

    // 2. Exact accounting from tile-grid arithmetic.
    let g = TileGrid::new(p.m, p.n, p.k, ISA_TILE);
    let want = OpCount {
        matrix_mmos: 1,
        tile_mmos: g.tile_ops() as u64,
        tile_loads: (2 * g.tile_ops() + g.output_tiles()) as u64,
        tile_stores: g.output_tiles() as u64,
    };
    soak_check!(
        par_be.op_count() == want && seq_be.op_count() == want,
        "OpCount mismatch: want {want:?}, seq {:?}, par {:?}",
        seq_be.op_count(),
        par_be.op_count()
    );
    // Invariant 5: span-derived totals rebuild the same OpCount.
    soak_check!(
        op_count_from_events(&seq_events) == want && op_count_from_events(&par_events) == want,
        "span-derived OpCount diverged: want {want:?}, seq {:?}, par {:?}",
        op_count_from_events(&seq_events),
        op_count_from_events(&par_events)
    );

    // 3. Detection-or-benign under resilient dispatch.
    let ring = RingSink::shared();
    let tracer = Tracer::to(ring.clone() as Arc<_>);
    let inner = faulty_backend(p, Parallelism::Threads(p.workers), &tracer);
    let mut resilient = ResilientBackend::with_config(
        inner,
        RecoveryPolicy::RetryThenFallback { attempts: 3 },
        abft(),
    )
    .with_tracer(tracer);
    let d = resilient.mmo(p.op, &a, &b, &c).map_err(|e| Violation {
        what: format!("resilient dispatch failed: {e}"),
    })?;
    let s = resilient.recovery_stats();
    // Invariant 5: the stage events reproduce the stats struct; the
    // PASS line's tallies are read back from the event stream.
    let events = ring.events();
    let ev = |stage: &str| stage_count(&events, span::RECOVERY, stage);
    soak_check!(
        ev("detection") == s.detections
            && ev("retry") == s.retries
            && ev("retry_success") == s.retry_successes
            && ev("fallback") == s.fallbacks,
        "recovery telemetry diverged from stats: {s:?}"
    );
    let injected = stage_count(&events, span::FAULT, "injected");
    soak_check!(
        injected == resilient.inner().unit().injector().injected(),
        "resilient fault telemetry diverged from injector counter"
    );
    if injected > 0 {
        totals.struck += 1;
        totals.injected += injected;
        totals.detections += ev("detection");
        totals.retry_successes += ev("retry_success");
        totals.fallbacks += ev("fallback");
        if s.detections == 0 {
            // Undetected strikes must be benign, where "benign" is
            // exactly what the detector promises. Idempotent family:
            // full-witness + dominance pin every element, so the result
            // must match a clean run bitwise. Additive family: the
            // Huang–Abraham checksum bounds the deviation of the *sum*
            // by the magnitude-scaled tolerance (clean and faulty runs
            // each pass within one tolerance of the f64 prediction).
            let clean = clean_backend(p)
                .mmo(p.op, &a, &b, &c)
                .map_err(|e| Violation {
                    what: format!("clean oracle failed: {e}"),
                })?;
            match p.op {
                OpKind::PlusMul | OpKind::PlusNorm => {
                    let sum =
                        |mm: &Matrix| -> f64 { mm.as_slice().iter().map(|&v| f64::from(v)).sum() };
                    let drift = (sum(&d) - sum(&clean)).abs();
                    let tol = 2.0 * checksum_tolerance(p, &a, &b, &c);
                    soak_check!(
                        drift <= tol,
                        "undetected strike exceeded the checksum guarantee: \
                         |sum(d) - sum(clean)| = {drift} > {tol}"
                    );
                }
                _ => {
                    let bits_equal = d
                        .as_slice()
                        .iter()
                        .zip(clean.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    soak_check!(
                        bits_equal,
                        "undetected strike on an idempotent op was not bit-benign"
                    );
                }
            }
        }
    }
    Ok(())
}

fn arg(name: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = arg("--seed", 2022);
    let seconds = arg("--seconds", 10);
    let iter_cap = arg("--iters", 0);
    println!(
        "soak: seed={seed} budget={seconds}s iter-cap={}  \
         ops=9 shapes=m,n<=80 k<=48 precision={{fp16,fp32}} workers={{2,3,4,8}} \
         ppm={{0,2k,20k,200k}} panic~1/8",
        if iter_cap == 0 {
            "none".to_owned()
        } else {
            iter_cap.to_string()
        }
    );

    // Probe panics are contained by design; keep the default hook for
    // anything else so genuine defects still print a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let is_probe = payload
            .downcast_ref::<String>()
            .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            .or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with(PANIC_PROBE_PAYLOAD))
            })
            .unwrap_or(false);
        if !is_probe {
            default_hook(info);
        }
    }));

    let mut rng = Rng(seed);
    let mut totals = Totals::default();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    while Instant::now() < deadline && (iter_cap == 0 || totals.iters < iter_cap) {
        let p = draw(&mut rng);
        let res = if p.panic_ti.is_some() {
            soak_panic(&p, &mut totals)
        } else {
            soak_faults(&p, &mut totals)
        };
        if let Err(v) = res {
            eprintln!("soak VIOLATION at iteration {}: {}", totals.iters, v.what);
            eprintln!("  params: {p:?}");
            std::process::exit(1);
        }
        totals.iters += 1;
    }

    println!(
        "soak PASS: {} iterations ({} struck, {} panic-armed)  \
         injected={} detections={} retry-rescues={} fallbacks={} panic-recoveries={}",
        totals.iters,
        totals.struck,
        totals.panics,
        totals.injected,
        totals.detections,
        totals.retry_successes,
        totals.fallbacks,
        totals.panic_recoveries,
    );
}
