//! Regenerates Figure 13: application speedups with the structured-
//! sparsity (2:4) SIMD2 tile pipe, and the gain over dense SIMD2 units.

use simd2::solve::ClosureAlgorithm;
use simd2_apps::{AppKind, AppTiming, Config};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::{geomean, Gpu};
use simd2_matrix::gen::InputScale;

fn main() {
    let model = AppTiming::new(Gpu::default());
    let mut t = Table::new(
        "Figure 13: sparse SIMD2 unit speedup over baseline (and vs dense SIMD2)",
        &["app", "small", "medium", "large", "vs dense (medium)"],
    );
    let mut per_scale: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut peak = 0.0f64;
    for app in AppKind::all() {
        let mut row = vec![app.spec().label.to_owned()];
        for (i, scale) in InputScale::all().into_iter().enumerate() {
            let n = app.dimension(scale);
            let s = model.speedup(app, n, Config::Simd2SparseUnits);
            per_scale[i].push(s);
            peak = peak.max(s);
            row.push(fmt_speedup(s));
        }
        let n = app.dimension(InputScale::Medium);
        let iters = model.iterations(app, n, ClosureAlgorithm::Leyzorek, true);
        let dense = model.simd2_time(app, n, iters, true, Config::Simd2Units);
        let sparse = model.simd2_time(app, n, iters, true, Config::Simd2SparseUnits);
        row.push(fmt_speedup(sparse.speedup_over(dense)));
        t.row(&row);
    }
    let mut gm = vec!["GMEAN".to_owned()];
    for col in &per_scale {
        gm.push(fmt_speedup(geomean(col)));
    }
    gm.push(String::new());
    t.row(&gm);
    t.print();
    println!("Peak sparse-SIMD2 speedup: {}", fmt_speedup(peak));
}
