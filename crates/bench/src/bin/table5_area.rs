//! Regenerates Table 5 (area) plus the §6.1 power and die-level numbers.

use simd2_bench::Table;
use simd2_mxu::{AreaModel, DieModel, PowerModel};
use simd2_semiring::precision::Precision;
use simd2_semiring::EXTENDED_OPS;

fn main() {
    // (a) Adding instructions to the MMA unit.
    let mut a = Table::new(
        "Table 5(a): combined-unit area relative to the 16-bit MMA baseline",
        &["Supported ops", "Area (rel)", "Area (mm2 @45nm)"],
    );
    let full = AreaModel::combined(&EXTENDED_OPS);
    a.row(&[
        "MMA + all SIMD2 insts".to_owned(),
        format!("{:.2}", full.relative_area()),
        format!("{:.2}", full.area_mm2_45nm()),
    ]);
    for op in EXTENDED_OPS {
        let m = AreaModel::combined(&[op]);
        a.row(&[
            format!("MMA + {}", op.name()),
            format!("{:.2}", m.relative_area()),
            format!("{:.2}", m.area_mm2_45nm()),
        ]);
    }
    a.print();
    println!();

    // (b) Standalone accelerators.
    let mut b = Table::new(
        "Table 5(b): standalone per-op accelerators",
        &["Supported op", "Area (rel)"],
    );
    for op in EXTENDED_OPS {
        b.row(&[
            op.name().to_owned(),
            format!("{:.2}", AreaModel::standalone(op).relative_area()),
        ]);
    }
    b.row(&[
        "total".to_owned(),
        format!("{:.2}", AreaModel::standalone_total()),
    ]);
    b.print();
    println!();

    // (c) Precision scaling.
    let mut c = Table::new(
        "Table 5(c): precision scaling (relative to 16-bit MMA)",
        &["Unit", "8-bit", "16-bit", "32-bit", "64-bit"],
    );
    let fmt_row = |name: &str, f: &dyn Fn(Precision) -> f64| {
        let mut row = vec![name.to_owned()];
        for p in Precision::all() {
            row.push(format!("{:.2}", f(p)));
        }
        row
    };
    c.row(&fmt_row("MMA only", &AreaModel::mma_at_precision));
    c.row(&fmt_row(
        "MMA + all SIMD2 insts",
        &AreaModel::full_simd2_at_precision,
    ));
    c.print();
    println!();

    // Shape scaling + power + die (§6.1 prose numbers).
    println!(
        "8x8-tile MMA unit: {:.2}x the 4x4 baseline (overhead ratio constant)",
        AreaModel::shape_scale(8) / AreaModel::shape_scale(4)
    );
    println!(
        "Power: MMA {:.2} W -> full SIMD2 {:.2} W (+{:.2} W)",
        PowerModel::MMA_WATTS,
        PowerModel::combined_watts(&EXTENDED_OPS),
        PowerModel::combined_watts(&EXTENDED_OPS) - PowerModel::MMA_WATTS
    );
    let die = DieModel::rtx3080();
    println!(
        "Die: SIMD2 unit adds {:.3} mm2/SM @8N = {:.1}% of an SM = {:.1}% of the {} SM die",
        die.simd2_overhead_mm2(),
        100.0 * die.sm_overhead_fraction(),
        100.0 * die.die_overhead_fraction(),
        die.sm_count()
    );
}
