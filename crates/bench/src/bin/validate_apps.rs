//! §5.1 correctness-validation sweep: runs every application functionally
//! at a host-tractable scale, compares the SIMD2-ized output (on both the
//! fp32 reference backend and the fp16 tiled backend) against the
//! state-of-the-art baseline algorithm, and reports the op statistics.

use simd2::backend::{Backend, ReferenceBackend, TiledBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::validate::compare_outputs;
use simd2_apps::{aplp, apsp, gtc, knn, mst, paths, AppKind};
use simd2_bench::Table;
use simd2_semiring::OpKind;

fn run_app<B: Backend>(app: AppKind, n: usize, be: &mut B) -> (f32, usize, u64) {
    // Returns (max_abs_diff vs baseline, iterations, tile_mmos).
    let alg = ClosureAlgorithm::Leyzorek;
    let seed = 42;
    match app {
        AppKind::Apsp => {
            let g = apsp::generate(n, seed);
            let want = apsp::baseline(&g);
            let r = apsp::simd2(be, &g, alg, true);
            (
                compare_outputs("apsp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::Aplp => {
            let g = aplp::generate(n, seed);
            let want = aplp::baseline(&g);
            let r = aplp::simd2(be, &g, alg, true);
            (
                compare_outputs("aplp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::Mcp => {
            let g = paths::generate_mcp(n, seed);
            let want = paths::baseline(OpKind::MaxMin, &g);
            let r = paths::simd2(be, OpKind::MaxMin, &g, alg, true);
            (
                compare_outputs("mcp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::MaxRp => {
            let g = paths::generate_maxrp(n, seed);
            let want = paths::baseline(OpKind::MaxMul, &g);
            let r = paths::simd2(be, OpKind::MaxMul, &g, alg, true);
            (
                compare_outputs("maxrp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::MinRp => {
            let g = paths::generate_minrp(n, seed);
            let want = paths::baseline(OpKind::MinMul, &g);
            let r = paths::simd2(be, OpKind::MinMul, &g, alg, true);
            (
                compare_outputs("minrp", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::Mst => {
            let g = mst::generate(n, 0.1, seed);
            let want = mst::baseline(&g);
            let (got, r) = mst::simd2(be, &g, alg, true);
            let diff = (want.total_weight - got.total_weight).abs() as f32
                + if want.edges == got.edges { 0.0 } else { 1.0 };
            (diff, r.stats.iterations, be.op_count().tile_mmos)
        }
        AppKind::Gtc => {
            let g = gtc::generate(n, seed);
            let want = gtc::baseline(&g);
            let r = gtc::simd2(be, &g, alg, true);
            (
                compare_outputs("gtc", &want, &r.closure, 0.0).max_abs_diff,
                r.stats.iterations,
                be.op_count().tile_mmos,
            )
        }
        AppKind::Knn => {
            let pts = knn::generate(n, seed);
            let want = knn::baseline(&pts, knn::K);
            let got = knn::simd2(be, &pts, knn::K);
            let recall = knn::recall(&want, &got);
            ((1.0 - recall) as f32, 1, be.op_count().tile_mmos)
        }
    }
}

fn main() {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    let mut t = Table::new(
        format!("Correctness validation at n = {n} (diff vs baseline algorithm output)"),
        &[
            "app",
            "backend",
            "max abs diff / (1-recall)",
            "iterations",
            "tile mmos",
            "verdict",
        ],
    );
    for app in AppKind::all() {
        for fp16 in [false, true] {
            let (diff, iters, mmos, name) = if fp16 {
                let mut be = TiledBackend::new();
                let (d, i, m) = run_app(app, n, &mut be);
                (d, i, m, "SIMD2 units (fp16)")
            } else {
                let mut be = ReferenceBackend::new();
                let (d, i, m) = run_app(app, n, &mut be);
                (d, i, m, "CUDA cores (fp32)")
            };
            // fp16 tolerance: multiplicative algebras accumulate relative
            // error; everything else must be exact on these workloads.
            let tol = match app.spec().op {
                OpKind::MaxMul | OpKind::MinMul => 0.02,
                OpKind::PlusNorm => 0.05,
                _ => 0.0,
            };
            let verdict = if diff <= tol { "PASS" } else { "FAIL" };
            t.row(&[
                app.spec().label.to_owned(),
                name.to_owned(),
                format!("{diff:.3e}"),
                iters.to_string(),
                mmos.to_string(),
                verdict.to_owned(),
            ]);
        }
    }
    t.print();
}
