//! §5.1 correctness-validation sweep: runs every application functionally
//! at a host-tractable scale through the registry-driven harness
//! ([`simd2_apps::harness`]), compares the SIMD2-ized output (on both the
//! fp32 reference backend and the fp16 tiled backend) against the
//! state-of-the-art baseline algorithm, and reports the op statistics.
//!
//! Each run records its MMO sequence as a [`Plan`](simd2::Plan); the
//! sweep replays that plan on a fresh backend of the same kind and
//! cross-checks the replay's work counters against the recorded run's —
//! the `replay` column reports the verdict.

use simd2::backend::{Backend, ReferenceBackend, TiledBackend};
use simd2::solve::ClosureAlgorithm;
use simd2::PlanExecutor;
use simd2_apps::{harness, AppKind, AppRun};
use simd2_bench::Table;

/// Replays the run's plan on `fresh` and checks the replayed work
/// counters equal the recorded run's.
fn replay_verdict<B: Backend>(run: &AppRun, recorded: u64, fresh: &mut B) -> &'static str {
    match PlanExecutor::new().run(&run.plan, fresh) {
        Ok(_) if fresh.op_count().tile_mmos == recorded => "OK",
        Ok(_) => "COUNT-MISMATCH",
        Err(_) => "ERROR",
    }
}

fn main() {
    let n: usize = std::env::args()
        .skip_while(|a| a != "--size")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    let mut t = Table::new(
        format!("Correctness validation at n = {n} (diff vs baseline algorithm output)"),
        &[
            "app",
            "backend",
            "max abs diff / (1-recall)",
            "iterations",
            "tile mmos",
            "replay",
            "verdict",
        ],
    );
    let alg = ClosureAlgorithm::Leyzorek;
    let seed = 42;
    for app in AppKind::all() {
        for fp16 in [false, true] {
            let (run, mmos, replay, name) = if fp16 {
                let mut be = TiledBackend::new();
                let run = harness::run_app(&mut be, app, n, seed, alg, true);
                let mmos = be.op_count().tile_mmos;
                let replay = replay_verdict(&run, mmos, &mut TiledBackend::new());
                (run, mmos, replay, "SIMD2 units (fp16)")
            } else {
                let mut be = ReferenceBackend::new();
                let run = harness::run_app(&mut be, app, n, seed, alg, true);
                let mmos = be.op_count().tile_mmos;
                let replay = replay_verdict(&run, mmos, &mut ReferenceBackend::new());
                (run, mmos, replay, "CUDA cores (fp32)")
            };
            let verdict = if run.passed() { "PASS" } else { "FAIL" };
            t.row(&[
                app.spec().label.to_owned(),
                name.to_owned(),
                format!("{:.3e}", run.diff),
                run.iterations.to_string(),
                mmos.to_string(),
                replay.to_owned(),
                verdict.to_owned(),
            ]);
        }
    }
    t.print();
}
