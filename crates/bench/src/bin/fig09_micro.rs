//! Regenerates Figure 9: per-operation microbenchmark speedups on square
//! matrices, SIMD2 units vs the CUDA-core implementation.
//!
//! Pass `--validate` to additionally run the functional cross-check
//! (tiled fp16 backend vs fp32 reference) at a host-tractable size.

use simd2::micro::{fig9_sizes, MicroBench};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::{geomean, Gpu};
use simd2_semiring::ALL_OPS;

fn main() {
    let validate = std::env::args().any(|a| a == "--validate");
    let gpu = Gpu::default();
    let sizes = fig9_sizes();
    let mut header: Vec<String> = vec!["op".into()];
    header.extend(sizes.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 9: microbenchmark speedup, SIMD2 units over CUDA cores (square NxN)",
        &header_refs,
    );
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for op in ALL_OPS {
        let mut row = vec![op.name().to_owned()];
        for (i, &n) in sizes.iter().enumerate() {
            let s = MicroBench::square(op, n).time(&gpu).speedup();
            per_size[i].push(s);
            row.push(fmt_speedup(s));
        }
        t.row(&row);
    }
    let mut gm = vec!["GMEAN".to_owned()];
    for col in &per_size {
        gm.push(fmt_speedup(geomean(col)));
    }
    t.row(&gm);
    t.print();

    if validate {
        println!();
        let mut v = Table::new(
            "Functional cross-check at 64x64x64 (max |fp16-unit - fp32-ref| element error)",
            &["op", "max abs diff"],
        );
        for op in ALL_OPS {
            let diff = MicroBench::square(op, 64).validate(1);
            v.row(&[op.name().to_owned(), format!("{diff:.3e}")]);
        }
        v.print();
    }
}
