//! Ablation (§3.1 design choice): SIMD² units integrated into GPU SMs vs
//! a standalone SIMD² accelerator across a host interconnect. The paper
//! argues for integration because "matrix operations just serve as the
//! core computation" — pre/post-processing and convergence checks need
//! collocated scalar/vector cores. This harness quantifies the claim.

use simd2::solve::ClosureAlgorithm;
use simd2_apps::{AppKind, AppTiming, Config};
use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::Gpu;
use simd2_matrix::gen::InputScale;

fn main() {
    let model = AppTiming::new(Gpu::default());
    let mut t = Table::new(
        "Integrated (GPU SM) vs standalone SIMD2 accelerator, speedup over baseline (small)",
        &["app", "integrated", "standalone ASIC", "integration buys"],
    );
    for app in AppKind::all() {
        let n = app.dimension(InputScale::Small);
        let iters = model.iterations(app, n, ClosureAlgorithm::Leyzorek, true);
        let base = model.baseline_time(app, n);
        let integrated = model.simd2_time(app, n, iters, true, Config::Simd2Units);
        let standalone = model.standalone_simd2_time(app, n, iters, true);
        t.row(&[
            app.spec().label.to_owned(),
            fmt_speedup(integrated.speedup_over(base)),
            fmt_speedup(standalone.speedup_over(base)),
            format!("{:.2}x", standalone.get() / integrated.get()),
        ]);
    }
    t.print();
    println!(
        "\nConvergence-checked closures lose most of their gain across a host link —\n\
         the §3.1 argument for building SIMD2 into the SM rather than beside it."
    );
}
