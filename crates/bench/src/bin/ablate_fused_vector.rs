//! Ablation (§6.2 future-work aside): what if CUDA cores gained fused
//! vector instructions for every ⊕-⊗ pair, the way multiply-add has FMA?
//!
//! The paper argues SIMD² "has larger potential than fusing more vector
//! operations": fusing shrinks the gap to the raw throughput ratio
//! (quoting "up to 5.96× for larger matrix operations"), while the SIMD²
//! architecture keeps the full tile-pipe advantage.

use simd2_bench::{report::fmt_speedup, Table};
use simd2_gpu::cost::{cuda_op_cost, cuda_op_cost_fused, effective_dim, utilisation};
use simd2_gpu::{geomean, Gpu};
use simd2_semiring::ALL_OPS;

fn main() {
    let gpu = Gpu::default();
    let n = 16384usize;
    let mut t = Table::new(
        format!("SIMD2-unit speedup at {n}^3 under today's ISA vs a fused-vector ISA"),
        &[
            "op",
            "vs today's CUDA ISA",
            "vs fused-vector ISA",
            "fusion closes",
        ],
    );
    let mut today_all = Vec::new();
    let mut fused_all = Vec::new();
    for op in ALL_OPS {
        let simd2 = gpu.simd2_mmo_time(op, n, n, n).get();
        let eff = utilisation(effective_dim(n, n, n), gpu.config().cuda_half_sat_dim);
        let steps = (n as f64).powi(3);
        let cuda = |slots: f64| steps * slots / (gpu.config().cuda_ops_per_second() * eff);
        let s_today = cuda(cuda_op_cost(op).total_slots()) / simd2;
        let s_fused = cuda(cuda_op_cost_fused(op).total_slots()) / simd2;
        today_all.push(s_today);
        fused_all.push(s_fused);
        t.row(&[
            op.name().to_owned(),
            fmt_speedup(s_today),
            fmt_speedup(s_fused),
            format!("{:.0}%", 100.0 * (1.0 - s_fused / s_today)),
        ]);
    }
    t.row(&[
        "GMEAN".to_owned(),
        fmt_speedup(geomean(&today_all)),
        fmt_speedup(geomean(&fused_all)),
        String::new(),
    ]);
    t.print();
    println!(
        "\nEven against a fully fused vector ISA, SIMD2 keeps up to {} (paper: up to 5.96x).",
        simd2_bench::report::fmt_speedup(fused_all.iter().copied().fold(0.0, f64::max))
    );
}
