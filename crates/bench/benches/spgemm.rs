//! Criterion: semiring spGEMM across sparsities — the functional kernel
//! behind the Figure 14 study and the §6.5 GAMMA extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simd2_matrix::gen;
use simd2_semiring::OpKind;
use simd2_sparse::Csr;

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_256");
    for sparsity in [0.90, 0.99, 0.999] {
        let d = gen::random_sparse_matrix(256, sparsity, 5);
        let a = Csr::from_dense(&d, 0.0).unwrap();
        group.bench_with_input(
            BenchmarkId::new("plus_mul", format!("{sparsity}")),
            &a,
            |bench, a| bench.iter(|| a.spgemm(OpKind::PlusMul, a)),
        );
    }
    // Semiring variant on a graph adjacency.
    let g = gen::gnp_graph(256, 0.02, 1.0, 9.0, 3);
    let adj = Csr::from_dense(&g.adjacency(OpKind::MinPlus), f32::INFINITY).unwrap();
    group.bench_function("min_plus/graph", |bench| {
        bench.iter(|| adj.spgemm(OpKind::MinPlus, &adj));
    });
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
