//! Criterion: dynamic (per-element opcode dispatch) vs monomorphised
//! (cuASR-style template) kernels — the cost of treating the operation
//! as data, which the hardware pays once at decode but naive software
//! pays per scalar step.

use criterion::{criterion_group, criterion_main, Criterion};
use simd2::typed::{mmo_tiled, mmo_typed_tiled};
use simd2_matrix::{gen, reference, Matrix};
use simd2_semiring::{MinPlus, OpKind};

fn bench_dispatch(c: &mut Criterion) {
    let n = 96;
    let a = gen::random_matrix(n, n, 0.0, 9.0, 1);
    let b = gen::random_matrix(n, n, 0.0, 9.0, 2);
    let acc = Matrix::filled(n, n, f32::INFINITY);
    let mut group = c.benchmark_group("dispatch_96");
    group.bench_function("dynamic_per_element", |bench| {
        bench.iter(|| reference::mmo(OpKind::MinPlus, &a, &b, &acc).unwrap());
    });
    group.bench_function("typed_tiled", |bench| {
        bench.iter(|| mmo_typed_tiled::<MinPlus>(&a, &b, &acc).unwrap());
    });
    group.bench_function("dynamic_bridge_tiled", |bench| {
        bench.iter(|| mmo_tiled(OpKind::MinPlus, &a, &b, &acc).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
