//! Criterion: whole-matrix `D = C ⊕ (A ⊗ B)` across backends and
//! operations — the functional-kernel counterpart of Figure 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simd2::backend::{Backend, ReferenceBackend, TiledBackend};
use simd2_matrix::{gen, Matrix};
use simd2_semiring::ALL_OPS;

fn bench_backends(c: &mut Criterion) {
    let n = 64;
    let mut group = c.benchmark_group("mmo_64");
    for op in ALL_OPS {
        let a = gen::random_operands_for(op, n, n, 1);
        let b = gen::random_operands_for(op, n, n, 2);
        let acc = Matrix::filled(n, n, op.reduce_identity_f32());
        group.bench_with_input(
            BenchmarkId::new("reference", op.name()),
            &op,
            |bench, &op| {
                let mut be = ReferenceBackend::new();
                bench.iter(|| be.mmo(op, &a, &b, &acc).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tiled_fp16", op.name()),
            &op,
            |bench, &op| {
                let mut be = TiledBackend::new();
                bench.iter(|| be.mmo(op, &a, &b, &acc).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
