//! Criterion: single-tile SIMD² unit throughput per operation — the
//! latency-parity contract of §3.2 at the functional level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simd2_matrix::Tile;
use simd2_mxu::Simd2Unit;
use simd2_semiring::ALL_OPS;

fn bench_unit(c: &mut Criterion) {
    let unit = Simd2Unit::new();
    let a = Tile::<16>::from_fn(|r, col| ((r * 16 + col) % 13) as f32 * 0.25);
    let b = Tile::<16>::from_fn(|r, col| ((r + 5 * col) % 11) as f32 * 0.5);
    let mut group = c.benchmark_group("unit_tile16");
    for op in ALL_OPS {
        let acc = Tile::<16>::splat(op.reduce_identity_f32());
        group.bench_with_input(BenchmarkId::from_parameter(op.name()), &op, |bench, &op| {
            bench.iter(|| unit.execute(op, &a, &b, &acc));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unit);
criterion_main!(benches);
