//! Criterion: warp-level ISA executor throughput (load/mmo/store stream).

use criterion::{criterion_group, criterion_main, Criterion};
use simd2_isa::{asm, Executor, SharedMemory};
use simd2_matrix::Matrix;

fn bench_executor(c: &mut Criterion) {
    let mut mem = SharedMemory::new(4096);
    mem.write_matrix(0, 16, &Matrix::filled(16, 16, 1.5))
        .unwrap();
    mem.write_matrix(256, 16, &Matrix::filled(16, 16, 2.5))
        .unwrap();
    let prog = asm::parse(
        "simd2.load.f16 %m0, [0], 16
         simd2.load.f16 %m1, [256], 16
         simd2.fill %m2, inf
         simd2.minplus %m2, %m0, %m1, %m2
         simd2.minplus %m2, %m0, %m1, %m2
         simd2.minplus %m2, %m0, %m1, %m2
         simd2.minplus %m2, %m0, %m1, %m2
         simd2.store.f32 [512], %m2, 16",
    )
    .unwrap();
    c.bench_function("isa_executor/4mmo_stream", |bench| {
        bench.iter(|| {
            let mut exec = Executor::new(mem.clone());
            exec.run(&prog).unwrap()
        });
    });
    let words: Vec<u64> = prog.iter().map(|i| i.encode()).collect();
    c.bench_function("isa_decode/8instr", |bench| {
        bench.iter(|| {
            words
                .iter()
                .map(|&w| simd2_isa::Instruction::decode(w).unwrap())
                .collect::<Vec<_>>()
        });
    });
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
