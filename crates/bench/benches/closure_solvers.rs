//! Criterion: Bellman-Ford vs Leyzorek closure solvers (the §6.4
//! algorithmic comparison, functional side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simd2::backend::ReferenceBackend;
use simd2::solve::{closure, ClosureAlgorithm};
use simd2_matrix::gen;
use simd2_semiring::OpKind;

fn bench_closures(c: &mut Criterion) {
    let g = gen::connected_gnp_graph(96, 0.08, 1.0, 9.0, 7);
    let adj = g.adjacency(OpKind::MinPlus);
    let mut group = c.benchmark_group("closure_96");
    for alg in [ClosureAlgorithm::BellmanFord, ClosureAlgorithm::Leyzorek] {
        for convergence in [true, false] {
            let label = format!(
                "{}{}",
                alg.label(),
                if convergence { "+conv" } else { "-conv" }
            );
            group.bench_with_input(BenchmarkId::from_parameter(label), &alg, |bench, &alg| {
                bench.iter(|| {
                    let mut be = ReferenceBackend::new();
                    closure(&mut be, OpKind::MinPlus, &adj, alg, convergence).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closures);
criterion_main!(benches);
