//! Closure solvers: the algorithmic layer of the SIMD² applications.
//!
//! All the path-style applications reduce to computing the *closure* of an
//! adjacency matrix under a semiring-like algebra — the fixed point of
//! repeated relaxation. Two algorithms from the paper (§4, §6.4):
//!
//! * **All-pairs Bellman-Ford** (Figure 7): `D ← D ⊕ (D ⊗ A)` — extends
//!   every path by one edge per iteration; up to `|V| − 1` iterations.
//! * **Leyzorek's algorithm** (repeated squaring): `D ← D ⊕ (D ⊗ D)` —
//!   doubles path lengths per iteration; at most `⌈log₂|V|⌉` iterations.
//!
//! Both support the optional *convergence check* of Figure 7's
//! `check_convergence`: real graphs have small diameters, so the fixed
//! point arrives long before the worst-case bound, and an element-wise
//! comparison per iteration buys early exit (§6.4 quantifies the cost of
//! turning it off).

use simd2_matrix::{Matrix, ShapeError};
use simd2_semiring::OpKind;

use crate::backend::Backend;
use crate::error::BackendError;

/// Which relaxation scheme drives the closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClosureAlgorithm {
    /// All-pairs Bellman-Ford: one-edge extension per iteration.
    BellmanFord,
    /// Leyzorek repeated squaring: path-length doubling per iteration.
    Leyzorek,
}

impl ClosureAlgorithm {
    /// Worst-case iteration count for an `n`-vertex graph.
    pub fn worst_case_iterations(self, n: usize) -> usize {
        match self {
            ClosureAlgorithm::BellmanFord => n.saturating_sub(1).max(1),
            ClosureAlgorithm::Leyzorek => {
                let mut iters = 0;
                let mut reach = 1usize;
                while reach < n.saturating_sub(1).max(1) {
                    reach *= 2;
                    iters += 1;
                }
                iters.max(1)
            }
        }
    }

    /// Display label used by the figures.
    pub fn label(self) -> &'static str {
        match self {
            ClosureAlgorithm::BellmanFord => "Bellman-Ford",
            ClosureAlgorithm::Leyzorek => "Leyzorek",
        }
    }
}

/// Work statistics of one closure run — the numbers the performance model
/// charges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosureStats {
    /// Relaxation iterations actually executed.
    pub iterations: usize,
    /// Whole-matrix `mmo` operations.
    pub matrix_mmos: usize,
    /// Convergence checks executed (element-wise matrix compares).
    pub convergence_checks: usize,
    /// Whether the run exited early at a fixed point.
    pub converged_early: bool,
}

/// A computed closure plus its statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosureResult {
    /// The closure matrix (e.g. all-pairs distances).
    pub closure: Matrix,
    /// Work performed.
    pub stats: ClosureStats,
}

/// Element-wise fixed-point check (`check_convergence` in Figure 7) —
/// exact comparison, which idempotent algebras reach exactly.
pub fn check_convergence(prev: &Matrix, next: &Matrix) -> bool {
    prev == next
}

/// Computes the closure of `adj` under `op` with the given algorithm.
///
/// `adj` must already be an adjacency matrix in `op`'s algebra (no-edge
/// encoding off-diagonal, `⊗` identity on the diagonal — see
/// [`simd2_matrix::Graph::adjacency`]). When `convergence` is false, the
/// worst-case iteration count runs unconditionally (§6.4's ablation).
///
/// # Errors
///
/// Returns [`BackendError::Shape`] if `adj` is not square, and
/// propagates any backend failure (including ABFT corruption
/// detections) from the relaxation steps.
///
/// # Panics
///
/// Panics if `op` is not a closure algebra (idempotent `⊕` with a no-edge
/// encoding) — plus-mul and plus-norm do not have fixed-point closures.
pub fn closure<B: Backend>(
    backend: &mut B,
    op: OpKind,
    adj: &Matrix,
    algorithm: ClosureAlgorithm,
    convergence: bool,
) -> Result<ClosureResult, BackendError> {
    assert!(op.is_closure_algebra(), "{op} has no fixed-point closure");
    if !adj.is_square() {
        return Err(BackendError::Shape(ShapeError::new(
            "adjacency matrix",
            (adj.rows(), adj.rows()),
            adj.shape(),
        )));
    }
    let n = adj.rows();
    let max_iters = algorithm.worst_case_iterations(n);
    let mut dist = adj.clone();
    let mut stats = ClosureStats::default();
    for _ in 0..max_iters {
        let next = match algorithm {
            // dist ⊕ (dist ⊗ adj): extend every path by one edge.
            ClosureAlgorithm::BellmanFord => backend.mmo(op, &dist, adj, &dist)?,
            // dist ⊕ (dist ⊗ dist): double path lengths.
            ClosureAlgorithm::Leyzorek => backend.mmo(op, &dist, &dist, &dist)?,
        };
        stats.iterations += 1;
        stats.matrix_mmos += 1;
        if convergence {
            stats.convergence_checks += 1;
            if check_convergence(&dist, &next) {
                stats.converged_early = true;
                dist = next;
                break;
            }
        }
        dist = next;
    }
    Ok(ClosureResult {
        closure: dist,
        stats,
    })
}

/// Reference closure via textbook Floyd–Warshall generalised over the
/// algebra — `O(n³)` scalar, full fp32; the oracle the matrix solvers are
/// validated against.
///
/// # Panics
///
/// Panics if `adj` is not square or `op` is not a closure algebra.
pub fn floyd_warshall_closure(op: OpKind, adj: &Matrix) -> Matrix {
    assert!(op.is_closure_algebra(), "{op} has no fixed-point closure");
    assert!(adj.is_square());
    let n = adj.rows();
    let mut d = adj.clone();
    for k in 0..n {
        for i in 0..n {
            let dik = d[(i, k)];
            for j in 0..n {
                d[(i, j)] = op.reduce_f32(d[(i, j)], op.combine_f32(dik, d[(k, j)]));
            }
        }
    }
    d
}

/// Evaluates a path's value under `op`: the `⊗`-combination of its edge
/// weights (the `⊗` identity for a single-vertex path).
///
/// Returns `None` if any hop is missing from `adj`.
pub fn path_value(op: OpKind, adj: &Matrix, path: &[usize]) -> Option<f32> {
    let no_edge = op.no_edge_f32()?;
    let mut acc = op.combine_identity_f32()?;
    for hop in path.windows(2) {
        let w = adj[(hop[0], hop[1])];
        if w == no_edge {
            return None;
        }
        acc = op.combine_f32(acc, w);
    }
    Some(acc)
}

/// Reconstructs one optimal path `src → dst` from an adjacency matrix and
/// its closure — the answer-extraction step applications need after the
/// matrix solve (the closure itself only stores optimal *values*).
///
/// Uses depth-first descent with backtracking: an edge `(v, u)` is taken
/// when `A(v,u) ⊗ D(u,dst)` reproduces `D(v,dst)` exactly; ties are
/// resolved by vertex order, revisits are pruned. Exactness holds for the
/// fp32 selection algebras (min/max/or) where closures are computed
/// without rounding.
///
/// Returns `None` when `dst` is unreachable from `src`.
///
/// # Panics
///
/// Panics if `op` is not a closure algebra or the matrices disagree in
/// shape.
pub fn reconstruct_path(
    op: OpKind,
    adj: &Matrix,
    closure: &Matrix,
    src: usize,
    dst: usize,
) -> Option<Vec<usize>> {
    assert!(op.is_closure_algebra(), "{op} has no fixed-point closure");
    assert_eq!(
        adj.shape(),
        closure.shape(),
        "adjacency and closure must agree"
    );
    let n = adj.rows();
    let no_edge = op.no_edge_f32().expect("closure algebra");
    if closure[(src, dst)] == no_edge && src != dst {
        return None;
    }
    let mut path = vec![src];
    let mut visited = vec![false; n];
    visited[src] = true;
    fn dfs(
        op: OpKind,
        adj: &Matrix,
        closure: &Matrix,
        no_edge: f32,
        dst: usize,
        path: &mut Vec<usize>,
        visited: &mut [bool],
    ) -> bool {
        let v = *path.last().expect("path is never empty");
        if v == dst {
            return true;
        }
        let target = closure[(v, dst)];
        for u in 0..adj.rows() {
            if visited[u] || adj[(v, u)] == no_edge {
                continue;
            }
            // The edge must lie on an optimal continuation.
            let via = op.combine_f32(adj[(v, u)], closure[(u, dst)]);
            if via != target {
                continue;
            }
            visited[u] = true;
            path.push(u);
            if dfs(op, adj, closure, no_edge, dst, path, visited) {
                return true;
            }
            path.pop();
            // Leave `visited[u]` set: a vertex that cannot complete the
            // path under this prefix cannot complete it under a longer
            // one either (closure values are prefix-independent).
        }
        false
    }
    if dfs(op, adj, closure, no_edge, dst, &mut path, &mut visited) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ReferenceBackend, TiledBackend};
    use simd2_matrix::{gen, Graph};

    fn line_graph() -> Graph {
        // 0 →1→ 1 →2→ 2 →3→ 3 (weights are the edge numbers)
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g
    }

    #[test]
    fn bellman_ford_min_plus_on_line() {
        let adj = line_graph().adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let r = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::BellmanFord,
            true,
        )
        .unwrap();
        assert_eq!(r.closure[(0, 3)], 6.0);
        assert_eq!(r.closure[(0, 2)], 3.0);
        assert_eq!(r.closure[(3, 0)], f32::INFINITY);
        assert_eq!(r.closure[(1, 1)], 0.0);
    }

    #[test]
    fn leyzorek_matches_bellman_ford() {
        let g = gen::connected_gnp_graph(24, 0.15, 1.0, 9.0, 7);
        let adj = g.adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let bf = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::BellmanFord,
            true,
        )
        .unwrap();
        let ley = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::Leyzorek,
            true,
        )
        .unwrap();
        assert_eq!(bf.closure, ley.closure);
        assert!(ley.stats.iterations <= bf.stats.iterations);
    }

    #[test]
    fn both_match_floyd_warshall_across_algebras() {
        for op in [
            OpKind::MinPlus,
            OpKind::MinMax,
            OpKind::MaxMin,
            OpKind::OrAnd,
        ] {
            let g = gen::connected_gnp_graph(18, 0.2, 1.0, 7.0, 13);
            let adj = match op {
                OpKind::OrAnd => g.reachability(),
                _ => g.adjacency(op),
            };
            let want = floyd_warshall_closure(op, &adj);
            let mut be = ReferenceBackend::new();
            for alg in [ClosureAlgorithm::BellmanFord, ClosureAlgorithm::Leyzorek] {
                let r = closure(&mut be, op, &adj, alg, true).unwrap();
                assert_eq!(r.closure, want, "{op} {alg:?}");
            }
        }
    }

    #[test]
    fn tiled_backend_reaches_same_fixed_point() {
        // Integer weights are fp16-exact ⇒ the reduced-precision backend
        // must match the fp32 oracle bit-for-bit on min/max algebras.
        let g = gen::integer_weight_graph(20, 0.25, 15, 3);
        let adj = g.adjacency(OpKind::MinPlus);
        let want = floyd_warshall_closure(OpKind::MinPlus, &adj);
        let mut be = TiledBackend::new();
        let r = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::Leyzorek,
            true,
        )
        .unwrap();
        assert_eq!(r.closure, want);
        assert!(be.op_count().tile_mmos > 0);
    }

    #[test]
    fn convergence_check_exits_early() {
        // Diameter-3 line graph: BF converges after ~3 productive
        // iterations, far below the worst case of n−1.
        let mut g = Graph::new(32);
        for v in 0..3 {
            g.add_edge(v, v + 1, 1.0);
        }
        let adj = g.adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let with = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::BellmanFord,
            true,
        )
        .unwrap();
        assert!(with.stats.converged_early);
        assert!(with.stats.iterations <= 5);
        let without = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::BellmanFord,
            false,
        )
        .unwrap();
        assert!(!without.stats.converged_early);
        assert_eq!(without.stats.iterations, 31);
        assert_eq!(with.closure, without.closure);
        assert_eq!(without.stats.convergence_checks, 0);
    }

    #[test]
    fn worst_case_iteration_bounds() {
        assert_eq!(
            ClosureAlgorithm::BellmanFord.worst_case_iterations(1024),
            1023
        );
        assert_eq!(ClosureAlgorithm::Leyzorek.worst_case_iterations(1024), 10);
        assert_eq!(ClosureAlgorithm::Leyzorek.worst_case_iterations(1025), 10);
        assert_eq!(ClosureAlgorithm::Leyzorek.worst_case_iterations(2), 1);
        assert_eq!(ClosureAlgorithm::BellmanFord.worst_case_iterations(1), 1);
    }

    #[test]
    fn max_plus_critical_path_on_dag() {
        let g = gen::random_dag(16, 0.3, 1.0, 5.0, 11);
        let adj = g.adjacency(OpKind::MaxPlus);
        let want = floyd_warshall_closure(OpKind::MaxPlus, &adj);
        let mut be = ReferenceBackend::new();
        let r = closure(
            &mut be,
            OpKind::MaxPlus,
            &adj,
            ClosureAlgorithm::Leyzorek,
            true,
        )
        .unwrap();
        assert_eq!(r.closure, want);
        // Critical path lengths are ≥ direct edges.
        for (s, d, w) in g.edges() {
            assert!(r.closure[(s, d)] >= w);
        }
    }

    #[test]
    #[should_panic(expected = "no fixed-point closure")]
    fn plus_mul_is_rejected() {
        let adj = Matrix::zeros(4, 4);
        let mut be = ReferenceBackend::new();
        let _ = closure(
            &mut be,
            OpKind::PlusMul,
            &adj,
            ClosureAlgorithm::Leyzorek,
            true,
        );
    }

    #[test]
    fn non_square_is_an_error() {
        let adj = Matrix::zeros(4, 5);
        let mut be = ReferenceBackend::new();
        assert!(closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::Leyzorek,
            true
        )
        .is_err());
    }

    #[test]
    fn path_reconstruction_min_plus() {
        let adj = line_graph().adjacency(OpKind::MinPlus);
        let d = floyd_warshall_closure(OpKind::MinPlus, &adj);
        let path = reconstruct_path(OpKind::MinPlus, &adj, &d, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert_eq!(path_value(OpKind::MinPlus, &adj, &path), Some(6.0));
        // Unreachable direction.
        assert_eq!(reconstruct_path(OpKind::MinPlus, &adj, &d, 3, 0), None);
        // Trivial path.
        assert_eq!(
            reconstruct_path(OpKind::MinPlus, &adj, &d, 2, 2),
            Some(vec![2])
        );
    }

    #[test]
    fn path_reconstruction_recovers_closure_values_on_random_graphs() {
        for op in [
            OpKind::MinPlus,
            OpKind::MaxMin,
            OpKind::MinMax,
            OpKind::OrAnd,
        ] {
            for seed in [3u64, 11, 29] {
                let g = gen::connected_gnp_graph(16, 0.2, 1.0, 9.0, seed);
                let adj = match op {
                    OpKind::OrAnd => g.reachability(),
                    _ => g.adjacency(op),
                };
                let d = floyd_warshall_closure(op, &adj);
                for src in 0..16 {
                    for dst in 0..16 {
                        if src == dst {
                            continue;
                        }
                        let path = reconstruct_path(op, &adj, &d, src, dst)
                            .unwrap_or_else(|| panic!("{op} seed {seed}: {src}->{dst}"));
                        assert_eq!(*path.first().unwrap(), src);
                        assert_eq!(*path.last().unwrap(), dst);
                        assert!(path.len() <= 16, "simple path");
                        let v = path_value(op, &adj, &path).unwrap();
                        assert_eq!(v, d[(src, dst)], "{op} seed {seed}: {src}->{dst} {path:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn path_value_rejects_missing_hops() {
        let adj = line_graph().adjacency(OpKind::MinPlus);
        assert_eq!(
            path_value(OpKind::MinPlus, &adj, &[0, 2]),
            None,
            "no direct 0->2 edge"
        );
        assert_eq!(
            path_value(OpKind::MinPlus, &adj, &[1]),
            Some(0.0),
            "⊗ identity"
        );
    }

    #[test]
    fn stats_count_mmos() {
        let g = gen::connected_gnp_graph(16, 0.3, 1.0, 5.0, 5);
        let adj = g.adjacency(OpKind::MinPlus);
        let mut be = ReferenceBackend::new();
        let r = closure(
            &mut be,
            OpKind::MinPlus,
            &adj,
            ClosureAlgorithm::Leyzorek,
            false,
        )
        .unwrap();
        assert_eq!(r.stats.matrix_mmos, r.stats.iterations);
        assert_eq!(be.op_count().matrix_mmos as usize, r.stats.iterations);
    }
}
