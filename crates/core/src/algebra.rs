//! Ergonomic algebra-tagged matrices.
//!
//! [`SemiringMatrix<S>`] pairs a dense matrix with its algebra at the
//! *type* level, GraphBLAS-style: `&a * &b` is the semiring product,
//! `&a + &b` the element-wise `⊕`, and `a.closure()` the fixed point —
//! so application code reads like the math in the paper's Table 1 while
//! still running through the SIMD² backends underneath.
//!
//! ```
//! use simd2::algebra::SemiringMatrix;
//! use simd2_matrix::Matrix;
//! use simd2_semiring::MinPlus;
//!
//! let adj = SemiringMatrix::<MinPlus>::from_matrix(Matrix::from_rows(&[
//!     &[0.0, 2.0, f32::INFINITY],
//!     &[f32::INFINITY, 0.0, 3.0],
//!     &[f32::INFINITY, f32::INFINITY, 0.0],
//! ]));
//! let two_hop = &adj * &adj;          // min-plus matrix product
//! assert_eq!(two_hop[(0, 2)], 5.0);
//! let all_pairs = adj.closure();      // Kleene star / APSP
//! assert_eq!(all_pairs[(0, 2)], 5.0);
//! ```

use std::marker::PhantomData;
use std::ops::{Add, Index, Mul};

use simd2_matrix::Matrix;
use simd2_semiring::{OpKind, Semiring};

use crate::backend::{Backend, ReferenceBackend};
use crate::error::BackendError;
use crate::solve::{self, ClosureAlgorithm};

/// A dense matrix tagged with its semiring-like algebra.
#[derive(Clone, Debug, PartialEq)]
pub struct SemiringMatrix<S: Semiring<Elem = f32>> {
    inner: Matrix,
    _algebra: PhantomData<S>,
}

impl<S: Semiring<Elem = f32>> SemiringMatrix<S> {
    /// Wraps an existing matrix.
    pub fn from_matrix(inner: Matrix) -> Self {
        Self {
            inner,
            _algebra: PhantomData,
        }
    }

    /// An `n × n` identity under this algebra: `⊗`-identity diagonal,
    /// `⊕`-identity elsewhere — the unit of `*`.
    ///
    /// # Panics
    ///
    /// Panics if the algebra has no `⊗` identity (plus-norm).
    pub fn identity(n: usize) -> Self {
        let diag = S::KIND
            .combine_identity_f32()
            .unwrap_or_else(|| panic!("{} has no ⊗ identity", S::KIND));
        Self::from_matrix(Matrix::diagonal(n, diag, S::KIND.reduce_identity_f32()))
    }

    /// The algebra this matrix computes under.
    pub fn op(&self) -> OpKind {
        S::KIND
    }

    /// Borrow of the untagged matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.inner
    }

    /// Unwraps to the untagged matrix.
    pub fn into_matrix(self) -> Matrix {
        self.inner
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.shape()
    }

    /// Semiring product with an explicit accumulator: `C ⊕ (self ⊗ rhs)`.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] on incompatible shapes.
    pub fn mmo(&self, rhs: &Self, acc: &Self) -> Result<Self, BackendError> {
        let d = ReferenceBackend::new().mmo(S::KIND, &self.inner, &rhs.inner, &acc.inner)?;
        Ok(Self::from_matrix(d))
    }

    /// The closure (Kleene star) of a square matrix under this algebra —
    /// e.g. all-pairs shortest paths for min-plus.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the algebra has no
    /// fixed-point closure (plus-mul / plus-norm).
    pub fn closure(&self) -> Self {
        let mut be = ReferenceBackend::new();
        let r = solve::closure(
            &mut be,
            S::KIND,
            &self.inner,
            ClosureAlgorithm::Leyzorek,
            true,
        )
        .expect("square matrix required");
        Self::from_matrix(r.closure)
    }
}

impl<S: Semiring<Elem = f32>> Index<(usize, usize)> for SemiringMatrix<S> {
    type Output = f32;
    fn index(&self, idx: (usize, usize)) -> &f32 {
        &self.inner[idx]
    }
}

impl<S: Semiring<Elem = f32>> Mul for &SemiringMatrix<S> {
    type Output = SemiringMatrix<S>;

    /// The semiring matrix product `⊕ₖ (self ⊗ rhs)`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes (use [`SemiringMatrix::mmo`] for a
    /// fallible variant).
    fn mul(self, rhs: &SemiringMatrix<S>) -> SemiringMatrix<S> {
        let acc = SemiringMatrix::<S>::from_matrix(Matrix::filled(
            self.inner.rows(),
            rhs.inner.cols(),
            S::KIND.reduce_identity_f32(),
        ));
        self.mmo(rhs, &acc)
            .expect("operand shapes must be compatible")
    }
}

impl<S: Semiring<Elem = f32>> Add for &SemiringMatrix<S> {
    type Output = SemiringMatrix<S>;

    /// Element-wise `⊕`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add(self, rhs: &SemiringMatrix<S>) -> SemiringMatrix<S> {
        let d = simd2_matrix::reference::ewise_reduce(S::KIND, &self.inner, &rhs.inner)
            .expect("operand shapes must match");
        SemiringMatrix::from_matrix(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::gen;
    use simd2_semiring::{MaxMin, MinPlus, OrAnd};

    fn adj() -> SemiringMatrix<MinPlus> {
        let g = gen::connected_gnp_graph(12, 0.25, 1.0, 9.0, 3);
        SemiringMatrix::from_matrix(g.adjacency(OpKind::MinPlus))
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = adj();
        let id = SemiringMatrix::<MinPlus>::identity(12);
        assert_eq!((&a * &id).as_matrix(), a.as_matrix());
        assert_eq!((&id * &a).as_matrix(), a.as_matrix());
    }

    #[test]
    fn product_matches_reference_mmo() {
        let a = adj();
        let prod = &a * &a;
        let want = simd2_matrix::reference::mmo(
            OpKind::MinPlus,
            a.as_matrix(),
            a.as_matrix(),
            &Matrix::filled(12, 12, f32::INFINITY),
        )
        .unwrap();
        assert_eq!(prod.into_matrix(), want);
    }

    #[test]
    fn closure_is_a_multiplicative_fixed_point() {
        let a = adj();
        let star = a.closure();
        let advanced = &star * &star;
        assert_eq!(advanced.as_matrix(), star.as_matrix());
        assert_eq!(star.op(), OpKind::MinPlus);
    }

    #[test]
    fn ewise_add_is_the_reduce() {
        let a = SemiringMatrix::<MinPlus>::from_matrix(Matrix::from_rows(&[&[3.0, 9.0]]));
        let b = SemiringMatrix::<MinPlus>::from_matrix(Matrix::from_rows(&[&[5.0, 1.0]]));
        let c = &a + &b;
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 1.0);
    }

    #[test]
    fn works_across_algebras() {
        let g = gen::connected_gnp_graph(10, 0.3, 1.0, 9.0, 7);
        let cap = SemiringMatrix::<MaxMin>::from_matrix(g.adjacency(OpKind::MaxMin));
        let star = cap.closure();
        // Capacities only improve with more path choices.
        for i in 0..10 {
            for j in 0..10 {
                assert!(star[(i, j)] >= cap[(i, j)]);
            }
        }
        let reach = SemiringMatrix::<OrAnd>::from_matrix(g.reachability());
        let closed = reach.closure();
        assert!(
            closed.as_matrix().as_slice().iter().all(|&x| x == 1.0),
            "strongly connected"
        );
    }

    #[test]
    fn shapes_and_accessors() {
        let a = adj();
        assert_eq!(a.shape(), (12, 12));
        assert_eq!(a.as_matrix().rows(), 12);
    }

    #[test]
    #[should_panic(expected = "no ⊗ identity")]
    fn plus_norm_has_no_identity_matrix() {
        let _ = SemiringMatrix::<simd2_semiring::PlusNorm>::identity(4);
    }
}
