//! The high-level SIMD² interface (paper §4, Figure 6).
//!
//! "These high-level functions allow the programmer to simply specify the
//! memory locations of datasets and implicitly handle the
//! tiling/partitioning of datasets and algorithms." Here each function
//! accepts whole matrices of arbitrary shape, tiles them to the hardware's
//! 16×16 granularity with algebra-appropriate padding, and streams the
//! tiles through the functional SIMD² backend.
//!
//! ```
//! use simd2::highlevel::simd2_minplus;
//! use simd2_matrix::Matrix;
//!
//! // One Bellman-Ford relaxation step on a 3-vertex graph.
//! let adj = Matrix::from_rows(&[
//!     &[0.0, 1.0, f32::INFINITY],
//!     &[f32::INFINITY, 0.0, 2.0],
//!     &[f32::INFINITY, f32::INFINITY, 0.0],
//! ]);
//! let d = simd2_minplus(&adj, &adj, &adj)?;
//! assert_eq!(d[(0, 2)], 3.0); // 0→1→2 discovered
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use simd2_matrix::Matrix;
use simd2_semiring::OpKind;

use crate::backend::{Backend, OpCount, Parallelism, TiledBackend};
use crate::error::BackendError;
use crate::plan::passes::OptimizingRecorder;
use crate::plan::PlanBuilder;

/// A reusable high-level execution context: one tiled SIMD² engine, its
/// [`Parallelism`] setting, and its accumulated work counters.
///
/// The free functions ([`simd2_mmo`], [`simd2_minplus`], …) construct a
/// fresh sequential context per call; long-lived callers (solvers, app
/// kernels, benchmark harnesses) hold a context so the thread-count knob
/// is set once and counters aggregate across calls. Every setting is
/// bit-identical — parallelism only partitions independent output tiles.
///
/// # Example
///
/// ```
/// use simd2::highlevel::Simd2Context;
/// use simd2::Parallelism;
/// use simd2_matrix::Matrix;
/// use simd2_semiring::OpKind;
///
/// let mut ctx = Simd2Context::with_parallelism(Parallelism::Auto);
/// let a = Matrix::filled(32, 32, 1.0);
/// let c = Matrix::filled(32, 32, f32::INFINITY);
/// let d = ctx.mmo(OpKind::MinPlus, &a, &a, &c)?;
/// assert_eq!(d[(0, 0)], 2.0);
/// assert_eq!(ctx.op_count().matrix_mmos, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Simd2Context {
    backend: TiledBackend,
}

impl Simd2Context {
    /// A sequential context over the default fp16-input datapath.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context with the given parallelism setting.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            backend: TiledBackend::with_parallelism(parallelism),
        }
    }

    /// The current parallelism setting.
    pub fn parallelism(&self) -> Parallelism {
        self.backend.parallelism()
    }

    /// Changes the parallelism of subsequent calls (results unchanged).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.backend.set_parallelism(parallelism);
    }

    /// Starts recording a [`Plan`](crate::plan::Plan) over this
    /// context's backend: the returned builder is itself a [`Backend`],
    /// so any algorithm written against the trait (the closure solvers,
    /// the Figure-11 apps) runs unmodified while its MMO sequence is
    /// captured. Execution still happens eagerly underneath — outputs,
    /// counters and telemetry are identical to calling
    /// [`mmo`](Self::mmo) directly — and `finish()` yields the plan for
    /// replay, batching, ISA compilation, or timing-model export.
    ///
    /// # Example
    ///
    /// ```
    /// use simd2::{PlanExecutor, Simd2Context};
    /// use simd2::backend::Backend;
    /// use simd2_matrix::Matrix;
    /// use simd2_semiring::OpKind;
    ///
    /// let mut ctx = Simd2Context::new();
    /// let a = Matrix::filled(32, 32, 1.0);
    /// let c = Matrix::filled(32, 32, f32::INFINITY);
    /// let mut rec = ctx.record();
    /// let d = rec.mmo(OpKind::MinPlus, &a, &a, &c)?;
    /// let plan = rec.finish();
    /// assert_eq!(plan.step_count(), 1);
    /// // Replaying the plan reproduces the recorded result bit-for-bit.
    /// let replay = PlanExecutor::new().run(&plan, ctx.backend_mut())?;
    /// assert_eq!(replay.final_output(), Some(&d));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn record(&mut self) -> PlanBuilder<'_, TiledBackend> {
        PlanBuilder::over(&mut self.backend)
    }

    /// Like [`record`](Self::record), but `finish()` pipes the recorded
    /// plan through the [standard pass
    /// pipeline](crate::plan::passes::PassPipeline::standard) (CSE, dead-step
    /// elimination from leaf roots, RAW-chain fusion, cost-model wave
    /// scheduling) and yields an
    /// [`OptimizedPlan`](crate::plan::passes::OptimizedPlan): the
    /// optimized plan plus the original→optimized step/slot remap and a
    /// [`PassReport`](crate::plan::passes::PassReport) of what changed.
    /// Replay it with [`PlanExecutor::run_optimized`](crate::PlanExecutor)
    /// and read outputs back through the remap — bit-identical to the
    /// unoptimized replay for every step the map still reaches.
    ///
    /// # Example
    ///
    /// ```
    /// use simd2::{PlanExecutor, Simd2Context};
    /// use simd2::backend::Backend;
    /// use simd2_matrix::Matrix;
    /// use simd2_semiring::OpKind;
    ///
    /// let mut ctx = Simd2Context::new();
    /// let a = Matrix::filled(32, 32, 1.0);
    /// let c = Matrix::filled(32, 32, f32::INFINITY);
    /// let mut rec = ctx.record_optimized();
    /// let d0 = rec.mmo(OpKind::MinPlus, &a, &a, &c)?;
    /// let d1 = rec.mmo(OpKind::MinPlus, &a, &a, &c)?; // duplicate work
    /// let optimized = rec.finish();
    /// // CSE merged the duplicate: two recorded steps, one replayed.
    /// assert_eq!(optimized.report().steps_merged, 1);
    /// assert_eq!(optimized.plan().step_count(), 1);
    /// let replay = PlanExecutor::new().run_optimized(&optimized, ctx.backend_mut())?;
    /// assert_eq!(optimized.step_output(&replay, 0), Some(&d0));
    /// assert_eq!(optimized.step_output(&replay, 1), Some(&d1));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn record_optimized(&mut self) -> OptimizingRecorder<'_, TiledBackend> {
        OptimizingRecorder::over(&mut self.backend)
    }

    /// The underlying tiled backend, e.g. to replay a recorded plan on
    /// the same engine (counters keep aggregating).
    pub fn backend_mut(&mut self) -> &mut TiledBackend {
        &mut self.backend
    }

    /// Executes `D = C ⊕ (A ⊗ B)` with implicit tiling.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when operand shapes are incompatible.
    pub fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        self.backend.mmo(op, a, b, c)
    }

    /// Work counters accumulated across every call on this context.
    pub fn op_count(&self) -> OpCount {
        self.backend.op_count()
    }

    /// Resets the accumulated work counters.
    pub fn reset_count(&mut self) {
        self.backend.reset_count();
    }
}

/// Generic high-level entry point: `D = C ⊕ (A ⊗ B)` for any of the nine
/// operations, implicit tiling, fp16 operand semantics.
///
/// # Errors
///
/// Returns a [`BackendError`] when operand shapes are incompatible.
pub fn simd2_mmo(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, BackendError> {
    Simd2Context::new().mmo(op, a, b, c)
}

macro_rules! highlevel_fn {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Returns a [`BackendError`] when operand shapes are incompatible.
        pub fn $name(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, BackendError> {
            simd2_mmo($op, a, b, c)
        }
    };
}

highlevel_fn!(
    /// `D = C + A·B` — matrix-multiply-accumulate.
    simd2_mma,
    OpKind::PlusMul
);
highlevel_fn!(
    /// `D = C min (A minplus B)` — shortest-path relaxation (Figure 6).
    simd2_minplus,
    OpKind::MinPlus
);
highlevel_fn!(
    /// `D = C max (A maxplus B)` — critical-path relaxation.
    simd2_maxplus,
    OpKind::MaxPlus
);
highlevel_fn!(
    /// `D = C min (A minmul B)` — minimum-reliability relaxation.
    simd2_minmul,
    OpKind::MinMul
);
highlevel_fn!(
    /// `D = C max (A maxmul B)` — maximum-reliability relaxation.
    simd2_maxmul,
    OpKind::MaxMul
);
highlevel_fn!(
    /// `D = C min (A minmax B)` — minimax / spanning-tree relaxation.
    simd2_minmax,
    OpKind::MinMax
);
highlevel_fn!(
    /// `D = C max (A maxmin B)` — maximum-capacity relaxation.
    simd2_maxmin,
    OpKind::MaxMin
);
highlevel_fn!(
    /// `D = C ∨ (A orand B)` — transitive-closure step on boolean
    /// matrices encoded as `0.0`/`1.0`.
    simd2_orand,
    OpKind::OrAnd
);
highlevel_fn!(
    /// `D = C + Σₖ (Aᵢₖ − Bₖⱼ)²` — pairwise squared-L2 accumulation.
    simd2_addnorm,
    OpKind::PlusNorm
);

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::reference;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn named_functions_match_generic_entry() {
        let a = Matrix::from_fn(8, 8, |r, c| ((r + c) % 4) as f32 * 0.5);
        let b = Matrix::from_fn(8, 8, |r, c| ((r * c) % 3) as f32 * 0.25);
        type Hl = fn(&Matrix, &Matrix, &Matrix) -> Result<Matrix, BackendError>;
        let table: [(OpKind, Hl); 9] = [
            (OpKind::PlusMul, simd2_mma),
            (OpKind::MinPlus, simd2_minplus),
            (OpKind::MaxPlus, simd2_maxplus),
            (OpKind::MinMul, simd2_minmul),
            (OpKind::MaxMul, simd2_maxmul),
            (OpKind::MinMax, simd2_minmax),
            (OpKind::MaxMin, simd2_maxmin),
            (OpKind::OrAnd, simd2_orand),
            (OpKind::PlusNorm, simd2_addnorm),
        ];
        for (op, f) in table {
            let c = Matrix::filled(8, 8, op.reduce_identity_f32());
            assert_eq!(
                f(&a, &b, &c).unwrap(),
                simd2_mmo(op, &a, &b, &c).unwrap(),
                "{op}"
            );
        }
    }

    #[test]
    fn arbitrary_shapes_are_tiled_transparently() {
        // 17×23×31 is maximally ragged against the 16-wide tile.
        for op in ALL_OPS {
            let a = Matrix::from_fn(17, 31, |r, c| ((r * 31 + c) % 5) as f32 * 0.25 + 0.25);
            let b = Matrix::from_fn(31, 23, |r, c| ((r * 23 + c) % 7) as f32 * 0.125 + 0.125);
            let c = Matrix::filled(17, 23, op.reduce_identity_f32());
            let got = simd2_mmo(op, &a, &b, &c).unwrap();
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 1e-3,
                _ => 0.0,
            };
            assert!(got.max_abs_diff(&want).unwrap() <= tol, "{op}");
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(3, 4);
        let c = Matrix::zeros(4, 4);
        assert!(simd2_minplus(&a, &b, &c).is_err());
    }

    #[test]
    fn context_accumulates_counts_and_matches_free_functions() {
        let a = Matrix::from_fn(33, 17, |r, c| ((r + c) % 5) as f32);
        let b = Matrix::from_fn(17, 21, |r, c| ((r * c) % 3) as f32);
        let c = Matrix::filled(33, 21, f32::INFINITY);
        let mut ctx = Simd2Context::with_parallelism(Parallelism::Threads(4));
        assert_eq!(ctx.parallelism(), Parallelism::Threads(4));
        let d1 = ctx.mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
        let d2 = ctx.mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1, simd2_minplus(&a, &b, &c).unwrap());
        assert_eq!(ctx.op_count().matrix_mmos, 2);
        ctx.reset_count();
        assert_eq!(ctx.op_count(), OpCount::default());
        ctx.set_parallelism(Parallelism::Sequential);
        assert_eq!(ctx.parallelism(), Parallelism::Sequential);
    }
}
