//! SIMD²: the programming model and paradigm (the paper's contribution).
//!
//! This crate is the user-facing layer of the reproduction. It provides:
//!
//! * [`api`] — the *low-level* programming interface of paper Table 3
//!   (`simd2::matrix` / `fillmatrix` / `loadmatrix` / `mmo` /
//!   `storematrix`), each call mapping one-to-one onto an ISA instruction
//!   executed by the warp-level executor;
//! * [`backend`] — interchangeable whole-matrix `D = C ⊕ (A ⊗ B)`
//!   engines: a plain-loop reference (the cuASR/CUTLASS-on-CUDA-cores
//!   analogue used for correctness validation), a tiled functional SIMD²
//!   backend with fp16-in/fp32-out semantics, and an ISA-level backend
//!   that drives real instruction streams;
//! * [`highlevel`] — the *high-level* interface of paper Figure 6
//!   (`simd2_minplus(A, B, C, D, m, n, k)` and friends): arbitrary shapes,
//!   implicit tiling/partitioning;
//! * [`plan`] — the recorded plan IR: capture an algorithm's MMO
//!   sequence once through a recording backend, then lower that one
//!   artifact everywhere — sequential or wave-batched functional
//!   replay, per-warp ISA kernels, and shape-level traces for the GPU
//!   timing model;
//! * [`solve`] — the closure solvers of §4/§6.4: all-pairs Bellman-Ford
//!   relaxation and Leyzorek repeated squaring, with and without
//!   convergence checks, generic over any closure algebra;
//! * [`micro`] — the §6.2 microbenchmark definitions (Figs 9–10);
//! * [`validate`] — the §5.1 emulation-framework analogue: run a
//!   SIMD²-ized implementation against a baseline, compare outputs under
//!   reduced precision, and collect the operation statistics the
//!   performance model consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod api;
pub mod backend;
pub mod error;
pub mod highlevel;
pub mod micro;
pub mod plan;
pub mod program;
pub mod repr;
pub mod resilient;
pub mod solve;
pub mod typed;
pub mod validate;

pub use backend::{
    Backend, IsaBackend, MmoArgs, OpCount, Parallelism, ReferenceBackend, TiledBackend,
};
pub use error::BackendError;
pub use highlevel::Simd2Context;
pub use plan::passes::{
    CsePass, DensityLoweringPass, DsePass, FusedChain, FusionPass, OptimizedPlan,
    OptimizingRecorder, PassPipeline, PassReport, PassStats, PlanPass, RootPolicy,
    WaveSchedulerPass,
};
pub use plan::{
    Executor as PlanExecutor, HaltedReplay, Plan, PlanBuilder, PlanCheckpoint, PlanKey, Replay,
    ReplayControl, ReplayError, ReplayHalt, ReplayProgress, SlotId, SlotOrigin,
};
pub use repr::{MatrixRef, OperandRepr};
pub use resilient::{RecoveryPolicy, RecoveryStats, ResilientBackend, RetryBackoff};
pub use solve::{ClosureAlgorithm, ClosureResult, ClosureStats};
