//! Statically-dispatched (monomorphised) tiled kernels.
//!
//! The dynamic [`crate::backend`] engines dispatch on [`OpKind`] per
//! scalar step — faithful to hardware decoding, but not how a software
//! library like cuASR structures its kernels: there, each semiring
//! instantiates a *template* and the compiler specialises the whole
//! kernel. This module is that counterpart: tiled `D = C ⊕ (A ⊗ B)`
//! generic over the [`Semiring`] trait, with register-blocked inner
//! loops the optimiser can unroll and vectorise per algebra.
//!
//! Results are bit-identical to the dynamic reference path (checked by
//! tests); this is purely the static-dispatch story — and the engine the
//! criterion benches use to measure the dispatch overhead itself.

use simd2_matrix::reference::check_mmo_shapes;
use simd2_matrix::{Matrix, ShapeError};
use simd2_semiring::{OpKind, Semiring};

/// Tile side of the register-blocked kernel.
const BLOCK: usize = 16;

/// Monomorphised tiled `D = C ⊕ (A ⊗ B)` over a typed semiring
/// (full fp32 — the cuASR-on-CUDA-cores analogue).
///
/// # Errors
///
/// Returns a [`ShapeError`] when operand shapes are incompatible.
///
/// # Example
///
/// ```
/// use simd2::typed::mmo_typed_tiled;
/// use simd2_matrix::Matrix;
/// use simd2_semiring::MinPlus;
///
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[f32::INFINITY, 0.0]]);
/// let c = Matrix::filled(2, 2, f32::INFINITY);
/// let d = mmo_typed_tiled::<MinPlus>(&a, &a, &c)?;
/// assert_eq!(d[(0, 1)], 1.0);
/// # Ok::<(), simd2_matrix::ShapeError>(())
/// ```
pub fn mmo_typed_tiled<S: Semiring<Elem = f32>>(
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<Matrix, ShapeError> {
    check_mmo_shapes(a, b, c)?;
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut d = Matrix::from_fn(m, n, |_, _| S::reduce_identity());
    // k-outer blocking: accumulate partial reductions tile by tile, the
    // same dataflow the hardware unit pipelines.
    for k0 in (0..k).step_by(BLOCK) {
        let k1 = (k0 + BLOCK).min(k);
        for i in 0..m {
            let arow = a.row(i);
            let drow = d.row_mut(i);
            for (kk, &av) in arow.iter().enumerate().take(k1).skip(k0) {
                let brow = b.row(kk);
                for (dv, &bv) in drow.iter_mut().zip(brow) {
                    *dv = S::fma(*dv, av, bv);
                }
            }
        }
    }
    // Fold the accumulator in last, matching the reference semantics.
    for i in 0..m {
        let crow = c.row(i);
        let drow = d.row_mut(i);
        for (dv, &cv) in drow.iter_mut().zip(crow) {
            *dv = S::reduce(cv, *dv);
        }
    }
    Ok(d)
}

/// Dynamic-to-static bridge: runs the monomorphised kernel for a runtime
/// [`OpKind`] (one virtual dispatch per *matrix*, not per element).
///
/// # Errors
///
/// Returns a [`ShapeError`] when operand shapes are incompatible.
pub fn mmo_tiled(op: OpKind, a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, ShapeError> {
    struct V<'m>(&'m Matrix, &'m Matrix, &'m Matrix);
    impl simd2_semiring::F32SemiringVisitor for V<'_> {
        type Output = Result<Matrix, ShapeError>;
        fn visit<S: Semiring<Elem = f32>>(self) -> Self::Output {
            mmo_typed_tiled::<S>(self.0, self.1, self.2)
        }
    }
    simd2_semiring::visit_f32_semiring(op, V(a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_matrix::{gen, reference};
    use simd2_semiring::{MaxMin, MinPlus, OrAnd, ALL_OPS};

    #[test]
    fn typed_tiled_matches_reference_on_selection_algebras() {
        // Non-additive reductions are order-insensitive ⇒ bit-exact.
        let a = gen::random_matrix(37, 53, 0.0, 9.0, 1);
        let b = gen::random_matrix(53, 29, 0.0, 9.0, 2);
        for op in [
            OpKind::MinPlus,
            OpKind::MaxMin,
            OpKind::MinMax,
            OpKind::OrAnd,
        ] {
            let a = gen::random_operands_for(op, 37, 53, 3);
            let b = gen::random_operands_for(op, 53, 29, 4);
            let c = Matrix::filled(37, 29, op.reduce_identity_f32());
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            let got = mmo_tiled(op, &a, &b, &c).unwrap();
            assert_eq!(got, want, "{op}");
        }
        let _ = (a, b);
    }

    #[test]
    fn typed_tiled_matches_reference_on_all_ops_within_rounding() {
        for op in ALL_OPS {
            let a = gen::random_operands_for(op, 24, 40, 5);
            let b = gen::random_operands_for(op, 40, 18, 6);
            let c = Matrix::filled(24, 18, op.reduce_identity_f32());
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            let got = mmo_tiled(op, &a, &b, &c).unwrap();
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 1e-4,
                _ => 0.0,
            };
            let diff = got.max_abs_diff(&want).unwrap();
            assert!(diff <= tol, "{op}: {diff}");
        }
    }

    #[test]
    fn static_entry_points_agree_with_dynamic_bridge() {
        let a = gen::random_matrix(20, 20, 0.0, 5.0, 7);
        let c = Matrix::filled(20, 20, f32::INFINITY);
        assert_eq!(
            mmo_typed_tiled::<MinPlus>(&a, &a, &c).unwrap(),
            mmo_tiled(OpKind::MinPlus, &a, &a, &c).unwrap()
        );
        let c = Matrix::filled(20, 20, f32::NEG_INFINITY);
        assert_eq!(
            mmo_typed_tiled::<MaxMin>(&a, &a, &c).unwrap(),
            mmo_tiled(OpKind::MaxMin, &a, &a, &c).unwrap()
        );
    }

    #[test]
    fn boolean_kernel_is_exact() {
        let a = gen::random_bool_matrix(33, 33, 0.3, 9);
        let c = Matrix::zeros(33, 33);
        let want = reference::mmo(OpKind::OrAnd, &a, &a, &c).unwrap();
        assert_eq!(mmo_typed_tiled::<OrAnd>(&a, &a, &c).unwrap(), want);
    }

    #[test]
    fn shape_errors_propagate() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(3, 4);
        let c = Matrix::zeros(3, 4);
        assert!(mmo_typed_tiled::<MinPlus>(&a, &b, &c).is_err());
    }

    #[test]
    fn empty_k_reduces_only_c() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let c = Matrix::filled(2, 2, 5.0);
        assert_eq!(mmo_typed_tiled::<MinPlus>(&a, &b, &c).unwrap(), c);
    }
}
