//! Fault-tolerant backend dispatch: detect, retry, fall back.
//!
//! [`ResilientBackend`] wraps any [`Backend`] with matrix-level ABFT
//! verification and a [`RecoveryPolicy`]. Every `mmo` result is checked
//! against the operands' invariants ([`simd2_fault::abft::verify_matrix`]);
//! on detection the policy decides whether to fail fast, re-execute on
//! the same (possibly faulty) backend — transient faults draw fresh
//! outcomes each attempt — or abandon the accelerated datapath for the
//! scalar [`ReferenceBackend`] oracle.
//!
//! This is the software half of the paper's reliability story: the MXU
//! datapath stays simple, and the library layer turns silent data
//! corruption into detected-and-recovered events.

use simd2_fault::abft::{self, AbftConfig};
use simd2_matrix::Matrix;
use simd2_mxu::PrecisionMode;
use simd2_semiring::OpKind;
use simd2_trace::{field, span, Counter, Tracer};

use crate::backend::{Backend, MmoArgs, OpCount, ReferenceBackend};
use crate::error::BackendError;
use crate::repr::MatrixRef;

/// Process-global count of ABFT corruption detections.
static DETECTIONS: Counter = Counter::new("resilient.detections");
/// Process-global count of recovery re-executions.
static RETRIES: Counter = Counter::new("resilient.retries");
/// Process-global count of reference-backend fallbacks.
static FALLBACKS: Counter = Counter::new("resilient.fallbacks");
/// Process-global count of contained worker panics.
static WORKER_PANICS: Counter = Counter::new("resilient.worker_panics");

/// What to do when verification detects a corrupted result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface the detection as an error immediately.
    FailFast,
    /// Re-execute on the same backend up to `attempts` extra times; give
    /// up (error) if every attempt is detected as corrupt.
    Retry {
        /// Maximum extra executions after the first detection.
        attempts: u32,
    },
    /// Recompute once on the scalar reference backend.
    Fallback,
    /// Retry up to `attempts` times, then recompute on the reference
    /// backend if still failing — the most forgiving policy.
    RetryThenFallback {
        /// Maximum extra executions before falling back.
        attempts: u32,
    },
}

impl RecoveryPolicy {
    fn retry_attempts(self) -> u32 {
        match self {
            RecoveryPolicy::FailFast | RecoveryPolicy::Fallback => 0,
            RecoveryPolicy::Retry { attempts } | RecoveryPolicy::RetryThenFallback { attempts } => {
                attempts
            }
        }
    }

    fn falls_back(self) -> bool {
        matches!(
            self,
            RecoveryPolicy::Fallback | RecoveryPolicy::RetryThenFallback { .. }
        )
    }
}

/// Capped exponential backoff budget bounding a retrying
/// [`RecoveryPolicy`].
///
/// A bare attempt count lets a generously configured policy spin through
/// hundreds of doomed re-executions against a permanently faulty site.
/// The budget charges each retry a *virtual* cost — starting at
/// `base_units`, doubling per retry, saturating at `cap_units` — and
/// refuses any retry whose cost would push the cumulative spend past
/// `budget_units`, surfacing the terminal error (or falling back, if the
/// policy falls back) instead.
///
/// Units are deliberately virtual: no wall-clock sleeping happens, so
/// recovery stays deterministic and instantly testable. One unit is
/// "one base retry's worth of pressure on the faulty resource".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryBackoff {
    /// Virtual cost charged for the first retry.
    pub base_units: u64,
    /// Saturation cap on the per-retry cost (doubling stops here).
    pub cap_units: u64,
    /// Total virtual budget; a retry that would exceed it is refused.
    pub budget_units: u64,
    /// Seed for deterministic per-retry jitter, `None` by default.
    ///
    /// With a seed set, each retry's charged cost is drawn from
    /// `[max(nominal/2, 1), nominal]` by a pure hash of
    /// `(seed, retry index)` — many replicas retrying the same fault
    /// desynchronise instead of stampeding in lock-step, yet a given
    /// seed replays bit-identically. `None` keeps the exact
    /// capped-exponential schedule for bit-reproducible campaigns.
    pub jitter_seed: Option<u64>,
}

impl RetryBackoff {
    /// No backoff accounting: retries cost nothing and the policy's
    /// attempt count is the only bound (the pre-backoff behaviour, and
    /// the [`Default`]).
    pub const fn unbounded() -> Self {
        Self {
            base_units: 0,
            cap_units: 0,
            budget_units: u64::MAX,
            jitter_seed: None,
        }
    }

    /// A budget charging `base_units` for the first retry, doubling up
    /// to `cap_units`, refusing retries past `budget_units` total.
    pub const fn new(base_units: u64, cap_units: u64, budget_units: u64) -> Self {
        Self {
            base_units,
            cap_units,
            budget_units,
            jitter_seed: None,
        }
    }

    /// Enables seeded jitter (see [`jitter_seed`](Self::jitter_seed)).
    pub const fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The cost charged for retry number `retry` (0-based) whose
    /// nominal capped-exponential cost is `nominal`: the nominal cost
    /// itself without jitter, or a deterministic draw from
    /// `[max(nominal/2, 1), nominal]` with it.
    fn charge(&self, retry: u64, nominal: u64) -> u64 {
        match self.jitter_seed {
            None => nominal,
            Some(_) if nominal <= 1 => nominal,
            Some(seed) => {
                let lo = (nominal / 2).max(1);
                lo + splitmix(seed ^ splitmix(retry)) % (nominal - lo + 1)
            }
        }
    }
}

/// SplitMix64 finaliser — the jitter draw's avalanche mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for RetryBackoff {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Outcome counters for one resilient backend's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whole-matrix mmos requested.
    pub mmos: u64,
    /// Results that passed ABFT verification (including after retry).
    pub verified: u64,
    /// Corruption detections (each failing attempt counts once).
    pub detections: u64,
    /// Re-executions performed after a detection.
    pub retries: u64,
    /// Operations ultimately rescued by a retry.
    pub retry_successes: u64,
    /// Operations recomputed on the reference backend.
    pub fallbacks: u64,
    /// Contained worker panics observed ([`BackendError::WorkerPanic`]).
    pub worker_panics: u64,
    /// Operations rescued by the sequential re-execution that follows a
    /// worker panic.
    pub panic_recoveries: u64,
    /// Virtual backoff units spent on retries ([`RetryBackoff`]).
    pub backoff_units: u64,
    /// Retry loops cut short because the backoff budget ran out.
    pub budget_exhausted: u64,
}

/// A [`Backend`] decorator adding ABFT verification and recovery.
///
/// With a [`Tracer`] attached ([`set_tracer`](Self::set_tracer)), every
/// [`RecoveryStats`] increment also emits a [`span::RECOVERY`] instant
/// event carrying a `stage` field (`mmo`, `verified`, `detection`,
/// `retry`, `retry_success`, `fallback`, `worker_panic`,
/// `panic_recovery`, `budget_exhausted`) — event counts per stage
/// reproduce the stats struct exactly.
#[derive(Clone, Debug)]
pub struct ResilientBackend<B: Backend> {
    inner: B,
    fallback: ReferenceBackend,
    policy: RecoveryPolicy,
    backoff: RetryBackoff,
    abft: AbftConfig,
    recover_panics: bool,
    stats: RecoveryStats,
    tracer: Tracer,
}

impl<B: Backend> ResilientBackend<B> {
    /// Wraps `inner` with the given policy and default ABFT tolerances.
    pub fn new(inner: B, policy: RecoveryPolicy) -> Self {
        Self::with_config(inner, policy, AbftConfig::default())
    }

    /// Wraps `inner` with explicit ABFT tolerances.
    pub fn with_config(inner: B, policy: RecoveryPolicy, abft: AbftConfig) -> Self {
        Self {
            inner,
            fallback: ReferenceBackend::new(),
            policy,
            backoff: RetryBackoff::unbounded(),
            abft,
            recover_panics: true,
            stats: RecoveryStats::default(),
            tracer: Tracer::off(),
        }
    }

    /// Whether contained worker panics are recovered in place by a
    /// sequential re-execution (the default), or surfaced as
    /// [`BackendError::WorkerPanic`] after counting — letting a layer
    /// with more context (e.g. a checkpointing executor) decide how to
    /// resume.
    pub fn set_recover_panics(&mut self, recover: bool) {
        self.recover_panics = recover;
    }

    /// Surfaces or recovers worker panics (builder form); see
    /// [`set_recover_panics`](Self::set_recover_panics).
    pub fn with_recover_panics(mut self, recover: bool) -> Self {
        self.recover_panics = recover;
        self
    }

    /// Whether worker panics are recovered in place.
    pub fn recovers_panics(&self) -> bool {
        self.recover_panics
    }

    /// Bounds the retry loop with a [`RetryBackoff`] budget.
    pub fn set_backoff(&mut self, backoff: RetryBackoff) {
        self.backoff = backoff;
    }

    /// Bounds the retry loop with a [`RetryBackoff`] budget (builder
    /// form).
    pub fn with_backoff(mut self, backoff: RetryBackoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// The active backoff budget.
    pub fn backoff(&self) -> RetryBackoff {
        self.backoff
    }

    /// Attaches a telemetry tracer to the recovery layer and to the
    /// internal reference fallback (so fallback executions emit
    /// [`span::MMO`] spans into the same sink). The *inner* backend's
    /// tracer is the caller's to set via [`inner_mut`](Self::inner_mut).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fallback.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Emits one [`span::RECOVERY`] stage event.
    fn note(&self, op: OpKind, stage: &'static str) {
        self.tracer.instant(
            span::RECOVERY,
            &[field("stage", stage), field("op", op.name())],
        );
    }

    /// A detection event plus its process-global counter.
    fn note_detection(&self, op: OpKind) {
        if self.tracer.enabled() {
            DETECTIONS.add(1);
        }
        self.note(op, "detection");
    }

    /// A contained-worker-panic event plus its process-global counter.
    fn note_worker_panic(&self, op: OpKind) {
        if self.tracer.enabled() {
            WORKER_PANICS.add(1);
        }
        self.note(op, "worker_panic");
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend (e.g. to install injectors).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps into the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Recovery outcome counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Resets the recovery counters.
    pub fn reset_recovery_stats(&mut self) {
        self.stats = RecoveryStats::default();
    }

    /// One verified execution attempt on the inner backend, on its
    /// configured schedule or (after a worker panic) a sequential one.
    ///
    /// Sparse operand declarations ride through to the inner backend's
    /// [`Backend::mmo_ref`]; the sequential panic-recovery arm drops to
    /// the dense [`Backend::mmo_sequential`] schedule, which the repr
    /// bit-identity contract makes an exact substitute.
    fn attempt(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
        sequential: bool,
    ) -> Result<Matrix, BackendError> {
        let all_dense = a.repr.is_dense() && b.repr.is_dense() && c.repr.is_dense();
        let d = if sequential {
            self.inner
                .mmo_sequential(op, a.matrix, b.matrix, c.matrix)?
        } else if all_dense {
            self.inner.mmo(op, a.matrix, b.matrix, c.matrix)?
        } else {
            self.inner.mmo_ref(op, a, b, c)?
        };
        let (a, b, c) = (a.matrix, b.matrix, c.matrix);
        // Mirror the inner datapath's quantisation so clean fp16 results
        // are not flagged as corrupt.
        let mode = if self.inner.reduced_precision() {
            PrecisionMode::Fp16Input
        } else {
            PrecisionMode::Fp32Input
        };
        abft::verify_matrix(op, a, b, c, &d, mode, &self.abft)
            .map_err(|violation| BackendError::Corruption { op, violation })?;
        Ok(d)
    }

    /// The full detection → retry → fallback ladder for one operation,
    /// shared by [`Backend::mmo`] (dense declarations) and
    /// [`Backend::mmo_ref`] (caller-declared representations).
    fn recover(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
    ) -> Result<Matrix, BackendError> {
        self.stats.mmos += 1;
        self.note(op, "mmo");
        // Once a worker panic is seen, every further attempt for this
        // operation runs on the sequential schedule, where panel workers
        // (and therefore worker panics) do not exist.
        let mut sequential = false;
        let mut last = match self.attempt(op, a, b, c, sequential) {
            Ok(d) => {
                self.stats.verified += 1;
                self.note(op, "verified");
                return Ok(d);
            }
            Err(e) if e.is_corruption() => {
                self.stats.detections += 1;
                self.note_detection(op);
                e
            }
            Err(e) if e.is_worker_panic() => {
                // Panic-containment recovery arm: re-execute immediately
                // on the sequential schedule (unless the caller asked
                // for panics to surface so it can checkpoint instead).
                self.stats.worker_panics += 1;
                self.note_worker_panic(op);
                if !self.recover_panics {
                    return Err(e);
                }
                sequential = true;
                match self.attempt(op, a, b, c, sequential) {
                    Ok(d) => {
                        self.stats.verified += 1;
                        self.stats.panic_recoveries += 1;
                        self.note(op, "verified");
                        self.note(op, "panic_recovery");
                        return Ok(d);
                    }
                    Err(e2) if e2.is_corruption() => {
                        self.stats.detections += 1;
                        self.note_detection(op);
                        e2
                    }
                    Err(e2) => return Err(e2),
                }
            }
            // Structural errors (shapes, addressing) are not transient;
            // no amount of re-execution fixes them.
            Err(e) => return Err(e),
        };
        let mut spent = 0u64;
        let mut nominal = self.backoff.base_units;
        for retry in 0..self.policy.retry_attempts() {
            // Charge the (possibly jittered) capped-exponential cost up
            // front; a retry the budget cannot afford is refused, ending
            // the loop.
            let cost = self.backoff.charge(u64::from(retry), nominal);
            if spent.saturating_add(cost) > self.backoff.budget_units {
                self.stats.budget_exhausted += 1;
                self.note(op, "budget_exhausted");
                break;
            }
            spent += cost;
            self.stats.backoff_units += cost;
            nominal = nominal.saturating_mul(2).min(self.backoff.cap_units);
            self.stats.retries += 1;
            if self.tracer.enabled() {
                RETRIES.add(1);
            }
            self.note(op, "retry");
            match self.attempt(op, a, b, c, sequential) {
                Ok(d) => {
                    self.stats.verified += 1;
                    self.stats.retry_successes += 1;
                    self.note(op, "verified");
                    self.note(op, "retry_success");
                    return Ok(d);
                }
                Err(e) if e.is_corruption() => {
                    self.stats.detections += 1;
                    self.note_detection(op);
                    last = e;
                }
                Err(e) if e.is_worker_panic() => {
                    self.stats.worker_panics += 1;
                    self.note_worker_panic(op);
                    if !self.recover_panics {
                        return Err(e);
                    }
                    sequential = true;
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        if self.policy.falls_back() {
            self.stats.fallbacks += 1;
            if self.tracer.enabled() {
                FALLBACKS.add(1);
            }
            self.note(op, "fallback");
            let d = self.fallback.mmo(op, a.matrix, b.matrix, c.matrix)?;
            self.stats.verified += 1;
            self.note(op, "verified");
            return Ok(d);
        }
        Err(last)
    }
}

impl<B: Backend> Backend for ResilientBackend<B> {
    fn name(&self) -> &'static str {
        "resilient (ABFT-verified)"
    }

    fn reduced_precision(&self) -> bool {
        self.inner.reduced_precision()
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        self.recover(
            op,
            MatrixRef::dense(a),
            MatrixRef::dense(b),
            MatrixRef::dense(c),
        )
    }

    /// Repr-aware entry: the declarations ride through the whole
    /// recovery ladder to the inner backend's compressed kernels, so a
    /// sparse plan replayed under resilience still takes its sparse
    /// datapath. Recovery arms (sequential panic re-execution, the
    /// reference fallback) run dense — bit-identical by the repr
    /// contract.
    fn mmo_ref(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
    ) -> Result<Matrix, BackendError> {
        crate::validate::check_mmo_operands_ref(op, a, b, c)?;
        self.recover(op, a, b, c)
    }

    /// Sequential loop over the steps, each through the full verified
    /// ladder with its declared representations — a batch submitted to
    /// the resilient layer never silently drops sparse declarations.
    fn mmo_batch(&mut self, steps: &[MmoArgs<'_>]) -> Result<Vec<Matrix>, BackendError> {
        steps
            .iter()
            .map(|s| {
                self.mmo_ref(
                    s.op,
                    MatrixRef::new(s.a, s.reprs[0]),
                    MatrixRef::new(s.b, s.reprs[1]),
                    MatrixRef::new(s.c, s.reprs[2]),
                )
            })
            .collect()
    }

    fn kernel_isa(&self) -> simd2_semiring::simd::KernelIsa {
        self.inner.kernel_isa()
    }

    fn pin_kernel_isa(&mut self, isa: simd2_semiring::simd::KernelIsa) -> bool {
        self.inner.pin_kernel_isa(isa)
    }

    fn force_sequential(&mut self) -> bool {
        self.inner.force_sequential()
    }

    fn fault_log_dropped(&self) -> u64 {
        self.inner.fault_log_dropped()
    }

    fn op_count(&self) -> OpCount {
        let i = self.inner.op_count();
        let f = self.fallback.op_count();
        OpCount {
            matrix_mmos: i.matrix_mmos + f.matrix_mmos,
            tile_mmos: i.tile_mmos + f.tile_mmos,
            tile_loads: i.tile_loads + f.tile_loads,
            tile_stores: i.tile_stores + f.tile_stores,
        }
    }

    fn reset_count(&mut self) {
        self.inner.reset_count();
        self.fallback.reset_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{IsaBackend, TiledBackend};
    use simd2_fault::{FaultPlan, FaultPlanConfig, FaultySimd2Unit, PlannedInjector};
    use simd2_matrix::gen;
    use simd2_mxu::Simd2Unit;
    use simd2_semiring::precision::quantize_f16;
    use simd2_semiring::ALL_OPS;

    fn operands(op: OpKind, n: usize) -> (Matrix, Matrix, Matrix) {
        let mut a = gen::random_operands_for(op, n, n, 17);
        let mut b = gen::random_operands_for(op, n, n, 18);
        for v in a.as_mut_slice().iter_mut().chain(b.as_mut_slice()) {
            *v = quantize_f16(*v);
        }
        let c = Matrix::filled(n, n, op.reduce_identity_f32());
        (a, b, c)
    }

    fn faulty_tiled(seed: u64, ppm: u32) -> TiledBackend<FaultySimd2Unit> {
        let plan = FaultPlan::new(FaultPlanConfig::new(seed).with_transient_nan_ppm(ppm));
        TiledBackend::with_unit(FaultySimd2Unit::new(
            Simd2Unit::new(),
            PlannedInjector::new(plan),
        ))
    }

    #[test]
    fn clean_backends_verify_for_all_ops() {
        for op in ALL_OPS {
            let (a, b, c) = operands(op, 24);
            let mut be = ResilientBackend::new(TiledBackend::new(), RecoveryPolicy::FailFast);
            let d = be.mmo(op, &a, &b, &c).unwrap();
            let want = TiledBackend::new().mmo(op, &a, &b, &c).unwrap();
            assert_eq!(d, want, "{op}");
        }
        let (a, b, c) = operands(OpKind::MinPlus, 20);
        let mut be = ResilientBackend::new(ReferenceBackend::new(), RecoveryPolicy::FailFast);
        assert!(be.mmo(OpKind::MinPlus, &a, &b, &c).is_ok());
        assert_eq!(be.recovery_stats().detections, 0);
        assert_eq!(be.recovery_stats().verified, 1);
    }

    #[test]
    fn fail_fast_surfaces_detection() {
        let (a, b, c) = operands(OpKind::PlusMul, 16);
        let mut be = ResilientBackend::new(faulty_tiled(5, 1_000_000), RecoveryPolicy::FailFast);
        let err = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert_eq!(be.recovery_stats().detections, 1);
        assert_eq!(be.recovery_stats().retries, 0);
    }

    #[test]
    fn retry_recovers_under_moderate_fault_rate() {
        // ~30% per-tile NaN rate: some attempt among 32 executes cleanly.
        let (a, b, c) = operands(OpKind::MinPlus, 16);
        let want = TiledBackend::new()
            .mmo(OpKind::MinPlus, &a, &b, &c)
            .unwrap();
        // Full witness coverage: +Inf faults on min-family ops can slip
        // past a sampled witness (they satisfy dominance).
        let full = AbftConfig {
            witness_samples: usize::MAX,
            ..AbftConfig::default()
        };
        let mut be = ResilientBackend::with_config(
            faulty_tiled(42, 300_000),
            RecoveryPolicy::Retry { attempts: 32 },
            full,
        );
        let mut saw_retry_success = false;
        for _ in 0..8 {
            let d = be.mmo(OpKind::MinPlus, &a, &b, &c).unwrap();
            assert_eq!(d, want);
        }
        let s = be.recovery_stats();
        saw_retry_success |= s.retry_successes > 0;
        assert_eq!(s.verified, 8);
        assert!(s.detections >= s.retry_successes);
        // At 30% over 8 ops the odds all first attempts are clean are
        // ~0.7^8 ≈ 6% per run, but the seeded plan is deterministic: this
        // seed/rate strikes at least once.
        assert!(
            saw_retry_success,
            "seeded plan should force at least one retry"
        );
        assert_eq!(s.fallbacks, 0);
    }

    #[test]
    fn fallback_rescues_a_permanently_faulty_backend() {
        // Full-rate faults: every inner attempt is corrupt, only the
        // reference fallback can produce a verified result.
        let (a, b, c) = operands(OpKind::MaxMin, 20);
        let want = ReferenceBackend::new()
            .mmo(OpKind::MaxMin, &a, &b, &c)
            .unwrap();
        let mut be = ResilientBackend::new(
            faulty_tiled(7, 1_000_000),
            RecoveryPolicy::RetryThenFallback { attempts: 2 },
        );
        let d = be.mmo(OpKind::MaxMin, &a, &b, &c).unwrap();
        assert_eq!(d, want);
        let s = be.recovery_stats();
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.detections, 3);
        assert_eq!(s.verified, 1);
    }

    #[test]
    fn worker_panic_recovers_on_the_sequential_schedule() {
        use crate::backend::Parallelism;
        use simd2_fault::PanicProbeUnit;
        // A probe whose panel shards panic at tile row 2: the parallel
        // attempt fails, the sequential re-execution (parent unit, no
        // shards) succeeds and is verified.
        let (a, b, c) = operands(OpKind::PlusMul, 70); // 5 tile rows
        let want = TiledBackend::new()
            .mmo(OpKind::PlusMul, &a, &b, &c)
            .unwrap();
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 2));
        inner.set_parallelism(Parallelism::Threads(4));
        let mut be = ResilientBackend::new(inner, RecoveryPolicy::FailFast);
        let d = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d, want);
        let s = be.recovery_stats();
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.panic_recoveries, 1);
        assert_eq!(s.verified, 1);
        assert_eq!(s.detections, 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.fallbacks, 0);
    }

    #[test]
    fn backoff_budget_bounds_an_always_faulty_retry_loop() {
        use simd2_trace::RingSink;
        // Full-rate faults: every attempt is detected as corrupt. The
        // policy would allow effectively unlimited retries; the backoff
        // budget must cut the loop off and surface the terminal error.
        let ring = RingSink::shared();
        let (a, b, c) = operands(OpKind::PlusMul, 16);
        let mut be = ResilientBackend::new(
            faulty_tiled(5, 1_000_000),
            RecoveryPolicy::Retry { attempts: u32::MAX },
        )
        .with_backoff(RetryBackoff::new(1, 8, 20))
        .with_tracer(Tracer::to(ring.clone()));
        assert_eq!(be.backoff(), RetryBackoff::new(1, 8, 20));
        let err = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        let s = be.recovery_stats();
        // Costs 1, 2, 4, 8 spend 15 of 20; a fifth retry (8) is refused.
        assert_eq!(s.retries, 4);
        assert_eq!(s.backoff_units, 15);
        assert_eq!(s.budget_exhausted, 1);
        assert_eq!(s.detections, 5, "initial attempt plus four retries");
        assert_eq!(s.verified, 0);
        let exhausted = ring
            .events()
            .iter()
            .filter(|e| e.is_stage(span::RECOVERY, "budget_exhausted"))
            .count();
        assert_eq!(exhausted as u64, s.budget_exhausted);
    }

    #[test]
    fn exhausted_budget_still_reaches_the_fallback() {
        // With a fallback policy the refused retry loop hands over to
        // the reference oracle instead of erroring.
        let (a, b, c) = operands(OpKind::MaxMin, 20);
        let want = ReferenceBackend::new()
            .mmo(OpKind::MaxMin, &a, &b, &c)
            .unwrap();
        let mut be = ResilientBackend::new(
            faulty_tiled(7, 1_000_000),
            RecoveryPolicy::RetryThenFallback { attempts: 1_000 },
        )
        .with_backoff(RetryBackoff::new(1, 4, 6));
        let d = be.mmo(OpKind::MaxMin, &a, &b, &c).unwrap();
        assert_eq!(d, want);
        let s = be.recovery_stats();
        // Costs 1, 2, 4 would spend 7 > 6: two retries then fallback.
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff_units, 3);
        assert_eq!(s.budget_exhausted, 1);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.verified, 1);
    }

    #[test]
    fn unbounded_backoff_preserves_attempt_counted_retries() {
        let be = ResilientBackend::new(TiledBackend::new(), RecoveryPolicy::FailFast);
        assert_eq!(be.backoff(), RetryBackoff::unbounded());
        assert_eq!(RetryBackoff::default(), RetryBackoff::unbounded());
        // Charging zero units forever never exhausts the budget.
        let (a, b, c) = operands(OpKind::PlusMul, 16);
        let mut be = ResilientBackend::new(
            faulty_tiled(5, 1_000_000),
            RecoveryPolicy::Retry { attempts: 3 },
        );
        let err = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap_err();
        assert!(err.is_corruption());
        let s = be.recovery_stats();
        assert_eq!(s.retries, 3, "the attempt count is the only bound");
        assert_eq!(s.backoff_units, 0);
        assert_eq!(s.budget_exhausted, 0);
    }

    #[test]
    fn structural_errors_are_not_retried() {
        let a = Matrix::zeros(4, 4);
        let bad_b = Matrix::zeros(5, 4);
        let c = Matrix::zeros(4, 4);
        let mut be = ResilientBackend::new(
            TiledBackend::new(),
            RecoveryPolicy::RetryThenFallback { attempts: 8 },
        );
        let err = be.mmo(OpKind::PlusMul, &a, &bad_b, &c).unwrap_err();
        assert!(matches!(err, BackendError::Shape(_)));
        assert_eq!(be.recovery_stats().retries, 0);
        assert_eq!(be.recovery_stats().fallbacks, 0);
    }

    #[test]
    fn wraps_the_isa_backend_with_executor_level_detection() {
        use simd2_fault::FaultInjector;
        // The ISA backend verifies per instruction; its SilentCorruption
        // surfaces as BackendError::Corruption and the resilient wrapper
        // retries it with the injector's site counters preserved.
        let (a, b, c) = operands(OpKind::PlusMul, 16);
        let want = IsaBackend::new().mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        let mut inner = IsaBackend::new();
        let plan = FaultPlan::new(FaultPlanConfig::new(9).with_transient_nan_ppm(400_000));
        inner.set_injector(Box::new(PlannedInjector::new(plan)));
        inner.enable_verification(AbftConfig::default());
        let mut be = ResilientBackend::new(inner, RecoveryPolicy::Retry { attempts: 64 });
        let d = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        assert_eq!(d, want);
        let injected = be
            .inner()
            .injector()
            .map(FaultInjector::injected)
            .unwrap_or_default();
        let s = be.recovery_stats();
        assert_eq!(
            s.detections, injected,
            "every injected NaN fault is detected"
        );
        assert!(s.verified == 1);
    }

    #[test]
    fn recovery_events_reproduce_the_stats_struct() {
        use simd2_trace::RingSink;
        let ring = RingSink::shared();
        let (a, b, c) = operands(OpKind::MaxMin, 20);
        let mut be = ResilientBackend::new(
            faulty_tiled(7, 1_000_000),
            RecoveryPolicy::RetryThenFallback { attempts: 2 },
        )
        .with_tracer(Tracer::to(ring.clone()));
        be.mmo(OpKind::MaxMin, &a, &b, &c).unwrap();
        let events = ring.events();
        let stage_count = |stage: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.is_stage(span::RECOVERY, stage))
                .count() as u64
        };
        let s = be.recovery_stats();
        assert_eq!(stage_count("mmo"), s.mmos);
        assert_eq!(stage_count("verified"), s.verified);
        assert_eq!(stage_count("detection"), s.detections);
        assert_eq!(stage_count("retry"), s.retries);
        assert_eq!(stage_count("retry_success"), s.retry_successes);
        assert_eq!(stage_count("fallback"), s.fallbacks);
        assert_eq!(stage_count("worker_panic"), s.worker_panics);
        assert_eq!(stage_count("panic_recovery"), s.panic_recoveries);
        assert_eq!(stage_count("budget_exhausted"), s.budget_exhausted);
        assert!(s.detections > 0 && s.fallbacks == 1);
        // The internal reference fallback shares the sink: its execution
        // shows up as an mmo span.
        assert!(events
            .iter()
            .any(|e| e.span == span::MMO && e.kind == simd2_trace::EventKind::End));
    }

    #[test]
    fn panic_recovery_emits_stage_events() {
        use crate::backend::Parallelism;
        use simd2_fault::PanicProbeUnit;
        use simd2_trace::RingSink;
        let ring = RingSink::shared();
        let (a, b, c) = operands(OpKind::PlusMul, 70);
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 2));
        inner.set_parallelism(Parallelism::Threads(4));
        let mut be = ResilientBackend::new(inner, RecoveryPolicy::FailFast)
            .with_tracer(Tracer::to(ring.clone()));
        be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap();
        let events = ring.events();
        let stage_count = |stage: &str| {
            events
                .iter()
                .filter(|e| e.is_stage(span::RECOVERY, stage))
                .count() as u64
        };
        let s = be.recovery_stats();
        assert_eq!(stage_count("worker_panic"), s.worker_panics);
        assert_eq!(stage_count("panic_recovery"), s.panic_recoveries);
        assert_eq!(s.panic_recoveries, 1);
    }

    #[test]
    fn jitter_off_by_default_keeps_exact_backoff_arithmetic() {
        assert_eq!(RetryBackoff::new(1, 8, 64).jitter_seed, None);
        assert_eq!(RetryBackoff::unbounded().jitter_seed, None);
        // Without a seed the charge IS the nominal cost, bit-for-bit.
        let b = RetryBackoff::new(3, 16, 100);
        for retry in 0..10 {
            assert_eq!(b.charge(retry, 7), 7);
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let b = RetryBackoff::new(4, 32, u64::MAX).with_jitter(2022);
        let again = RetryBackoff::new(4, 32, u64::MAX).with_jitter(2022);
        let mut saw_below_nominal = false;
        for retry in 0..64 {
            for nominal in [2u64, 4, 8, 16, 32] {
                let cost = b.charge(retry, nominal);
                // Same seed, same retry index: bit-identical draw.
                assert_eq!(cost, again.charge(retry, nominal));
                assert!(cost >= (nominal / 2).max(1), "{retry} {nominal} {cost}");
                assert!(cost <= nominal, "{retry} {nominal} {cost}");
                saw_below_nominal |= cost < nominal;
            }
            // Degenerate nominals are never jittered.
            assert_eq!(b.charge(retry, 0), 0);
            assert_eq!(b.charge(retry, 1), 1);
        }
        assert!(saw_below_nominal, "jitter must actually perturb the cost");
        // Different seeds desynchronise the schedules.
        let other = RetryBackoff::new(4, 32, u64::MAX).with_jitter(7);
        let diverged = (0..64u64).any(|r| other.charge(r, 32) != b.charge(r, 32));
        assert!(diverged, "distinct seeds should draw distinct schedules");
    }

    #[test]
    fn jittered_retry_loop_replays_bit_identically() {
        // Two identical resilient backends with the same jitter seed
        // spend identical backoff units and produce identical stats; a
        // third with another seed diverges in spend but not in outcome.
        let (a, b, c) = operands(OpKind::PlusMul, 16);
        let run = |seed: u64| {
            let mut be = ResilientBackend::new(
                faulty_tiled(5, 1_000_000),
                RecoveryPolicy::Retry { attempts: u32::MAX },
            )
            .with_backoff(RetryBackoff::new(2, 8, 40).with_jitter(seed));
            let err = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap_err();
            assert!(err.is_corruption());
            be.recovery_stats()
        };
        let s1 = run(2022);
        let s2 = run(2022);
        assert_eq!(s1, s2, "same seed, same campaign");
        assert_eq!(s1.budget_exhausted, 1);
        assert!(s1.backoff_units <= 40);
        // The no-jitter schedule 2,4,8,8,8,8 spends 38 of 40 over six
        // retries; jitter halves costs at worst so it can only retry
        // at least as many times within the same budget.
        let exact = run_without_jitter(&a, &b, &c);
        assert!(s1.retries >= exact.retries);
    }

    fn run_without_jitter(a: &Matrix, b: &Matrix, c: &Matrix) -> RecoveryStats {
        let mut be = ResilientBackend::new(
            faulty_tiled(5, 1_000_000),
            RecoveryPolicy::Retry { attempts: u32::MAX },
        )
        .with_backoff(RetryBackoff::new(2, 8, 40));
        be.mmo(OpKind::PlusMul, a, b, c).unwrap_err();
        be.recovery_stats()
    }

    #[test]
    fn surfaced_worker_panics_skip_sequential_recovery() {
        use crate::backend::Parallelism;
        use simd2_fault::PanicProbeUnit;
        let (a, b, c) = operands(OpKind::PlusMul, 70);
        let mut inner = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 2));
        inner.set_parallelism(Parallelism::Threads(4));
        let mut be = ResilientBackend::new(inner, RecoveryPolicy::Retry { attempts: 8 })
            .with_recover_panics(false);
        assert!(!be.recovers_panics());
        let err = be.mmo(OpKind::PlusMul, &a, &b, &c).unwrap_err();
        assert!(err.is_worker_panic(), "{err}");
        let s = be.recovery_stats();
        assert_eq!(s.worker_panics, 1, "the panic is still counted");
        assert_eq!(s.panic_recoveries, 0, "but never recovered in place");
        assert_eq!(s.retries, 0, "and never retried");
        assert_eq!(s.verified, 0);
    }

    #[test]
    fn policy_accessors_and_counts() {
        let be = ResilientBackend::new(TiledBackend::new(), RecoveryPolicy::Fallback);
        assert_eq!(be.policy(), RecoveryPolicy::Fallback);
        assert!(be.reduced_precision());
        assert_eq!(be.op_count(), OpCount::default());
        assert!(be.name().contains("resilient"));
    }
}
