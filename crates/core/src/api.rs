//! The low-level SIMD² programming interface (paper Table 3).
//!
//! Each function maps one-to-one onto an ISA instruction: declaring a
//! [`MatrixFragment`] reserves a matrix register, `fill_matrix` /
//! `load_matrix` / `store_matrix` and [`WarpContext::mmo`] append the
//! corresponding instruction, and [`WarpContext::run`] executes the
//! accumulated program on the warp-level executor. The shapes and data
//! types are fixed by the hardware (16×16, fp16 operands / fp32
//! accumulators), exactly as the paper's interface restricts them.
//!
//! ```
//! use simd2::api::{FragmentKind, WarpContext};
//! use simd2_matrix::Matrix;
//! use simd2_semiring::OpKind;
//!
//! let mut ctx = WarpContext::new(4096);
//! ctx.write_input(0, 16, &Matrix::filled(16, 16, 1.0))?;
//! ctx.write_input(256, 16, &Matrix::filled(16, 16, 2.0))?;
//! let a = ctx.matrix(FragmentKind::MatrixA)?;
//! let b = ctx.matrix(FragmentKind::MatrixB)?;
//! let acc = ctx.matrix(FragmentKind::Accumulator)?;
//! ctx.load_matrix(a, 0, 16);
//! ctx.load_matrix(b, 256, 16);
//! ctx.fill_matrix(acc, f32::INFINITY);
//! ctx.mmo(OpKind::MinPlus, acc, a, b, acc);
//! ctx.store_matrix(512, acc, 16);
//! let stats = ctx.run()?;
//! assert_eq!(stats.total_mmos(), 1);
//! assert_eq!(ctx.read_output(512, 16, 16, 16)?[(0, 0)], 3.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use simd2_isa::{
    Dtype, ExecError, ExecStats, Executor, Instruction, MatrixReg, SharedMemory, MATRIX_REG_COUNT,
};
use simd2_matrix::Matrix;

/// Role of a matrix fragment, mirroring the `matrix_type` template
/// argument of `simd2::matrix<matrix_type, m, n, k, data_type>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FragmentKind {
    /// Left operand — fp16 element type.
    MatrixA,
    /// Right operand — fp16 element type.
    MatrixB,
    /// Accumulator / result — fp32 element type.
    Accumulator,
}

impl FragmentKind {
    /// The element type loads of this fragment use.
    pub fn dtype(self) -> Dtype {
        match self {
            FragmentKind::MatrixA | FragmentKind::MatrixB => Dtype::Fp16,
            FragmentKind::Accumulator => Dtype::Fp32,
        }
    }
}

/// A declared matrix fragment: a reserved matrix register with a role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixFragment {
    reg: MatrixReg,
    kind: FragmentKind,
}

impl MatrixFragment {
    /// The underlying register.
    pub fn reg(&self) -> MatrixReg {
        self.reg
    }

    /// The fragment's role.
    pub fn kind(&self) -> FragmentKind {
        self.kind
    }
}

/// Error from the low-level API.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiError {
    /// All matrix registers are reserved.
    OutOfRegisters,
    /// Underlying execution fault.
    Exec(ExecError),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::OutOfRegisters => {
                write!(f, "all {MATRIX_REG_COUNT} matrix registers are reserved")
            }
            ApiError::Exec(e) => write!(f, "execution fault: {e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<ExecError> for ApiError {
    fn from(e: ExecError) -> Self {
        ApiError::Exec(e)
    }
}

/// A warp's view of the SIMD² programming interface: register allocation,
/// program construction, shared memory, and execution.
#[derive(Debug)]
pub struct WarpContext {
    executor: Executor,
    program: Vec<Instruction>,
    next_reg: u8,
}

impl WarpContext {
    /// Creates a context with `shared_elements` `f32` words of shared
    /// memory.
    pub fn new(shared_elements: usize) -> Self {
        Self {
            executor: Executor::new(SharedMemory::new(shared_elements)),
            program: Vec::new(),
            next_reg: 0,
        }
    }

    /// `simd2::matrix<…>`: declares a fragment, reserving a register.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::OutOfRegisters`] when the register file is
    /// exhausted.
    pub fn matrix(&mut self, kind: FragmentKind) -> Result<MatrixFragment, ApiError> {
        if (self.next_reg as usize) >= MATRIX_REG_COUNT {
            return Err(ApiError::OutOfRegisters);
        }
        let reg = MatrixReg::new(self.next_reg);
        self.next_reg += 1;
        Ok(MatrixFragment { reg, kind })
    }

    /// `simd2::fillmatrix`: fills the fragment with a value.
    pub fn fill_matrix(&mut self, frag: MatrixFragment, value: f32) {
        self.program.push(Instruction::Fill {
            dst: frag.reg,
            value,
        });
    }

    /// `simd2::loadmatrix`: loads a 16×16 tile from shared memory
    /// (`ld` = leading dimension), with the fragment's element type.
    pub fn load_matrix(&mut self, frag: MatrixFragment, addr: u32, ld: u32) {
        self.program.push(Instruction::Load {
            dst: frag.reg,
            dtype: frag.kind.dtype(),
            addr,
            ld,
        });
    }

    /// `simd2::mmo`: appends the arithmetic operation `d = c ⊕ (a ⊗ b)`.
    pub fn mmo(
        &mut self,
        op: simd2_semiring::OpKind,
        d: MatrixFragment,
        a: MatrixFragment,
        b: MatrixFragment,
        c: MatrixFragment,
    ) {
        self.program.push(Instruction::Mmo {
            op,
            d: d.reg,
            a: a.reg,
            b: b.reg,
            c: c.reg,
        });
    }

    /// `simd2::storematrix`: stores a fragment to shared memory.
    pub fn store_matrix(&mut self, addr: u32, frag: MatrixFragment, ld: u32) {
        self.program.push(Instruction::Store {
            src: frag.reg,
            addr,
            ld,
        });
    }

    /// Stages host data into shared memory before [`Self::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Exec`] when the destination region falls
    /// outside shared memory; memory is untouched on failure.
    pub fn write_input(&mut self, addr: usize, ld: usize, m: &Matrix) -> Result<(), ApiError> {
        Ok(self.executor.memory_mut().write_matrix(addr, ld, m)?)
    }

    /// Reads results back after [`Self::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Exec`] when the source region falls outside
    /// shared memory.
    pub fn read_output(
        &self,
        addr: usize,
        ld: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix, ApiError> {
        Ok(self.executor.memory().read_matrix(addr, ld, rows, cols)?)
    }

    /// The accumulated program (for inspection / disassembly).
    pub fn program(&self) -> &[Instruction] {
        &self.program
    }

    /// Executes the accumulated program and clears it.
    ///
    /// # Errors
    ///
    /// Returns the first execution fault, if any.
    pub fn run(&mut self) -> Result<ExecStats, ApiError> {
        let program = std::mem::take(&mut self.program);
        Ok(self.executor.run(&program)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::OpKind;

    #[test]
    fn fragment_dtypes_follow_roles() {
        assert_eq!(FragmentKind::MatrixA.dtype(), Dtype::Fp16);
        assert_eq!(FragmentKind::MatrixB.dtype(), Dtype::Fp16);
        assert_eq!(FragmentKind::Accumulator.dtype(), Dtype::Fp32);
    }

    #[test]
    fn register_allocation_is_linear_and_bounded() {
        let mut ctx = WarpContext::new(256);
        for i in 0..MATRIX_REG_COUNT {
            let f = ctx.matrix(FragmentKind::MatrixA).unwrap();
            assert_eq!(f.reg().index(), i);
        }
        assert_eq!(
            ctx.matrix(FragmentKind::MatrixB),
            Err(ApiError::OutOfRegisters)
        );
    }

    #[test]
    fn program_is_built_then_cleared() {
        let mut ctx = WarpContext::new(2048);
        let a = ctx.matrix(FragmentKind::MatrixA).unwrap();
        ctx.fill_matrix(a, 1.0);
        assert_eq!(ctx.program().len(), 1);
        ctx.run().unwrap();
        assert!(ctx.program().is_empty());
    }

    #[test]
    fn full_min_plus_flow() {
        let mut ctx = WarpContext::new(4096);
        ctx.write_input(0, 16, &Matrix::filled(16, 16, 2.0))
            .unwrap();
        ctx.write_input(256, 16, &Matrix::filled(16, 16, 3.0))
            .unwrap();
        let a = ctx.matrix(FragmentKind::MatrixA).unwrap();
        let b = ctx.matrix(FragmentKind::MatrixB).unwrap();
        let acc = ctx.matrix(FragmentKind::Accumulator).unwrap();
        ctx.load_matrix(a, 0, 16);
        ctx.load_matrix(b, 256, 16);
        ctx.fill_matrix(acc, f32::INFINITY);
        ctx.mmo(OpKind::MinPlus, acc, a, b, acc);
        ctx.store_matrix(512, acc, 16);
        let stats = ctx.run().unwrap();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.fills, 1);
        assert_eq!(stats.stores, 1);
        let out = ctx.read_output(512, 16, 16, 16).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn out_of_bounds_io_is_an_error_not_a_panic() {
        let mut ctx = WarpContext::new(64);
        let m = Matrix::filled(16, 16, 1.0);
        assert!(matches!(ctx.write_input(0, 16, &m), Err(ApiError::Exec(_))));
        assert!(matches!(
            ctx.read_output(0, 16, 16, 16),
            Err(ApiError::Exec(_))
        ));
    }

    #[test]
    fn exec_faults_surface_as_api_errors() {
        let mut ctx = WarpContext::new(16); // too small for a tile
        let a = ctx.matrix(FragmentKind::MatrixA).unwrap();
        ctx.load_matrix(a, 0, 16);
        match ctx.run() {
            Err(ApiError::Exec(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(ApiError::OutOfRegisters.to_string().contains("16"));
    }
}
