//! The unified backend error type.
//!
//! Backends can fail five ways: the operands do not fit together
//! ([`ShapeError`]), an operand's declared sparse representation is
//! invalid for the operation ([`BackendError::Repr`]), the ISA-level
//! engine faulted ([`ExecError`]), an ABFT check caught a silently
//! corrupted result ([`AbftViolation`]), or a parallel worker panicked
//! and was contained ([`BackendError::WorkerPanic`]). [`BackendError`]
//! folds all five into one type so the solver and application layers
//! propagate every failure without panicking — a worker panic surfaces
//! as an `Err`, never as a process abort.

use std::fmt;

use simd2_fault::AbftViolation;
use simd2_isa::ExecError;
use simd2_matrix::ShapeError;
use simd2_semiring::OpKind;

/// Any failure a [`Backend`](crate::Backend) can report.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// Operand shapes are incompatible.
    Shape(ShapeError),
    /// An operand's declared sparse representation
    /// ([`OperandRepr`](crate::OperandRepr)) is invalid for the
    /// operation — wrong zero sentinel, an operation without a no-edge
    /// annihilator, a non-compliant 2:4 operand, or a sparse
    /// accumulator.
    Repr {
        /// The operation whose operand declaration was rejected.
        op: OpKind,
        /// The operand (`"A"`, `"B"` or `"C"`) at fault.
        operand: &'static str,
        /// Why the declaration was rejected.
        reason: String,
    },
    /// The ISA-level executor faulted (bad address, bad program, …).
    Exec(ExecError),
    /// An ABFT check detected a silently corrupted result.
    Corruption {
        /// The operation whose result failed verification.
        op: OpKind,
        /// The invariant that failed.
        violation: AbftViolation,
    },
    /// A panel worker panicked during parallel execution; the panic was
    /// contained (remaining workers drained cleanly) and surfaces here
    /// instead of aborting the process.
    WorkerPanic {
        /// Index of the panel whose worker panicked.
        panel: usize,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Shape(e) => write!(f, "shape error: {e}"),
            BackendError::Repr {
                op,
                operand,
                reason,
            } => {
                write!(
                    f,
                    "representation error in {op} operand {operand}: {reason}"
                )
            }
            BackendError::Exec(e) => write!(f, "execution fault: {e}"),
            BackendError::Corruption { op, violation } => {
                write!(f, "silent corruption in {op}: {violation}")
            }
            BackendError::WorkerPanic { panel, payload } => {
                write!(f, "worker panic in panel {panel}: {payload}")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Shape(e) => Some(e),
            BackendError::Exec(e) => Some(e),
            BackendError::Corruption { violation, .. } => Some(violation),
            BackendError::Repr { .. } | BackendError::WorkerPanic { .. } => None,
        }
    }
}

impl From<ShapeError> for BackendError {
    fn from(e: ShapeError) -> Self {
        BackendError::Shape(e)
    }
}

impl From<ExecError> for BackendError {
    fn from(e: ExecError) -> Self {
        match e {
            // The executor's own ABFT detections surface uniformly with
            // backend-level ones.
            ExecError::SilentCorruption { op, violation, .. } => {
                BackendError::Corruption { op, violation }
            }
            other => BackendError::Exec(other),
        }
    }
}

impl BackendError {
    /// Whether this error is a transient-fault detection (retryable) as
    /// opposed to a structural error that retrying cannot fix.
    pub fn is_corruption(&self) -> bool {
        matches!(self, BackendError::Corruption { .. })
    }

    /// Whether this error is a contained worker panic — recoverable by
    /// re-executing the operation on a sequential schedule.
    pub fn is_worker_panic(&self) -> bool {
        matches!(self, BackendError::WorkerPanic { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_fault::AbftViolation;

    #[test]
    fn conversions_and_display() {
        let s: BackendError = ShapeError::new("A", (2, 2), (3, 3)).into();
        assert!(matches!(s, BackendError::Shape(_)));
        assert!(s.to_string().contains("shape error"));
        assert!(!s.is_corruption());

        let x: BackendError = ExecError::OutOfBounds {
            addr: 9,
            last: 12,
            size: 4,
        }
        .into();
        assert!(matches!(x, BackendError::Exec(_)));

        let c: BackendError = ExecError::SilentCorruption {
            op: OpKind::MinPlus,
            mmo_index: 3,
            violation: AbftViolation::NonFinite {
                op: OpKind::MinPlus,
                row: 0,
                col: 0,
                value: f32::NAN,
            },
        }
        .into();
        assert!(c.is_corruption());
        assert!(c.to_string().contains("silent corruption"));

        let r = BackendError::Repr {
            op: OpKind::PlusNorm,
            operand: "A",
            reason: "no sparse lowering".into(),
        };
        assert!(r.to_string().contains("representation error in plus-norm"));
        assert!(!r.is_corruption() && !r.is_worker_panic());

        let w = BackendError::WorkerPanic {
            panel: 2,
            payload: "boom".into(),
        };
        assert!(w.is_worker_panic());
        assert!(!w.is_corruption());
        assert!(w.to_string().contains("worker panic in panel 2"));
        use std::error::Error;
        assert!(w.source().is_none());
    }
}
