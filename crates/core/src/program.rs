//! Kernel compilation: whole-matrix operations → per-warp SIMD²
//! instruction streams.
//!
//! A real SIMD² kernel launch (paper Figure 6) assigns each warp a set of
//! output tiles; every warp then runs the load-C / stream-k / store-D
//! loop over its tiles. This module performs that lowering so the same
//! program text can be (a) executed functionally on the warp-level
//! [`Executor`](simd2_isa::Executor) and (b) fed to the cycle-level
//! pipeline simulator in [`simd2_gpu::sim`] — closing the loop between
//! the programming model and the machine model.

use simd2_isa::{Dtype, ExecError, Instruction, MatrixReg};
use simd2_matrix::tiling::{self, TileGrid};
use simd2_matrix::{Matrix, ShapeError, ISA_TILE};
use simd2_semiring::OpKind;

use crate::error::BackendError;

/// Shared-memory layout of a compiled kernel: `A | B | C/D`, each padded
/// to tile multiples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelLayout {
    /// Padded dimensions `(m, n, k)`.
    pub padded: (usize, usize, usize),
    /// Element base address of `A`.
    pub a_base: usize,
    /// Element base address of `B`.
    pub b_base: usize,
    /// Element base address of `C`/`D` (updated in place).
    pub c_base: usize,
    /// Total shared-memory elements required.
    pub total_elements: usize,
}

impl KernelLayout {
    /// Computes the layout for an `m×n×k` operation.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        let pad = |x: usize| x.div_ceil(ISA_TILE) * ISA_TILE;
        let (mp, np, kp) = (pad(m), pad(n), pad(k));
        let a_base = 0;
        let b_base = mp * kp;
        let c_base = b_base + kp * np;
        Self {
            padded: (mp, np, kp),
            a_base,
            b_base,
            c_base,
            total_elements: c_base + mp * np,
        }
    }
}

/// A compiled whole-matrix kernel: one instruction stream per warp plus
/// the memory layout to stage operands with.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledKernel {
    /// The operation every `mmo` performs.
    pub op: OpKind,
    /// The unpadded `(m, n, k)` geometry the kernel was compiled for.
    pub shape: (usize, usize, usize),
    /// Memory layout the programs address into.
    pub layout: KernelLayout,
    /// Per-warp instruction streams.
    pub warp_programs: Vec<Vec<Instruction>>,
}

impl CompiledKernel {
    /// Total instructions across all warps.
    pub fn total_instructions(&self) -> usize {
        self.warp_programs.iter().map(Vec::len).sum()
    }

    /// Total `mmo` instructions (one per tile step).
    pub fn total_mmos(&self) -> usize {
        self.warp_programs
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instruction::Mmo { .. }))
            .count()
    }
}

/// Lowers an `m×n×k` matrix operation to `warps` round-robin-partitioned
/// instruction streams.
///
/// # Panics
///
/// Panics if `warps == 0`.
pub fn compile_mmo(op: OpKind, m: usize, n: usize, k: usize, warps: usize) -> CompiledKernel {
    assert!(warps > 0, "a kernel needs at least one warp");
    let layout = KernelLayout::new(m, n, k);
    let (_, np, kp) = layout.padded;
    let grid = TileGrid::new(m, n, k, ISA_TILE);
    let (ra, rb, rc) = (MatrixReg::new(0), MatrixReg::new(1), MatrixReg::new(2));
    let mut warp_programs = vec![Vec::new(); warps];
    for (idx, (ti, tj)) in grid.output_coords().enumerate() {
        let prog = &mut warp_programs[idx % warps];
        let c_addr = (layout.c_base + ti * ISA_TILE * np + tj * ISA_TILE) as u32;
        prog.push(Instruction::Load {
            dst: rc,
            dtype: Dtype::Fp32,
            addr: c_addr,
            ld: np as u32,
        });
        for tk in 0..grid.k_tiles {
            let a_addr = (layout.a_base + ti * ISA_TILE * kp + tk * ISA_TILE) as u32;
            let b_addr = (layout.b_base + tk * ISA_TILE * np + tj * ISA_TILE) as u32;
            prog.push(Instruction::Load {
                dst: ra,
                dtype: Dtype::Fp16,
                addr: a_addr,
                ld: kp as u32,
            });
            prog.push(Instruction::Load {
                dst: rb,
                dtype: Dtype::Fp16,
                addr: b_addr,
                ld: np as u32,
            });
            prog.push(Instruction::Mmo {
                op,
                d: rc,
                a: ra,
                b: rb,
                c: rc,
            });
        }
        prog.push(Instruction::Store {
            src: rc,
            addr: c_addr,
            ld: np as u32,
        });
    }
    CompiledKernel {
        op,
        shape: (m, n, k),
        layout,
        warp_programs,
    }
}

/// Stages operands into a fresh shared-memory image per the kernel's
/// layout (padding with the algebra's inert values).
///
/// # Errors
///
/// Returns an [`ExecError`] if the layout does not fit the memory image
/// (cannot happen for layouts produced by [`KernelLayout::new`]).
pub fn stage_operands(
    kernel: &CompiledKernel,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<simd2_isa::SharedMemory, ExecError> {
    let (mp, np, kp) = kernel.layout.padded;
    let pads = tiling::pad_values(kernel.op);
    let mut mem = simd2_isa::SharedMemory::new(kernel.layout.total_elements);
    let write = |mem: &mut simd2_isa::SharedMemory, base, ld, src: &Matrix, rows, cols, fill| {
        let padded = Matrix::from_fn(rows, cols, |r, cc| src.get(r, cc).unwrap_or(fill));
        mem.write_matrix(base, ld, &padded)
    };
    write(&mut mem, kernel.layout.a_base, kp, a, mp, kp, pads.operand)?;
    write(&mut mem, kernel.layout.b_base, np, b, kp, np, pads.operand)?;
    write(
        &mut mem,
        kernel.layout.c_base,
        np,
        c,
        mp,
        np,
        pads.accumulator,
    )?;
    Ok(mem)
}

/// Functionally executes a compiled kernel (all warps, in order) and
/// returns the unpadded output.
///
/// # Errors
///
/// Returns [`BackendError::Shape`] when the operand shapes disagree with
/// the kernel's geometry, and propagates executor faults.
pub fn execute_compiled(
    kernel: &CompiledKernel,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<Matrix, BackendError> {
    simd2_matrix::reference::check_mmo_shapes(a, b, c)?;
    let (m, n, k) = kernel.shape;
    if a.shape() != (m, k) {
        return Err(ShapeError::new("A (kernel geometry)", (m, k), a.shape()).into());
    }
    if b.shape() != (k, n) {
        return Err(ShapeError::new("B (kernel geometry)", (k, n), b.shape()).into());
    }
    let mem = stage_operands(kernel, a, b, c)?;
    let mut exec = simd2_isa::Executor::new(mem);
    for prog in &kernel.warp_programs {
        exec.run(prog)?;
    }
    let (_, np, _) = kernel.layout.padded;
    let out = exec
        .memory()
        .read_matrix(kernel.layout.c_base, np, a.rows(), b.cols())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_gpu::SmPipeline;
    use simd2_matrix::{gen, reference};
    use simd2_semiring::ALL_OPS;

    #[test]
    fn compiled_kernel_matches_reference_for_all_ops() {
        for op in ALL_OPS {
            let (m, n, k) = (20, 35, 18); // ragged on purpose
            let a = gen::random_operands_for(op, m, k, 1);
            let b = gen::random_operands_for(op, k, n, 2);
            let c = Matrix::filled(m, n, op.reduce_identity_f32());
            let kernel = compile_mmo(op, m, n, k, 3);
            let got = execute_compiled(&kernel, &a, &b, &c).unwrap();
            let want = reference::mmo(op, &a, &b, &c).unwrap();
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 0.05,
                OpKind::MinMul | OpKind::MaxMul => 1e-3,
                _ => 1e-3,
            };
            let diff = got.max_abs_diff(&want).unwrap();
            assert!(diff <= tol, "{op}: {diff}");
        }
    }

    #[test]
    fn warp_partitioning_is_complete_and_balanced() {
        let kernel = compile_mmo(OpKind::MinPlus, 64, 64, 64, 4);
        // 4×4 output tiles, 4 k-tiles each.
        assert_eq!(kernel.total_mmos(), 16 * 4);
        // Round-robin: every warp gets 4 output tiles.
        for prog in &kernel.warp_programs {
            let stores = prog
                .iter()
                .filter(|i| matches!(i, Instruction::Store { .. }))
                .count();
            assert_eq!(stores, 4);
        }
        assert_eq!(kernel.total_instructions(), 16 * (1 + 3 * 4 + 1));
    }

    #[test]
    fn more_warps_than_tiles_leaves_some_idle() {
        let kernel = compile_mmo(OpKind::OrAnd, 16, 16, 16, 8);
        let nonempty = kernel
            .warp_programs
            .iter()
            .filter(|p| !p.is_empty())
            .count();
        assert_eq!(nonempty, 1, "one output tile, one busy warp");
    }

    #[test]
    fn layout_is_tight_and_tile_aligned() {
        let l = KernelLayout::new(17, 33, 50);
        assert_eq!(l.padded, (32, 48, 64));
        assert_eq!(l.a_base, 0);
        assert_eq!(l.b_base, 32 * 64);
        assert_eq!(l.c_base, 32 * 64 + 64 * 48);
        assert_eq!(l.total_elements, 32 * 64 + 64 * 48 + 32 * 48);
    }

    #[test]
    fn compiled_kernels_drive_the_pipeline_simulator() {
        // The same streams run on the timing model: more warps → higher
        // tile-pipe utilisation for the same work.
        let one = compile_mmo(OpKind::MinPlus, 64, 64, 64, 1);
        let eight = compile_mmo(OpKind::MinPlus, 64, 64, 64, 8);
        let sim = SmPipeline::new();
        let s1 = sim.simulate(&one.warp_programs);
        let s8 = sim.simulate(&eight.warp_programs);
        assert_eq!(s1.mmos, s8.mmos);
        assert!(s8.cycles < s1.cycles, "{} vs {}", s8.cycles, s1.cycles);
        assert!(s8.simd2_utilization() > s1.simd2_utilization());
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_rejected() {
        let _ = compile_mmo(OpKind::MinPlus, 16, 16, 16, 0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let kernel = compile_mmo(OpKind::MinPlus, 16, 16, 16, 1);
        let bad = Matrix::zeros(8, 8);
        assert!(execute_compiled(&kernel, &bad, &bad, &bad).is_err());
    }
}
