//! Correctness-validation framework (paper §5.1, Figure 8).
//!
//! The paper's evaluation pipeline runs each SIMD²-ized application twice:
//! once through a CUDA-core backend to *validate* that the (often
//! different) matrix algorithm still produces the baseline's output under
//! the unit's reduced-precision data types, and once through the
//! Tensor-Core path for timing. This module is the validation half:
//! compare a candidate output against a baseline oracle, record the worst
//! deviation, and carry the op statistics over to the performance model.

use serde::{Deserialize, Serialize};
use simd2_matrix::{reference, Matrix};
use simd2_semiring::OpKind;

use crate::backend::OpCount;
use crate::error::BackendError;
use crate::repr::{self, MatrixRef, OperandRepr};

/// Validates the operands of one `D = C ⊕ (A ⊗ B)` operation — the single
/// shape/op gate every backend ([`ReferenceBackend`](crate::ReferenceBackend),
/// [`TiledBackend`](crate::TiledBackend), [`IsaBackend`](crate::IsaBackend))
/// and the plan recorder run before touching the datapath, so malformed
/// inputs are rejected with the *same* [`BackendError`] everywhere.
///
/// # Errors
///
/// Returns [`BackendError::Shape`] when `A: m×k`, `B: k×n`, `C: m×n` do
/// not fit together.
pub fn check_mmo_operands(
    op: OpKind,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<(), BackendError> {
    let _ = op; // every op shares the mmo geometry; kept for future
                // op-specific domain checks (and a uniform signature).
    reference::check_mmo_shapes(a, b, c)?;
    Ok(())
}

/// Validates the operands *and representation declarations* of one
/// `D = C ⊕ (A ⊗ B)` operation — the gate behind
/// [`Backend::mmo_ref`](crate::Backend::mmo_ref), run by every backend
/// (representation-aware or not) so invalid declarations are rejected
/// with the same [`BackendError::Repr`] everywhere.
///
/// A sparse declaration is only a *schedule* hint — it must never change
/// the answer — so it validates only when skipping stored-zero terms is
/// a bit-exact no-op:
///
/// * the operation must have a no-edge annihilator
///   ([`OpKind::no_edge_f32`]; `PlusNorm` has none and admits no sparse
///   lowering),
/// * the declared zero sentinel must equal that annihilator (and in
///   particular cannot be NaN),
/// * a [`OperandRepr::Structured24`] operand must actually satisfy the
///   2:4 constraint ([`repr::is_2_4_compliant`]),
/// * the accumulator `C` must stay dense — it seeds every output
///   element, so it has no skippable terms.
///
/// # Errors
///
/// [`BackendError::Shape`] as [`check_mmo_operands`], and
/// [`BackendError::Repr`] for an invalid declaration.
pub fn check_mmo_operands_ref(
    op: OpKind,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    c: MatrixRef<'_>,
) -> Result<(), BackendError> {
    check_mmo_operands(op, a.matrix, b.matrix, c.matrix)?;
    if !c.repr.is_dense() {
        return Err(BackendError::Repr {
            op,
            operand: "C",
            reason: format!(
                "accumulator must stay dense, got {} declaration",
                c.repr.name()
            ),
        });
    }
    for (name, operand) in [("A", a), ("B", b)] {
        check_operand_repr(op, name, operand)?;
    }
    Ok(())
}

/// Validates one non-accumulator operand's representation declaration.
fn check_operand_repr(
    op: OpKind,
    name: &'static str,
    operand: MatrixRef<'_>,
) -> Result<(), BackendError> {
    let Some(zero) = operand.repr.zero() else {
        return Ok(()); // dense: nothing to check
    };
    let err = |reason: String| {
        Err(BackendError::Repr {
            op,
            operand: name,
            reason,
        })
    };
    let Some(no_edge) = op.no_edge_f32() else {
        return err(format!(
            "{op} has no no-edge annihilator, so no sparse lowering exists"
        ));
    };
    if zero.is_nan() {
        return err("zero sentinel must not be NaN".to_string());
    }
    if zero != no_edge {
        return err(format!(
            "zero sentinel {zero} does not equal the {op} no-edge value {no_edge}"
        ));
    }
    if matches!(operand.repr, OperandRepr::Structured24 { .. })
        && !repr::is_2_4_compliant(operand.matrix, zero)
    {
        return err("operand does not satisfy the 2:4 structured constraint".to_string());
    }
    Ok(())
}

/// Outcome of validating one application run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Validation {
    /// Application / experiment label.
    pub name: String,
    /// Worst absolute element deviation from the baseline output
    /// (matching infinities count as zero).
    pub max_abs_diff: f32,
    /// Acceptance tolerance used.
    pub tolerance: f32,
    /// Tile-operation statistics of the candidate run (input to the
    /// performance model), if collected.
    #[serde(skip)]
    pub op_count: Option<OpCount>,
}

impl Validation {
    /// Whether the candidate run is accepted.
    pub fn passed(&self) -> bool {
        self.max_abs_diff <= self.tolerance
    }
}

/// Compares a candidate matrix output against the baseline oracle.
///
/// # Panics
///
/// Panics if the two outputs have different shapes — shape disagreement is
/// an implementation bug, not a precision issue.
pub fn compare_outputs(
    name: impl Into<String>,
    baseline: &Matrix,
    candidate: &Matrix,
    tolerance: f32,
) -> Validation {
    let max_abs_diff = baseline
        .max_abs_diff(candidate)
        .expect("baseline and candidate outputs must have identical shapes");
    Validation {
        name: name.into(),
        max_abs_diff,
        tolerance,
        op_count: None,
    }
}

/// Compares scalar outputs (e.g. an MST total weight) under a relative
/// tolerance.
pub fn compare_scalars(
    name: impl Into<String>,
    baseline: f32,
    candidate: f32,
    rel_tolerance: f32,
) -> Validation {
    let scale = baseline.abs().max(1.0);
    Validation {
        name: name.into(),
        max_abs_diff: (baseline - candidate).abs() / scale,
        tolerance: rel_tolerance,
        op_count: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes_at_zero_tolerance() {
        let m = Matrix::filled(3, 3, 1.5);
        let v = compare_outputs("exact", &m, &m.clone(), 0.0);
        assert!(v.passed());
        assert_eq!(v.max_abs_diff, 0.0);
    }

    #[test]
    fn deviation_is_measured_and_thresholded() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.25]]);
        let v = compare_outputs("off-by-quarter", &a, &b, 0.2);
        assert!(!v.passed());
        assert_eq!(v.max_abs_diff, 0.25);
        assert!(compare_outputs("looser", &a, &b, 0.25).passed());
    }

    #[test]
    fn matching_infinities_are_fine() {
        let a = Matrix::from_rows(&[&[f32::INFINITY, 1.0]]);
        let v = compare_outputs("inf", &a, &a.clone(), 0.0);
        assert!(v.passed());
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_panics() {
        let _ = compare_outputs("bad", &Matrix::zeros(2, 2), &Matrix::zeros(2, 3), 1.0);
    }

    #[test]
    fn all_backends_reject_malformed_inputs_with_the_same_error() {
        use crate::backend::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
        // (A, B, C) triples that cannot form D = C ⊕ (A ⊗ B).
        let malformed = [
            (
                Matrix::zeros(4, 4),
                Matrix::zeros(5, 4),
                Matrix::zeros(4, 4),
            ),
            (
                Matrix::zeros(4, 7),
                Matrix::zeros(7, 3),
                Matrix::zeros(4, 4),
            ),
            (
                Matrix::zeros(2, 3),
                Matrix::zeros(3, 5),
                Matrix::zeros(3, 5),
            ),
        ];
        for (a, b, c) in &malformed {
            let want = check_mmo_operands(OpKind::MinPlus, a, b, c)
                .expect_err("malformed inputs must be rejected");
            let r = ReferenceBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("reference");
            let t = TiledBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("tiled");
            let i = IsaBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("isa");
            assert_eq!(r, want, "reference backend error diverged");
            assert_eq!(t, want, "tiled backend error diverged");
            assert_eq!(i, want, "isa backend error diverged");
        }
        // Well-formed operands pass for every op.
        let a = Matrix::zeros(4, 6);
        let b = Matrix::zeros(6, 5);
        let c = Matrix::zeros(4, 5);
        for op in simd2_semiring::ALL_OPS {
            assert!(check_mmo_operands(op, &a, &b, &c).is_ok(), "{op}");
        }
    }

    #[test]
    fn repr_declarations_are_gated_on_the_ops_annihilator() {
        let a = Matrix::zeros(4, 6);
        let b = Matrix::zeros(6, 5);
        let c = Matrix::zeros(4, 5);
        // A dense triple passes for every op through the ref gate too.
        for op in simd2_semiring::ALL_OPS {
            assert!(check_mmo_operands_ref(
                op,
                MatrixRef::dense(&a),
                MatrixRef::dense(&b),
                MatrixRef::dense(&c)
            )
            .is_ok());
        }
        // The matching no-edge sentinel validates…
        let csr = OperandRepr::csr_for(OpKind::MinPlus).unwrap();
        assert!(check_mmo_operands_ref(
            OpKind::MinPlus,
            MatrixRef::new(&a, csr),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c)
        )
        .is_ok());
        // …a mismatched one is rejected…
        let wrong = OperandRepr::csr(0.0);
        let e = check_mmo_operands_ref(
            OpKind::MinPlus,
            MatrixRef::new(&a, wrong),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c),
        )
        .unwrap_err();
        assert!(matches!(e, BackendError::Repr { operand: "A", .. }), "{e}");
        // …NaN sentinels are rejected…
        let nan = OperandRepr::csr(f32::NAN);
        assert!(check_mmo_operands_ref(
            OpKind::MinPlus,
            MatrixRef::dense(&a),
            MatrixRef::new(&b, nan),
            MatrixRef::dense(&c)
        )
        .is_err());
        // …PlusNorm admits no sparse lowering at all…
        assert!(check_mmo_operands_ref(
            OpKind::PlusNorm,
            MatrixRef::new(&a, OperandRepr::csr(0.0)),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c)
        )
        .is_err());
        // …and the accumulator must stay dense.
        let e = check_mmo_operands_ref(
            OpKind::MinPlus,
            MatrixRef::dense(&a),
            MatrixRef::dense(&b),
            MatrixRef::new(&c, csr),
        )
        .unwrap_err();
        assert!(matches!(e, BackendError::Repr { operand: "C", .. }));
    }

    #[test]
    fn structured_declarations_require_2_4_compliance() {
        // Three non-zeros in the first aligned group of four: violates 2:4.
        let bad = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 0.0], &[0.0; 4]]);
        let good = Matrix::from_rows(&[&[1.0, 2.0, 0.0, 0.0], &[0.0; 4]]);
        let b = Matrix::zeros(4, 3);
        let c = Matrix::zeros(2, 3);
        let st = OperandRepr::structured_for(OpKind::PlusMul).unwrap();
        assert!(check_mmo_operands_ref(
            OpKind::PlusMul,
            MatrixRef::new(&good, st),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c)
        )
        .is_ok());
        let e = check_mmo_operands_ref(
            OpKind::PlusMul,
            MatrixRef::new(&bad, st),
            MatrixRef::dense(&b),
            MatrixRef::dense(&c),
        )
        .unwrap_err();
        assert!(e.to_string().contains("2:4"), "{e}");
        // Shape errors still win over repr errors (same gate order as
        // the dense path).
        let misshapen = Matrix::zeros(5, 3);
        let e = check_mmo_operands_ref(
            OpKind::PlusMul,
            MatrixRef::new(&bad, st),
            MatrixRef::dense(&misshapen),
            MatrixRef::dense(&c),
        )
        .unwrap_err();
        assert!(matches!(e, BackendError::Shape(_)));
    }

    #[test]
    fn scalar_comparison_is_relative() {
        let v = compare_scalars("weights", 1000.0, 1001.0, 0.01);
        assert!(v.passed());
        let v = compare_scalars("weights", 1000.0, 1200.0, 0.01);
        assert!(!v.passed());
        // Small baselines are compared on an absolute scale of 1.
        let v = compare_scalars("tiny", 0.0, 0.005, 0.01);
        assert!(v.passed());
    }
}
