//! Correctness-validation framework (paper §5.1, Figure 8).
//!
//! The paper's evaluation pipeline runs each SIMD²-ized application twice:
//! once through a CUDA-core backend to *validate* that the (often
//! different) matrix algorithm still produces the baseline's output under
//! the unit's reduced-precision data types, and once through the
//! Tensor-Core path for timing. This module is the validation half:
//! compare a candidate output against a baseline oracle, record the worst
//! deviation, and carry the op statistics over to the performance model.

use serde::{Deserialize, Serialize};
use simd2_matrix::{reference, Matrix};
use simd2_semiring::OpKind;

use crate::backend::OpCount;
use crate::error::BackendError;

/// Validates the operands of one `D = C ⊕ (A ⊗ B)` operation — the single
/// shape/op gate every backend ([`ReferenceBackend`](crate::ReferenceBackend),
/// [`TiledBackend`](crate::TiledBackend), [`IsaBackend`](crate::IsaBackend))
/// and the plan recorder run before touching the datapath, so malformed
/// inputs are rejected with the *same* [`BackendError`] everywhere.
///
/// # Errors
///
/// Returns [`BackendError::Shape`] when `A: m×k`, `B: k×n`, `C: m×n` do
/// not fit together.
pub fn check_mmo_operands(
    op: OpKind,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
) -> Result<(), BackendError> {
    let _ = op; // every op shares the mmo geometry; kept for future
                // op-specific domain checks (and a uniform signature).
    reference::check_mmo_shapes(a, b, c)?;
    Ok(())
}

/// Outcome of validating one application run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Validation {
    /// Application / experiment label.
    pub name: String,
    /// Worst absolute element deviation from the baseline output
    /// (matching infinities count as zero).
    pub max_abs_diff: f32,
    /// Acceptance tolerance used.
    pub tolerance: f32,
    /// Tile-operation statistics of the candidate run (input to the
    /// performance model), if collected.
    #[serde(skip)]
    pub op_count: Option<OpCount>,
}

impl Validation {
    /// Whether the candidate run is accepted.
    pub fn passed(&self) -> bool {
        self.max_abs_diff <= self.tolerance
    }
}

/// Compares a candidate matrix output against the baseline oracle.
///
/// # Panics
///
/// Panics if the two outputs have different shapes — shape disagreement is
/// an implementation bug, not a precision issue.
pub fn compare_outputs(
    name: impl Into<String>,
    baseline: &Matrix,
    candidate: &Matrix,
    tolerance: f32,
) -> Validation {
    let max_abs_diff = baseline
        .max_abs_diff(candidate)
        .expect("baseline and candidate outputs must have identical shapes");
    Validation {
        name: name.into(),
        max_abs_diff,
        tolerance,
        op_count: None,
    }
}

/// Compares scalar outputs (e.g. an MST total weight) under a relative
/// tolerance.
pub fn compare_scalars(
    name: impl Into<String>,
    baseline: f32,
    candidate: f32,
    rel_tolerance: f32,
) -> Validation {
    let scale = baseline.abs().max(1.0);
    Validation {
        name: name.into(),
        max_abs_diff: (baseline - candidate).abs() / scale,
        tolerance: rel_tolerance,
        op_count: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes_at_zero_tolerance() {
        let m = Matrix::filled(3, 3, 1.5);
        let v = compare_outputs("exact", &m, &m.clone(), 0.0);
        assert!(v.passed());
        assert_eq!(v.max_abs_diff, 0.0);
    }

    #[test]
    fn deviation_is_measured_and_thresholded() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.25]]);
        let v = compare_outputs("off-by-quarter", &a, &b, 0.2);
        assert!(!v.passed());
        assert_eq!(v.max_abs_diff, 0.25);
        assert!(compare_outputs("looser", &a, &b, 0.25).passed());
    }

    #[test]
    fn matching_infinities_are_fine() {
        let a = Matrix::from_rows(&[&[f32::INFINITY, 1.0]]);
        let v = compare_outputs("inf", &a, &a.clone(), 0.0);
        assert!(v.passed());
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_panics() {
        let _ = compare_outputs("bad", &Matrix::zeros(2, 2), &Matrix::zeros(2, 3), 1.0);
    }

    #[test]
    fn all_backends_reject_malformed_inputs_with_the_same_error() {
        use crate::backend::{Backend, IsaBackend, ReferenceBackend, TiledBackend};
        // (A, B, C) triples that cannot form D = C ⊕ (A ⊗ B).
        let malformed = [
            (
                Matrix::zeros(4, 4),
                Matrix::zeros(5, 4),
                Matrix::zeros(4, 4),
            ),
            (
                Matrix::zeros(4, 7),
                Matrix::zeros(7, 3),
                Matrix::zeros(4, 4),
            ),
            (
                Matrix::zeros(2, 3),
                Matrix::zeros(3, 5),
                Matrix::zeros(3, 5),
            ),
        ];
        for (a, b, c) in &malformed {
            let want = check_mmo_operands(OpKind::MinPlus, a, b, c)
                .expect_err("malformed inputs must be rejected");
            let r = ReferenceBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("reference");
            let t = TiledBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("tiled");
            let i = IsaBackend::new()
                .mmo(OpKind::MinPlus, a, b, c)
                .expect_err("isa");
            assert_eq!(r, want, "reference backend error diverged");
            assert_eq!(t, want, "tiled backend error diverged");
            assert_eq!(i, want, "isa backend error diverged");
        }
        // Well-formed operands pass for every op.
        let a = Matrix::zeros(4, 6);
        let b = Matrix::zeros(6, 5);
        let c = Matrix::zeros(4, 5);
        for op in simd2_semiring::ALL_OPS {
            assert!(check_mmo_operands(op, &a, &b, &c).is_ok(), "{op}");
        }
    }

    #[test]
    fn scalar_comparison_is_relative() {
        let v = compare_scalars("weights", 1000.0, 1001.0, 0.01);
        assert!(v.passed());
        let v = compare_scalars("weights", 1000.0, 1200.0, 0.01);
        assert!(!v.passed());
        // Small baselines are compared on an absolute scale of 1.
        let v = compare_scalars("tiny", 0.0, 0.005, 0.01);
        assert!(v.passed());
    }
}
