//! Plan IR: record once, lower anywhere.
//!
//! Historically every consumer of an algorithm's matrix-operation
//! sequence maintained its own shadow of it — the functional backends
//! executed it eagerly, the ISA path rebuilt the instruction stream
//! inline, and the timing layer hand-derived each application's
//! iteration structure. This module replaces those shadows with one
//! recorded artifact: a [`Plan`] is an ordered list of MMO steps
//! (`D = C ⊕ (A ⊗ B)` over a small slot arena) with recorded shape
//! metadata and a dependency summary, built by running an unmodified
//! algorithm against a [`PlanBuilder`] — a recording [`Backend`] that
//! delegates to a real one, so data-dependent control flow (convergence
//! checks) records exactly the steps that actually ran.
//!
//! A single [`Executor`] then lowers a plan onto any [`Backend`]:
//! sequentially (bit-identical to the eager run), or wave-batched —
//! mutually independent steps of one plan (or several [merged](Plan::merge)
//! plans) dispatched together through [`Backend::mmo_batch`]. The same
//! plan also compiles to per-warp ISA kernels ([`Plan::compile`]) and
//! exports shape-level traces ([`Plan::traces`]) that drive the GPU
//! pipeline cost model — one recording, three lowerings.

pub mod passes;

use std::collections::HashMap;

use simd2_gpu::MmoTrace;
use simd2_matrix::Matrix;
use simd2_semiring::OpKind;
use simd2_trace::{field, span, Tracer};

use crate::backend::{Backend, MmoArgs, OpCount};
use crate::error::BackendError;
use crate::program::{compile_mmo, CompiledKernel};
use crate::repr::{MatrixRef, OperandRepr};

/// Index of a value slot in a plan's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(usize);

impl SlotId {
    /// The slot's arena index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a slot's value comes from at replay time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOrigin {
    /// An external operand captured at record time.
    Input,
    /// The output of the step with this index.
    Step(usize),
}

/// One value slot: its shape, provenance, and (for inputs) the captured
/// value. Step outputs are *not* stored — they are recomputed at replay,
/// which is what makes replay a real execution rather than a lookup.
#[derive(Clone, Debug)]
struct Slot {
    shape: (usize, usize),
    origin: SlotOrigin,
    value: Option<Matrix>,
    /// Earliest slot whose recorded content was bit-identical to this
    /// one (`None` when this slot's bits were novel at record time).
    /// Only step outputs carry twins — interning already dedups inputs —
    /// and the link is what lets the CSE pass recognise the
    /// post-fixed-point steps of a convergence-free closure as
    /// redundant. Twins are value-derived, so they are deliberately
    /// excluded from [`Plan::structural_hash`].
    twin: Option<SlotId>,
    /// The slot's execution representation (dense unless a sparse MMO
    /// recorded through [`Backend::mmo_ref`] or a lowering pass declared
    /// otherwise). Part of [`Plan::structural_hash`]: the lowering is a
    /// plan property, so differently-lowered plans cache separately.
    repr: OperandRepr,
}

/// One recorded `D = C ⊕ (A ⊗ B)` step over the slot arena. Slots are
/// SSA: every step writes a fresh output slot, so the dependency summary
/// is exactly "which steps produced my operands".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// Semiring operation.
    pub op: OpKind,
    /// Left operand (`m×k`).
    pub a: SlotId,
    /// Right operand (`k×n`).
    pub b: SlotId,
    /// Accumulator (`m×n`).
    pub c: SlotId,
    /// Output (`m×n`, always a fresh slot).
    pub d: SlotId,
}

/// A recorded program of matrix operations: the single artifact the
/// functional, ISA and timing lowerings all consume. Built by a
/// [`PlanBuilder`]; executed by an [`Executor`].
#[derive(Clone, Debug, Default)]
pub struct Plan {
    slots: Vec<Slot>,
    steps: Vec<Step>,
    reduced_precision: bool,
}

impl Plan {
    /// Number of recorded steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of value slots (inputs + one output per step).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether the plan records no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Whether the recording backend ran operands through fp16.
    pub fn reduced_precision(&self) -> bool {
        self.reduced_precision
    }

    /// A slot's recorded `(rows, cols)` shape.
    pub fn slot_shape(&self, slot: SlotId) -> (usize, usize) {
        self.slots[slot.0].shape
    }

    /// A slot's provenance.
    pub fn slot_origin(&self, slot: SlotId) -> SlotOrigin {
        self.slots[slot.0].origin
    }

    /// The captured value of an input slot (`None` for step outputs).
    pub fn input_value(&self, slot: SlotId) -> Option<&Matrix> {
        self.slots[slot.0].value.as_ref()
    }

    /// A slot's declared execution representation.
    pub fn slot_repr(&self, slot: SlotId) -> OperandRepr {
        self.slots[slot.0].repr
    }

    /// The declared representations of a step's `[a, b, c]` operands.
    pub fn step_reprs(&self, step: usize) -> [OperandRepr; 3] {
        let s = &self.steps[step];
        [
            self.slots[s.a.0].repr,
            self.slots[s.b.0].repr,
            self.slots[s.c.0].repr,
        ]
    }

    /// Whether any slot carries a sparse representation.
    pub fn has_sparse_slots(&self) -> bool {
        self.slots.iter().any(|s| !s.repr.is_dense())
    }

    /// The earliest slot whose recorded content was bit-identical to
    /// `slot`'s, if the recorder observed one — the content-equality
    /// link [`passes::CsePass`] canonicalises operands through. Twins
    /// hold on the recording backend's bit-identity class and are not
    /// part of the structural hash.
    pub fn slot_twin(&self, slot: SlotId) -> Option<SlotId> {
        self.slots[slot.0].twin
    }

    /// Every input slot, in arena order — the slots whose captured
    /// values a replay starts from (admission layers size quotas on
    /// them).
    pub fn input_slots(&self) -> Vec<SlotId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.origin, SlotOrigin::Input))
            .map(|(i, _)| SlotId(i))
            .collect()
    }

    /// Per-step dependency summary: for each step, the (sorted,
    /// deduplicated) indices of earlier steps whose outputs it reads.
    /// Slots are SSA, so these are pure read-after-write edges.
    pub fn dependencies(&self) -> Vec<Vec<usize>> {
        self.steps
            .iter()
            .map(|s| {
                let mut deps: Vec<usize> = [s.a, s.b, s.c]
                    .iter()
                    .filter_map(|&sl| match self.slots[sl.0].origin {
                        SlotOrigin::Step(i) => Some(i),
                        SlotOrigin::Input => None,
                    })
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            })
            .collect()
    }

    /// Topological dispatch levels: wave `w` holds the (ascending) step
    /// indices whose dependencies all completed in waves `< w`. Steps
    /// within one wave are mutually independent — the unit of batched
    /// dispatch through [`Backend::mmo_batch`].
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let deps = self.dependencies();
        let mut level = vec![0usize; self.steps.len()];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.steps.len() {
            let l = deps[i].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
            level[i] = l;
            if waves.len() <= l {
                waves.resize(l + 1, Vec::new());
            }
            waves[l].push(i);
        }
        waves
    }

    /// A step's `(m, n, k)` geometry, from its operand slot shapes.
    pub fn step_geometry(&self, step: usize) -> (usize, usize, usize) {
        let s = &self.steps[step];
        let (m, k) = self.slots[s.a.0].shape;
        let (_, n) = self.slots[s.b.0].shape;
        (m, n, k)
    }

    /// Exports the plan as shape-level [`MmoTrace`] records — the form
    /// the GPU pipeline cost model replays
    /// ([`simd2_gpu::simulate_trace`]), so timing is derived from the
    /// recorded algorithm instead of a hand-maintained op sequence.
    pub fn traces(&self) -> Vec<MmoTrace> {
        (0..self.steps.len())
            .map(|i| {
                let (m, n, k) = self.step_geometry(i);
                MmoTrace::new(self.steps[i].op, m, n, k)
            })
            .collect()
    }

    /// Lowers every step to a `warps`-wide ISA kernel
    /// ([`compile_mmo`]) — the instruction streams the warp-level
    /// executor and the pipeline simulator both consume.
    ///
    /// # Panics
    ///
    /// Panics if `warps == 0`.
    pub fn compile(&self, warps: usize) -> Vec<CompiledKernel> {
        (0..self.steps.len())
            .map(|i| {
                let (m, n, k) = self.step_geometry(i);
                compile_mmo(self.steps[i].op, m, n, k, warps)
            })
            .collect()
    }

    /// The tile-operation counters a full replay of this plan performs,
    /// predicted from recorded shapes alone — equal to the replaying
    /// backend's [`OpCount`] delta.
    pub fn predicted_op_count(&self) -> OpCount {
        let mut count = OpCount::default();
        for trace in self.traces() {
            count.matrix_mmos += 1;
            count.tile_mmos += trace.tile_mmos() as u64;
            count.tile_loads += (2 * trace.tile_mmos() + trace.output_tiles()) as u64;
            count.tile_stores += trace.output_tiles() as u64;
        }
        count
    }

    /// FNV-1a over the plan's *structure*: step ops and operand slot
    /// wiring, slot shapes and origins, and the recording precision —
    /// but not input content. Two plans recorded independently from the
    /// same algorithm run hash equal even though their captured input
    /// matrices are distinct allocations.
    pub fn structural_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_mix(h, u64::from(self.reduced_precision));
        h = fnv_mix(h, self.slots.len() as u64);
        for slot in &self.slots {
            h = fnv_mix(h, slot.shape.0 as u64);
            h = fnv_mix(h, slot.shape.1 as u64);
            h = fnv_mix(
                h,
                match slot.origin {
                    SlotOrigin::Input => 0,
                    SlotOrigin::Step(i) => 1 + i as u64,
                },
            );
            // Representation is a lowering decision and thus part of the
            // structure. Dense slots mix nothing, so all-dense plans
            // keep their pre-seam hashes.
            if !slot.repr.is_dense() {
                h = fnv_mix(h, slot.repr.hash_tag());
            }
        }
        h = fnv_mix(h, self.steps.len() as u64);
        for step in &self.steps {
            for byte in step.op.name().bytes() {
                h = fnv_mix(h, u64::from(byte));
            }
            for slot in [step.a, step.b, step.c, step.d] {
                h = fnv_mix(h, slot.0 as u64);
            }
        }
        h
    }

    /// FNV-1a over every captured input slot's exact element bits (in
    /// slot order). Flipping any single bit of any input changes the
    /// fingerprint, so a cache keyed on [`Plan::cache_key`] can never
    /// serve a stale result for perturbed inputs.
    ///
    /// Sparse-declared inputs fingerprint through their CSR raw parts
    /// ([`crate::repr::fingerprint_sparse`]) instead of the dense
    /// walk — the same bits a sparse kernel actually reads. The parts
    /// are filtered on *bit* equality with the sentinel, so they remain
    /// a bijection with the element bits and the single-bit-flip
    /// guarantee holds for sparse slots too.
    pub fn input_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(value) = &slot.value {
                h = fnv_mix(h, i as u64);
                match slot.repr.zero() {
                    None => h = fnv_mix(h, content_hash(value)),
                    Some(zero) => {
                        h = fnv_mix(h, slot.repr.hash_tag());
                        h = fnv_mix(h, crate::repr::fingerprint_sparse(value, zero));
                    }
                }
            }
        }
        h
    }

    /// The plan's cache identity: [`structural_hash`](Self::structural_hash)
    /// plus [`input_fingerprint`](Self::input_fingerprint).
    pub fn cache_key(&self) -> PlanKey {
        PlanKey {
            structural: self.structural_hash(),
            inputs: self.input_fingerprint(),
        }
    }

    /// Merges several plans into one: slots and step indices are
    /// renumbered plan-by-plan, and no cross-plan edges are introduced,
    /// so steps from different plans land in the same waves and batch
    /// together — the fan-out path for running independent recordings
    /// through one [`Backend::mmo_batch`] dispatch. The merged plan is
    /// reduced-precision if any constituent was.
    pub fn merge<I: IntoIterator<Item = Plan>>(plans: I) -> Plan {
        let mut merged = Plan::default();
        for plan in plans {
            let slot_base = merged.slots.len();
            let step_base = merged.steps.len();
            merged.reduced_precision |= plan.reduced_precision;
            for mut slot in plan.slots {
                if let SlotOrigin::Step(i) = slot.origin {
                    slot.origin = SlotOrigin::Step(i + step_base);
                }
                slot.twin = slot.twin.map(|t| SlotId(t.0 + slot_base));
                merged.slots.push(slot);
            }
            for step in plan.steps {
                let shift = |s: SlotId| SlotId(s.0 + slot_base);
                merged.steps.push(Step {
                    op: step.op,
                    a: shift(step.a),
                    b: shift(step.b),
                    c: shift(step.c),
                    d: shift(step.d),
                });
            }
        }
        merged
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a mixing round.
pub(crate) fn fnv_mix(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// FNV-1a over a matrix's shape and exact element bits — the interning
/// key the recorder uses to recover dependency edges from operand
/// identity, and the per-input word of [`Plan::input_fingerprint`].
fn content_hash(m: &Matrix) -> u64 {
    let mut h = FNV_OFFSET;
    for word in [m.rows() as u64, m.cols() as u64]
        .into_iter()
        .chain(m.as_slice().iter().map(|v| u64::from(v.to_bits())))
    {
        h = fnv_mix(h, word);
    }
    h
}

/// Cache identity of a recorded plan: the hash of its step *structure*
/// plus a fingerprint of every captured input's exact bits.
///
/// Replay is deterministic, so two plans with equal keys replay
/// bit-identically on the same backend configuration — which is what
/// makes caching replay results on this key sound. The serving layer's
/// plan cache (`simd2-serve`) uses it as its map key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey {
    /// [`Plan::structural_hash`]: ops, slot wiring, shapes, origins,
    /// recording precision — everything except input content.
    pub structural: u64,
    /// [`Plan::input_fingerprint`]: the captured input slots' bits.
    pub inputs: u64,
}

/// A recording frontend: a [`Backend`] that executes every operation
/// through an inner backend *and* appends it to a [`Plan`]. Because the
/// real backend runs underneath, recorded programs with data-dependent
/// control flow (convergence loops) capture exactly the steps that
/// executed, and recording is observationally identical to the eager
/// path — same outputs, same counters, same telemetry.
///
/// Operands are interned by content (exact bits): an operand that equals
/// a previous step's output becomes a read of that step's slot, which is
/// how dependency edges are recovered without any API change in the
/// recorded algorithm. When several slots hold bit-identical content the
/// most recent one wins — replay values are unaffected (the contents are
/// equal by construction).
#[derive(Debug)]
pub struct PlanBuilder<'b, B: Backend> {
    backend: &'b mut B,
    plan: Plan,
    /// Transient value of every slot (inputs *and* step outputs), used
    /// only for interning during recording.
    values: Vec<Matrix>,
    index: HashMap<u64, Vec<SlotId>>,
}

impl<'b, B: Backend> PlanBuilder<'b, B> {
    /// Starts recording over `backend`.
    pub fn over(backend: &'b mut B) -> Self {
        let reduced_precision = backend.reduced_precision();
        Self {
            backend,
            plan: Plan {
                reduced_precision,
                ..Plan::default()
            },
            values: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Finishes recording and returns the plan.
    pub fn finish(self) -> Plan {
        self.plan
    }

    /// The number of steps recorded so far.
    pub fn recorded_steps(&self) -> usize {
        self.plan.step_count()
    }

    /// Interns `m`: returns the most recent slot with bit-identical
    /// content, or captures it as a fresh input slot carrying `repr`.
    ///
    /// When an existing dense slot is re-declared sparse, the slot is
    /// *promoted* to the sparse representation (demotion never happens
    /// here — [`record_mmo`](Self::record_mmo) separately forces
    /// accumulator slots dense, which wins, because dense execution is
    /// universally valid while a sparse accumulator is not).
    fn intern(&mut self, m: &Matrix, repr: OperandRepr) -> SlotId {
        let h = content_hash(m);
        if let Some(candidates) = self.index.get(&h) {
            for &slot in candidates.iter().rev() {
                let held = &self.values[slot.0];
                if held.shape() == m.shape()
                    && held
                        .as_slice()
                        .iter()
                        .zip(m.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                {
                    if self.plan.slots[slot.0].repr.is_dense() && !repr.is_dense() {
                        self.plan.slots[slot.0].repr = repr;
                    }
                    return slot;
                }
            }
        }
        let slot = SlotId(self.plan.slots.len());
        self.plan.slots.push(Slot {
            shape: m.shape(),
            origin: SlotOrigin::Input,
            value: Some(m.clone()),
            twin: None,
            repr,
        });
        self.values.push(m.clone());
        self.index.entry(h).or_default().push(slot);
        slot
    }

    /// The *earliest* recorded slot whose content is bit-identical to
    /// `m`, if any — the twin link the CSE pass canonicalises through.
    /// (Interning wants the most recent match; twins want the first, so
    /// every bit-equal slot chains to one canonical root.)
    fn earliest_twin(&self, h: u64, m: &Matrix) -> Option<SlotId> {
        self.index.get(&h)?.iter().copied().find(|&slot| {
            let held = &self.values[slot.0];
            held.shape() == m.shape()
                && held
                    .as_slice()
                    .iter()
                    .zip(m.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
    }

    /// Registers a step's freshly computed output as a new slot.
    fn record_output(&mut self, d: &Matrix, step: usize) -> SlotId {
        let h = content_hash(d);
        let twin = self.earliest_twin(h, d);
        let slot = SlotId(self.plan.slots.len());
        self.plan.slots.push(Slot {
            shape: d.shape(),
            origin: SlotOrigin::Step(step),
            value: None,
            twin,
            repr: OperandRepr::Dense,
        });
        self.values.push(d.clone());
        self.index.entry(h).or_default().push(slot);
        slot
    }

    fn record_mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
        d: &Matrix,
        reprs: [OperandRepr; 3],
    ) {
        let (sa, sb) = (self.intern(a, reprs[0]), self.intern(b, reprs[1]));
        let sc = self.intern(c, OperandRepr::Dense);
        // Accumulator slots stay dense unconditionally: C seeds every
        // output element, so it has no skippable terms — and a slot
        // promoted through an earlier A/B use must be demoted the
        // moment it is also read as C (dense replay is bit-identical,
        // so the demotion costs speed, never correctness).
        self.plan.slots[sc.0].repr = OperandRepr::Dense;
        let step = self.plan.steps.len();
        let sd = self.record_output(d, step);
        self.plan.steps.push(Step {
            op,
            a: sa,
            b: sb,
            c: sc,
            d: sd,
        });
    }
}

impl<B: Backend> Backend for PlanBuilder<'_, B> {
    fn name(&self) -> &'static str {
        self.backend.name()
    }

    fn reduced_precision(&self) -> bool {
        self.backend.reduced_precision()
    }

    fn mmo(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        // Execute first: a failed operation records nothing, matching
        // the counter/telemetry convention everywhere else.
        let d = self.backend.mmo(op, a, b, c)?;
        self.record_mmo(op, a, b, c, &d, [OperandRepr::Dense; 3]);
        Ok(d)
    }

    fn mmo_sequential(
        &mut self,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        let d = self.backend.mmo_sequential(op, a, b, c)?;
        self.record_mmo(op, a, b, c, &d, [OperandRepr::Dense; 3]);
        Ok(d)
    }

    fn mmo_ref(
        &mut self,
        op: OpKind,
        a: MatrixRef<'_>,
        b: MatrixRef<'_>,
        c: MatrixRef<'_>,
    ) -> Result<Matrix, BackendError> {
        // The inner backend validates the declarations (and may execute
        // through its sparse kernels); only a successful step records,
        // with the operand reprs riding into the slot arena.
        let d = self.backend.mmo_ref(op, a, b, c)?;
        self.record_mmo(
            op,
            a.matrix,
            b.matrix,
            c.matrix,
            &d,
            [a.repr, b.repr, c.repr],
        );
        Ok(d)
    }

    fn op_count(&self) -> OpCount {
        self.backend.op_count()
    }

    fn reset_count(&mut self) {
        self.backend.reset_count();
    }
}

/// Why a replay halted at a step boundary.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayHalt {
    /// The backend failed while executing the step.
    Backend(BackendError),
    /// A [`ReplayControl`] cancelled the replay before the step ran
    /// (deadline exceeded, shutdown requested, …). The step itself was
    /// never dispatched.
    Cancelled {
        /// The controller's stated reason, e.g. `"deadline"`.
        reason: String,
    },
    /// A resume was attempted with a [`PlanCheckpoint`] that does not
    /// belong to this plan: the checkpoint's [`PlanKey`] disagrees with
    /// the plan's, so replaying from it could splice another program's
    /// outputs into this one. Nothing was dispatched.
    Checkpoint {
        /// Why the checkpoint was rejected.
        reason: String,
    },
}

/// A failed [`Executor::run`]: what went wrong, pinned to the step that
/// died — a mid-replay error without the step index is useless to a
/// caller managing many plans.
///
/// Attribution is exact for sequential dispatch (and for worker panics
/// in batched dispatch, whose `panel` index identifies the step within
/// the batch); other batched-dispatch errors are attributed to the
/// wave's first step, the finest granularity batch dispatch reports.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayError {
    /// Index of the failing (or cancelled) step in the plan.
    pub step: usize,
    /// That step's output slot.
    pub slot: SlotId,
    /// Steps that completed before the halt.
    pub completed_steps: usize,
    /// What stopped the replay.
    pub halt: ReplayHalt,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.halt {
            ReplayHalt::Backend(e) => write!(
                f,
                "plan replay failed at step {} (slot {}): {e}",
                self.step,
                self.slot.index()
            ),
            ReplayHalt::Cancelled { reason } => write!(
                f,
                "plan replay cancelled before step {} after {} completed steps: {reason}",
                self.step, self.completed_steps
            ),
            ReplayHalt::Checkpoint { reason } => {
                write!(f, "plan resume rejected its checkpoint: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.halt {
            ReplayHalt::Backend(e) => Some(e),
            ReplayHalt::Cancelled { .. } | ReplayHalt::Checkpoint { .. } => None,
        }
    }
}

impl ReplayError {
    /// The backend error, if the halt was a backend failure.
    pub fn backend_error(&self) -> Option<&BackendError> {
        match &self.halt {
            ReplayHalt::Backend(e) => Some(e),
            ReplayHalt::Cancelled { .. } | ReplayHalt::Checkpoint { .. } => None,
        }
    }

    /// Whether the halt was a [`ReplayControl`] cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self.halt, ReplayHalt::Cancelled { .. })
    }
}

/// Durable snapshot of a halted replay's completed work, at step
/// granularity: the outputs of every step that finished before the
/// halt, pinned to the plan's [`PlanKey`] identity.
///
/// Produced by [`Executor::run_resumable`] when a replay halts;
/// consumed by [`Executor::resume_from`], which re-seeds the slot arena
/// from these outputs and dispatches *only* the incomplete steps — so a
/// resume never re-executes completed work, and the concatenation of
/// the halted and resumed runs is bit-identical (outputs, op counters,
/// telemetry) to one uninterrupted replay.
///
/// Completion is step-exact, not wave-rounded: a sequential halt midway
/// through a wave keeps that wave's finished prefix, and a later
/// (possibly batched) resume dispatches just the remainder.
#[derive(Clone, Debug)]
pub struct PlanCheckpoint {
    key: PlanKey,
    total_steps: usize,
    completed: usize,
    /// `outputs[i]` holds step `i`'s output iff it completed.
    outputs: Vec<Option<Matrix>>,
    resumes: u64,
}

impl PlanCheckpoint {
    /// The [`PlanKey`] of the plan this checkpoint belongs to.
    /// [`Executor::resume_from`] refuses a checkpoint whose key
    /// disagrees with the plan it is handed.
    pub fn key(&self) -> PlanKey {
        self.key
    }

    /// Steps whose outputs the checkpoint holds.
    pub fn completed_steps(&self) -> usize {
        self.completed
    }

    /// Steps a resume still has to dispatch.
    pub fn remaining_steps(&self) -> usize {
        self.total_steps - self.completed
    }

    /// Total steps in the checkpointed plan.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// Whether step `step` completed before the halt.
    pub fn step_completed(&self, step: usize) -> bool {
        self.outputs.get(step).is_some_and(Option::is_some)
    }

    /// How many times this checkpoint lineage has been resumed (0 for a
    /// first halt; each halted resume increments it).
    pub fn resumes(&self) -> u64 {
        self.resumes
    }
}

/// A halted resumable replay: the step-attributed [`ReplayError`] plus
/// the [`PlanCheckpoint`] holding every completed step's output.
///
/// Boxed at the API surface ([`Executor::run_resumable`]) because the
/// checkpoint owns matrices — keeping the `Result`'s error arm pointer
/// sized.
#[derive(Clone, Debug)]
pub struct HaltedReplay {
    /// What stopped the replay, pinned to the step that died.
    pub error: ReplayError,
    /// The completed work, ready for [`Executor::resume_from`].
    pub checkpoint: PlanCheckpoint,
}

/// Progress snapshot handed to a [`ReplayControl`] before each dispatch
/// (one step sequentially; one wave batched).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayProgress {
    /// Index of the first step about to execute.
    pub next_step: usize,
    /// Steps completed so far.
    pub completed_steps: usize,
    /// Steps in the dispatch about to run (1 sequentially; the wave
    /// size when batched).
    pub pending_steps: usize,
    /// Total steps in the plan.
    pub total_steps: usize,
}

/// Step-boundary control hook consulted by
/// [`Executor::run_controlled`] before every dispatch: return `Err` to
/// cancel the replay with a [`ReplayHalt::Cancelled`]. This is the
/// executor's deadline/cancellation seam — a budget check here can
/// never hang mid-step, because it runs only between steps.
///
/// Implemented for any `FnMut(ReplayProgress) -> Result<(), String>`.
pub trait ReplayControl {
    /// Approve (`Ok`) or cancel (`Err(reason)`) the next dispatch.
    fn check(&mut self, progress: ReplayProgress) -> Result<(), String>;
}

impl<F: FnMut(ReplayProgress) -> Result<(), String>> ReplayControl for F {
    fn check(&mut self, progress: ReplayProgress) -> Result<(), String> {
        self(progress)
    }
}

/// Lowers recorded plans onto any [`Backend`] — the one execution engine
/// behind the functional, ISA and (via [`Plan::traces`]) timing paths.
#[derive(Clone, Debug, Default)]
pub struct Executor {
    tracer: Tracer,
    batching: bool,
}

impl Executor {
    /// A sequential executor: steps replay one by one, in recorded
    /// order — bit-identical to the eager run that produced the plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batching executor: each dependency wave's mutually independent
    /// steps are dispatched together through [`Backend::mmo_batch`]
    /// (inter-step parallelism on backends that support it). Results
    /// remain bit-identical to sequential replay.
    pub fn batched() -> Self {
        Self {
            batching: true,
            ..Self::default()
        }
    }

    /// Whether this executor dispatches waves through
    /// [`Backend::mmo_batch`].
    pub fn is_batching(&self) -> bool {
        self.batching
    }

    /// Attaches a telemetry tracer: every [`run`](Self::run) emits a
    /// [`span::PLAN`] begin/end span plus one [`span::PLAN_WAVE`]
    /// summary per dispatch wave. Backend-level spans (`mmo`,
    /// `tile_panel`) come from the backend's own tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a telemetry tracer (builder form).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The eager path as a thin wrapper: executes one operation directly
    /// on the backend, no plan involved. Kept so call sites read
    /// uniformly whether they record or not.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Backend::mmo`].
    pub fn eager<B: Backend>(
        backend: &mut B,
        op: OpKind,
        a: &Matrix,
        b: &Matrix,
        c: &Matrix,
    ) -> Result<Matrix, BackendError> {
        backend.mmo(op, a, b, c)
    }

    /// Replays `plan` on `backend` and returns every slot's value.
    ///
    /// Sequential executors run steps in recorded order; batching
    /// executors dispatch each dependency wave through
    /// [`Backend::mmo_batch`]. Either way outputs are bit-identical to
    /// the eager run that recorded the plan (given the same backend
    /// configuration).
    ///
    /// # Errors
    ///
    /// Propagates the first [`BackendError`] a step raises as a
    /// [`ReplayError`] carrying the failing step index and output slot;
    /// completed steps' counters are retained, and (matching the `mmo`
    /// span convention) a failed run emits no [`span::PLAN`] end event.
    pub fn run<B: Backend>(&self, plan: &Plan, backend: &mut B) -> Result<Replay, ReplayError> {
        self.run_controlled(plan, backend, &mut |_: ReplayProgress| Ok(()))
    }

    /// [`run`](Self::run) with a [`ReplayControl`] consulted before
    /// every dispatch — the deadline/cancellation seam. A control that
    /// returns `Err` halts the replay with [`ReplayHalt::Cancelled`]
    /// before the next step executes; steps already dispatched always
    /// run to completion (cancellation is a step-boundary protocol,
    /// never a mid-step abort).
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run), plus [`ReplayHalt::Cancelled`] when the
    /// control cancels.
    pub fn run_controlled<B: Backend, C: ReplayControl>(
        &self,
        plan: &Plan,
        backend: &mut B,
        control: &mut C,
    ) -> Result<Replay, ReplayError> {
        self.run_inner(plan, backend, control, None)
            .map_err(|halted| halted.error)
    }

    /// [`run_controlled`](Self::run_controlled), but a halt returns a
    /// [`HaltedReplay`] carrying a [`PlanCheckpoint`] of every completed
    /// step's output alongside the error — the durable state
    /// [`resume_from`](Self::resume_from) continues from. A successful
    /// run returns the same [`Replay`] as [`run`](Self::run), and the
    /// checkpoint is built by *moving* the completed outputs (no
    /// copies), so arming resumability costs nothing on the happy path.
    ///
    /// # Errors
    ///
    /// As [`run_controlled`](Self::run_controlled), boxed with the
    /// checkpoint.
    pub fn run_resumable<B: Backend, C: ReplayControl>(
        &self,
        plan: &Plan,
        backend: &mut B,
        control: &mut C,
    ) -> Result<Replay, Box<HaltedReplay>> {
        self.run_inner(plan, backend, control, None)
    }

    /// Continues a halted replay from `checkpoint`, dispatching only
    /// the steps that have not completed — completed steps are never
    /// re-executed (their outputs seed the slot arena directly, and the
    /// backend sees exactly `remaining_steps` dispatches). The
    /// [`ReplayControl`] is consulted only before real dispatches, with
    /// `completed_steps` counting checkpointed work, so total-budget
    /// deadlines account across halt/resume exactly as they would over
    /// one uninterrupted run.
    ///
    /// Telemetry is the *complement* of the halted run's: no
    /// [`span::PLAN`] begin (the original run's stands), and a
    /// [`span::PLAN_WAVE`] end only for waves this resume dispatched
    /// into — so the concatenation of the halted and resumed event
    /// streams equals an uninterrupted run's stream exactly.
    ///
    /// # Errors
    ///
    /// [`ReplayHalt::Checkpoint`] if `checkpoint.key()` disagrees with
    /// `plan.cache_key()`; otherwise as
    /// [`run_resumable`](Self::run_resumable) — a halted resume returns
    /// a fresh checkpoint with [`PlanCheckpoint::resumes`] incremented.
    pub fn resume_from<B: Backend, C: ReplayControl>(
        &self,
        plan: &Plan,
        checkpoint: PlanCheckpoint,
        backend: &mut B,
        control: &mut C,
    ) -> Result<Replay, Box<HaltedReplay>> {
        let key = plan.cache_key();
        if checkpoint.key != key || checkpoint.total_steps != plan.step_count() {
            let step = (0..checkpoint.total_steps.min(plan.step_count()))
                .find(|&i| !checkpoint.step_completed(i))
                .unwrap_or(0);
            let slot = plan.steps.get(step).map_or(SlotId(0), |s| s.d);
            return Err(Box::new(HaltedReplay {
                error: ReplayError {
                    step,
                    slot,
                    completed_steps: checkpoint.completed,
                    halt: ReplayHalt::Checkpoint {
                        reason: format!(
                            "checkpoint key {:?} does not match plan key {key:?}",
                            checkpoint.key
                        ),
                    },
                },
                checkpoint,
            }));
        }
        self.run_inner(plan, backend, control, Some(checkpoint))
    }

    /// The one replay loop behind [`run_controlled`](Self::run_controlled),
    /// [`run_resumable`](Self::run_resumable) and
    /// [`resume_from`](Self::resume_from). With `resume` set, completed
    /// steps seed the arena and are skipped; telemetry emits only what
    /// the halted run did not.
    fn run_inner<B: Backend, C: ReplayControl>(
        &self,
        plan: &Plan,
        backend: &mut B,
        control: &mut C,
        resume: Option<PlanCheckpoint>,
    ) -> Result<Replay, Box<HaltedReplay>> {
        let mut values: Vec<Option<Matrix>> = plan.slots.iter().map(|s| s.value.clone()).collect();
        let resumes = match resume {
            Some(cp) => {
                for (i, output) in cp.outputs.into_iter().enumerate() {
                    if let Some(d) = output {
                        values[plan.steps[i].d.0] = Some(d);
                    }
                }
                cp.resumes + 1
            }
            None => {
                self.tracer.begin(
                    span::PLAN,
                    &[
                        field("steps", plan.step_count()),
                        field("slots", plan.slot_count()),
                        field("backend", backend.name()),
                        field(
                            "mode",
                            if self.batching {
                                "batched"
                            } else {
                                "sequential"
                            },
                        ),
                    ],
                );
                0
            }
        };
        fn operand(values: &[Option<Matrix>], slot: SlotId) -> &Matrix {
            values[slot.0]
                .as_ref()
                .expect("waves resolve every operand before its readers")
        }
        // Consults the control before a dispatch of `pending` steps
        // starting at `next`; a refusal becomes a step-attributed halt.
        fn checkpoint<C: ReplayControl>(
            control: &mut C,
            plan: &Plan,
            next: usize,
            completed: usize,
            pending: usize,
        ) -> Result<(), ReplayError> {
            control
                .check(ReplayProgress {
                    next_step: next,
                    completed_steps: completed,
                    pending_steps: pending,
                    total_steps: plan.step_count(),
                })
                .map_err(|reason| ReplayError {
                    step: next,
                    slot: plan.steps[next].d,
                    completed_steps: completed,
                    halt: ReplayHalt::Cancelled { reason },
                })
        }
        let waves = plan.waves();
        let completed = values
            .iter()
            .zip(&plan.slots)
            .filter(|(v, s)| v.is_some() && matches!(s.origin, SlotOrigin::Step(_)))
            .count();
        let mut run =
            |values: &mut Vec<Option<Matrix>>, control: &mut C| -> Result<(), ReplayError> {
                let mut completed = completed;
                for (w, wave) in waves.iter().enumerate() {
                    // On resume, already-completed steps are skipped — they
                    // are neither control-checked nor dispatched, so the
                    // backend performs exactly the remaining work.
                    let todo: Vec<usize> = wave
                        .iter()
                        .copied()
                        .filter(|&i| values[plan.steps[i].d.0].is_none())
                        .collect();
                    if todo.is_empty() {
                        // The halted run finished this wave and already
                        // emitted its summary.
                        continue;
                    }
                    if self.batching && todo.len() > 1 {
                        let first = todo[0];
                        checkpoint(control, plan, first, completed, todo.len())?;
                        let args: Vec<MmoArgs<'_>> = todo
                            .iter()
                            .map(|&i| {
                                let s = &plan.steps[i];
                                MmoArgs {
                                    op: s.op,
                                    a: operand(values, s.a),
                                    b: operand(values, s.b),
                                    c: operand(values, s.c),
                                    reprs: plan.step_reprs(i),
                                }
                            })
                            .collect();
                        let outputs = backend.mmo_batch(&args).map_err(|e| {
                            // The tiled batch dispatch reports a panicking
                            // step's index within the batch as `panel`;
                            // anything else is attributed to the dispatch's
                            // first step.
                            let step = match &e {
                                BackendError::WorkerPanic { panel, .. } if *panel < todo.len() => {
                                    todo[*panel]
                                }
                                _ => first,
                            };
                            ReplayError {
                                step,
                                slot: plan.steps[step].d,
                                completed_steps: completed,
                                halt: ReplayHalt::Backend(e),
                            }
                        })?;
                        drop(args);
                        for (&i, d) in todo.iter().zip(outputs) {
                            values[plan.steps[i].d.0] = Some(d);
                        }
                        completed += todo.len();
                    } else {
                        for &i in &todo {
                            checkpoint(control, plan, i, completed, 1)?;
                            let s = &plan.steps[i];
                            let reprs = plan.step_reprs(i);
                            // All-dense steps dispatch through `mmo`
                            // exactly as before the representation seam;
                            // sparse-declared steps go through `mmo_ref`
                            // so representation-aware backends can honour
                            // the lowering (bit-identical either way).
                            let d = if reprs.iter().all(|r| r.is_dense()) {
                                backend.mmo(
                                    s.op,
                                    operand(values, s.a),
                                    operand(values, s.b),
                                    operand(values, s.c),
                                )
                            } else {
                                backend.mmo_ref(
                                    s.op,
                                    MatrixRef::new(operand(values, s.a), reprs[0]),
                                    MatrixRef::new(operand(values, s.b), reprs[1]),
                                    MatrixRef::new(operand(values, s.c), reprs[2]),
                                )
                            }
                            .map_err(|e| ReplayError {
                                step: i,
                                slot: s.d,
                                completed_steps: completed,
                                halt: ReplayHalt::Backend(e),
                            })?;
                            values[s.d.0] = Some(d);
                            completed += 1;
                        }
                    }
                    self.tracer.end(
                        span::PLAN_WAVE,
                        &[field("wave", w), field("steps", wave.len())],
                    );
                }
                Ok(())
            };
        if let Err(error) = run(&mut values, control) {
            let outputs: Vec<Option<Matrix>> =
                plan.steps.iter().map(|s| values[s.d.0].take()).collect();
            let completed = outputs.iter().filter(|o| o.is_some()).count();
            return Err(Box::new(HaltedReplay {
                error,
                checkpoint: PlanCheckpoint {
                    key: plan.cache_key(),
                    total_steps: plan.step_count(),
                    completed,
                    outputs,
                    resumes,
                },
            }));
        }
        self.tracer.end(
            span::PLAN,
            &[
                field("steps", plan.step_count()),
                field("slots", plan.slot_count()),
                field("waves", waves.len()),
            ],
        );
        Ok(Replay {
            values: values
                .into_iter()
                .map(|v| v.expect("every slot is an input or a completed step output"))
                .collect(),
            step_outputs: plan.steps.iter().map(|s| s.d).collect(),
        })
    }
}

/// The resolved values of one plan replay.
#[derive(Clone, Debug)]
pub struct Replay {
    values: Vec<Matrix>,
    step_outputs: Vec<SlotId>,
}

impl Replay {
    /// A slot's replayed value.
    pub fn value(&self, slot: SlotId) -> &Matrix {
        &self.values[slot.index()]
    }

    /// The output of step `step`.
    pub fn step_output(&self, step: usize) -> &Matrix {
        self.value(self.step_outputs[step])
    }

    /// The last step's output (`None` for an empty plan).
    pub fn final_output(&self) -> Option<&Matrix> {
        self.step_outputs.last().map(|&s| self.value(s))
    }

    /// Consumes the replay and returns the last step's output.
    pub fn into_final_output(mut self) -> Option<Matrix> {
        let last = *self.step_outputs.last()?;
        Some(self.values.swap_remove(last.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Parallelism, ReferenceBackend, TiledBackend};
    use simd2_matrix::gen;
    use simd2_semiring::ALL_OPS;

    fn bit_eq(x: &Matrix, y: &Matrix) -> bool {
        x.shape() == y.shape()
            && x.as_slice()
                .iter()
                .zip(y.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Records a 3-step chain: d0 = C ⊕ (A ⊗ B); d1 = C ⊕ (d0 ⊗ B);
    /// d2 = C ⊕ (d0 ⊗ d1-ish)… kept square so chaining is legal.
    fn record_chain(op: OpKind) -> (Plan, Vec<Matrix>) {
        let a = gen::random_operands_for(op, 40, 40, 1);
        let b = gen::random_operands_for(op, 40, 40, 2);
        let c = Matrix::filled(40, 40, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d0 = rec.mmo(op, &a, &b, &c).unwrap();
        let d1 = rec.mmo(op, &d0, &b, &c).unwrap();
        let d2 = rec.mmo(op, &d0, &d1, &c).unwrap();
        (rec.finish(), vec![d0, d1, d2])
    }

    #[test]
    fn recording_recovers_dependency_edges() {
        let (plan, _) = record_chain(OpKind::MinPlus);
        assert_eq!(plan.step_count(), 3);
        // 3 inputs (A, B, C) + 3 step outputs.
        assert_eq!(plan.slot_count(), 6);
        assert_eq!(plan.dependencies(), vec![vec![], vec![0], vec![0, 1]]);
        assert_eq!(plan.waves(), vec![vec![0], vec![1], vec![2]]);
        let s = plan.steps()[1];
        assert_eq!(plan.slot_origin(s.a), SlotOrigin::Step(0));
        assert_eq!(plan.slot_origin(s.b), SlotOrigin::Input);
        assert!(plan.input_value(s.b).is_some());
        assert!(plan.input_value(s.a).is_none());
        assert!(plan.reduced_precision());
    }

    #[test]
    fn sequential_replay_is_bit_identical_to_recording() {
        for op in ALL_OPS {
            let (plan, eager) = record_chain(op);
            let mut be = TiledBackend::new();
            let replay = Executor::new().run(&plan, &mut be).unwrap();
            for (i, want) in eager.iter().enumerate() {
                assert!(bit_eq(replay.step_output(i), want), "{op} step {i}");
            }
            assert!(bit_eq(replay.final_output().unwrap(), &eager[2]), "{op}");
        }
    }

    #[test]
    fn replay_counters_match_prediction() {
        let (plan, _) = record_chain(OpKind::MaxPlus);
        let mut be = TiledBackend::new();
        Executor::new().run(&plan, &mut be).unwrap();
        assert_eq!(be.op_count(), plan.predicted_op_count());
    }

    #[test]
    fn merged_plans_batch_into_shared_waves() {
        let plans: Vec<Plan> = [OpKind::MinPlus, OpKind::MaxMin, OpKind::PlusMul]
            .into_iter()
            .map(|op| record_chain(op).0)
            .collect();
        let eager: Vec<Vec<Matrix>> = [OpKind::MinPlus, OpKind::MaxMin, OpKind::PlusMul]
            .into_iter()
            .map(|op| record_chain(op).1)
            .collect();
        let merged = Plan::merge(plans);
        assert_eq!(merged.step_count(), 9);
        // Independent recordings share waves: 3 waves of 3 steps.
        let waves = merged.waves();
        assert_eq!(waves.len(), 3);
        assert!(waves.iter().all(|w| w.len() == 3));
        // Batched replay through the worker pool stays bit-identical.
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(4));
        let replay = Executor::batched().run(&merged, &mut be).unwrap();
        for (p, outs) in eager.iter().enumerate() {
            for (i, want) in outs.iter().enumerate() {
                assert!(
                    bit_eq(replay.step_output(3 * p + i), want),
                    "plan {p} step {i}"
                );
            }
        }
        assert_eq!(be.op_count(), merged.predicted_op_count());
    }

    #[test]
    fn traces_and_kernels_carry_recorded_geometry() {
        let op = OpKind::PlusNorm;
        let a = gen::random_operands_for(op, 20, 36, 3);
        let b = gen::random_operands_for(op, 36, 52, 4);
        let c = Matrix::filled(20, 52, op.reduce_identity_f32());
        let mut be = ReferenceBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        rec.mmo(op, &a, &b, &c).unwrap();
        let plan = rec.finish();
        assert!(!plan.reduced_precision());
        assert_eq!(plan.step_geometry(0), (20, 52, 36));
        let traces = plan.traces();
        assert_eq!(traces, vec![MmoTrace::new(op, 20, 52, 36)]);
        let kernels = plan.compile(4);
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].shape, (20, 52, 36));
        assert_eq!(
            kernels[0].total_mmos() as u64,
            plan.predicted_op_count().tile_mmos
        );
    }

    #[test]
    fn recording_is_observationally_identical_to_eager() {
        use simd2_trace::RingSink;
        let op = OpKind::MinPlus;
        let a = gen::random_operands_for(op, 40, 40, 1);
        let c = Matrix::filled(40, 40, op.reduce_identity_f32());
        let eager_ring = RingSink::shared();
        let mut eager_be = TiledBackend::new().with_tracer(Tracer::to(eager_ring.clone()));
        let eager_d = Executor::eager(&mut eager_be, op, &a, &a, &c).unwrap();
        let rec_ring = RingSink::shared();
        let mut rec_be = TiledBackend::new().with_tracer(Tracer::to(rec_ring.clone()));
        let mut rec = PlanBuilder::over(&mut rec_be);
        let rec_d = rec.mmo(op, &a, &a, &c).unwrap();
        assert_eq!(rec.op_count(), eager_be.op_count());
        assert!(bit_eq(&eager_d, &rec_d));
        assert_eq!(
            eager_ring.len(),
            rec_ring.len(),
            "same telemetry event stream"
        );
    }

    #[test]
    fn executor_spans_summarise_the_replay() {
        use simd2_trace::{EventKind, RingSink};
        let (plan, _) = record_chain(OpKind::MinPlus);
        let ring = RingSink::shared();
        let exec = Executor::new().with_tracer(Tracer::to(ring.clone()));
        assert!(!exec.is_batching());
        let mut be = TiledBackend::new();
        exec.run(&plan, &mut be).unwrap();
        let events = ring.events();
        let plan_ends: Vec<_> = events
            .iter()
            .filter(|e| e.span == span::PLAN && e.kind == EventKind::End)
            .collect();
        assert_eq!(plan_ends.len(), 1);
        assert_eq!(plan_ends[0].u64("steps"), Some(3));
        assert_eq!(plan_ends[0].u64("waves"), Some(3));
        let wave_steps: u64 = events
            .iter()
            .filter(|e| e.span == span::PLAN_WAVE)
            .map(|e| e.u64("steps").unwrap())
            .sum();
        assert_eq!(wave_steps, 3);
    }

    #[test]
    fn failed_step_propagates_and_emits_no_plan_end() {
        use simd2_trace::{EventKind, RingSink};
        // Corrupt a recorded plan's captured input so the first step is
        // rejected at replay time.
        let (mut plan, _) = record_chain(OpKind::MinPlus);
        let bad = Matrix::zeros(7, 3);
        let a_slot = plan.steps()[0].a;
        plan.slots[a_slot.0].value = Some(bad);
        let ring = RingSink::shared();
        let exec = Executor::new().with_tracer(Tracer::to(ring.clone()));
        let mut be = TiledBackend::new();
        let err = exec.run(&plan, &mut be).unwrap_err();
        assert_eq!(err.step, 0);
        assert_eq!(err.slot, plan.steps()[0].d);
        assert_eq!(err.completed_steps, 0);
        assert!(matches!(
            err.halt,
            ReplayHalt::Backend(BackendError::Shape(_))
        ));
        assert!(err.backend_error().is_some());
        assert!(!err.is_cancelled());
        let events = ring.events();
        assert!(events
            .iter()
            .any(|e| e.span == span::PLAN && e.kind == EventKind::Begin));
        assert!(
            !events
                .iter()
                .any(|e| e.span == span::PLAN && e.kind == EventKind::End),
            "a failed replay must not report completion"
        );
    }

    #[test]
    fn non_square_chains_record_and_replay() {
        // D1 = C1 ⊕ (A{20×36} ⊗ B{36×24}); D2 = C2 ⊕ (D1 ⊗ B2{24×52}).
        let op = OpKind::PlusMul;
        let a = gen::random_operands_for(op, 20, 36, 5);
        let b = gen::random_operands_for(op, 36, 24, 6);
        let b2 = gen::random_operands_for(op, 24, 52, 7);
        let c1 = Matrix::filled(20, 24, op.reduce_identity_f32());
        let c2 = Matrix::filled(20, 52, op.reduce_identity_f32());
        let mut be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut be);
        let d1 = rec.mmo(op, &a, &b, &c1).unwrap();
        let d2 = rec.mmo(op, &d1, &b2, &c2).unwrap();
        let plan = rec.finish();
        assert_eq!(plan.step_geometry(0), (20, 24, 36));
        assert_eq!(plan.step_geometry(1), (20, 52, 24));
        assert_eq!(plan.dependencies(), vec![vec![], vec![0]]);
        let mut replay_be = TiledBackend::new();
        let replay = Executor::new().run(&plan, &mut replay_be).unwrap();
        assert!(bit_eq(replay.step_output(0), &d1));
        assert!(bit_eq(replay.step_output(1), &d2));
        assert!(bit_eq(&replay.into_final_output().unwrap(), &d2));
    }

    #[test]
    fn planted_panic_at_step_k_is_attributed_to_step_k() {
        use crate::backend::Parallelism;
        use simd2_fault::PanicProbeUnit;
        use simd2_mxu::Simd2Unit;
        let op = OpKind::PlusMul;
        // Three mutually independent steps; only step 2 is tall enough
        // (3 tile rows) to reach the probe's panicking tile row 1.
        let small_a = gen::random_operands_for(op, 16, 16, 11);
        let small_a2 = gen::random_operands_for(op, 16, 16, 13);
        let small_b = gen::random_operands_for(op, 16, 16, 12);
        let small_c = Matrix::filled(16, 16, op.reduce_identity_f32());
        let tall_a = gen::random_operands_for(op, 48, 16, 14);
        let tall_c = Matrix::filled(48, 16, op.reduce_identity_f32());
        let mut rec_be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut rec_be);
        rec.mmo(op, &small_a, &small_b, &small_c).unwrap();
        rec.mmo(op, &small_a2, &small_b, &small_c).unwrap();
        rec.mmo(op, &tall_a, &small_b, &tall_c).unwrap();
        let plan = rec.finish();
        assert_eq!(plan.waves(), vec![vec![0, 1, 2]]);
        let probe = || {
            let mut be = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
            be.set_parallelism(Parallelism::Threads(3));
            be
        };
        // Sequential dispatch: steps 0 and 1 complete, step 2 panics.
        let err = Executor::new().run(&plan, &mut probe()).unwrap_err();
        assert_eq!(err.step, 2);
        assert_eq!(err.slot, plan.steps()[2].d);
        assert_eq!(err.completed_steps, 2);
        assert!(matches!(
            err.halt,
            ReplayHalt::Backend(BackendError::WorkerPanic { .. })
        ));
        // Batched dispatch: the batch reports the panicking step's index
        // within the wave, so attribution is exact there too.
        let err = Executor::batched().run(&plan, &mut probe()).unwrap_err();
        assert_eq!(err.step, 2);
        assert_eq!(err.slot, plan.steps()[2].d);
        assert_eq!(err.completed_steps, 0);
    }

    #[test]
    fn control_cancels_at_step_boundaries() {
        let (plan, _) = record_chain(OpKind::MinPlus);
        let mut be = TiledBackend::new();
        let mut ctl = |p: ReplayProgress| {
            if p.completed_steps + p.pending_steps <= 1 {
                Ok(())
            } else {
                Err("budget".to_string())
            }
        };
        let err = Executor::new()
            .run_controlled(&plan, &mut be, &mut ctl)
            .unwrap_err();
        assert!(err.is_cancelled());
        assert!(err.backend_error().is_none());
        assert_eq!(err.step, 1);
        assert_eq!(err.slot, plan.steps()[1].d);
        assert_eq!(err.completed_steps, 1);
        assert_eq!(
            be.op_count().matrix_mmos,
            1,
            "cancelled steps never dispatch"
        );
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn cache_keys_capture_structure_and_input_bits() {
        let (p1, _) = record_chain(OpKind::MinPlus);
        let (p2, _) = record_chain(OpKind::MinPlus);
        assert_eq!(
            p1.cache_key(),
            p2.cache_key(),
            "independent recordings of the same run agree"
        );
        let (p3, _) = record_chain(OpKind::MaxPlus);
        assert_ne!(p1.structural_hash(), p3.structural_hash());
        // Perturbing one captured input bit moves only the fingerprint.
        let (mut p4, _) = record_chain(OpKind::MinPlus);
        let slot = p4.steps()[0].a;
        let v = p4.slots[slot.index()].value.as_mut().unwrap();
        let flipped = f32::from_bits(v.as_slice()[0].to_bits() ^ 1);
        v.as_mut_slice()[0] = flipped;
        assert_eq!(p1.structural_hash(), p4.structural_hash());
        assert_ne!(p1.input_fingerprint(), p4.input_fingerprint());
        assert_ne!(p1.cache_key(), p4.cache_key());
    }

    #[test]
    fn empty_plan_replays_to_nothing() {
        let mut be = TiledBackend::new();
        let rec = PlanBuilder::over(&mut be);
        let plan = rec.finish();
        assert!(plan.is_empty());
        let replay = Executor::batched().run(&plan, &mut be).unwrap();
        assert!(replay.final_output().is_none());
        assert_eq!(be.op_count(), OpCount::default());
    }

    /// Cancels once `stop_after` steps have completed.
    fn halt_after(stop_after: usize) -> impl FnMut(ReplayProgress) -> Result<(), String> {
        move |p: ReplayProgress| {
            if p.completed_steps + p.pending_steps <= stop_after {
                Ok(())
            } else {
                Err("budget".to_string())
            }
        }
    }

    fn approve() -> impl FnMut(ReplayProgress) -> Result<(), String> {
        |_: ReplayProgress| Ok(())
    }

    #[test]
    fn halted_replay_resumes_bit_identically_without_reexecution() {
        for op in ALL_OPS {
            let (plan, eager) = record_chain(op);
            let mut be = TiledBackend::new();
            let halted = Executor::new()
                .run_resumable(&plan, &mut be, &mut halt_after(1))
                .unwrap_err();
            assert!(halted.error.is_cancelled());
            assert_eq!(halted.error.step, 1);
            let cp = &halted.checkpoint;
            assert_eq!(cp.key(), plan.cache_key());
            assert_eq!(cp.completed_steps(), 1);
            assert_eq!(cp.remaining_steps(), 2);
            assert_eq!(cp.total_steps(), 3);
            assert_eq!(cp.resumes(), 0);
            assert!(cp.step_completed(0) && !cp.step_completed(1));
            assert_eq!(be.op_count().matrix_mmos, 1, "halted run dispatched 1 step");
            // The resume dispatches exactly the two incomplete steps…
            let mut resume_be = TiledBackend::new();
            let replay = Executor::new()
                .resume_from(&plan, halted.checkpoint, &mut resume_be, &mut approve())
                .unwrap();
            assert_eq!(resume_be.op_count().matrix_mmos, 2);
            // …and every step output (including the checkpointed one)
            // matches the eager originals bit for bit.
            for (i, want) in eager.iter().enumerate() {
                assert!(bit_eq(replay.step_output(i), want), "{op} step {i}");
            }
        }
    }

    #[test]
    fn resume_op_counters_complement_the_halted_run_exactly() {
        let (plan, _) = record_chain(OpKind::PlusMul);
        let mut clean_be = TiledBackend::new();
        Executor::new().run(&plan, &mut clean_be).unwrap();
        let mut be = TiledBackend::new();
        let halted = Executor::new()
            .run_resumable(&plan, &mut be, &mut halt_after(2))
            .unwrap_err();
        Executor::new()
            .resume_from(&plan, halted.checkpoint, &mut be, &mut approve())
            .unwrap();
        // Halt + resume on one backend performs exactly one clean run's
        // work: no completed step is ever re-executed.
        assert_eq!(be.op_count(), clean_be.op_count());
        assert_eq!(be.op_count(), plan.predicted_op_count());
    }

    #[test]
    fn halted_plus_resumed_telemetry_equals_an_uninterrupted_run() {
        use simd2_trace::RingSink;
        let (plan, _) = record_chain(OpKind::MinPlus);
        let clean_ring = RingSink::shared();
        Executor::new()
            .with_tracer(Tracer::to(clean_ring.clone()))
            .run(&plan, &mut TiledBackend::new())
            .unwrap();
        let ring = RingSink::shared();
        let exec = Executor::new().with_tracer(Tracer::to(ring.clone()));
        let mut be = TiledBackend::new();
        let halted = exec
            .run_resumable(&plan, &mut be, &mut halt_after(1))
            .unwrap_err();
        exec.resume_from(&plan, halted.checkpoint, &mut be, &mut approve())
            .unwrap();
        // The resume emits no second PLAN begin and only the wave
        // summaries the halted run did not reach: the union is exactly
        // the uninterrupted stream.
        assert_eq!(ring.events(), clean_ring.events());
    }

    #[test]
    fn sequential_halt_resumes_on_the_batched_executor() {
        let ops = [OpKind::MinPlus, OpKind::MaxMin, OpKind::PlusMul];
        let plans: Vec<Plan> = ops.into_iter().map(|op| record_chain(op).0).collect();
        let eager: Vec<Vec<Matrix>> = ops.into_iter().map(|op| record_chain(op).1).collect();
        let merged = Plan::merge(plans);
        // Sequential halt mid-wave: one of wave 0's three steps done.
        let mut be = TiledBackend::with_parallelism(Parallelism::Threads(4));
        let halted = Executor::new()
            .run_resumable(&merged, &mut be, &mut halt_after(1))
            .unwrap_err();
        assert_eq!(halted.checkpoint.completed_steps(), 1);
        // The batched resume dispatches wave 0's remainder as a smaller
        // batch, then the full later waves.
        let replay = Executor::batched()
            .resume_from(&merged, halted.checkpoint, &mut be, &mut approve())
            .unwrap();
        assert_eq!(be.op_count(), merged.predicted_op_count());
        for (p, outs) in eager.iter().enumerate() {
            for (i, want) in outs.iter().enumerate() {
                assert!(
                    bit_eq(replay.step_output(3 * p + i), want),
                    "plan {p} step {i}"
                );
            }
        }
    }

    #[test]
    fn worker_panic_halts_with_a_checkpoint_and_resumes_clean() {
        use crate::backend::Parallelism;
        use simd2_fault::PanicProbeUnit;
        use simd2_mxu::Simd2Unit;
        let op = OpKind::PlusMul;
        let a = gen::random_operands_for(op, 48, 16, 21);
        let b = gen::random_operands_for(op, 16, 16, 22);
        let c = Matrix::filled(48, 16, op.reduce_identity_f32());
        let c2 = Matrix::filled(16, 16, op.reduce_identity_f32());
        let small = gen::random_operands_for(op, 16, 16, 23);
        let mut rec_be = TiledBackend::new();
        let mut rec = PlanBuilder::over(&mut rec_be);
        let d0 = rec.mmo(op, &small, &b, &c2).unwrap();
        let d1 = rec.mmo(op, &a, &d0, &c).unwrap();
        let plan = rec.finish();
        let mut probe = TiledBackend::with_unit(PanicProbeUnit::new(Simd2Unit::new(), 1));
        probe.set_parallelism(Parallelism::Threads(3));
        let halted = Executor::new()
            .run_resumable(&plan, &mut probe, &mut approve())
            .unwrap_err();
        assert!(matches!(
            halted.error.halt,
            ReplayHalt::Backend(BackendError::WorkerPanic { .. })
        ));
        assert_eq!(halted.error.step, 1);
        assert_eq!(halted.checkpoint.completed_steps(), 1);
        // Resume on a healthy backend finishes only the panicked step.
        let mut clean_be = TiledBackend::new();
        let replay = Executor::new()
            .resume_from(&plan, halted.checkpoint, &mut clean_be, &mut approve())
            .unwrap();
        assert_eq!(clean_be.op_count().matrix_mmos, 1);
        assert!(bit_eq(replay.step_output(0), &d0));
        assert!(bit_eq(replay.step_output(1), &d1));
    }

    #[test]
    fn a_halted_resume_rolls_the_checkpoint_forward() {
        let (plan, eager) = record_chain(OpKind::MaxPlus);
        let mut be = TiledBackend::new();
        let halted = Executor::new()
            .run_resumable(&plan, &mut be, &mut halt_after(1))
            .unwrap_err();
        let again = Executor::new()
            .resume_from(&plan, halted.checkpoint, &mut be, &mut halt_after(2))
            .unwrap_err();
        assert!(again.error.is_cancelled());
        assert_eq!(again.checkpoint.completed_steps(), 2);
        assert_eq!(again.checkpoint.resumes(), 1);
        let replay = Executor::new()
            .resume_from(&plan, again.checkpoint, &mut be, &mut approve())
            .unwrap();
        assert_eq!(be.op_count(), plan.predicted_op_count());
        assert!(bit_eq(replay.final_output().unwrap(), &eager[2]));
    }

    #[test]
    fn foreign_checkpoints_are_rejected_before_any_dispatch() {
        let (plan, _) = record_chain(OpKind::MinPlus);
        let (other, _) = record_chain(OpKind::MaxPlus);
        let halted = Executor::new()
            .run_resumable(&plan, &mut TiledBackend::new(), &mut halt_after(1))
            .unwrap_err();
        let mut be = TiledBackend::new();
        let err = Executor::new()
            .resume_from(&other, halted.checkpoint, &mut be, &mut approve())
            .unwrap_err();
        assert!(matches!(err.error.halt, ReplayHalt::Checkpoint { .. }));
        assert!(!err.error.is_cancelled());
        assert!(err.error.backend_error().is_none());
        assert_eq!(be.op_count().matrix_mmos, 0, "nothing dispatched");
        // The checkpoint rides along unchanged, still usable against
        // the plan it belongs to.
        assert_eq!(err.checkpoint.key(), plan.cache_key());
        assert!(err.error.to_string().contains("checkpoint"));
    }
}
