//! Microbenchmark definitions (paper §6.2, Figures 9 and 10).
//!
//! A microbenchmark "repetitively invoke\[s\] the same SIMD² instructions"
//! on synthetic inputs: one `m×n×k` matrix-matrix operation per
//! measurement, compared between the CUDA-core implementation and the
//! SIMD² units. Correctness of the two paths is checked functionally at
//! host-tractable sizes; timing is produced by the GPU machine model at
//! any size, including the paper's 16384².

use simd2_gpu::{Gpu, Seconds};
use simd2_matrix::{gen, Matrix};
use simd2_semiring::OpKind;

use crate::backend::{Backend, ReferenceBackend, TiledBackend};

/// One microbenchmark point: an operation and a shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MicroBench {
    /// The SIMD² operation under test.
    pub op: OpKind,
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
}

impl MicroBench {
    /// A square `n³` benchmark.
    pub fn square(op: OpKind, n: usize) -> Self {
        Self { op, m: n, n, k: n }
    }

    /// Timing of both configurations under the machine model.
    pub fn time(&self, gpu: &Gpu) -> MicroResult {
        let cuda = gpu.cuda_mmo_time(self.op, self.m, self.n, self.k);
        let simd2 = gpu.simd2_mmo_time(self.op, self.m, self.n, self.k);
        MicroResult {
            bench: *self,
            cuda,
            simd2,
        }
    }

    /// Functional cross-check at the benchmark's shape: runs the tiled
    /// SIMD² backend against the fp32 reference on seeded inputs and
    /// returns the worst element error. Intended for host-tractable sizes.
    pub fn validate(&self, seed: u64) -> f32 {
        let a = gen::random_operands_for(self.op, self.m, self.k, seed);
        let b = gen::random_operands_for(self.op, self.k, self.n, seed ^ 1);
        let c = Matrix::filled(self.m, self.n, self.op.reduce_identity_f32());
        let want = ReferenceBackend::new().mmo(self.op, &a, &b, &c).unwrap();
        let got = TiledBackend::new().mmo(self.op, &a, &b, &c).unwrap();
        got.max_abs_diff(&want).unwrap()
    }
}

/// Modelled timing of one microbenchmark point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicroResult {
    /// The benchmark.
    pub bench: MicroBench,
    /// CUDA-core implementation time.
    pub cuda: Seconds,
    /// SIMD²-unit implementation time.
    pub simd2: Seconds,
}

impl MicroResult {
    /// Speedup of SIMD² units over the CUDA-core implementation.
    pub fn speedup(&self) -> f64 {
        self.simd2.speedup_over(self.cuda)
    }
}

/// The square input sizes swept by Figure 9.
pub fn fig9_sizes() -> Vec<usize> {
    vec![256, 512, 1024, 2048, 4096, 8192, 16384]
}

/// The non-square shapes swept by Figure 10 (`(label, m, n, k)`).
pub fn fig10_shapes() -> Vec<(&'static str, usize, usize, usize)> {
    vec![
        ("wide-k (8192x8192x512)", 8192, 8192, 512),
        ("deep-k (512x512x16384)", 512, 512, 16384),
        ("tall (16384x1024x1024)", 16384, 1024, 1024),
        ("flat (1024x16384x1024)", 1024, 16384, 1024),
        ("panel (16384x16384x256)", 16384, 16384, 256),
        ("sliver (256x16384x16384)", 256, 16384, 16384),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simd2_semiring::ALL_OPS;

    #[test]
    fn functional_validation_is_tight_at_small_sizes() {
        for op in ALL_OPS {
            let diff = MicroBench::square(op, 48).validate(9);
            let tol = match op {
                OpKind::PlusMul | OpKind::PlusNorm => 0.15, // fp16 inputs, k=48
                OpKind::MinMul | OpKind::MaxMul => 1e-3,
                _ => 1e-3,
            };
            assert!(diff <= tol, "{op}: {diff}");
        }
    }

    #[test]
    fn or_and_validates_bit_exactly() {
        // Boolean inputs are fp16-exact, so or-and is error-free; the
        // min/max selection algebras only deviate by the one-time operand
        // quantisation.
        assert_eq!(MicroBench::square(OpKind::OrAnd, 32).validate(5), 0.0);
        for op in [OpKind::MinMax, OpKind::MaxMin] {
            let diff = MicroBench::square(op, 32).validate(5);
            assert!(
                diff <= simd2_semiring::precision::F16_MAX_RELATIVE_ERROR,
                "{op}: {diff}"
            );
        }
    }

    #[test]
    fn timing_speedups_are_positive_and_saturating() {
        let gpu = Gpu::default();
        for op in ALL_OPS {
            let small = MicroBench::square(op, 256).time(&gpu).speedup();
            let large = MicroBench::square(op, 16384).time(&gpu).speedup();
            assert!(large > small, "{op}: {small} vs {large}");
            assert!(large > 3.0, "{op}: {large}");
        }
    }

    #[test]
    fn nonsquare_shapes_still_win() {
        let gpu = Gpu::default();
        for (label, m, n, k) in fig10_shapes() {
            let r = MicroBench {
                op: OpKind::MinPlus,
                m,
                n,
                k,
            }
            .time(&gpu);
            assert!(r.speedup() > 1.0, "{label}: {}", r.speedup());
        }
    }

    #[test]
    fn sweep_definitions() {
        assert_eq!(fig9_sizes().len(), 7);
        assert!(fig9_sizes().windows(2).all(|w| w[1] == w[0] * 2));
        assert_eq!(fig10_shapes().len(), 6);
    }
}
